#!/usr/bin/env bash
# Single-entry CI driver: configure + build + full ctest, then an
# address/undefined sanitizer smoke over the suites most likely to
# regress memory-safety — the resident-dataset cache, the shared
# session concurrency layer and the JIT disk cache. The full
# three-sanitizer matrix (including thread mode over the concurrency
# suite) remains tools/sanitize_matrix.sh; this script is the bounded
# per-commit gate.
#
# Usage: tools/ci.sh [build-dir]         (default: build-ci)
#
# Knobs (environment):
#   TREEBEARD_FUZZ_SEEDS   cross-backend fuzz iterations (default 6;
#                          raise for a deeper soak)
#   TREEBEARD_CI_SKIP_THREAD_SAFETY=1   skip the thread-safety stage
#   TREEBEARD_CI_SKIP_SANITIZE=1   skip the sanitizer smoke stage
#   TREEBEARD_CI_SKIP_BENCH_SMOKE=1   skip the bench smoke stage
#   TREEBEARD_CI_SKIP_SERVING_SMOKE=1   skip the serving smoke stage
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"

echo "=== ci: configure + build ($BUILD_DIR) ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j

echo "=== ci: full test suite ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [ "${TREEBEARD_CI_SKIP_THREAD_SAFETY:-0}" != "1" ]; then
    # Clang Thread Safety Analysis over the whole tree: the
    # GUARDED_BY/REQUIRES annotations in the concurrent core only mean
    # something under clang, so this stage is skipped (loudly) on
    # hosts without one — the runtime lock-order validator in
    # lock_order_test still gates the same discipline everywhere.
    if command -v clang++ > /dev/null 2>&1; then
        echo "=== ci: thread-safety analysis (build-tsa) ==="
        cmake -B build-tsa -S . \
            -DCMAKE_CXX_COMPILER=clang++ \
            -DCMAKE_BUILD_TYPE=Release \
            -DTREEBEARD_THREAD_SAFETY=ON
        cmake --build build-tsa -j
    else
        echo "=== ci: thread-safety analysis skipped (no clang++) ==="
    fi
fi

if [ "${TREEBEARD_CI_SKIP_SANITIZE:-0}" != "1" ]; then
    # Smoke, not soak: one seed of the fuzz sweep is enough to drag
    # the whole compile-and-predict path under the sanitizers.
    SMOKE_FILTER='ResidentDataset|SharedSessionConcurrency'
    SMOKE_FILTER="$SMOKE_FILTER"'|ThreadPoolConcurrency|SystemJit'
    export TREEBEARD_FUZZ_SEEDS="${TREEBEARD_FUZZ_SEEDS:-1}"
    for sanitizer in address undefined; do
        echo "=== ci: ${sanitizer}-sanitizer smoke ==="
        TREEBEARD_SANITIZE_TESTS="$SMOKE_FILTER" \
            tools/sanitize_matrix.sh "$sanitizer"
    done
fi

if [ "${TREEBEARD_CI_SKIP_BENCH_SMOKE:-0}" != "1" ]; then
    # Bench smoke: every JSON-writing bench binary runs one tiny
    # configuration (TREEBEARD_BENCH_SCALE shrinks the models) and
    # must produce parseable JSON that reports a throughput figure.
    # This keeps the harness runnable without paying for a full
    # paper-scale sweep on every commit.
    echo "=== ci: bench smoke ==="
    SMOKE_DIR="$BUILD_DIR/bench-smoke"
    mkdir -p "$SMOKE_DIR"
    export TREEBEARD_BENCH_SCALE=0.02
    for bench in bench_layout_memory bench_quantized_packed \
                 bench_resident_rows bench_row_parallel \
                 bench_hot_path; do
        out="$SMOKE_DIR/$bench.json"
        echo "--- $bench ---"
        "$BUILD_DIR/bench/$bench" "$out" > "$SMOKE_DIR/$bench.csv"
        python3 - "$out" "$bench" <<'EOF'
import json, sys
path, name = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
text = json.dumps(doc)
if "per_row" not in text and "rows_per_sec" not in text:
    raise SystemExit(f"{name}: no throughput key in {path}")
print(f"{name}: JSON ok ({len(text)} bytes)")
EOF
    done
    unset TREEBEARD_BENCH_SCALE
fi

if [ "${TREEBEARD_CI_SKIP_SERVING_SMOKE:-0}" != "1" ]; then
    # Serving smoke: one tiny closed-loop sweep through the full
    # serving stack (registry, batcher, server) must produce a
    # parseable BENCH_serving.json with finite latency percentiles.
    # Throughput *ordering* (batching vs unbatched) is only meaningful
    # at full scale, so the smoke asserts plumbing, not performance.
    echo "=== ci: serving smoke ==="
    SMOKE_DIR="$BUILD_DIR/bench-smoke"
    mkdir -p "$SMOKE_DIR"
    out="$SMOKE_DIR/bench_serving.json"
    TREEBEARD_BENCH_SCALE=0.02 "$BUILD_DIR/bench/bench_serving" \
        "$out" > "$SMOKE_DIR/bench_serving.csv"
    python3 - "$out" <<'EOF'
import json, math, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
points = doc["sweep"]
assert points, "serving sweep is empty"
for p in points:
    for key in ("rows_per_sec", "p50_us", "p99_us"):
        value = float(p[key])
        assert math.isfinite(value) and value > 0, \
            f"{key} not positive-finite in {p}"
modes = {(p["model"], p["mode"]) for p in points}
assert len({m for m, _ in modes}) >= 2, "expected >= 2 model shapes"
assert {"batched", "unbatched"} <= {m for _, m in modes}, \
    "expected both serving modes"
print(f"bench_serving: JSON ok ({len(points)} sweep points)")
EOF

    # Loopback-socket smoke: the same serving stack fronted by the TCP
    # wire transport. Start a listener on an ephemeral port, drive it
    # with the CLI's closed-loop socket driver, assert the driver's
    # JSON is sane, send SHUTDOWN and require the listener to exit 0
    # with a clean-shutdown line (exit 1 = lock-order violations).
    echo "=== ci: loopback socket smoke ==="
    CLI="$BUILD_DIR/src/tools/treebeard"
    WIRE_DIR="$SMOKE_DIR/wire"
    mkdir -p "$WIRE_DIR"
    "$CLI" synth abalone "$WIRE_DIR/model.json" 20 > /dev/null
    "$CLI" serve "$WIRE_DIR/model.json" --listen 127.0.0.1:0 \
        > "$WIRE_DIR/listener.log" 2>&1 &
    LISTENER_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            "$WIRE_DIR/listener.log")
        [ -n "$PORT" ] && break
        kill -0 "$LISTENER_PID" 2> /dev/null || {
            echo "listener died before binding:" >&2
            cat "$WIRE_DIR/listener.log" >&2
            exit 1
        }
        sleep 0.1
    done
    [ -n "$PORT" ] || {
        echo "listener never reported its port" >&2
        kill "$LISTENER_PID" 2> /dev/null || true
        exit 1
    }
    "$CLI" serve "$WIRE_DIR/model.json" \
        --connect "127.0.0.1:$PORT" --clients 2 --requests 20 \
        --shutdown > "$WIRE_DIR/driver.json"
    python3 - "$WIRE_DIR/driver.json" <<'EOF'
import json, math, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["completed"] == 40, f"expected 40 completed: {doc}"
assert doc["rejected"] == 0, f"unexpected rejections: {doc}"
for key in ("p50_us", "p95_us", "p99_us", "rows_per_sec"):
    value = float(doc[key])
    assert math.isfinite(value) and value > 0, \
        f"{key} not positive-finite in {doc}"
assert doc["handle"].startswith("tb-"), doc["handle"]
print(f"wire driver: JSON ok (p50 {doc['p50_us']:.0f} us)")
EOF
    if ! wait "$LISTENER_PID"; then
        echo "listener exited non-zero (lock violations?):" >&2
        cat "$WIRE_DIR/listener.log" >&2
        exit 1
    fi
    grep -q '^shutdown: clean (0 lock violations)$' \
        "$WIRE_DIR/listener.log" || {
        echo "listener log missing clean-shutdown line:" >&2
        cat "$WIRE_DIR/listener.log" >&2
        exit 1
    }
    echo "wire listener: clean shutdown, 0 lock violations"
fi

echo "=== ci: OK ==="
