#!/usr/bin/env bash
# Single-entry CI driver: configure + build + full ctest, then an
# address/undefined sanitizer smoke over the suites most likely to
# regress memory-safety — the resident-dataset cache, the shared
# session concurrency layer and the JIT disk cache. The full
# three-sanitizer matrix (including thread mode over the concurrency
# suite) remains tools/sanitize_matrix.sh; this script is the bounded
# per-commit gate.
#
# Usage: tools/ci.sh [build-dir]         (default: build-ci)
#
# Knobs (environment):
#   TREEBEARD_FUZZ_SEEDS   cross-backend fuzz iterations (default 6;
#                          raise for a deeper soak)
#   TREEBEARD_CI_SKIP_SANITIZE=1   skip the sanitizer smoke stage
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"

echo "=== ci: configure + build ($BUILD_DIR) ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j

echo "=== ci: full test suite ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [ "${TREEBEARD_CI_SKIP_SANITIZE:-0}" != "1" ]; then
    # Smoke, not soak: one seed of the fuzz sweep is enough to drag
    # the whole compile-and-predict path under the sanitizers.
    SMOKE_FILTER='ResidentDataset|SharedSessionConcurrency'
    SMOKE_FILTER="$SMOKE_FILTER"'|ThreadPoolConcurrency|SystemJit'
    export TREEBEARD_FUZZ_SEEDS="${TREEBEARD_FUZZ_SEEDS:-1}"
    for sanitizer in address undefined; do
        echo "=== ci: ${sanitizer}-sanitizer smoke ==="
        TREEBEARD_SANITIZE_TESTS="$SMOKE_FILTER" \
            tools/sanitize_matrix.sh "$sanitizer"
    done
fi

echo "=== ci: OK ==="
