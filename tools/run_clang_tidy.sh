#!/usr/bin/env bash
# Run clang-tidy (checks come from the repo-root .clang-tidy: the
# bugprone-*, concurrency-* and performance-* families) over the
# library and tool sources, using a compile_commands.json exported
# from a dedicated build tree.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [clang-tidy-args...]
#   build-dir defaults to build-tidy. Extra arguments are forwarded to
#   clang-tidy (e.g. --fix, -checks=...).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"
shift || true

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "clang-tidy not found on PATH; skipping" >&2
    exit 0
fi

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

# Library and tool translation units plus the bench harness (its
# hand-rolled JSON writers and timing loops are worth the same
# bugprone-* scrutiny); tests are covered by the compiler warnings
# they already build with.
mapfile -t SOURCES < <({
    find src -name '*.cc'
    find bench -maxdepth 1 -name 'bench_*.cpp'
} | sort)

echo "clang-tidy over ${#SOURCES[@]} files (build dir: $BUILD_DIR)"
clang-tidy -p "$BUILD_DIR" --quiet "$@" "${SOURCES[@]}"

echo "clang-tidy: OK"
