#!/usr/bin/env bash
# Run the layout footprint + latency benchmark and record the packed-
# layout shootout as JSON.
#
# Usage: tools/run_layout_bench.sh [build-dir] [out-json]
#
# Honors TREEBEARD_BENCH_SCALE (0 < s <= 1) to shrink tree counts for
# quick runs on slow machines.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_packed_layout.json}"
bench_bin="$build_dir/bench/bench_layout_memory"

if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi

"$bench_bin" "$out_json"
echo "layout shootout recorded in $out_json"
