#!/usr/bin/env python3
"""Split a combined bench_output.txt into per-figure CSV files.

The benchmark harness (`for b in build/bench/*; do $b; done`) prints
every table/figure's CSV to one stream, each section introduced by a
'#'-prefixed title line. This script cuts that stream back into one
CSV file per section so the results can be loaded directly into
pandas / gnuplot / a spreadsheet.

Usage:
    tools/split_bench_output.py bench_output.txt [out_dir]

Writes out_dir/<section-slug>.csv (default out_dir: bench_results/).
"""

import os
import re
import sys


def slugify(title: str) -> str:
    """Turn a section title line into a filesystem-friendly slug."""
    title = title.lstrip("#").strip()
    title = title.split(":")[0]  # drop explanatory suffixes
    slug = re.sub(r"[^a-zA-Z0-9]+", "_", title).strip("_").lower()
    return slug or "section"


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    source = sys.argv[1]
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "bench_results"
    os.makedirs(out_dir, exist_ok=True)

    sections = []  # (slug, comment_lines, data_lines)
    current = None
    with open(source) as stream:
        for raw in stream:
            line = raw.rstrip("\n")
            if not line:
                continue
            # Shell noise from non-executable entries in build/bench.
            if line.startswith("/bin/bash:"):
                continue
            if line.startswith("#"):
                # New section when the '#' line looks like a title
                # (the harness prints titles first, then sub-comments).
                if current is None or current[2]:
                    current = (slugify(line), [line], [])
                    sections.append(current)
                else:
                    current[1].append(line)
                continue
            # Only keep CSV rows; non-CSV noise (the google-benchmark
            # table, shell messages) is not splittable into columns.
            if "," not in line or line.startswith(("Load Average",
                                                   "Run on",
                                                   "Running ")):
                continue
            if current is None:
                current = ("preamble", ["# preamble"], [])
                sections.append(current)
            current[2].append(line)

    written = []
    used = set()
    for slug, comments, data in sections:
        if not data:
            continue
        name = slug
        index = 2
        while name in used:
            name = f"{slug}_{index}"
            index += 1
        used.add(name)
        path = os.path.join(out_dir, name + ".csv")
        with open(path, "w") as out:
            for comment in comments:
                out.write(comment + "\n")
            for line in data:
                out.write(line + "\n")
        written.append(path)

    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
