#!/usr/bin/env bash
# Sanitizer matrix: configure one build tree per requested sanitizer
# and drive the test selection most likely to catch the corresponding
# bug class — memory errors on the source-JIT/codegen path (temp dirs,
# dlopen lifetimes, the disk cache), the packed tile layout
# (hand-computed record offsets), the verifier mutation corpus (which
# deliberately corrupts buffers), and data races in the parallel
# walkers.
#
# Usage: tools/sanitize_matrix.sh [sanitizer...]
#   sanitizer: address | undefined | thread   (default: all three)
#
# Each sanitizer builds into build-<sanitizer>/. A test filter can be
# overridden via TREEBEARD_SANITIZE_TESTS.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS=("$@")
if [ ${#SANITIZERS[@]} -eq 0 ]; then
    SANITIZERS=(address undefined thread)
fi

DEFAULT_FILTER='SystemJit|CppEmitter|PackedLayout|BackendParity|UnifiedSession'
# Quantized packed records: hand-packed 32-byte records, the affine
# quantizer, and the int16 walkers (PackedQuantizedRecord,
# PackedQuantizedLayout; LirVerifierPackedQuantized rides on the
# LirVerifier pattern below).
DEFAULT_FILTER="$DEFAULT_FILTER"'|PackedQuantized'
# The verifier corpus mutates live buffers; run it under every
# sanitizer to prove the analysis itself never reads out of bounds.
DEFAULT_FILTER="$DEFAULT_FILTER"'|LirVerifier|HirVerifier|MirVerifier|ModelLoadVerifier|VerifyEach'
# The resident-dataset cache (bind-time quantized image, rebind
# invalidation) and the shared-session concurrency suite: thread mode
# proves the pool handoff and the dataset cache race-free, the memory
# modes watch the cached image's bounds.
DEFAULT_FILTER="$DEFAULT_FILTER"'|ResidentDataset|SharedSessionConcurrency|ThreadPoolConcurrency|CrossBackendFuzz'
# The serving layer: registry compile/evict races, the batcher's
# queue/flusher handoff and the multi-tenant exactness suite — thread
# mode proves the request path race-free, the memory modes watch the
# coalesced batch buffers.
DEFAULT_FILTER="$DEFAULT_FILTER"'|ModelRegistry|DynamicBatcher|Server|ServingExactness'
# The lock-order validator suite: the injected-cycle tests prove the
# detector fires, and the registry-evict-while-batcher-flush stress is
# written for thread mode — TSan watches the reap path while the
# runtime validator asserts no runtime.lock.* diagnostic fires.
DEFAULT_FILTER="$DEFAULT_FILTER"'|LockOrder'
# The hot-path suite: selection walks recycled tile graphs and the
# lowered programs index the cold buffers by stored tile ids — the
# memory modes prove both the builder and the interpreted prelude stay
# in bounds across layouts.
DEFAULT_FILTER="$DEFAULT_FILTER"'|HotPath'
# The TCP transport: the fault-injection matrix (torn frames,
# mid-predict disconnects, stop-under-load) exercises the acceptor /
# handler / stop teardown races — thread mode proves the connection
# registry and stop protocol race-free, the memory modes watch the
# frame-assembly buffers; the wire fuzzer rides along with random
# frames.
DEFAULT_FILTER="$DEFAULT_FILTER"'|WireCodec|WireTransport|WireExactness|WireFuzz'
FILTER="${TREEBEARD_SANITIZE_TESTS:-$DEFAULT_FILTER}"

TARGETS=(codegen_test packed_layout_test backend_parity_test
         hot_path_test verifier_test resident_dataset_test
         concurrency_test serving_test lock_order_test
         property_sweep_test transport_test wire_fuzz_test)

for sanitizer in "${SANITIZERS[@]}"; do
    case "$sanitizer" in
    address | undefined | thread) ;;
    *)
        echo "unknown sanitizer: $sanitizer" >&2
        echo "expected address, undefined or thread" >&2
        exit 2
        ;;
    esac
done

for sanitizer in "${SANITIZERS[@]}"; do
    build_dir="build-${sanitizer}"
    echo "=== sanitize: $sanitizer ($build_dir) ==="

    cmake -B "$build_dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTREEBEARD_SANITIZE="$sanitizer"
    cmake --build "$build_dir" -j --target "${TARGETS[@]}"

    # detect_leaks needs ptrace; keep the run usable in containers.
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
    # abort on the first UB report instead of printing and continuing.
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"

    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
        -R "$FILTER"

    echo "=== sanitize: $sanitizer OK ==="
done

echo "sanitize matrix: OK (${SANITIZERS[*]})"
