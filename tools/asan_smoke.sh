#!/usr/bin/env bash
# ASan smoke run: configure a sanitized build tree and drive the tests
# most likely to catch memory bugs — the source-JIT/codegen path (temp
# dirs, dlopen lifetimes, the disk cache) and the packed tile layout
# (hand-computed record offsets), plus the cross-backend parity suite.
#
# Usage: tools/asan_smoke.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREEBEARD_SANITIZE=address
cmake --build "$BUILD_DIR" -j \
    --target codegen_test packed_layout_test backend_parity_test

# detect_leaks needs ptrace; keep the smoke usable in containers.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'SystemJit|CppEmitter|PackedLayout|BackendParity|UnifiedSession'

echo "asan smoke: OK"
