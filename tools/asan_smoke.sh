#!/usr/bin/env bash
# ASan smoke run — kept as a thin wrapper now that the full sanitizer
# matrix lives in tools/sanitize_matrix.sh. Runs the address-sanitized
# leg only, which remains the quickest way to catch memory bugs on the
# source-JIT/codegen path and the packed tile layout.
#
# Usage: tools/asan_smoke.sh
set -euo pipefail

exec "$(dirname "$0")/sanitize_matrix.sh" address
