/**
 * @file
 * Tests for the Schedule type: validation rules, the textual
 * description, and JSON round-trips across the whole knob space.
 */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "hir/schedule.h"

namespace treebeard::hir {
namespace {

TEST(Schedule, DefaultsAreValid)
{
    Schedule schedule;
    EXPECT_NO_THROW(schedule.validate());
}

TEST(Schedule, ValidationRejectsBadKnobs)
{
    Schedule schedule;
    schedule.tileSize = 0;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.tileSize = 9;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.interleaveFactor = 5;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.numThreads = 0;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.alpha = 0.0;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.beta = 1.5;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.padDepthSlack = -1;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.rowChunkRows = -1;
    EXPECT_THROW(schedule.validate(), Error);
    // Chunks above the cap are rejected up front too (4M-row chunks
    // are always typo'd values, not tuning choices).
    schedule = {};
    schedule.rowChunkRows = kMaxRowChunkRows + 1;
    EXPECT_THROW(schedule.validate(), Error);
    schedule = {};
    schedule.rowChunkRows = kMaxRowChunkRows;
    EXPECT_NO_THROW(schedule.validate());
}

TEST(Schedule, ToStringMentionsEveryKnob)
{
    Schedule schedule;
    schedule.loopOrder = LoopOrder::kOneRowAtATime;
    schedule.tileSize = 4;
    schedule.tiling = TilingAlgorithm::kMinMaxDepth;
    schedule.layout = MemoryLayout::kArray;
    schedule.interleaveFactor = 2;
    schedule.numThreads = 8;
    std::string text = schedule.toString();
    EXPECT_NE(text.find("one-row-at-a-time"), std::string::npos);
    EXPECT_NE(text.find("tile=4"), std::string::npos);
    EXPECT_NE(text.find("min-max-depth"), std::string::npos);
    EXPECT_NE(text.find("array"), std::string::npos);
    EXPECT_NE(text.find("interleave=2"), std::string::npos);
    EXPECT_NE(text.find("threads=8"), std::string::npos);
}

TEST(Schedule, JsonRoundTripPreservesEverything)
{
    for (LoopOrder order : {LoopOrder::kOneTreeAtATime,
                            LoopOrder::kOneRowAtATime}) {
        for (TilingAlgorithm tiling :
             {TilingAlgorithm::kBasic,
              TilingAlgorithm::kProbabilityBased,
              TilingAlgorithm::kHybrid,
              TilingAlgorithm::kMinMaxDepth}) {
            for (MemoryLayout layout : {MemoryLayout::kArray,
                                        MemoryLayout::kSparse,
                                        MemoryLayout::kPacked}) {
                Schedule schedule;
                schedule.loopOrder = order;
                schedule.tiling = tiling;
                schedule.layout = layout;
                schedule.tileSize = 2;
                schedule.alpha = 0.1;
                schedule.beta = 0.8;
                schedule.padAndUnrollWalks = false;
                schedule.peelWalks = false;
                schedule.padDepthSlack = 3;
                schedule.interleaveFactor = 4;
                schedule.numThreads = 7;
                schedule.packedPrecision = PackedPrecision::kI16;
                schedule.pipelinePackedWalks = false;
                schedule.rowChunkRows = 128;
                schedule.traversal = TraversalKind::kRowParallel;

                Schedule loaded = scheduleFromJsonString(
                    scheduleToJsonString(schedule));
                EXPECT_EQ(loaded.loopOrder, schedule.loopOrder);
                EXPECT_EQ(loaded.tiling, schedule.tiling);
                EXPECT_EQ(loaded.layout, schedule.layout);
                EXPECT_EQ(loaded.tileSize, schedule.tileSize);
                EXPECT_DOUBLE_EQ(loaded.alpha, schedule.alpha);
                EXPECT_DOUBLE_EQ(loaded.beta, schedule.beta);
                EXPECT_EQ(loaded.padAndUnrollWalks,
                          schedule.padAndUnrollWalks);
                EXPECT_EQ(loaded.peelWalks, schedule.peelWalks);
                EXPECT_EQ(loaded.padDepthSlack,
                          schedule.padDepthSlack);
                EXPECT_EQ(loaded.interleaveFactor,
                          schedule.interleaveFactor);
                EXPECT_EQ(loaded.numThreads, schedule.numThreads);
                EXPECT_EQ(loaded.packedPrecision,
                          schedule.packedPrecision);
                EXPECT_EQ(loaded.pipelinePackedWalks,
                          schedule.pipelinePackedWalks);
                EXPECT_EQ(loaded.rowChunkRows, schedule.rowChunkRows);
                EXPECT_EQ(loaded.traversal, schedule.traversal);
            }
        }
    }
}

TEST(Schedule, NoMissingFlagRoundTripsAndPrints)
{
    Schedule schedule;
    schedule.assumeNoMissingValues = true;
    EXPECT_NE(schedule.toString().find("+no-nan"), std::string::npos);
    Schedule loaded =
        scheduleFromJsonString(scheduleToJsonString(schedule));
    EXPECT_TRUE(loaded.assumeNoMissingValues);
    Schedule defaulted =
        scheduleFromJsonString(scheduleToJsonString(Schedule{}));
    EXPECT_FALSE(defaulted.assumeNoMissingValues);
}

TEST(Schedule, PackedPrecisionDefaultsAndPrints)
{
    Schedule schedule;
    EXPECT_EQ(schedule.packedPrecision, PackedPrecision::kF32);
    EXPECT_TRUE(schedule.pipelinePackedWalks);

    schedule.packedPrecision = PackedPrecision::kI16;
    schedule.pipelinePackedWalks = false;
    EXPECT_NE(schedule.toString().find("+i16"), std::string::npos);
    EXPECT_NE(schedule.toString().find("-pipeline"),
              std::string::npos);

    // Older schedule documents predate the knobs; stripping the keys
    // must load as f32 with pipelining on.
    std::string text = scheduleToJsonString(Schedule{});
    for (const std::string &key :
         {std::string("\"packed_precision\":\"f32\","),
          std::string("\"pipeline_packed\":true,")}) {
        size_t pos = text.find(key);
        if (pos != std::string::npos)
            text.erase(pos, key.size());
    }
    Schedule defaulted = scheduleFromJsonString(text);
    EXPECT_EQ(defaulted.packedPrecision, PackedPrecision::kF32);
    EXPECT_TRUE(defaulted.pipelinePackedWalks);
}

TEST(Schedule, RowChunkDefaultsAndPrints)
{
    Schedule schedule;
    EXPECT_EQ(schedule.rowChunkRows, 0);
    // The auto chunk is the default everywhere and stays silent in
    // toString; an explicit chunk prints.
    EXPECT_EQ(schedule.toString().find("chunk="), std::string::npos);
    schedule.rowChunkRows = 96;
    EXPECT_NE(schedule.toString().find("chunk=96"), std::string::npos);

    // Older schedule documents predate the knob; stripping the key
    // must load as the auto chunk.
    std::string text = scheduleToJsonString(Schedule{});
    std::string key = "\"row_chunk_rows\":0,";
    size_t pos = text.find(key);
    if (pos == std::string::npos) {
        key = ",\"row_chunk_rows\":0";
        pos = text.find(key);
    }
    ASSERT_NE(pos, std::string::npos);
    text.erase(pos, key.size());
    Schedule defaulted = scheduleFromJsonString(text);
    EXPECT_EQ(defaulted.rowChunkRows, 0);
}

TEST(Schedule, TraversalDefaultsRoundTripsAndPrints)
{
    Schedule schedule;
    EXPECT_EQ(schedule.traversal, TraversalKind::kNodeParallel);
    // Node-parallel is the default everywhere and stays silent in
    // toString; row-parallel prints.
    EXPECT_EQ(schedule.toString().find("row-parallel"),
              std::string::npos);
    schedule.traversal = TraversalKind::kRowParallel;
    EXPECT_NE(schedule.toString().find("+row-parallel"),
              std::string::npos);

    Schedule loaded =
        scheduleFromJsonString(scheduleToJsonString(schedule));
    EXPECT_EQ(loaded.traversal, TraversalKind::kRowParallel);

    // Older schedule documents predate the knob; stripping the key
    // must load as node-parallel.
    std::string text = scheduleToJsonString(Schedule{});
    std::string key = "\"traversal\":\"node-parallel\",";
    size_t pos = text.find(key);
    if (pos == std::string::npos) {
        key = ",\"traversal\":\"node-parallel\"";
        pos = text.find(key);
    }
    ASSERT_NE(pos, std::string::npos);
    text.erase(pos, key.size());
    Schedule defaulted = scheduleFromJsonString(text);
    EXPECT_EQ(defaulted.traversal, TraversalKind::kNodeParallel);
}

TEST(Schedule, JsonRejectsInvalidDocuments)
{
    EXPECT_THROW(scheduleFromJsonString("{}"), Error);
    EXPECT_THROW(scheduleFromJsonString("not json"), Error);
    // Valid JSON, invalid knob.
    Schedule schedule;
    std::string text = scheduleToJsonString(schedule);
    std::string bad = text;
    size_t pos = bad.find("\"tile_size\":8");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 13, "\"tile_size\":0");
    EXPECT_THROW(scheduleFromJsonString(bad), Error);
}

} // namespace
} // namespace treebeard::hir
