/**
 * @file
 * End-to-end tests of the `treebeard` CLI binary: each subcommand is
 * invoked as a subprocess and its output/exit status checked. The
 * binary path is injected by CMake as TREEBEARD_CLI_PATH.
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace treebeard {
namespace {

#ifndef TREEBEARD_CLI_PATH
#define TREEBEARD_CLI_PATH "treebeard"
#endif

/** Run a CLI invocation, capturing stdout+stderr and the status. */
int
runCli(const std::string &arguments, std::string &output)
{
    std::string command =
        std::string(TREEBEARD_CLI_PATH) + " " + arguments + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buffer[4096];
    output.clear();
    while (size_t n = fread(buffer, 1, sizeof(buffer), pipe))
        output.append(buffer, n);
    int status = pclose(pipe);
    return WEXITSTATUS(status);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

TEST(Cli, NoArgumentsPrintsUsage)
{
    std::string output;
    EXPECT_EQ(runCli("", output), 2);
    EXPECT_NE(output.find("usage:"), std::string::npos);
    EXPECT_EQ(runCli("unknown-subcommand", output), 2);
}

TEST(Cli, SynthStatsRoundTrip)
{
    std::string model = tempPath("cli_model.json");
    std::string output;
    ASSERT_EQ(runCli("synth airline " + model + " 20", output), 0)
        << output;
    EXPECT_NE(output.find("20 trees"), std::string::npos);

    ASSERT_EQ(runCli("stats " + model, output), 0) << output;
    EXPECT_NE(output.find("features:        13"), std::string::npos);
    EXPECT_NE(output.find("trees:           20"), std::string::npos);
}

TEST(Cli, CompileReportsPipeline)
{
    std::string model = tempPath("cli_model2.json");
    std::string output;
    ASSERT_EQ(runCli("synth higgs " + model + " 10", output), 0);
    ASSERT_EQ(runCli("compile " + model +
                         " --tile 4 --interleave 4 --dump-ir",
                     output),
              0)
        << output;
    EXPECT_NE(output.find("compiled in"), std::string::npos);
    EXPECT_NE(output.find("hir-tiling"), std::string::npos);
    EXPECT_NE(output.find("hir.module"), std::string::npos);
    EXPECT_NE(output.find("mir.func"), std::string::npos);
    EXPECT_NE(output.find("interleave=4"), std::string::npos);
}

TEST(Cli, PredictWritesCsv)
{
    std::string model = tempPath("cli_model3.json");
    std::string input = tempPath("cli_input.csv");
    std::string result = tempPath("cli_out.csv");
    std::string output;
    ASSERT_EQ(runCli("synth airline " + model + " 5", output), 0);

    // 13-feature rows.
    std::string csv;
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 13; ++c)
            csv += (c ? "," : "") + std::to_string(0.1 * (r + c));
        csv += "\n";
    }
    writeStringToFile(input, csv);

    ASSERT_EQ(runCli("predict " + model + " " + input + " " + result,
                     output),
              0)
        << output;
    EXPECT_NE(output.find("wrote 4 predictions"), std::string::npos);
    std::string written = readFileToString(result);
    EXPECT_EQ(std::count(written.begin(), written.end(), '\n'), 4);

    // Feature-count mismatch is a clean error.
    writeStringToFile(input, "1.0,2.0\n");
    EXPECT_EQ(runCli("predict " + model + " " + input, output), 1);
    EXPECT_NE(output.find("features"), std::string::npos);
}

TEST(Cli, BenchPrintsTiming)
{
    std::string model = tempPath("cli_model4.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 5", output), 0);
    ASSERT_EQ(runCli("bench " + model + " 64 --tile 8", output), 0)
        << output;
    EXPECT_NE(output.find("us/row"), std::string::npos);
}

TEST(Cli, BenchResidentTimesDatasetPath)
{
    std::string model = tempPath("cli_model4b.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 5", output), 0);
    ASSERT_EQ(runCli("bench " + model +
                         " 64 --tile 8 --layout packed "
                         "--packed-precision i16 --resident",
                     output),
              0)
        << output;
    EXPECT_NE(output.find("resident dataset"), std::string::npos);
    EXPECT_NE(output.find("us/row"), std::string::npos);

    // The row-chunk knob parses on any scheduled command, and a
    // negative chunk is a clean schedule error.
    ASSERT_EQ(runCli("bench " + model + " 64 --threads 2 --row-chunk 8",
                     output),
              0)
        << output;
    EXPECT_EQ(runCli("compile " + model + " --row-chunk -3", output),
              1);
    EXPECT_NE(output.find("row"), std::string::npos);
}

TEST(Cli, TraversalFlagSelectsRowParallel)
{
    std::string model = tempPath("cli_model4c.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 5", output), 0);
    ASSERT_EQ(runCli("compile " + model + " --tile 1 --traversal row",
                     output),
              0)
        << output;
    // The schedule echo carries the traversal tag.
    EXPECT_NE(output.find("+row-parallel"), std::string::npos);
    ASSERT_EQ(runCli("bench " + model + " 64 --tile 1 --traversal row",
                     output),
              0)
        << output;
    EXPECT_NE(output.find("us/row"), std::string::npos);
    EXPECT_EQ(runCli("compile " + model + " --traversal diagonal",
                     output),
              1);
    EXPECT_NE(output.find("--traversal must be node or row"),
              std::string::npos);

    // Out-of-range chunks fail at flag-parse time with the schedule
    // diagnostic, before any model loading.
    EXPECT_EQ(runCli("compile " + model + " --row-chunk 99999999",
                     output),
              1);
    EXPECT_NE(output.find("row-chunk"), std::string::npos);
}

TEST(Cli, HotPathFlagCompilesAndValidates)
{
    std::string model = tempPath("cli_model4d.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 5", output), 0);
    ASSERT_EQ(runCli("compile " + model + " --tile 1 --hot-path 0.8 "
                                          "--verify-each",
                     output),
              0)
        << output;
    // The schedule echo carries the coverage tag.
    EXPECT_NE(output.find("hot=0.8"), std::string::npos);
    ASSERT_EQ(runCli("bench " + model + " 64 --tile 1 --hot-path 0.8",
                     output),
              0)
        << output;
    EXPECT_NE(output.find("us/row"), std::string::npos);

    // Out-of-range coverage fails at flag-parse time with the
    // schedule diagnostic.
    EXPECT_EQ(runCli("compile " + model + " --hot-path 1.5", output),
              1);
    EXPECT_NE(output.find("hot-path"), std::string::npos);
}

TEST(Cli, TuneDbAppendsJsonLines)
{
    std::string model = tempPath("cli_model4e.json");
    std::string db = tempPath("cli_tune_db.jsonl");
    std::remove(db.c_str());
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 3", output), 0);
    ASSERT_EQ(runCli("tune " + model + " 16 --db " + db, output), 0)
        << output;
    EXPECT_NE(output.find("appended tuning record to"),
              std::string::npos);

    std::string contents = readFileToString(db);
    // One line, parseable, carrying the model features and the swept
    // points (the grid includes the hot-path coverage axis).
    ASSERT_EQ(contents.find('\n'), contents.size() - 1);
    JsonValue record = JsonValue::parse(contents);
    EXPECT_EQ(record.at("model").at("num_trees").asInt(), 3);
    EXPECT_FALSE(record.at("points").asArray().empty());
    EXPECT_TRUE(record.at("best").at("schedule")
                    .contains("hot_path_coverage"));
    std::remove(db.c_str());
}

TEST(Cli, RejectsBadFlagsCleanly)
{
    std::string model = tempPath("cli_model5.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 3", output), 0);
    EXPECT_EQ(runCli("compile " + model + " --tile 99", output), 1);
    EXPECT_NE(output.find("tile size"), std::string::npos);
    EXPECT_EQ(runCli("compile " + model + " --bogus", output), 1);
    EXPECT_EQ(runCli("stats /nonexistent/model.json", output), 1);
}

TEST(Cli, RejectsUnknownBackend)
{
    std::string model = tempPath("cli_model6.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 3", output), 0);
    EXPECT_EQ(runCli("compile " + model + " --backend turbo", output),
              1);
    EXPECT_NE(output.find("--backend must be kernel or jit"),
              std::string::npos);
    EXPECT_EQ(runCli("tune " + model + " 16 --backend turbo", output),
              1);
    EXPECT_NE(output.find("--backend must be kernel, jit or both"),
              std::string::npos);
}

TEST(Cli, JitBackendCompilesAndPredicts)
{
    std::string model = tempPath("cli_model7.json");
    std::string input = tempPath("cli_jit_input.csv");
    std::string output;
    ASSERT_EQ(runCli("synth airline " + model + " 5", output), 0);

    std::string csv;
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 13; ++c)
            csv += (c ? "," : "") + std::to_string(0.2 * (r + c));
        csv += "\n";
    }
    writeStringToFile(input, csv);

    std::string kernel_out, jit_out;
    ASSERT_EQ(runCli("predict " + model + " " + input +
                         " --backend kernel",
                     kernel_out),
              0)
        << kernel_out;
    ASSERT_EQ(runCli("predict " + model + " " + input +
                         " --backend jit",
                     jit_out),
              0)
        << jit_out;
    EXPECT_EQ(kernel_out, jit_out);
}

TEST(Cli, JitCacheDirRoundTripAcrossProcesses)
{
    std::string model = tempPath("cli_model8.json");
    std::string cache = tempPath("cli_jit_cache");
    // The temp dir persists across test runs; start from a cold cache.
    std::filesystem::remove_all(cache);
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 4", output), 0);

    // First process compiles with the system compiler and stores.
    ASSERT_EQ(runCli("compile " + model +
                         " --tile 4 --backend jit --jit-cache-dir " +
                         cache,
                     output),
              0)
        << output;
    EXPECT_NE(output.find("backend: jit"), std::string::npos);
    EXPECT_NE(output.find("stored to disk cache"), std::string::npos);

    // A fresh process with the same model/schedule/flags is served
    // from the disk cache without invoking the system compiler.
    ASSERT_EQ(runCli("compile " + model +
                         " --tile 4 --backend jit --jit-cache-dir " +
                         cache,
                     output),
              0)
        << output;
    EXPECT_NE(output.find("disk cache hit (no compiler invoked)"),
              std::string::npos);
}

TEST(Cli, VerifyAcceptsCleanModel)
{
    std::string model = tempPath("cli_verify_ok.json");
    std::string output;
    ASSERT_EQ(runCli("synth airline " + model + " 5", output), 0);

    EXPECT_EQ(runCli("verify " + model, output), 0) << output;
    EXPECT_NE(output.find("verifies cleanly"), std::string::npos);

    // Layout/tile flags select the pipeline being verified.
    EXPECT_EQ(runCli("verify " + model + " --tile 3 --layout packed",
                     output),
              0)
        << output;
}

TEST(Cli, VerifyReportsModelDefectsWithCodes)
{
    std::string model = tempPath("cli_verify_bad.json");
    writeStringToFile(
        model,
        "{\"format\":\"treebeard\",\"version\":1,\"num_features\":3,"
        "\"objective\":\"regression\",\"base_score\":0,"
        "\"num_classes\":1,\"trees\":[{\"root\":0,"
        "\"threshold\":[0.5,1.0,2.0],\"feature\":[-4,-1,-1],"
        "\"left\":[1,-1,-1],\"right\":[2,-1,-1],"
        "\"hit_count\":[1,1,1]}]}");
    std::string output;
    EXPECT_EQ(runCli("verify " + model, output), 1) << output;
    EXPECT_NE(output.find("model.feature.negative"),
              std::string::npos)
        << output;
    EXPECT_NE(output.find("model-load"), std::string::npos) << output;
}

TEST(Cli, VerifyEmitsJsonReport)
{
    std::string model = tempPath("cli_verify_json.json");
    std::string output;
    ASSERT_EQ(runCli("synth year " + model + " 3", output), 0);

    EXPECT_EQ(runCli("verify " + model + " --json", output), 0)
        << output;
    JsonValue report = JsonValue::parse(output);
    EXPECT_EQ(report.at("errors").asInt(), 0);
    EXPECT_EQ(report.at("diagnostics").asArray().size(), 0u);
}

TEST(Cli, VerifyChecksScheduleJsonFile)
{
    std::string model = tempPath("cli_verify_m.json");
    std::string schedule = tempPath("cli_verify_s.json");
    std::string output;
    ASSERT_EQ(runCli("synth airline " + model + " 3", output), 0);
    writeStringToFile(
        schedule,
        "{\"loop_order\":\"one-tree-at-a-time\",\"tile_size\":42,"
        "\"tiling\":\"hybrid\",\"alpha\":0.075,\"beta\":0.9,"
        "\"pad_and_unroll\":true,\"peel\":true,"
        "\"pad_depth_slack\":2,\"interleave\":1,"
        "\"layout\":\"sparse\",\"threads\":1}");
    EXPECT_EQ(runCli("verify " + model + " " + schedule, output), 1)
        << output;
    EXPECT_NE(output.find("schedule.tile-size.range"),
              std::string::npos)
        << output;
}

TEST(Cli, ServeRunsClosedLoopDriver)
{
    std::string model = tempPath("cli_serve.json");
    std::string output;
    ASSERT_EQ(runCli("synth abalone " + model + " 10", output), 0);
    ASSERT_EQ(runCli("serve " + model +
                         " --clients 4 --requests 10 --max-delay-us "
                         "200 --tile 1 --tiling basic",
                     output),
              0)
        << output;
    // Routing handle, percentile table, and coalescing evidence.
    EXPECT_NE(output.find("as tb-"), std::string::npos) << output;
    EXPECT_NE(output.find("dynamic batching"), std::string::npos);
    EXPECT_NE(output.find("p99"), std::string::npos);
    EXPECT_NE(output.find("rows/sec"), std::string::npos);
    EXPECT_NE(output.find("coalesced"), std::string::npos);
}

TEST(Cli, ServeNoBatchingRunsUnbatchedBaseline)
{
    std::string model = tempPath("cli_serve_unbatched.json");
    std::string output;
    ASSERT_EQ(runCli("synth abalone " + model + " 10", output), 0);
    ASSERT_EQ(runCli("serve " + model +
                         " --clients 2 --requests 10 --no-batching",
                     output),
              0)
        << output;
    EXPECT_NE(output.find("unbatched dispatch"), std::string::npos)
        << output;
    EXPECT_NE(output.find("0 size flushes, 0 deadline flushes"),
              std::string::npos)
        << output;
}

TEST(Cli, CompileAcceptsVerifyEachFlag)
{
    std::string model = tempPath("cli_verify_each.json");
    std::string output;
    ASSERT_EQ(runCli("synth airline " + model + " 5", output), 0);
    ASSERT_EQ(runCli("compile " + model + " --tile 4 --verify-each",
                     output),
              0)
        << output;
    EXPECT_NE(output.find("compiled in"), std::string::npos);
}

} // namespace
} // namespace treebeard
