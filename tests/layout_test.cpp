/**
 * @file
 * Tests for the LIR memory layouts (Section V-B): structural
 * invariants of the array and sparse representations, hop insertion,
 * dummy-slot don't-cares, and the footprint relationships the paper
 * reports (array bloat vs sparse compactness vs the scalar baseline).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "lir/layout_builder.h"
#include "test_utils.h"

namespace treebeard::lir {
namespace {

hir::HirModule
makeTiledModule(hir::Schedule schedule, int64_t trees = 10,
                uint64_t seed = 21)
{
    testing::RandomForestSpec spec;
    spec.numTrees = trees;
    spec.seed = seed;
    spec.splitProbability = 0.7;
    hir::HirModule module(testing::makeRandomForest(spec), schedule);
    module.runAllHirPasses();
    return module;
}

TEST(ArrayLayout, TreeBlocksAreImplicitArrays)
{
    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = hir::MemoryLayout::kArray;
    hir::HirModule module = makeTiledModule(schedule);
    ForestBuffers fb = buildArrayLayout(module);

    EXPECT_EQ(fb.layout, LayoutKind::kArray);
    EXPECT_EQ(fb.numTrees, module.forest().numTrees());
    ASSERT_EQ(fb.treeFirstTile.size(),
              static_cast<size_t>(fb.numTrees));

    int64_t arity = fb.tileSize + 1;
    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        int64_t size = fb.treeTileEnd[static_cast<size_t>(pos)] -
                       fb.treeFirstTile[static_cast<size_t>(pos)];
        // Size must be a full (arity)-ary array: sum of arity^l.
        int64_t expected = 0;
        int64_t level = 1;
        while (expected < size) {
            expected += level;
            level *= arity;
        }
        EXPECT_EQ(expected, size) << "tree " << pos;
        // Root tile is not a leaf marker (multi-node trees).
        EXPECT_NE(fb.shapeIds[static_cast<size_t>(
                      fb.treeFirstTile[static_cast<size_t>(pos)])],
                  kUnusedTileMarker);
    }
    // Array layout uses no sparse buffers.
    EXPECT_TRUE(fb.childBase.empty());
    EXPECT_TRUE(fb.leaves.empty());
}

TEST(SparseLayout, ChildrenAreContiguousAndTyped)
{
    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = hir::MemoryLayout::kSparse;
    hir::HirModule module = makeTiledModule(schedule);
    ForestBuffers fb = buildSparseLayout(module);

    EXPECT_EQ(fb.layout, LayoutKind::kSparse);
    ASSERT_EQ(fb.childBase.size(), static_cast<size_t>(fb.numTiles()));
    EXPECT_FALSE(fb.leaves.empty());

    for (int64_t tile = 0; tile < fb.numTiles(); ++tile) {
        int32_t base = fb.childBase[static_cast<size_t>(tile)];
        int16_t shape = fb.shapeIds[static_cast<size_t>(tile)];
        ASSERT_GE(shape, 0) << "sparse layout stores no leaf tiles";
        // Dummy (padding/hop/safety) tiles only materialize child 0.
        bool is_dummy = std::isinf(
            fb.thresholds[static_cast<size_t>(tile) * fb.tileSize]);
        int32_t arity =
            is_dummy ? 1 : fb.shapes->shape(shape).numChildren();
        if (base >= 0) {
            // All children must lie within the tile storage.
            EXPECT_LT(base + arity - 1, fb.numTiles());
        } else {
            int64_t leaf_base = -(static_cast<int64_t>(base) + 1);
            EXPECT_LE(leaf_base + arity,
                      static_cast<int64_t>(fb.leaves.size()));
        }
    }
}

TEST(SparseLayout, DummySlotsUseInfinityThresholds)
{
    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.layout = hir::MemoryLayout::kSparse;
    hir::HirModule module = makeTiledModule(schedule, 6, 22);
    ForestBuffers fb = buildSparseLayout(module);

    for (int64_t tile = 0; tile < fb.numTiles(); ++tile) {
        int16_t shape = fb.shapeIds[static_cast<size_t>(tile)];
        int32_t nodes = fb.shapes->shape(shape).numNodes();
        for (int32_t s = nodes; s < fb.tileSize; ++s) {
            EXPECT_TRUE(std::isinf(
                fb.thresholds[static_cast<size_t>(tile) * fb.tileSize +
                              s]));
            EXPECT_EQ(fb.featureIndices[static_cast<size_t>(tile) *
                                            fb.tileSize +
                                        s],
                      0);
        }
    }
}

TEST(SparseLayout, SingleLeafTreeGetsHop)
{
    model::Forest forest(1);
    model::DecisionTree tree;
    tree.setRoot(tree.addLeaf(0.375f));
    forest.addTree(std::move(tree));
    // A second real tree so the forest validates meaningfully.
    model::DecisionTree tree2;
    tree2.setRoot(tree2.addInternal(0, 0.5f, tree2.addLeaf(1.0f),
                                    tree2.addLeaf(2.0f)));
    forest.addTree(std::move(tree2));

    hir::Schedule schedule;
    schedule.tileSize = 2;
    schedule.layout = hir::MemoryLayout::kSparse;
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    ForestBuffers fb = buildSparseLayout(module);

    // Every tree block is non-empty (the leaf-only tree got a hop).
    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        EXPECT_GT(fb.treeTileEnd[static_cast<size_t>(pos)],
                  fb.treeFirstTile[static_cast<size_t>(pos)]);
    }
}

TEST(LayoutFootprints, PaperRelationshipsHold)
{
    // Build a moderately deep forest and compare footprints: the
    // array layout must bloat severely at tile size 8, while the
    // sparse layout stays within a small factor of the scalar
    // representation (Section V-B reports 16% overhead on their
    // benchmark suite; we only check the ordering and rough scale).
    testing::RandomForestSpec spec;
    spec.numTrees = 40;
    spec.maxDepth = 9;
    spec.splitProbability = 0.8;
    spec.seed = 23;
    model::Forest forest = testing::makeRandomForest(spec);

    hir::Schedule schedule;
    schedule.tileSize = 8;

    schedule.layout = hir::MemoryLayout::kArray;
    hir::HirModule array_module(forest, schedule);
    array_module.runAllHirPasses();
    ForestBuffers array_fb = buildArrayLayout(array_module);

    schedule.layout = hir::MemoryLayout::kSparse;
    hir::HirModule sparse_module(forest, schedule);
    sparse_module.runAllHirPasses();
    ForestBuffers sparse_fb = buildSparseLayout(sparse_module);

    // The random test trees are bushier (leafier fringes) than the
    // paper's XGBoost-trained models, so the sparse layout's constant
    // is looser here; the paper-scale relationships are regenerated
    // against the real benchmark suite by bench_layout_memory.
    int64_t scalar = scalarRepresentationBytes(forest);
    EXPECT_GT(array_fb.footprintBytes(), 2 * scalar);
    EXPECT_GT(array_fb.footprintBytes(),
              3 * sparse_fb.footprintBytes());
    EXPECT_LT(sparse_fb.footprintBytes(), 4 * scalar);
}

TEST(LayoutBuilder, RequiresHirPasses)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 2;
    hir::HirModule module(testing::makeRandomForest(spec), {});
    EXPECT_THROW(buildSparseLayout(module), Error);
    EXPECT_THROW(buildArrayLayout(module), Error);
}

TEST(LayoutBuilder, WalkInfoMirrorsGroups)
{
    hir::Schedule schedule;
    schedule.tileSize = 4;
    hir::HirModule module = makeTiledModule(schedule, 15, 24);
    ForestBuffers fb = buildSparseLayout(module);
    ASSERT_EQ(fb.walkInfo.size(), static_cast<size_t>(fb.numTrees));
    for (const hir::TreeGroup &group : module.groups()) {
        for (int64_t pos = group.beginPos; pos < group.endPos; ++pos) {
            EXPECT_EQ(fb.walkInfo[static_cast<size_t>(pos)].unrolled,
                      group.unrolledWalk);
            EXPECT_EQ(
                fb.walkInfo[static_cast<size_t>(pos)].unrolledDepth,
                group.walkDepth);
        }
    }
}

TEST(ForestBuffersSummary, MentionsLayoutAndSizes)
{
    hir::Schedule schedule;
    hir::HirModule module = makeTiledModule(schedule, 3, 25);
    ForestBuffers fb = buildForestBuffers(module);
    std::string summary = fb.summary();
    EXPECT_NE(summary.find("sparse"), std::string::npos);
    EXPECT_NE(summary.find("tiles="), std::string::npos);
    EXPECT_GT(fb.lutBytes(), 0);
}

} // namespace
} // namespace treebeard::lir
