/**
 * @file
 * Tests for the QuickScorer traversal strategy: agreement with the
 * reference walk across model shapes (including trees with more than
 * 64 leaves, exercising multi-word masks), objectives, threading, and
 * the boundary semantics of the node predicate.
 */
#include <gtest/gtest.h>

#include "baselines/quickscorer.h"
#include "test_utils.h"

namespace treebeard::baselines {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;
using testing::referencePredictions;

TEST(QuickScorer, MatchesReferenceOnSmallTrees)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 30;
    spec.maxDepth = 5; // <= 32 leaves: single-word masks
    spec.seed = 1001;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 150,
                                             1002);
    std::vector<float> expected = referencePredictions(forest, rows);

    QuickScorer scorer(forest);
    std::vector<float> actual(150);
    scorer.predict(rows.data(), 150, actual.data());
    expectPredictionsExact(expected, actual);
}

TEST(QuickScorer, MatchesReferenceOnDeepTrees)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 10;
    spec.maxDepth = 9; // up to 512 leaves: multi-word masks
    spec.splitProbability = 0.85;
    spec.seed = 1003;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);

    // Verify the multi-word path actually runs.
    int64_t max_leaves = 0;
    for (const model::DecisionTree &tree : forest.trees())
        max_leaves = std::max(max_leaves, tree.numLeaves());
    ASSERT_GT(max_leaves, 64);

    std::vector<float> rows = makeRandomRows(spec.numFeatures, 200,
                                             1004);
    std::vector<float> expected = referencePredictions(forest, rows);
    QuickScorer scorer(forest);
    std::vector<float> actual(200);
    scorer.predict(rows.data(), 200, actual.data());
    expectPredictionsExact(expected, actual);
}

TEST(QuickScorer, BoundaryValuesGoRight)
{
    // The node predicate is x < t: x == t must take the right branch,
    // i.e. the condition is false and the left subtree is masked out.
    model::Forest forest(1);
    model::DecisionTree tree;
    model::NodeIndex left = tree.addLeaf(1.0f);
    model::NodeIndex right = tree.addLeaf(2.0f);
    tree.setRoot(tree.addInternal(0, 0.5f, left, right));
    forest.addTree(std::move(tree));

    QuickScorer scorer(forest);
    float rows[3] = {0.4999f, 0.5f, 0.5001f};
    float out[3];
    scorer.predict(rows, 3, out);
    EXPECT_EQ(out[0], 1.0f);
    EXPECT_EQ(out[1], 2.0f);
    EXPECT_EQ(out[2], 2.0f);
}

TEST(QuickScorer, LogisticObjective)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.seed = 1005;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kBinaryLogistic);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 60,
                                             1006);
    std::vector<float> expected = referencePredictions(forest, rows);
    QuickScorer scorer(forest);
    std::vector<float> actual(60);
    scorer.predict(rows.data(), 60, actual.data());
    expectPredictionsExact(expected, actual);
}

TEST(QuickScorer, ParallelMatchesSerial)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 20;
    spec.seed = 1007;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 123,
                                             1008);
    std::vector<float> expected = referencePredictions(forest, rows);
    QuickScorer scorer(forest, /*num_threads=*/4);
    std::vector<float> actual(123);
    scorer.predict(rows.data(), 123, actual.data());
    expectPredictionsExact(expected, actual);
}

TEST(QuickScorer, FootprintGrowsWithModel)
{
    testing::RandomForestSpec small_spec;
    small_spec.numTrees = 5;
    small_spec.seed = 1009;
    testing::RandomForestSpec large_spec = small_spec;
    large_spec.numTrees = 50;

    QuickScorer small(makeRandomForest(small_spec));
    QuickScorer large(makeRandomForest(large_spec));
    EXPECT_GT(large.footprintBytes(), small.footprintBytes());
    EXPECT_GT(large.bitvectorWords(), small.bitvectorWords());
}

} // namespace
} // namespace treebeard::baselines
