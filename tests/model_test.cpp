/**
 * @file
 * Tests for the model layer: tree construction and traversal,
 * structural validation and failure injection, forest prediction,
 * statistics, and both serialization formats.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "model/model_stats.h"
#include "model/serialization.h"
#include "test_utils.h"

namespace treebeard::model {
namespace {

/** A small fixed tree: root splits f0 at 0.5; left leaf 1, right
 *  subtree splits f1 at 0.25 into leaves 2 and 3. */
DecisionTree
makeFixedTree()
{
    DecisionTree tree;
    NodeIndex l1 = tree.addLeaf(1.0f, 10);
    NodeIndex l2 = tree.addLeaf(2.0f, 20);
    NodeIndex l3 = tree.addLeaf(3.0f, 30);
    NodeIndex inner = tree.addInternal(1, 0.25f, l2, l3);
    tree.setRoot(tree.addInternal(0, 0.5f, l1, inner));
    return tree;
}

TEST(DecisionTree, PredictFollowsPredicates)
{
    DecisionTree tree = makeFixedTree();
    float row_a[2] = {0.2f, 0.9f}; // left -> leaf 1
    float row_b[2] = {0.9f, 0.1f}; // right, f1 < 0.25 -> leaf 2
    float row_c[2] = {0.9f, 0.9f}; // right, f1 >= 0.25 -> leaf 3
    EXPECT_EQ(tree.predict(row_a), 1.0f);
    EXPECT_EQ(tree.predict(row_b), 2.0f);
    EXPECT_EQ(tree.predict(row_c), 3.0f);
}

TEST(DecisionTree, BoundaryGoesRight)
{
    // The node predicate is strict: x < v, so x == v goes right.
    DecisionTree tree = makeFixedTree();
    float row[2] = {0.5f, 0.25f};
    EXPECT_EQ(tree.predict(row), 3.0f);
}

TEST(DecisionTree, StructureQueries)
{
    DecisionTree tree = makeFixedTree();
    EXPECT_EQ(tree.numNodes(), 5);
    EXPECT_EQ(tree.numLeaves(), 3);
    EXPECT_EQ(tree.maxDepth(), 2);
    EXPECT_EQ(tree.leafIndices().size(), 3u);
    std::vector<NodeIndex> parents = tree.parentArray();
    EXPECT_EQ(parents[static_cast<size_t>(tree.root())], kInvalidNode);
    EXPECT_EQ(tree.depth(tree.root()), 0);
    EXPECT_EQ(tree.depth(0), 1); // first leaf hangs off the root
}

TEST(DecisionTree, LeafProbabilitiesFromHitCounts)
{
    DecisionTree tree = makeFixedTree();
    std::vector<double> probabilities = tree.leafProbabilities();
    ASSERT_EQ(probabilities.size(), 3u);
    EXPECT_NEAR(probabilities[0], 10.0 / 60.0, 1e-12);
    EXPECT_NEAR(probabilities[1], 20.0 / 60.0, 1e-12);
    EXPECT_NEAR(probabilities[2], 30.0 / 60.0, 1e-12);
}

TEST(DecisionTree, UniformFallbackWithoutHitCounts)
{
    DecisionTree tree;
    NodeIndex l1 = tree.addLeaf(1.0f);
    NodeIndex l2 = tree.addLeaf(2.0f);
    tree.setRoot(tree.addInternal(0, 0.5f, l1, l2));
    std::vector<double> probabilities = tree.leafProbabilities();
    EXPECT_DOUBLE_EQ(probabilities[0], 0.5);
    EXPECT_DOUBLE_EQ(probabilities[1], 0.5);
}

TEST(DecisionTree, AccumulateInternalHitCounts)
{
    DecisionTree tree = makeFixedTree();
    tree.accumulateInternalHitCounts();
    EXPECT_DOUBLE_EQ(tree.node(tree.root()).hitCount, 60.0);
    EXPECT_DOUBLE_EQ(tree.node(3).hitCount, 50.0); // inner node
}

TEST(DecisionTreeValidate, DetectsStructuralCorruption)
{
    // Feature index out of range.
    {
        DecisionTree tree = makeFixedTree();
        EXPECT_THROW(tree.validate(1), Error);
        EXPECT_NO_THROW(tree.validate(2));
    }
    // Unreachable node.
    {
        DecisionTree tree = makeFixedTree();
        tree.addLeaf(9.0f);
        EXPECT_THROW(tree.validate(2), Error);
    }
    // Node with two parents.
    {
        DecisionTree tree;
        NodeIndex shared = tree.addLeaf(1.0f);
        NodeIndex l2 = tree.addLeaf(2.0f);
        NodeIndex a = tree.addInternal(0, 0.3f, shared, l2);
        NodeIndex root = tree.addInternal(0, 0.5f, a, shared);
        tree.setRoot(root);
        EXPECT_THROW(tree.validate(2), Error);
    }
    // Self-loop.
    {
        DecisionTree tree;
        NodeIndex leaf = tree.addLeaf(1.0f);
        NodeIndex bad = tree.addInternal(0, 0.5f, leaf, leaf);
        tree.setRoot(bad);
        // leaf has two parents via both child slots of the same node.
        EXPECT_THROW(tree.validate(2), Error);
    }
    // Empty tree / no root.
    {
        DecisionTree tree;
        EXPECT_THROW(tree.validate(2), Error);
        EXPECT_THROW(tree.setRoot(0), Error);
    }
}

TEST(Forest, PredictSumsTreesAndAppliesObjective)
{
    Forest forest(2, Objective::kRegression, 10.0f);
    forest.addTree(makeFixedTree());
    forest.addTree(makeFixedTree());
    float row[2] = {0.2f, 0.9f};
    EXPECT_EQ(forest.predict(row), 12.0f);
    EXPECT_EQ(forest.predictMargin(row), 12.0f);

    forest.setObjective(Objective::kBinaryLogistic);
    float expected = 1.0f / (1.0f + std::exp(-12.0f));
    EXPECT_FLOAT_EQ(forest.predict(row), expected);
}

TEST(Forest, AggregateStats)
{
    Forest forest(2);
    forest.addTree(makeFixedTree());
    forest.addTree(makeFixedTree());
    EXPECT_EQ(forest.totalNodes(), 10);
    EXPECT_EQ(forest.totalLeaves(), 6);
    EXPECT_EQ(forest.maxDepth(), 2);
    EXPECT_THROW(Forest(0).validate(), Error);
}

TEST(ModelStats, CoverageAndLeafBias)
{
    DecisionTree tree = makeFixedTree();
    // Probabilities: 1/6, 2/6, 3/6 sorted desc: .5, .333, .167.
    EXPECT_EQ(minLeavesForCoverage(tree, 0.5), 1);
    EXPECT_EQ(minLeavesForCoverage(tree, 0.8), 2);
    EXPECT_EQ(minLeavesForCoverage(tree, 0.99), 3);
    EXPECT_FALSE(isLeafBiased(tree, 0.075, 0.9));
    EXPECT_TRUE(isLeafBiased(tree, 0.99, 0.5));
}

TEST(ModelStats, CoverageCurveIsMonotone)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 30;
    model::Forest forest = testing::makeRandomForest(spec);
    std::vector<CoveragePoint> curve = leafCoverageCurve(forest, 0.9);
    ASSERT_EQ(curve.size(), 30u);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].leafFraction, curve[i - 1].leafFraction);
        EXPECT_GT(curve[i].treeFraction, curve[i - 1].treeFraction);
    }
    EXPECT_NEAR(curve.back().treeFraction, 1.0, 1e-12);
}

TEST(ModelStats, ForestStatsShape)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 10;
    model::Forest forest = testing::makeRandomForest(spec);
    ForestStats stats = computeForestStats(forest);
    EXPECT_EQ(stats.numTrees, 10);
    EXPECT_EQ(stats.numFeatures, spec.numFeatures);
    EXPECT_GT(stats.totalNodes, stats.totalLeaves);
    EXPECT_GT(stats.averageLeafDepth, 0.0);
    EXPECT_LE(stats.leafBiasedTrees, stats.numTrees);
}

TEST(Serialization, NativeRoundTripPreservesEverything)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 6;
    spec.seed = 2024;
    model::Forest forest = testing::makeRandomForest(spec);
    forest.setObjective(Objective::kBinaryLogistic);
    forest.setBaseScore(0.125f);

    Forest loaded = forestFromJson(forestToJson(forest));
    EXPECT_EQ(loaded.numTrees(), forest.numTrees());
    EXPECT_EQ(loaded.numFeatures(), forest.numFeatures());
    EXPECT_EQ(loaded.baseScore(), forest.baseScore());
    EXPECT_EQ(loaded.objective(), forest.objective());

    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 100, 1);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);
    std::vector<float> actual =
        testing::referencePredictions(loaded, rows);
    testing::expectPredictionsExact(expected, actual);

    // Hit counts survive (needed for probability tiling).
    EXPECT_EQ(loaded.tree(0).node(0).hitCount,
              forest.tree(0).node(0).hitCount);
}

TEST(Serialization, FileRoundTrip)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 3;
    model::Forest forest = testing::makeRandomForest(spec);
    std::string path = ::testing::TempDir() + "/treebeard_model.json";
    saveForest(forest, path);
    Forest loaded = loadForest(path);
    EXPECT_EQ(loaded.numTrees(), 3);
}

TEST(Serialization, RejectsWrongFormat)
{
    EXPECT_THROW(forestFromJson(JsonValue::parse("{}")), Error);
    EXPECT_THROW(
        forestFromJson(JsonValue::parse(R"({"format":"other"})")),
        Error);
    EXPECT_THROW(forestFromJson(JsonValue::parse(
                     R"({"format":"treebeard","version":99})")),
                 Error);
}

TEST(XgboostImport, ParsesDumpFormat)
{
    // A minimal two-tree XGBoost JSON dump.
    std::string text = R"({
      "learner": {
        "learner_model_param": {"num_feature": "3", "base_score": "0.5"},
        "objective": {"name": "reg:squarederror"},
        "gradient_booster": {
          "model": {
            "trees": [
              {
                "split_indices": [0, 0, 0],
                "split_conditions": [0.7, 1.5, 2.5],
                "left_children": [1, -1, -1],
                "right_children": [2, -1, -1],
                "base_weights": [0.0, 1.5, 2.5],
                "sum_hessian": [30.0, 10.0, 20.0]
              },
              {
                "split_indices": [2, 0, 0],
                "split_conditions": [0.25, -1.0, 1.0],
                "left_children": [1, -1, -1],
                "right_children": [2, -1, -1],
                "base_weights": [0.0, -1.0, 1.0]
              }
            ]
          }
        }
      }
    })";
    Forest forest = importXgboostJson(JsonValue::parse(text));
    EXPECT_EQ(forest.numTrees(), 2);
    EXPECT_EQ(forest.numFeatures(), 3);
    EXPECT_FLOAT_EQ(forest.baseScore(), 0.5f);

    float row[3] = {0.1f, 0.0f, 0.9f};
    // Tree 0: f0 < 0.7 -> 1.5; tree 1: f2 >= 0.25 -> 1.0; + 0.5.
    EXPECT_FLOAT_EQ(forest.predict(row), 0.5f + 1.5f + 1.0f);
    // Hessians recorded as hit counts.
    EXPECT_DOUBLE_EQ(forest.tree(0).node(1).hitCount, 10.0);
}

TEST(XgboostImport, LogisticObjective)
{
    std::string text = R"({
      "learner": {
        "learner_model_param": {"num_feature": "1", "base_score": "0"},
        "objective": {"name": "binary:logistic"},
        "gradient_booster": {
          "model": {
            "trees": [
              {
                "split_indices": [0, 0, 0],
                "split_conditions": [0.5, 0, 0],
                "left_children": [1, -1, -1],
                "right_children": [2, -1, -1],
                "base_weights": [0.0, -2.0, 2.0]
              }
            ]
          }
        }
      }
    })";
    Forest forest = importXgboostJson(JsonValue::parse(text));
    EXPECT_EQ(forest.objective(), Objective::kBinaryLogistic);
    float row = 0.9f;
    EXPECT_FLOAT_EQ(forest.predict(&row),
                    1.0f / (1.0f + std::exp(-2.0f)));
}

} // namespace
} // namespace treebeard::model
