/**
 * @file
 * Tests for the HIR module passes (tiling dispatch, tree reordering,
 * grouping) and the MIR (lowering structure per loop order, walk
 * interleaving, peeling/unrolling annotation, parallelization).
 */
#include <gtest/gtest.h>

#include "mir/lowering.h"
#include "mir/passes.h"
#include "model/model_stats.h"
#include "test_utils.h"

namespace treebeard {
namespace {

using testing::makeRandomForest;

hir::HirModule
makeModule(hir::Schedule schedule, int64_t num_trees = 12,
           uint64_t seed = 7)
{
    testing::RandomForestSpec spec;
    spec.numTrees = num_trees;
    spec.seed = seed;
    spec.splitProbability = 0.65;
    return hir::HirModule(makeRandomForest(spec), schedule);
}

TEST(HirModule, TilingPassAppliesHybridGatePerTree)
{
    hir::Schedule schedule;
    schedule.tiling = hir::TilingAlgorithm::kHybrid;
    hir::HirModule module = makeModule(schedule);
    module.runTilingPass();
    ASSERT_TRUE(module.isTiled());
    for (int64_t t = 0; t < module.forest().numTrees(); ++t) {
        hir::TilingAlgorithm applied = module.appliedTiling(t);
        bool biased = model::isLeafBiased(module.forest().tree(t),
                                          schedule.alpha, schedule.beta);
        EXPECT_EQ(applied,
                  biased ? hir::TilingAlgorithm::kProbabilityBased
                         : hir::TilingAlgorithm::kBasic);
    }
    module.validateTiling();
}

TEST(HirModule, ReorderSortsUnrolledGroupsByDepth)
{
    hir::Schedule schedule;
    schedule.padAndUnrollWalks = true;
    schedule.tileSize = 4;
    hir::HirModule module = makeModule(schedule, 30, 9);
    module.runAllHirPasses();
    module.validateTiling();

    const std::vector<hir::TreeGroup> &groups = module.groups();
    ASSERT_FALSE(groups.empty());

    // Groups must partition all positions contiguously.
    int64_t cursor = 0;
    for (const hir::TreeGroup &group : groups) {
        EXPECT_EQ(group.beginPos, cursor);
        cursor = group.endPos;
    }
    EXPECT_EQ(cursor, module.forest().numTrees());

    // Unrolled groups come first, with strictly increasing depth, and
    // every member is perfectly balanced at the group depth.
    int32_t last_depth = -1;
    bool seen_generic = false;
    for (const hir::TreeGroup &group : groups) {
        if (group.unrolledWalk) {
            EXPECT_FALSE(seen_generic)
                << "unrolled group after a generic group";
            EXPECT_GT(group.walkDepth, last_depth);
            last_depth = group.walkDepth;
            for (int64_t pos = group.beginPos; pos < group.endPos;
                 ++pos) {
                const hir::TiledTree &tiled = module.tiledTree(
                    module.treeOrder()[static_cast<size_t>(pos)]);
                EXPECT_TRUE(tiled.isPerfectlyBalanced());
                EXPECT_EQ(tiled.maxLeafDepth(), group.walkDepth);
            }
        } else {
            seen_generic = true;
        }
    }
}

TEST(HirModule, NoReorderWhenUnrollDisabled)
{
    hir::Schedule schedule;
    schedule.padAndUnrollWalks = false;
    hir::HirModule module = makeModule(schedule, 20, 10);
    module.runAllHirPasses();
    for (size_t i = 0; i < module.treeOrder().size(); ++i)
        EXPECT_EQ(module.treeOrder()[i], static_cast<int64_t>(i));
    for (const hir::TreeGroup &group : module.groups())
        EXPECT_FALSE(group.unrolledWalk);
}

TEST(HirModule, PeelDepthComesFromMinLeafDepth)
{
    hir::Schedule schedule;
    schedule.padAndUnrollWalks = false;
    schedule.peelWalks = true;
    hir::HirModule module = makeModule(schedule, 10, 11);
    module.runAllHirPasses();
    for (const hir::TreeGroup &group : module.groups()) {
        for (int64_t pos = group.beginPos; pos < group.endPos; ++pos) {
            const hir::TiledTree &tiled = module.tiledTree(
                module.treeOrder()[static_cast<size_t>(pos)]);
            EXPECT_LE(group.peelDepth, tiled.minLeafDepth());
        }
    }
}

TEST(HirModule, DumpMentionsStructure)
{
    hir::Schedule schedule;
    hir::HirModule module = makeModule(schedule, 4, 12);
    module.runAllHirPasses();
    std::string dump = module.dump();
    EXPECT_NE(dump.find("hir.module"), std::string::npos);
    EXPECT_NE(dump.find("group 0"), std::string::npos);
    EXPECT_NE(dump.find("tree 0"), std::string::npos);
}

TEST(MirLowering, OneTreeOrderStructure)
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    hir::HirModule module = makeModule(schedule, 10, 13);
    module.runAllHirPasses();
    mir::MirFunction function = mir::lowerToMir(module);
    function.schedule = module.schedule();

    // Batch-wide init, then per-group tree loops, then output.
    ASSERT_GE(function.body.children.size(), 3u);
    EXPECT_EQ(function.body.children.front().kind,
              mir::OpKind::kInitAccumulator);
    EXPECT_EQ(function.body.children.back().kind,
              mir::OpKind::kWriteOutput);
    // Tree loops wrap row loops which wrap walks (snippet E).
    const mir::MirOp &tree_loop = function.body.children[1];
    EXPECT_EQ(tree_loop.kind, mir::OpKind::kFor);
    EXPECT_EQ(tree_loop.inductionVar, "t");
    ASSERT_EQ(tree_loop.children.size(), 1u);
    EXPECT_EQ(tree_loop.children[0].inductionVar, "r");
    EXPECT_EQ(tree_loop.children[0].children[0].kind,
              mir::OpKind::kWalkGroup);

    EXPECT_EQ(function.walkOps().size(), module.groups().size());
}

TEST(MirLowering, OneRowOrderStructure)
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneRowAtATime;
    hir::HirModule module = makeModule(schedule, 10, 14);
    module.runAllHirPasses();
    mir::MirFunction function = mir::lowerToMir(module);

    // One row loop containing init, tree loops and output (snippet D).
    ASSERT_EQ(function.body.children.size(), 1u);
    const mir::MirOp &row_loop = function.body.children[0];
    EXPECT_EQ(row_loop.inductionVar, "r");
    EXPECT_EQ(row_loop.children.front().kind,
              mir::OpKind::kInitAccumulator);
    EXPECT_EQ(row_loop.children.back().kind, mir::OpKind::kWriteOutput);
}

TEST(MirPasses, InterleavingRewritesInnermostLoops)
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    schedule.interleaveFactor = 4;
    hir::HirModule module = makeModule(schedule, 10, 15);
    module.runAllHirPasses();
    mir::MirFunction function = mir::lowerToMir(module);
    mir::applyWalkPeelingAndUnrolling(function, module);
    mir::applyWalkInterleaving(function, 4);

    for (const mir::MirOp *walk : function.walkOps()) {
        EXPECT_EQ(walk->interleave, 4);
        EXPECT_EQ(walk->interleaveAxis, mir::InterleaveAxis::kRows);
    }

    // The one-row order interleaves over trees instead.
    schedule.loopOrder = hir::LoopOrder::kOneRowAtATime;
    hir::HirModule module2 = makeModule(schedule, 10, 15);
    module2.runAllHirPasses();
    mir::MirFunction function2 = mir::lowerToMir(module2);
    mir::applyWalkInterleaving(function2, 4);
    for (const mir::MirOp *walk : function2.walkOps())
        EXPECT_EQ(walk->interleaveAxis, mir::InterleaveAxis::kTrees);
}

TEST(MirPasses, PeelUnrollAnnotatesFromGroups)
{
    hir::Schedule schedule;
    hir::HirModule module = makeModule(schedule, 10, 16);
    module.runAllHirPasses();
    mir::MirFunction function = mir::lowerToMir(module);
    mir::applyWalkPeelingAndUnrolling(function, module);
    std::vector<const mir::MirOp *> walks = function.walkOps();
    ASSERT_EQ(walks.size(), module.groups().size());
    for (size_t g = 0; g < walks.size(); ++g) {
        EXPECT_EQ(walks[g]->unrolled, module.groups()[g].unrolledWalk);
        EXPECT_EQ(walks[g]->walkDepth, module.groups()[g].walkDepth);
        EXPECT_EQ(walks[g]->peelDepth, module.groups()[g].peelDepth);
    }
}

TEST(MirPasses, ParallelizationWrapsBody)
{
    hir::Schedule schedule;
    schedule.numThreads = 4;
    hir::HirModule module = makeModule(schedule, 10, 17);
    module.runAllHirPasses();
    mir::MirFunction function = mir::lowerToMir(module);
    EXPECT_FALSE(function.isParallel());
    mir::applyParallelization(function, 4);
    EXPECT_TRUE(function.isParallel());
    ASSERT_EQ(function.body.children.size(), 1u);
    EXPECT_EQ(function.body.children[0].kind,
              mir::OpKind::kParallelFor);
    EXPECT_NE(function.body.children[0].step.find("numRows/4"),
              std::string::npos);
}

TEST(MirPrinting, ShowsScheduleEffects)
{
    hir::Schedule schedule;
    schedule.interleaveFactor = 8;
    schedule.numThreads = 2;
    hir::HirModule module = makeModule(schedule, 10, 18);
    module.runAllHirPasses();
    mir::MirFunction function = mir::lowerToMir(module);
    mir::runMirPasses(function, module);
    std::string text = function.print();
    EXPECT_NE(text.find("parallel.for"), std::string::npos);
    EXPECT_NE(text.find("interleave=8"), std::string::npos);
    EXPECT_NE(text.find("walk_group"), std::string::npos);
    EXPECT_NE(text.find("write_output"), std::string::npos);
}

TEST(MirVerify, CatchesBrokenFunctions)
{
    mir::MirFunction empty;
    empty.body.kind = mir::OpKind::kFunction;
    EXPECT_THROW(empty.verify(), Error);

    mir::MirFunction bad;
    bad.body.kind = mir::OpKind::kFunction;
    mir::MirOp walk;
    walk.kind = mir::OpKind::kWalkGroup;
    walk.groupIndex = -1;
    bad.body.addChild(walk);
    EXPECT_THROW(bad.verify(), Error);
}

} // namespace
} // namespace treebeard
