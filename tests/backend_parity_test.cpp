/**
 * @file
 * Cross-backend bit-exactness: the unified treebeard::compile entry
 * point must produce identical predictions from the kernel runtime and
 * the source-JIT backend across memory layouts, tile sizes, binary and
 * multiclass objectives, and NaN-bearing inputs. Leaf values are
 * quantized so accumulation is order-independent and the comparison
 * can be exact (see test_utils.h).
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;

/** A binary or multiclass quantized test forest. */
model::Forest
makeForest(bool multiclass, uint64_t seed)
{
    testing::RandomForestSpec spec;
    spec.numTrees = multiclass ? 12 : 10;
    spec.numFeatures = 10;
    spec.maxDepth = 5;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    if (multiclass) {
        forest.setObjective(model::Objective::kMulticlassSoftmax);
        forest.setNumClasses(3);
        forest.setBaseScore(0.0f);
    }
    return forest;
}

/** Rows with NaNs sprinkled in to exercise default-left routing. */
std::vector<float>
makeRowsWithNans(int32_t num_features, int64_t num_rows, uint64_t seed)
{
    std::vector<float> rows =
        makeRandomRows(num_features, num_rows, seed);
    for (size_t i = 0; i < rows.size(); i += 7)
        rows[i] = std::numeric_limits<float>::quiet_NaN();
    return rows;
}

/** Predictions from one backend through the unified API. */
std::vector<float>
predictWith(Backend backend, const model::Forest &forest,
            const hir::Schedule &schedule,
            const std::vector<float> &rows)
{
    CompilerOptions options;
    options.backend = backend;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);
    EXPECT_EQ(session.backend(), backend);
    EXPECT_EQ(session.numFeatures(), forest.numFeatures());
    EXPECT_EQ(session.numClasses(), forest.numClasses());
    int64_t num_rows = static_cast<int64_t>(rows.size()) /
                       forest.numFeatures();
    std::vector<float> predictions(
        static_cast<size_t>(num_rows) * forest.numClasses());
    session.predict(rows.data(), num_rows, predictions.data());
    return predictions;
}

struct ParityCase
{
    hir::MemoryLayout layout;
    int32_t tileSize;
    bool multiclass;
    hir::PackedPrecision precision = hir::PackedPrecision::kF32;
};

class BackendParity : public ::testing::TestWithParam<ParityCase>
{};

TEST_P(BackendParity, KernelAndSourceJitAreBitExact)
{
    const ParityCase &c = GetParam();
    model::Forest forest = makeForest(c.multiclass, 4000 + c.tileSize);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 64, 4100);

    hir::Schedule schedule;
    schedule.layout = c.layout;
    schedule.tileSize = c.tileSize;
    schedule.packedPrecision = c.precision;

    std::vector<float> kernel =
        predictWith(Backend::kKernel, forest, schedule, rows);
    std::vector<float> jit =
        predictWith(Backend::kSourceJit, forest, schedule, rows);
    expectPredictionsExact(kernel, jit);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendParity,
    ::testing::Values(
        ParityCase{hir::MemoryLayout::kSparse, 1, false},
        ParityCase{hir::MemoryLayout::kSparse, 4, false},
        ParityCase{hir::MemoryLayout::kSparse, 8, false},
        ParityCase{hir::MemoryLayout::kArray, 1, false},
        ParityCase{hir::MemoryLayout::kArray, 4, false},
        ParityCase{hir::MemoryLayout::kArray, 8, false},
        ParityCase{hir::MemoryLayout::kPacked, 1, false},
        ParityCase{hir::MemoryLayout::kPacked, 4, false},
        ParityCase{hir::MemoryLayout::kPacked, 8, false},
        ParityCase{hir::MemoryLayout::kSparse, 1, true},
        ParityCase{hir::MemoryLayout::kSparse, 4, true},
        ParityCase{hir::MemoryLayout::kSparse, 8, true},
        ParityCase{hir::MemoryLayout::kArray, 4, true},
        ParityCase{hir::MemoryLayout::kArray, 8, true},
        ParityCase{hir::MemoryLayout::kPacked, 4, true},
        ParityCase{hir::MemoryLayout::kPacked, 8, true},
        // Int16-quantized packed records: the emitted source inlines
        // the same quantizer and integer compares as the kernels, so
        // parity is exact even where rounding flips a route.
        ParityCase{hir::MemoryLayout::kPacked, 1, false,
                   hir::PackedPrecision::kI16},
        ParityCase{hir::MemoryLayout::kPacked, 4, false,
                   hir::PackedPrecision::kI16},
        ParityCase{hir::MemoryLayout::kPacked, 8, false,
                   hir::PackedPrecision::kI16},
        ParityCase{hir::MemoryLayout::kPacked, 4, true,
                   hir::PackedPrecision::kI16},
        ParityCase{hir::MemoryLayout::kPacked, 8, true,
                   hir::PackedPrecision::kI16}));

TEST(UnifiedSession, PredictInstrumentedThrowsOnSourceJit)
{
    model::Forest forest = makeForest(false, 4200);
    hir::Schedule schedule;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);
    EXPECT_FALSE(session.supportsInstrumentation());

    std::vector<float> rows = makeRandomRows(10, 4, 4201);
    std::vector<float> predictions(4);
    runtime::WalkCounters counters;
    try {
        session.predictInstrumented(rows.data(), 4, predictions.data(),
                                    &counters);
        FAIL() << "expected Error from predictInstrumented";
    } catch (const Error &error) {
        // Clients branch on the stable code, not the message text.
        EXPECT_EQ(error.code(), kErrInstrumentationUnsupported);
    }

    // The kernel backend still supports instrumentation.
    options.backend = Backend::kKernel;
    Session kernel = compile(forest, schedule, options);
    EXPECT_TRUE(kernel.supportsInstrumentation());
    EXPECT_NO_THROW(kernel.predictInstrumented(
        rows.data(), 4, predictions.data(), &counters));
}

TEST(UnifiedSession, ArtifactsRecordBackendAndSource)
{
    model::Forest forest = makeForest(false, 4300);
    hir::Schedule schedule;
    schedule.tileSize = 8;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);

    const CompilationArtifacts &artifacts = session.artifacts();
    EXPECT_EQ(artifacts.backend, Backend::kSourceJit);
    EXPECT_FALSE(artifacts.lirSummary.empty());
    // The emitted source carries the AVX2 tile-evaluation sequence for
    // tile size 8 (guarded on __AVX2__ with a scalar fallback).
    EXPECT_NE(artifacts.generatedSource.find("_mm256_i32gather_ps"),
              std::string::npos);
    EXPECT_NE(artifacts.generatedSource.find("_mm256_movemask_ps"),
              std::string::npos);
    EXPECT_NE(artifacts.generatedSource.find("__AVX2__"),
              std::string::npos);

    // Kernel compilations carry no generated source.
    options.backend = Backend::kKernel;
    Session kernel = compile(forest, schedule, options);
    EXPECT_EQ(kernel.artifacts().backend, Backend::kKernel);
    EXPECT_TRUE(kernel.artifacts().generatedSource.empty());
}

TEST(UnifiedSession, QuantizedArtifactsCarryInt16Kernels)
{
    model::Forest forest = makeForest(false, 4350);
    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);

    const std::string &source =
        session.artifacts().generatedSource;
    // The integer compare ladder and the inlined row quantizer.
    EXPECT_NE(source.find("_mm256_cmpgt_epi32"), std::string::npos);
    EXPECT_NE(source.find("_mm256_i32gather_epi32"),
              std::string::npos);
    EXPECT_NE(source.find("quantize_value"), std::string::npos);
    EXPECT_NE(source.find("std::lrintf"), std::string::npos);
}

TEST(UnifiedSession, SourceJitHonorsNumThreads)
{
    model::Forest forest = makeForest(true, 4400);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 100, 4401);

    hir::Schedule serial;
    serial.tileSize = 4;
    hir::Schedule threaded = serial;
    threaded.numThreads = 4;

    std::vector<float> expected =
        predictWith(Backend::kSourceJit, forest, serial, rows);
    std::vector<float> actual =
        predictWith(Backend::kSourceJit, forest, threaded, rows);
    expectPredictionsExact(expected, actual);
}

/**
 * The threaded source-JIT path runs the row loop emitted into the
 * generated TU (treebeard_predict_worker): across layouts, both
 * packed precisions and explicit row-chunk sizes, it must stay
 * bit-exact with the serial JIT and with the threaded kernel backend.
 */
TEST(UnifiedSession, EmittedParallelRowLoopIsBitExactEverywhere)
{
    model::Forest forest = makeForest(false, 4600);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 103, 4601);

    struct LoopCase
    {
        hir::MemoryLayout layout;
        hir::PackedPrecision precision;
        int32_t rowChunkRows;
    };
    const LoopCase cases[] = {
        {hir::MemoryLayout::kArray, hir::PackedPrecision::kF32, 0},
        {hir::MemoryLayout::kSparse, hir::PackedPrecision::kF32, 7},
        {hir::MemoryLayout::kPacked, hir::PackedPrecision::kF32, 0},
        {hir::MemoryLayout::kPacked, hir::PackedPrecision::kI16, 0},
        {hir::MemoryLayout::kPacked, hir::PackedPrecision::kI16, 16},
    };
    for (const LoopCase &c : cases) {
        hir::Schedule serial;
        serial.tileSize = 4;
        serial.layout = c.layout;
        serial.packedPrecision = c.precision;
        hir::Schedule threaded = serial;
        threaded.numThreads = 4;
        threaded.rowChunkRows = c.rowChunkRows;

        std::vector<float> expected =
            predictWith(Backend::kSourceJit, forest, serial, rows);
        std::vector<float> jit =
            predictWith(Backend::kSourceJit, forest, threaded, rows);
        expectPredictionsExact(expected, jit);
        std::vector<float> kernel =
            predictWith(Backend::kKernel, forest, threaded, rows);
        expectPredictionsExact(expected, kernel);
    }
}

/** The worker entry really is in the generated TU. */
TEST(UnifiedSession, GeneratedSourceCarriesWorkerEntry)
{
    model::Forest forest = makeForest(false, 4700);
    hir::Schedule schedule;
    schedule.numThreads = 4;
    schedule.rowChunkRows = 32;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);
    const std::string &source = session.artifacts().generatedSource;
    EXPECT_NE(source.find("treebeard_predict_worker"),
              std::string::npos);
    // The explicit chunk size is baked into the source, not passed at
    // call time.
    EXPECT_NE(source.find("32"), std::string::npos);
}

TEST(UnifiedSession, CompileForestAliasHonorsBackend)
{
    model::Forest forest = makeForest(false, 4500);
    hir::Schedule schedule;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);
    EXPECT_EQ(session.backend(), Backend::kSourceJit);

    std::vector<float> rows = makeRandomRows(10, 8, 4501);
    std::vector<float> viaAlias(8), viaCompile(8);
    session.predict(rows.data(), 8, viaAlias.data());
    compile(forest, schedule, options)
        .predict(rows.data(), 8, viaCompile.data());
    expectPredictionsExact(viaCompile, viaAlias);
}

TEST(UnifiedSession, BackendNames)
{
    EXPECT_STREQ(backendName(Backend::kKernel), "kernel");
    EXPECT_STREQ(backendName(Backend::kSourceJit), "jit");
}

} // namespace
} // namespace treebeard
