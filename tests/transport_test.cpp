/**
 * @file
 * TCP transport tests: the wire codec, the WireServer fault-injection
 * matrix and end-to-end socket exactness. Every fault case asserts
 * the documented outcome — a stable error status or a clean close —
 * and that the server keeps serving afterwards; the exactness suite
 * asserts predictions fetched over a socket by concurrent clients are
 * bit-identical to direct Session::predict on both backends. The
 * runtime lock-order validator is armed for the whole binary, so any
 * acquisition-order violation inside the transport fails these tests.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

using namespace treebeard;
using namespace treebeard::testing;
using treebeard::serve::wire::Opcode;
using treebeard::serve::wire::Status;

namespace {

/** Arm the lock-order validator before any test constructs a mutex. */
struct LockCheckBootstrap
{
    LockCheckBootstrap()
    {
        clearLockStateForTesting();
        setLockChecking(true);
    }
};
LockCheckBootstrap lock_check_bootstrap;

/** A small quantized forest distinct per @p seed. */
model::Forest
makeServableForest(uint64_t seed, int32_t num_features = 10)
{
    RandomForestSpec spec;
    spec.numFeatures = num_features;
    spec.numTrees = 24;
    spec.maxDepth = 5;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    return forest;
}

/** Direct (unserved) predictions for @p rows under @p schedule. */
std::vector<float>
directPredictions(const model::Forest &forest,
                  const hir::Schedule &schedule,
                  const CompilerOptions &options,
                  const std::vector<float> &rows)
{
    Session session = compile(forest, schedule, options);
    int64_t num_rows = static_cast<int64_t>(rows.size()) /
                       forest.numFeatures();
    std::vector<float> predictions(
        static_cast<size_t>(num_rows) * session.numClasses());
    session.predict(rows.data(), num_rows, predictions.data());
    return predictions;
}

/** A Server plus WireServer on an ephemeral loopback port. */
struct Fixture
{
    explicit Fixture(serve::TransportOptions transport = {},
                     serve::ServerOptions options = {})
        : server(std::move(options)),
          wire_server(server, std::move(transport))
    {}

    serve::Server server;
    serve::WireServer wire_server;
};

// ---------------------------------------------------------------------
// Raw-socket helpers: misbehaving clients the serve::Client cannot be.
// ---------------------------------------------------------------------

int
rawConnect(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
    return fd;
}

bool
rawWrite(int fd, const std::string &bytes)
{
    size_t done = 0;
    while (done < bytes.size()) {
        ssize_t sent = ::send(fd, bytes.data() + done,
                              bytes.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(sent);
    }
    return true;
}

struct RawResponse
{
    /** Peer closed before a complete frame arrived. */
    bool closed = false;
    serve::wire::FrameHeader header;
    std::string payload;
};

RawResponse
rawReadResponse(int fd)
{
    RawResponse response;
    unsigned char header_bytes[serve::wire::kFrameHeaderBytes];
    size_t done = 0;
    while (done < sizeof(header_bytes)) {
        ssize_t got = ::recv(fd,
                             reinterpret_cast<char *>(header_bytes) +
                                 done,
                             sizeof(header_bytes) - done, 0);
        if (got > 0) {
            done += static_cast<size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        response.closed = true;
        return response;
    }
    EXPECT_EQ(serve::wire::decodeFrameHeader(header_bytes,
                                             &response.header),
              serve::wire::HeaderParse::kOk);
    response.payload.resize(response.header.payloadBytes);
    done = 0;
    while (done < response.payload.size()) {
        ssize_t got = ::recv(fd, response.payload.data() + done,
                             response.payload.size() - done, 0);
        if (got > 0) {
            done += static_cast<size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        response.closed = true;
        return response;
    }
    return response;
}

/** True when the next read on @p fd reports EOF (server closed). */
bool
rawReadsEof(int fd)
{
    char byte;
    ssize_t got;
    do {
        got = ::recv(fd, &byte, 1, 0);
    } while (got < 0 && errno == EINTR);
    return got == 0;
}

// ---------------------------------------------------------------------
// Wire codec (no sockets)
// ---------------------------------------------------------------------

TEST(WireCodec, FrameHeaderRoundTrips)
{
    std::string frame = serve::wire::encodeFrame(
        Opcode::kPredict, Status::kQueueFull, "payload!");
    ASSERT_EQ(frame.size(), serve::wire::kFrameHeaderBytes + 8);

    serve::wire::FrameHeader header;
    ASSERT_EQ(serve::wire::decodeFrameHeader(
                  reinterpret_cast<const unsigned char *>(
                      frame.data()),
                  &header),
              serve::wire::HeaderParse::kOk);
    EXPECT_EQ(header.opcode, static_cast<uint8_t>(Opcode::kPredict));
    EXPECT_EQ(header.status, Status::kQueueFull);
    EXPECT_EQ(header.payloadBytes, 8u);
}

TEST(WireCodec, BadMagicAndVersionAreDistinguished)
{
    std::string frame =
        serve::wire::encodeFrame(Opcode::kStats, Status::kOk, "");
    serve::wire::FrameHeader header;

    std::string bad_magic = frame;
    bad_magic[0] = 'X';
    EXPECT_EQ(serve::wire::decodeFrameHeader(
                  reinterpret_cast<const unsigned char *>(
                      bad_magic.data()),
                  &header),
              serve::wire::HeaderParse::kBadMagic);

    std::string bad_version = frame;
    bad_version[4] = 9;
    EXPECT_EQ(serve::wire::decodeFrameHeader(
                  reinterpret_cast<const unsigned char *>(
                      bad_version.data()),
                  &header),
              serve::wire::HeaderParse::kBadVersion);
}

TEST(WireCodec, StatusesMapOneToOneOntoStableCodes)
{
    // Every non-kOk status maps to a code and back; the values are
    // wire API, so this doubles as a renumbering tripwire.
    const Status statuses[] = {
        Status::kUnknownModel, Status::kQueueFull, Status::kShutdown,
        Status::kBadRequest,   Status::kBadFrame,
        Status::kFrameTooLarge, Status::kInternal};
    for (Status status : statuses) {
        std::string code = serve::wire::errorCodeForStatus(status);
        EXPECT_FALSE(code.empty());
        EXPECT_EQ(serve::wire::statusForErrorCode(code), status)
            << code;
    }
    EXPECT_EQ(serve::wire::statusForErrorCode("hir.schedule.bogus",
                                              Status::kBadRequest),
              Status::kBadRequest)
        << "unmapped codes take the caller's fallback";
    EXPECT_EQ(
        static_cast<int>(serve::wire::statusForErrorCode(
            serve::kErrQueueFull)),
        2)
        << "status bytes are wire API; never renumber";
}

TEST(WireCodec, PayloadCodecsRejectTruncation)
{
    std::string load =
        serve::wire::encodeLoadPayload("{\"forest\":1}", "{}");
    std::string forest_json, schedule_json;
    ASSERT_TRUE(serve::wire::decodeLoadPayload(load, &forest_json,
                                               &schedule_json));
    EXPECT_EQ(forest_json, "{\"forest\":1}");
    EXPECT_EQ(schedule_json, "{}");
    for (size_t cut = 1; cut <= load.size(); ++cut) {
        EXPECT_FALSE(serve::wire::decodeLoadPayload(
            load.substr(0, load.size() - cut), &forest_json,
            &schedule_json))
            << "truncated by " << cut;
    }
    EXPECT_FALSE(serve::wire::decodeLoadPayload(
        load + "x", &forest_json, &schedule_json))
        << "trailing garbage must not pass";

    const float rows[] = {1.0f, 2.0f, 3.0f, 4.0f};
    std::string predict =
        serve::wire::encodePredictPayload("tb-1", rows, 2, 2);
    std::string handle;
    uint32_t num_rows = 0;
    std::vector<float> values;
    ASSERT_TRUE(serve::wire::decodePredictPayload(
        predict, &handle, &num_rows, &values));
    EXPECT_EQ(handle, "tb-1");
    EXPECT_EQ(num_rows, 2u);
    ASSERT_EQ(values.size(), 4u);
    EXPECT_EQ(values[3], 4.0f);
    EXPECT_FALSE(serve::wire::decodePredictPayload(
        predict.substr(0, predict.size() - 1), &handle, &num_rows,
        &values))
        << "a float tail that is not a multiple of four bytes";
}

TEST(WireCodec, SplitHostPortParsesAndValidates)
{
    std::string host;
    uint16_t port = 1;
    serve::splitHostPort("127.0.0.1:8123", &host, &port);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8123);
    serve::splitHostPort("0.0.0.0:0", &host, &port);
    EXPECT_EQ(port, 0);
    for (const char *bad :
         {"127.0.0.1", ":80", "127.0.0.1:", "127.0.0.1:nope",
          "127.0.0.1:70000"}) {
        EXPECT_THROW(serve::splitHostPort(bad, &host, &port), Error)
            << bad;
    }
}

// ---------------------------------------------------------------------
// WireTransport: protocol behavior and fault injection
// ---------------------------------------------------------------------

TEST(WireTransport, LoadPredictEvictStatsRoundTrip)
{
    Fixture fixture;
    model::Forest forest = makeServableForest(7101);
    hir::Schedule schedule;
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), 8, 7102);
    std::vector<float> direct =
        directPredictions(forest, schedule, {}, rows);

    serve::Client client("127.0.0.1", fixture.wire_server.port());
    serve::ModelHandle handle = client.loadModel(forest);
    EXPECT_EQ(handle.rfind("tb-", 0), 0u) << handle;

    std::vector<float> served =
        client.predict(handle, rows.data(), 8, forest.numFeatures());
    ASSERT_EQ(served.size(), direct.size());
    for (size_t i = 0; i < served.size(); ++i)
        EXPECT_EQ(served[i], direct[i]) << "row " << i;

    JsonValue stats = JsonValue::parse(client.stats());
    EXPECT_EQ(stats.at("resident_models").asInt(), 1);
    EXPECT_GE(stats.at("transport")
                  .at("connections_accepted")
                  .asInt(),
              1);
    EXPECT_EQ(stats.at("registry").at("compiles").asInt(), 1);

    EXPECT_TRUE(client.evict(handle));
    EXPECT_FALSE(client.evict(handle)) << "already evicted";
    EXPECT_EQ(lockViolationCount(), 0);
}

TEST(WireTransport, ServedErrorsCarryStableCodesAcrossTheWire)
{
    Fixture fixture;
    serve::Client client("127.0.0.1", fixture.wire_server.port());
    model::Forest forest = makeServableForest(7201);
    serve::ModelHandle handle = client.loadModel(forest);
    std::vector<float> row =
        makeRandomRows(forest.numFeatures(), 1, 7202);

    try {
        client.predict("tb-ffffffffffffffff", row.data(), 1,
                       forest.numFeatures());
        FAIL() << "expected serve.registry.unknown-model";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrUnknownModel);
    }

    // The latent-gap case: zero rows must be serve.queue.bad-request
    // through the wire exactly as through Server::predictAsync.
    try {
        client.predict(handle, row.data(), 0, forest.numFeatures());
        FAIL() << "expected serve.queue.bad-request";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrBadRequest);
    }

    // The connection survived both failures.
    EXPECT_EQ(client
                  .predict(handle, row.data(), 1,
                           forest.numFeatures())
                  .size(),
              1u);
}

TEST(WireTransport, MalformedLoadDocumentIsBadRequestNotTeardown)
{
    Fixture fixture;
    int fd = rawConnect(fixture.wire_server.port());
    rawWrite(fd, serve::wire::encodeFrame(
                     Opcode::kLoad, Status::kOk,
                     serve::wire::encodeLoadPayload(
                         "this is not json", "")));
    RawResponse response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kBadRequest);

    // Same connection, malformed payload *layout* (random bytes).
    rawWrite(fd, serve::wire::encodeFrame(Opcode::kLoad, Status::kOk,
                                          "\x01\x02\x03"));
    response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kBadRequest);
    ::close(fd);
}

TEST(WireTransport, BadMagicGetsErrorFrameThenClose)
{
    Fixture fixture;
    int fd = rawConnect(fixture.wire_server.port());
    std::string frame =
        serve::wire::encodeFrame(Opcode::kStats, Status::kOk, "");
    frame[0] = 'Z';
    rawWrite(fd, frame);
    RawResponse response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kBadFrame);
    EXPECT_TRUE(rawReadsEof(fd))
        << "an unsyncable stream must be closed";
    ::close(fd);
    EXPECT_GE(fixture.wire_server.stats().protocolErrors, 1);
}

TEST(WireTransport, UnsupportedVersionGetsErrorFrameThenClose)
{
    Fixture fixture;
    int fd = rawConnect(fixture.wire_server.port());
    std::string frame =
        serve::wire::encodeFrame(Opcode::kStats, Status::kOk, "");
    frame[4] = 42;
    rawWrite(fd, frame);
    RawResponse response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kBadFrame);
    EXPECT_TRUE(rawReadsEof(fd));
    ::close(fd);
}

TEST(WireTransport, UnknownOpcodeFailsOneFrameOnly)
{
    Fixture fixture;
    int fd = rawConnect(fixture.wire_server.port());
    std::string frame =
        serve::wire::encodeFrame(Opcode::kStats, Status::kOk, "");
    frame[5] = 99;
    rawWrite(fd, frame);
    RawResponse response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kBadFrame);

    // The envelope was sane, so the connection keeps serving.
    rawWrite(fd, serve::wire::encodeFrame(Opcode::kStats, Status::kOk,
                                          ""));
    response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kOk);
    ::close(fd);
}

TEST(WireTransport, OversizedDeclaredLengthRejectedUnread)
{
    serve::TransportOptions transport;
    transport.maxFramePayloadBytes = 1024;
    Fixture fixture(transport);
    int fd = rawConnect(fixture.wire_server.port());
    // Declare a 256 MiB payload but never send it: the rejection must
    // come back immediately, proving the server did not try to read
    // (or allocate) what was promised.
    std::string huge(static_cast<size_t>(4096), 'x');
    std::string frame = serve::wire::encodeFrame(
        Opcode::kLoad, Status::kOk, huge);
    frame[8] = 0;
    frame[9] = 0;
    frame[10] = 0;
    frame[11] = 16; // declared length: 256 MiB
    rawWrite(fd, frame.substr(0, serve::wire::kFrameHeaderBytes));
    RawResponse response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kFrameTooLarge);
    EXPECT_TRUE(rawReadsEof(fd));
    ::close(fd);
}

TEST(WireTransport, TruncatedHeaderIsCleanClose)
{
    Fixture fixture;
    {
        int fd = rawConnect(fixture.wire_server.port());
        rawWrite(fd, "TBW1\x01"); // 5 of 12 header bytes
        ::close(fd);
    }
    // The server survives: a fresh client gets full service.
    serve::Client client("127.0.0.1", fixture.wire_server.port());
    EXPECT_NO_THROW(client.stats());
    // The torn connection was counted as a disconnect (poll: the
    // handler observes the EOF asynchronously).
    for (int i = 0; i < 200 &&
                    fixture.wire_server.stats().disconnects == 0;
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fixture.wire_server.stats().disconnects, 1);
}

TEST(WireTransport, TruncatedPayloadIsCleanClose)
{
    Fixture fixture;
    {
        int fd = rawConnect(fixture.wire_server.port());
        std::string frame = serve::wire::encodeFrame(
            Opcode::kLoad, Status::kOk, std::string(100, 'p'));
        // Header promises 100 payload bytes; deliver 10 and vanish.
        rawWrite(fd, frame.substr(
                         0, serve::wire::kFrameHeaderBytes + 10));
        ::close(fd);
    }
    serve::Client client("127.0.0.1", fixture.wire_server.port());
    EXPECT_NO_THROW(client.stats());
    EXPECT_EQ(lockViolationCount(), 0);
}

TEST(WireTransport, TornByteAtATimeWritesAssemble)
{
    Fixture fixture;
    int fd = rawConnect(fixture.wire_server.port());
    std::string frame =
        serve::wire::encodeFrame(Opcode::kStats, Status::kOk, "");
    for (char byte : frame) {
        ASSERT_TRUE(rawWrite(fd, std::string(1, byte)));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    RawResponse response = rawReadResponse(fd);
    ASSERT_FALSE(response.closed);
    EXPECT_EQ(response.header.status, Status::kOk);
    ::close(fd);
}

TEST(WireTransport, ClientDisconnectMidPredictLeavesServerServing)
{
    Fixture fixture;
    serve::Client setup("127.0.0.1", fixture.wire_server.port());
    model::Forest forest = makeServableForest(7301);
    serve::ModelHandle handle = setup.loadModel(forest);
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), 4, 7302);

    // Send a full PREDICT request, then slam the connection shut
    // without reading the response: the server's write fails (EPIPE
    // or ECONNRESET), never a crash or a wedged handler.
    for (int i = 0; i < 4; ++i) {
        int fd = rawConnect(fixture.wire_server.port());
        rawWrite(fd, serve::wire::encodeFrame(
                         Opcode::kPredict, Status::kOk,
                         serve::wire::encodePredictPayload(
                             handle, rows.data(), 4,
                             forest.numFeatures())));
        struct linger hard_close = {1, 0}; // RST instead of FIN
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                     sizeof(hard_close));
        ::close(fd);
    }

    EXPECT_EQ(setup
                  .predict(handle, rows.data(), 4,
                           forest.numFeatures())
                  .size(),
              4u)
        << "the surviving connection still gets exact service";
    EXPECT_EQ(lockViolationCount(), 0);
}

TEST(WireTransport, ConnectionCapClosesExcessAtAccept)
{
    serve::TransportOptions transport;
    transport.maxConnections = 2;
    Fixture fixture(transport);
    auto first = std::make_unique<serve::Client>(
        "127.0.0.1", fixture.wire_server.port());
    auto second = std::make_unique<serve::Client>(
        "127.0.0.1", fixture.wire_server.port());
    // Round trips force both registrations before the third arrives.
    first->stats();
    second->stats();

    int fd = rawConnect(fixture.wire_server.port());
    EXPECT_TRUE(rawReadsEof(fd))
        << "the over-cap connection must be closed, not queued";
    ::close(fd);
    EXPECT_GE(fixture.wire_server.stats().connectionsRejected, 1);

    // Capacity frees when a member leaves.
    first.reset();
    bool admitted = false;
    for (int i = 0; i < 2000 && !admitted; ++i) {
        try {
            serve::Client third("127.0.0.1",
                                fixture.wire_server.port());
            third.stats();
            admitted = true;
        } catch (const Error &) {
            // Raced the handler teardown; retry.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    EXPECT_TRUE(admitted)
        << "a freed slot must admit the next connection";
}

TEST(WireTransport, ShutdownFrameStopsTheListener)
{
    Fixture fixture;
    serve::Client client("127.0.0.1", fixture.wire_server.port());
    client.shutdownServer();
    fixture.wire_server.waitUntilStopRequested();
    EXPECT_TRUE(fixture.wire_server.stopRequested());
    fixture.wire_server.stop(); // joins; must not deadlock
    EXPECT_EQ(lockViolationCount(), 0);
}

TEST(WireTransport, StopWithInFlightRequestsNeverHangs)
{
    Fixture fixture;
    serve::Client setup("127.0.0.1", fixture.wire_server.port());
    model::Forest forest = makeServableForest(7401);
    serve::ModelHandle handle = setup.loadModel(forest);
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), 4, 7402);

    std::atomic<bool> stop_issued{false};
    std::atomic<int64_t> completed{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            try {
                serve::Client client("127.0.0.1",
                                     fixture.wire_server.port());
                while (true) {
                    client.predict(handle, rows.data(), 4,
                                   forest.numFeatures());
                    completed.fetch_add(1);
                }
            } catch (const Error &error) {
                // Teardown surfaces as a closed connection (or a
                // shutdown rejection when the frame got through); a
                // rejected over-cap connect before stop is also fine.
                EXPECT_TRUE(stop_issued.load() ||
                            error.code() == serve::kErrWireClosed)
                    << error.code() << ": " << error.what();
            }
        });
    }
    // Let the load run briefly, then stop underneath it.
    for (int i = 0; i < 100 && completed.load() < 8; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop_issued.store(true);
    fixture.wire_server.stop();
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_GT(completed.load(), 0);
    EXPECT_TRUE(fixture.wire_server.stopRequested());
    EXPECT_EQ(lockViolationCount(), 0)
        << "transport teardown must keep the lock order clean";
    // The in-process server outlives its transport untouched.
    EXPECT_EQ(fixture.server
                  .predict(handle, rows.data(), 4)
                  .size(),
              4u);
}

// ---------------------------------------------------------------------
// WireExactness: socket results are bit-identical to direct predict
// ---------------------------------------------------------------------

class WireExactness : public ::testing::TestWithParam<Backend>
{};

TEST_P(WireExactness, ConcurrentSocketClientsMatchDirectPredict)
{
    CompilerOptions compiler;
    compiler.backend = GetParam();
    if (compiler.backend == Backend::kSourceJit)
        compiler.jit.cacheDir =
            ::testing::TempDir() + "/treebeard_transport_cache";
    hir::Schedule schedule;

    model::Forest forest = makeServableForest(7501);
    const int64_t kThreads = 4, kRequests = 30, kPoolRows = 128;
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), kPoolRows, 7502);
    std::vector<float> direct =
        directPredictions(forest, schedule, compiler, rows);

    serve::ServerOptions options;
    options.registry.compiler = compiler;
    options.registry.defaultSchedule = schedule;
    options.batcher.maxBatchRows = 32;
    options.batcher.maxQueueDelayMicros = 1000;
    Fixture fixture({}, options);

    // Load once over the wire; the content hash makes every later
    // per-thread load a registry hit on the same handle.
    serve::Client setup("127.0.0.1", fixture.wire_server.port());
    serve::ModelHandle handle = setup.loadModel(forest);

    std::vector<std::thread> threads;
    for (int64_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            serve::Client client("127.0.0.1",
                                 fixture.wire_server.port());
            EXPECT_EQ(client.loadModel(forest), handle);
            for (int64_t r = 0; r < kRequests; ++r) {
                int64_t num_rows = 1 + (t * kRequests + r) % 4;
                int64_t start = (t * kRequests + r) %
                                (kPoolRows - num_rows);
                int32_t features = forest.numFeatures();
                std::vector<float> served = client.predict(
                    handle, rows.data() + start * features,
                    num_rows, features);
                ASSERT_EQ(served.size(),
                          static_cast<size_t>(num_rows));
                for (int64_t i = 0; i < num_rows; ++i) {
                    EXPECT_EQ(served[static_cast<size_t>(i)],
                              direct[static_cast<size_t>(start + i)])
                        << "row " << start + i
                        << " differs from direct predict";
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    serve::ServerStats stats = fixture.server.stats();
    EXPECT_EQ(stats.registry.compiles, 1);
    EXPECT_EQ(stats.registry.hits, kThreads);
    EXPECT_EQ(stats.batching.requestsAdmitted, kThreads * kRequests);
    EXPECT_EQ(lockViolationCount(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, WireExactness,
                         ::testing::Values(Backend::kKernel,
                                           Backend::kSourceJit),
                         [](const auto &info) {
                             return std::string(
                                 backendName(info.param));
                         });

} // namespace
