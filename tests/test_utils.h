/**
 * @file
 * Shared helpers for the Treebeard test suite: deterministic random
 * forest/dataset generation and prediction comparison.
 */
#ifndef TREEBEARD_TESTS_TEST_UTILS_H
#define TREEBEARD_TESTS_TEST_UTILS_H

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "model/forest.h"

namespace treebeard::testing {

/** Parameters for random test-forest generation. */
struct RandomForestSpec
{
    int32_t numFeatures = 10;
    int64_t numTrees = 20;
    int32_t maxDepth = 6;
    /** Split probability below maxDepth (controls imbalance). */
    double splitProbability = 0.7;
    /** Rows routed through trees to produce hit counts (0 = none). */
    int64_t statisticsRows = 500;
    uint64_t seed = 12345;
};

/** Build a random valid forest (with hit counts when requested). */
inline model::Forest
makeRandomForest(const RandomForestSpec &spec)
{
    data::SyntheticModelSpec synth;
    synth.name = "test";
    synth.numFeatures = spec.numFeatures;
    synth.numTrees = spec.numTrees;
    synth.maxDepth = spec.maxDepth;
    synth.splitProbability = spec.splitProbability;
    synth.alwaysSplitDepth = 1;
    synth.trainingRows = spec.statisticsRows;
    synth.seed = spec.seed;
    synth.thresholdDistribution = data::ThresholdDistribution::kMild;
    return data::synthesizeForest(synth);
}

/**
 * Quantize every leaf value to a multiple of 2^-10. Sums of a few
 * thousand such values are exact in float arithmetic, which makes
 * predictions independent of accumulation order — the correctness
 * sweep can then assert bit-exact equality across all schedules.
 */
inline void
quantizeLeafValues(model::Forest &forest)
{
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        model::DecisionTree &tree = forest.mutableTree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            model::Node &node = tree.mutableNode(i);
            if (node.isLeaf()) {
                node.threshold =
                    std::round(node.threshold * 1024.0f) / 1024.0f;
            }
        }
    }
}

/** Random uniform rows matching @p num_features. */
inline std::vector<float>
makeRandomRows(int32_t num_features, int64_t num_rows, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * num_features);
    for (float &value : rows)
        value = rng.uniformFloat(0.0f, 1.0f);
    return rows;
}

/** EXPECT bit-exact equality of two prediction vectors. */
inline void
expectPredictionsExact(const std::vector<float> &expected,
                       const std::vector<float> &actual)
{
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], actual[i])
            << "prediction mismatch at row " << i;
    }
}

/**
 * EXPECT equality up to floating-point reassociation error: tree
 * reordering and interleaving change the accumulation order, so sums
 * can differ in low-order bits from the reference walk.
 */
inline void
expectPredictionsClose(const std::vector<float> &expected,
                       const std::vector<float> &actual,
                       double tolerance = 2e-3)
{
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], tolerance)
            << "prediction mismatch at row " << i;
    }
}

/** Reference predictions via the model-level walk. */
inline std::vector<float>
referencePredictions(const model::Forest &forest,
                     const std::vector<float> &rows)
{
    int64_t num_rows = static_cast<int64_t>(rows.size()) /
                       forest.numFeatures();
    std::vector<float> predictions(static_cast<size_t>(num_rows));
    forest.predictBatch(rows.data(), num_rows, predictions.data());
    return predictions;
}

} // namespace treebeard::testing

#endif // TREEBEARD_TESTS_TEST_UTILS_H
