/**
 * @file
 * Tests for the GBDT trainer substrate: loss decreases over rounds,
 * learned models fit simple functions, logistic training separates
 * classes, hit counts are recorded, and trained models compile and run
 * through the Treebeard pipeline.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "train/gbdt_trainer.h"
#include "treebeard/compiler.h"

namespace treebeard::train {
namespace {

/** y = step function of x0 plus mild noise: easy for trees. */
data::Dataset
makeStepDataset(int64_t rows, uint64_t seed)
{
    Rng rng(seed);
    data::Dataset dataset(3);
    std::vector<float> labels;
    for (int64_t i = 0; i < rows; ++i) {
        float x0 = rng.uniformFloat();
        float x1 = rng.uniformFloat();
        float x2 = rng.uniformFloat();
        dataset.appendRow({x0, x1, x2});
        float y = (x0 < 0.5f ? 1.0f : 3.0f) +
                  (x1 < 0.25f ? 0.5f : 0.0f) +
                  0.01f * static_cast<float>(rng.gaussian());
        labels.push_back(y);
    }
    dataset.setLabels(std::move(labels));
    return dataset;
}

TEST(GbdtTrainer, LossDecreasesMonotonically)
{
    data::Dataset dataset = makeStepDataset(600, 11);
    TrainingConfig config;
    config.numTrees = 30;
    config.maxDepth = 4;
    config.learningRate = 0.3;
    GbdtTrainer trainer(config);
    model::Forest forest = trainer.train(dataset);

    const std::vector<TrainingRound> &history = trainer.history();
    ASSERT_EQ(history.size(), 30u);
    // Loss should drop substantially and never blow up.
    EXPECT_LT(history.back().trainingLoss,
              history.front().trainingLoss * 0.05);
    for (size_t i = 1; i < history.size(); ++i) {
        EXPECT_LE(history[i].trainingLoss,
                  history[i - 1].trainingLoss * 1.05);
    }
}

TEST(GbdtTrainer, FitsStepFunction)
{
    data::Dataset dataset = makeStepDataset(800, 22);
    TrainingConfig config;
    config.numTrees = 50;
    config.maxDepth = 4;
    config.learningRate = 0.3;
    model::Forest forest = GbdtTrainer(config).train(dataset);

    float low[3] = {0.2f, 0.9f, 0.5f};
    float high[3] = {0.9f, 0.9f, 0.5f};
    EXPECT_NEAR(forest.predict(low), 1.0f, 0.15f);
    EXPECT_NEAR(forest.predict(high), 3.0f, 0.15f);
}

TEST(GbdtTrainer, LogisticSeparatesClasses)
{
    Rng rng(33);
    data::Dataset dataset(2);
    std::vector<float> labels;
    for (int64_t i = 0; i < 800; ++i) {
        float x0 = rng.uniformFloat();
        float x1 = rng.uniformFloat();
        dataset.appendRow({x0, x1});
        labels.push_back(x0 + 0.1f * x1 > 0.55f ? 1.0f : 0.0f);
    }
    dataset.setLabels(std::move(labels));

    TrainingConfig config;
    config.numTrees = 40;
    config.maxDepth = 4;
    config.learningRate = 0.3;
    config.objective = model::Objective::kBinaryLogistic;
    model::Forest forest = GbdtTrainer(config).train(dataset);
    EXPECT_EQ(forest.objective(), model::Objective::kBinaryLogistic);

    float negative[2] = {0.1f, 0.1f};
    float positive[2] = {0.95f, 0.9f};
    EXPECT_LT(forest.predict(negative), 0.2f);
    EXPECT_GT(forest.predict(positive), 0.8f);
}

TEST(GbdtTrainer, RecordsLeafHitCounts)
{
    data::Dataset dataset = makeStepDataset(300, 44);
    TrainingConfig config;
    config.numTrees = 5;
    config.maxDepth = 3;
    model::Forest forest = GbdtTrainer(config).train(dataset);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        double total = 0;
        for (model::NodeIndex leaf : forest.tree(t).leafIndices())
            total += forest.tree(t).node(leaf).hitCount;
        EXPECT_DOUBLE_EQ(total, 300.0);
    }
}

TEST(GbdtTrainer, RespectsMaxDepth)
{
    data::Dataset dataset = makeStepDataset(400, 55);
    TrainingConfig config;
    config.numTrees = 10;
    config.maxDepth = 3;
    model::Forest forest = GbdtTrainer(config).train(dataset);
    EXPECT_LE(forest.maxDepth(), 3);
}

TEST(GbdtTrainer, TrainedModelCompilesAndMatchesReference)
{
    data::Dataset dataset = makeStepDataset(500, 66);
    TrainingConfig config;
    config.numTrees = 25;
    config.maxDepth = 5;
    model::Forest forest = GbdtTrainer(config).train(dataset);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.interleaveFactor = 4;
    Session session = compile(forest, schedule);

    std::vector<float> reference(
        static_cast<size_t>(dataset.numRows()));
    forest.predictBatch(dataset.rows(), dataset.numRows(),
                        reference.data());
    std::vector<float> actual(static_cast<size_t>(dataset.numRows()));
    session.predict(dataset.rows(), dataset.numRows(), actual.data());
    for (size_t i = 0; i < reference.size(); ++i)
        EXPECT_NEAR(reference[i], actual[i], 1e-4);
}

TEST(GbdtTrainer, RejectsInvalidInputs)
{
    data::Dataset no_labels(2);
    no_labels.appendRow({1.0f, 2.0f});
    EXPECT_THROW(GbdtTrainer({}).train(no_labels), Error);

    TrainingConfig bad;
    bad.numTrees = 0;
    EXPECT_THROW(GbdtTrainer{bad}, Error);
    bad = {};
    bad.numBins = 1;
    EXPECT_THROW(GbdtTrainer{bad}, Error);
    bad = {};
    bad.learningRate = 0.0;
    EXPECT_THROW(GbdtTrainer{bad}, Error);
}

TEST(LossHelpers, MseAndLogLoss)
{
    EXPECT_DOUBLE_EQ(meanSquaredError({1.0f, 2.0f}, {1.0f, 4.0f}), 2.0);
    EXPECT_NEAR(logLoss({0.9f, 0.1f}, {1.0f, 0.0f}),
                -std::log(0.9), 1e-6);
    EXPECT_THROW(meanSquaredError({1.0f}, {1.0f, 2.0f}), Error);
    EXPECT_THROW(logLoss({}, {}), Error);
}

} // namespace
} // namespace treebeard::train
