/**
 * @file
 * Seeded random-frame fuzzing of the TCP transport: each seed opens a
 * connection to a live WireServer and throws generated garbage at it —
 * pure random bytes, valid headers with random payloads, valid magic
 * with random opcodes and declared lengths — then proves the server is
 * still alive and exact by completing a real LOAD + PREDICT round trip
 * afterwards. The invariant under fuzz is never a specific response
 * (garbage earns whatever error the protocol documents) but that the
 * server neither crashes, hangs, leaks connections nor trips the
 * lock-order validator.
 *
 * The suite registers 32 seeds but runs only the first
 * TREEBEARD_FUZZ_SEEDS of them (default 6); the rest GTEST_SKIP so
 * the registered set is stable for ctest. Carries the "fuzz" label:
 * select with `ctest -L fuzz`.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

using namespace treebeard;
using namespace treebeard::testing;

namespace {

/** Arm the lock-order validator before any test constructs a mutex. */
struct LockCheckBootstrap
{
    LockCheckBootstrap()
    {
        clearLockStateForTesting();
        setLockChecking(true);
    }
};
LockCheckBootstrap lock_check_bootstrap;

int
fuzzSeedBound()
{
    const char *env = std::getenv("TREEBEARD_FUZZ_SEEDS");
    if (env == nullptr || *env == '\0')
        return 6;
    int bound = std::atoi(env);
    return bound < 0 ? 0 : bound;
}

/** Best-effort write; the server may close on us mid-burst. */
void
fuzzWrite(int fd, const std::string &bytes)
{
    size_t done = 0;
    while (done < bytes.size()) {
        ssize_t sent = ::send(fd, bytes.data() + done,
                              bytes.size() - done, MSG_NOSIGNAL);
        if (sent <= 0)
            return;
        done += static_cast<size_t>(sent);
    }
}

/** Drain whatever the server answered until it closes or runs dry. */
void
fuzzDrain(int fd)
{
    // The socket is O_NONBLOCK-free, so bound the drain with a small
    // receive timeout instead of risking a blocked test.
    struct timeval timeout = {0, 50 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
    char sink[512];
    while (::recv(fd, sink, sizeof(sink), 0) > 0) {
    }
}

std::string
randomBytes(Rng &rng, size_t count)
{
    std::string bytes(count, '\0');
    for (char &byte : bytes)
        byte = static_cast<char>(rng.uniformInt(0, 255));
    return bytes;
}

class WireFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(WireFuzz, RandomFramesNeverKillTheServer)
{
    uint64_t seed = GetParam();
    if (seed >= static_cast<uint64_t>(fuzzSeedBound()))
        GTEST_SKIP() << "seed beyond TREEBEARD_FUZZ_SEEDS bound";
    Rng rng(seed * 7919 + 31);

    serve::TransportOptions transport;
    transport.maxFramePayloadBytes = 1 << 16;
    serve::Server server;
    serve::WireServer wire_server(server, transport);

    for (int connection = 0; connection < 8; ++connection) {
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons(wire_server.port());
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&address),
                      sizeof(address)) != 0) {
            // Only a legitimate SHUTDOWN frame in an earlier burst
            // may close the listener; anything else is a dead server.
            ::close(fd);
            ASSERT_TRUE(wire_server.stopRequested())
                << "listener gone without a stop request";
            break;
        }
        for (int burst = 0; burst < 4; ++burst) {
            switch (rng.uniformInt(0, 2)) {
            case 0: {
                // Pure garbage: almost surely bad magic.
                fuzzWrite(fd, randomBytes(
                                  rng, rng.uniformInt(1, 256)));
                break;
            }
            case 1: {
                // A well-formed envelope around a random payload:
                // exercises every opcode's payload decoder.
                auto opcode = static_cast<serve::wire::Opcode>(
                    rng.uniformInt(1, 5));
                fuzzWrite(fd, serve::wire::encodeFrame(
                                  opcode, serve::wire::Status::kOk,
                                  randomBytes(
                                      rng,
                                      rng.uniformInt(0, 512))));
                break;
            }
            case 2: {
                // Valid magic + version, then random opcode, status
                // and declared length — the payload may be shorter
                // than declared (a truncation the next connection
                // recovers from) or absurdly long (frame cap).
                std::string frame;
                frame.append(reinterpret_cast<const char *>(
                                 serve::wire::kMagic),
                             sizeof(serve::wire::kMagic));
                frame.push_back(static_cast<char>(
                    serve::wire::kWireVersion));
                frame.append(randomBytes(rng, 3));
                serve::wire::appendU32(
                    &frame, static_cast<uint32_t>(rng.uniformInt(
                                0, 1 << 20)));
                frame.append(randomBytes(
                    rng, rng.uniformInt(0, 128)));
                fuzzWrite(fd, frame);
                break;
            }
            }
        }
        fuzzDrain(fd);
        ::close(fd);
    }

    // A burst can contain a genuinely valid SHUTDOWN frame (empty
    // payload, right magic and version) — random bytes that decode
    // to the documented stop command. That outcome is correct
    // protocol behavior, so the invariant shifts from "still serving"
    // to "stopped cleanly".
    if (wire_server.stopRequested()) {
        wire_server.stop();
        EXPECT_EQ(lockViolationCount(), 0);
        return;
    }

    // Liveness + exactness probe: after the storm, a real client
    // still gets compiled, batched, bit-exact service.
    RandomForestSpec spec;
    spec.numTrees = 12;
    spec.maxDepth = 4;
    spec.seed = 9000 + seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), 4, 9100 + seed);

    serve::Client client("127.0.0.1", wire_server.port());
    serve::ModelHandle handle = client.loadModel(forest);
    std::vector<float> served =
        client.predict(handle, rows.data(), 4,
                       forest.numFeatures());

    Session session = compile(forest, {}, {});
    std::vector<float> direct(4 * session.numClasses());
    session.predict(rows.data(), 4, direct.data());
    ASSERT_EQ(served.size(), direct.size());
    for (size_t i = 0; i < served.size(); ++i)
        EXPECT_EQ(served[i], direct[i]) << "row " << i;

    EXPECT_EQ(lockViolationCount(), 0)
        << "fuzzed teardown paths must keep the lock order clean";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Range<uint64_t>(0, 32));

} // namespace
