/**
 * @file
 * Mutation corpus for the multi-level verifier: each test corrupts
 * one field of a valid model / schedule / HIR / MIR / LIR artifact
 * and asserts that the verifier reports the exact diagnostic code for
 * that invariant class — and nothing at all on the unmutated input.
 */
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "ir/pass_manager.h"
#include "lir/layout_builder.h"
#include "mir/lowering.h"
#include "model/serialization.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

using analysis::DiagnosticEngine;
using analysis::VerificationError;

constexpr float kInf = std::numeric_limits<float>::infinity();

hir::HirModule
makeTiledModule(hir::Schedule schedule, int64_t trees = 8,
                uint64_t seed = 77)
{
    testing::RandomForestSpec spec;
    spec.numTrees = trees;
    spec.seed = seed;
    hir::HirModule module(testing::makeRandomForest(spec), schedule);
    module.runAllHirPasses();
    return module;
}

lir::ForestBuffers
makeBuffers(hir::MemoryLayout layout, int32_t tile_size = 4)
{
    hir::Schedule schedule;
    schedule.tileSize = tile_size;
    schedule.layout = layout;
    hir::HirModule module = makeTiledModule(schedule);
    return lir::buildForestBuffers(module);
}

/** Run the LIR analysis and return the engine for code assertions. */
DiagnosticEngine
runLirVerifier(const lir::ForestBuffers &buffers)
{
    DiagnosticEngine diag;
    diag.setPass("test");
    analysis::verifyLir(buffers, diag);
    return diag;
}

// ---------------------------------------------------------------------
// Model-load mutations (serialization hardening)
// ---------------------------------------------------------------------

std::string
modelJson(const std::string &tree_json)
{
    return "{\"format\":\"treebeard\",\"version\":1,"
           "\"num_features\":3,\"objective\":\"regression\","
           "\"base_score\":0,\"num_classes\":1,\"trees\":[" +
           tree_json + "]}";
}

std::string
treeJson(const std::string &root, const std::string &thresholds,
         const std::string &features, const std::string &lefts,
         const std::string &rights)
{
    return "{\"root\":" + root + ",\"threshold\":[" + thresholds +
           "],\"feature\":[" + features + "],\"left\":[" + lefts +
           "],\"right\":[" + rights + "],\"hit_count\":[1,1,1]}";
}

const char *kValidTree =
    "{\"root\":0,\"threshold\":[0.5,1.0,2.0],\"feature\":[0,-1,-1],"
    "\"left\":[1,-1,-1],\"right\":[2,-1,-1],\"hit_count\":[1,1,1]}";

model::Forest
loadFromText(const std::string &text)
{
    return model::forestFromJson(JsonValue::parse(text));
}

TEST(ModelLoadVerifier, AcceptsValidModel)
{
    model::Forest forest = loadFromText(modelJson(kValidTree));
    EXPECT_EQ(forest.numTrees(), 1);
    EXPECT_EQ(forest.numFeatures(), 3);
}

TEST(ModelLoadVerifier, RejectsNegativeFeatureIndex)
{
    std::string text = modelJson(treeJson(
        "0", "0.5,1.0,2.0", "-5,-1,-1", "1,-1,-1", "2,-1,-1"));
    try {
        loadFromText(text);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.feature.negative"))
            << error.what();
        EXPECT_EQ(error.pass(), "model-load");
    }
}

TEST(ModelLoadVerifier, RejectsOutOfRangeChildIndex)
{
    std::string text = modelJson(treeJson(
        "0", "0.5,1.0,2.0", "0,-1,-1", "1,-1,-1", "9,-1,-1"));
    try {
        loadFromText(text);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.child.out-of-range"))
            << error.what();
    }
}

TEST(ModelLoadVerifier, RejectsOutOfRangeRoot)
{
    std::string text = modelJson(treeJson(
        "7", "0.5,1.0,2.0", "0,-1,-1", "1,-1,-1", "2,-1,-1"));
    try {
        loadFromText(text);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.root.range")) << error.what();
    }
}

TEST(ModelLoadVerifier, RejectsNonFiniteThreshold)
{
    // 1e999 overflows double; the JSON parser saturates it to +inf
    // and the verifier rejects the non-finite split threshold.
    std::string text = modelJson(treeJson(
        "0", "1e999,1.0,2.0", "0,-1,-1", "1,-1,-1", "2,-1,-1"));
    try {
        loadFromText(text);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.threshold.non-finite"))
            << error.what();
    }
}

TEST(ModelLoadVerifier, RejectsFeatureBeyondNumFeatures)
{
    std::string text = modelJson(treeJson(
        "0", "0.5,1.0,2.0", "3,-1,-1", "1,-1,-1", "2,-1,-1"));
    try {
        loadFromText(text);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.feature.out-of-range"))
            << error.what();
    }
}

TEST(ModelLoadVerifier, ReportsEveryDefectInOnePass)
{
    // Two independent defects in two trees surface in one report
    // instead of stopping at the first.
    std::string text =
        "{\"format\":\"treebeard\",\"version\":1,"
        "\"num_features\":3,\"objective\":\"regression\","
        "\"base_score\":0,\"num_classes\":1,\"trees\":[" +
        treeJson("0", "0.5,1.0,2.0", "-5,-1,-1", "1,-1,-1",
                 "2,-1,-1") +
        "," +
        treeJson("7", "0.5,1.0,2.0", "0,-1,-1", "1,-1,-1",
                 "2,-1,-1") +
        "]}";
    try {
        loadFromText(text);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.feature.negative"));
        EXPECT_TRUE(error.hasCode("model.root.range"));
    }
}

TEST(ModelLoadVerifier, RejectsNegativeXgboostSplitIndex)
{
    std::string text =
        "{\"learner\":{"
        "\"learner_model_param\":{\"num_feature\":\"3\","
        "\"base_score\":\"0.5\"},"
        "\"objective\":{\"name\":\"reg:squarederror\"},"
        "\"gradient_booster\":{\"model\":{\"trees\":[{"
        "\"split_indices\":[-2,0,0],"
        "\"split_conditions\":[0.5,1.0,2.0],"
        "\"left_children\":[1,-1,-1],"
        "\"right_children\":[2,-1,-1],"
        "\"base_weights\":[0.0,1.0,2.0]}]}}}}";
    try {
        model::importXgboostJson(JsonValue::parse(text));
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("model.feature.negative"))
            << error.what();
        EXPECT_EQ(error.pass(), "model-load");
    }
}

// ---------------------------------------------------------------------
// Schedule mutations
// ---------------------------------------------------------------------

TEST(ScheduleVerifier, RejectsTileSizeOutOfRange)
{
    hir::Schedule schedule;
    schedule.tileSize = 0;
    DiagnosticEngine diag;
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.hasCode("schedule.tile-size.range"));

    schedule.tileSize = 9;
    diag.clear();
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.hasCode("schedule.tile-size.range"));
}

TEST(ScheduleVerifier, RejectsBadInterleaveFactor)
{
    hir::Schedule schedule;
    schedule.interleaveFactor = 3;
    DiagnosticEngine diag;
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.hasCode("schedule.interleave.factor"));
}

TEST(ScheduleVerifier, RejectsRowChunkOutOfRange)
{
    hir::Schedule schedule;
    schedule.rowChunkRows = -3;
    DiagnosticEngine diag;
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.hasCode("hir.schedule.row-chunk.range"));

    schedule.rowChunkRows = hir::kMaxRowChunkRows + 1;
    diag.clear();
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.hasCode("hir.schedule.row-chunk.range"));

    // 0 is the documented auto chunk (one per worker), not an error.
    schedule.rowChunkRows = 0;
    diag.clear();
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.empty()) << diag.toString();
}

TEST(ScheduleVerifier, RejectsNanAlpha)
{
    hir::Schedule schedule;
    schedule.alpha = std::nan("");
    DiagnosticEngine diag;
    analysis::verifySchedule(schedule, diag);
    EXPECT_TRUE(diag.hasCode("schedule.alpha.range"));
}

TEST(ScheduleVerifier, ValidateThrowsRecoverableError)
{
    hir::Schedule schedule;
    schedule.numThreads = 0;
    try {
        schedule.validate();
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("schedule.threads.range"));
        EXPECT_EQ(error.pass(), "schedule-validate");
    }
}

// ---------------------------------------------------------------------
// HIR mutations
// ---------------------------------------------------------------------

TEST(HirVerifier, CleanModuleHasNoDiagnostics)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.empty()) << diag.toString();
}

TEST(HirVerifier, DetectsPartitionHole)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    auto &tiled = const_cast<hir::TiledTree &>(module.tiledTree(0));
    // Drop one node from some internal tile: the tiling no longer
    // covers the base tree.
    for (hir::TileId id = 0; id < tiled.numTiles(); ++id) {
        hir::Tile &tile = tiled.mutableTile(id);
        if (tile.kind == hir::Tile::Kind::kInternal &&
            tile.numNodes() > 1) {
            tile.nodes.pop_back();
            break;
        }
    }
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.tiling.partition"))
        << diag.toString();
}

TEST(HirVerifier, DetectsNodeOutsideBaseTree)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    auto &tiled = const_cast<hir::TiledTree &>(module.tiledTree(0));
    tiled.mutableTile(0).nodes.front() =
        tiled.baseTree().numNodes() + 5;
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.tiling.node-range"))
        << diag.toString();
}

TEST(HirVerifier, DetectsRootTileWithParent)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    auto &tiled = const_cast<hir::TiledTree &>(module.tiledTree(0));
    tiled.mutableTile(tiled.rootTile()).parent = 1;
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.tiling.parent-link"))
        << diag.toString();
}

TEST(HirVerifier, DetectsStaleLeafValue)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    auto &tiled = const_cast<hir::TiledTree &>(module.tiledTree(0));
    for (hir::TileId id = 0; id < tiled.numTiles(); ++id) {
        hir::Tile &tile = tiled.mutableTile(id);
        if (tile.kind == hir::Tile::Kind::kLeaf) {
            tile.leafValue += 1.0f;
            break;
        }
    }
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.tiling.stale-leaf"))
        << diag.toString();
}

TEST(HirVerifier, DetectsBrokenTreeOrder)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    auto &order =
        const_cast<std::vector<int64_t> &>(module.treeOrder());
    order[0] = order[1]; // duplicate: no longer a permutation
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.reorder.permutation"))
        << diag.toString();
}

TEST(HirVerifier, DetectsGroupCoverageGap)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    ASSERT_FALSE(module.groups().empty());
    auto &groups =
        const_cast<std::vector<hir::TreeGroup> &>(module.groups());
    groups.back().endPos -= 1;
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.group.coverage"))
        << diag.toString();
}

TEST(HirVerifier, DetectsOverpromisedUnrollDepth)
{
    hir::Schedule schedule;
    hir::HirModule module = makeTiledModule(schedule);
    auto &groups =
        const_cast<std::vector<hir::TreeGroup> &>(module.groups());
    bool mutated = false;
    for (hir::TreeGroup &group : groups) {
        if (group.unrolledWalk) {
            group.walkDepth += 1;
            mutated = true;
            break;
        }
    }
    if (!mutated)
        GTEST_SKIP() << "no unrolled group under this schedule";
    DiagnosticEngine diag;
    analysis::verifyHir(module, diag);
    EXPECT_TRUE(diag.hasCode("hir.group.pad-depth"))
        << diag.toString();
}

// ---------------------------------------------------------------------
// MIR mutations
// ---------------------------------------------------------------------

mir::MirFunction
makeMir(hir::HirModule &module)
{
    mir::MirFunction function = mir::lowerToMir(module);
    return function;
}

TEST(MirVerifier, CleanFunctionHasNoDiagnostics)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    mir::MirFunction function = makeMir(module);
    DiagnosticEngine diag;
    analysis::verifyMir(
        function, static_cast<int64_t>(module.groups().size()), diag);
    EXPECT_TRUE(diag.empty()) << diag.toString();
}

TEST(MirVerifier, DetectsZeroStepLoop)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    mir::MirFunction function = makeMir(module);
    std::vector<mir::MirOp *> loops;
    function.body.collectMutable(mir::OpKind::kFor, loops);
    ASSERT_FALSE(loops.empty());
    loops.front()->step = "0";
    try {
        function.verify();
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("mir.loop.step-zero"));
        EXPECT_EQ(error.pass(), "mir-verify");
    }
}

TEST(MirVerifier, DetectsWalkGroupOutOfRange)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    mir::MirFunction function = makeMir(module);
    std::vector<mir::MirOp *> walks = function.walkOpsMutable();
    ASSERT_FALSE(walks.empty());
    walks.front()->groupIndex =
        static_cast<int64_t>(module.groups().size()) + 3;
    DiagnosticEngine diag;
    analysis::verifyMir(
        function, static_cast<int64_t>(module.groups().size()), diag);
    EXPECT_TRUE(diag.hasCode("mir.walk.group-range"))
        << diag.toString();
}

TEST(MirVerifier, DetectsBadInterleaveAxis)
{
    hir::HirModule module = makeTiledModule(hir::Schedule());
    mir::MirFunction function = makeMir(module);
    std::vector<mir::MirOp *> walks = function.walkOpsMutable();
    ASSERT_FALSE(walks.empty());
    walks.front()->interleave = 4;
    walks.front()->interleaveAxis = mir::InterleaveAxis::kNone;
    DiagnosticEngine diag;
    analysis::verifyMir(function, -1, diag);
    EXPECT_TRUE(diag.hasCode("mir.walk.interleave-axis"))
        << diag.toString();
}

TEST(MirVerifier, DetectsEmptyFunction)
{
    mir::MirFunction function;
    DiagnosticEngine diag;
    analysis::verifyMir(function, -1, diag);
    EXPECT_TRUE(diag.hasCode("mir.walk.none"));
    EXPECT_TRUE(diag.hasCode("mir.output.missing"));
}

// ---------------------------------------------------------------------
// LIR mutations: sparse layout
// ---------------------------------------------------------------------

/** A tile with real predicates, and the tree block holding it. */
struct SparseTilePick
{
    int64_t tile = -1;
    int64_t first = -1;
    int64_t end = -1;
};

/** First tile (any tree) with real predicates and tile children. */
SparseTilePick
findSparseInternalTile(const lir::ForestBuffers &fb,
                       bool want_tile_children)
{
    for (int64_t t = 0; t < fb.numTrees; ++t) {
        int64_t first = fb.treeFirstTile[static_cast<size_t>(t)];
        int64_t end = fb.treeTileEnd[static_cast<size_t>(t)];
        for (int64_t tile = first; tile < end; ++tile) {
            lir::ForestBuffers::TileFields fields =
                fb.tileFields(tile);
            bool all_inf = true;
            for (int32_t slot = 0; slot < fb.tileSize; ++slot)
                all_inf = all_inf && fields.thresholds[slot] == kInf;
            if (all_inf)
                continue;
            if ((fields.childBase >= 0) == want_tile_children)
                return {tile, first, end};
        }
    }
    return {};
}

TEST(LirVerifierSparse, CleanBuffersHaveNoDiagnostics)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.empty()) << diag.toString();
}

TEST(LirVerifierSparse, DetectsBackwardChildBase)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    SparseTilePick pick = findSparseInternalTile(fb, true);
    ASSERT_GE(pick.tile, 0);
    fb.childBase[static_cast<size_t>(pick.tile)] =
        static_cast<int32_t>(pick.tile);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.child-base.backward"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsChildBaseBeyondTreeBlock)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    SparseTilePick pick = findSparseInternalTile(fb, true);
    ASSERT_GE(pick.tile, 0);
    fb.childBase[static_cast<size_t>(pick.tile)] =
        static_cast<int32_t>(pick.end);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.child-base.oob"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsLeafRangeOverflow)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    SparseTilePick pick = findSparseInternalTile(fb, false);
    ASSERT_GE(pick.tile, 0);
    // Point the tile's leaf range one past the end of the pool.
    fb.childBase[static_cast<size_t>(pick.tile)] =
        static_cast<int32_t>(
            -(static_cast<int64_t>(fb.leaves.size()) + 1));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.leaf-range.oob"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsNonFiniteThreshold)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    SparseTilePick pick = findSparseInternalTile(fb, true);
    ASSERT_GE(pick.tile, 0);
    fb.thresholds[static_cast<size_t>(pick.tile * fb.tileSize)] =
        std::nanf("");
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.threshold.invalid"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsFeatureIndexOutOfRange)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    SparseTilePick pick = findSparseInternalTile(fb, true);
    ASSERT_GE(pick.tile, 0);
    fb.featureIndices[static_cast<size_t>(pick.tile * fb.tileSize)] =
        fb.numFeatures;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.feature.range")) << diag.toString();
}

TEST(LirVerifierSparse, DetectsShapeIdOutOfRange)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    int64_t tile = fb.treeFirstTile[0];
    fb.shapeIds[static_cast<size_t>(tile)] =
        static_cast<int16_t>(fb.shapes->numShapes());
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.shape-id.range")) << diag.toString();
}

TEST(LirVerifierSparse, DetectsOrphanAndSharedTiles)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    // Shift one parent's child pointer by one: its first original
    // child loses its only parent (orphan) and the tile one past its
    // children gains a second one (shared).
    int64_t victim = -1;
    for (int64_t t = 0; t < fb.numTrees && victim < 0; ++t) {
        int64_t first = fb.treeFirstTile[static_cast<size_t>(t)];
        int64_t end = fb.treeTileEnd[static_cast<size_t>(t)];
        for (int64_t tile = first; tile < end; ++tile) {
            lir::ForestBuffers::TileFields fields =
                fb.tileFields(tile);
            bool all_inf = true;
            for (int32_t slot = 0; slot < fb.tileSize; ++slot)
                all_inf = all_inf && fields.thresholds[slot] == kInf;
            if (all_inf || fields.childBase < 0)
                continue;
            int32_t children =
                fb.shapes->shape(fields.shapeId).numChildren();
            if (fields.childBase + children + 1 <= end) {
                victim = tile;
                break;
            }
        }
    }
    ASSERT_GE(victim, 0);
    fb.childBase[static_cast<size_t>(victim)] += 1;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.topology.orphan"))
        << diag.toString();
    EXPECT_TRUE(diag.hasCode("lir.topology.shared"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsBrokenSafetyTail)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    int64_t tail = fb.numTiles() - 1;
    // A tail tile that walks onwards instead of terminating.
    fb.childBase[static_cast<size_t>(tail)] = 0;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.tail.broken")) << diag.toString();
}

TEST(LirVerifierSparse, DetectsTailWithoutDefaultLeftSentinel)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    int64_t tail = fb.numTiles() - 1;
    fb.defaultLeft[static_cast<size_t>(tail)] = 0;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.sentinel.default-left"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsNonFiniteLeafPoolEntry)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    ASSERT_FALSE(fb.leaves.empty());
    fb.leaves[0] = kInf;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.leaf.non-finite"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsBufferShapeMismatch)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    fb.thresholds.pop_back();
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.buffer.shape")) << diag.toString();
}

TEST(LirVerifierSparse, DetectsTreeTableMismatch)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    fb.treeFirstTile.pop_back();
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.tree-table.shape"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsTreeClassOutOfRange)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    fb.treeClass[0] = fb.numClasses;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.tree-class.range"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsShapeTableMismatch)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse, 4);
    fb.tileSize = 3; // buffers claim a different tile size than the LUT
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.shape-table.mismatch"))
        << diag.toString();
}

TEST(LirVerifierSparse, DetectsMissingShapeTable)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kSparse);
    fb.shapes = nullptr;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.shape-table.missing"));
}

// ---------------------------------------------------------------------
// LIR mutations: array layout
// ---------------------------------------------------------------------

/** Follow child 0 from the root to the first leaf-marker tile. */
int64_t
findReachableArrayLeaf(const lir::ForestBuffers &fb)
{
    int64_t first = fb.treeFirstTile[0];
    int64_t local = 0;
    while (fb.shapeIds[static_cast<size_t>(first + local)] !=
           lir::kLeafTileMarker) {
        local = static_cast<int64_t>(fb.tileSize + 1) * local + 1;
        if (first + local >= fb.treeTileEnd[0])
            return -1;
    }
    return first + local;
}

TEST(LirVerifierArray, CleanBuffersHaveNoDiagnostics)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kArray);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.empty()) << diag.toString();
}

TEST(LirVerifierArray, DetectsReachableUnusedTile)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kArray);
    int64_t leaf = findReachableArrayLeaf(fb);
    ASSERT_GE(leaf, 0);
    fb.shapeIds[static_cast<size_t>(leaf)] = lir::kUnusedTileMarker;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.array.reached-unused"))
        << diag.toString();
}

TEST(LirVerifierArray, DetectsNonFiniteLeafValue)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kArray);
    int64_t leaf = findReachableArrayLeaf(fb);
    ASSERT_GE(leaf, 0);
    fb.thresholds[static_cast<size_t>(leaf * fb.tileSize)] =
        std::nanf("");
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.leaf.non-finite"))
        << diag.toString();
}

TEST(LirVerifierArray, DetectsChildrenBeyondTreeBlock)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kArray);
    // Truncate the last tree's block to its root tile: the root's
    // implicit children now fall outside the block.
    size_t last = static_cast<size_t>(fb.numTrees - 1);
    fb.treeTileEnd[last] = fb.treeFirstTile[last] + 1;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.array.child.oob"))
        << diag.toString();
}

TEST(LirVerifierArray, DetectsShapeIdOutOfRange)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kArray);
    int64_t root = fb.treeFirstTile[0];
    fb.shapeIds[static_cast<size_t>(root)] =
        static_cast<int16_t>(fb.shapes->numShapes() + 1);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.shape-id.range")) << diag.toString();
}

TEST(LirVerifierArray, DetectsUnorderedTreeBlocks)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kArray);
    ASSERT_GE(fb.numTrees, 2);
    fb.treeFirstTile[1] = fb.treeFirstTile[0];
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.tree-table.shape"))
        << diag.toString();
}

// ---------------------------------------------------------------------
// LIR mutations: packed layout
// ---------------------------------------------------------------------

TEST(LirVerifierPacked, CleanBuffersHaveNoDiagnostics)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.empty()) << diag.toString();
}

TEST(LirVerifierPacked, DetectsWrongStride)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    fb.packedStride *= 2;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packed.stride")) << diag.toString();
}

TEST(LirVerifierPacked, DetectsUndersizedRecordBuffer)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    ASSERT_GT(fb.packed.size(), 1u);
    fb.packed.resize(fb.packed.size() / 2);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packed.buffer-size"))
        << diag.toString();
}

TEST(LirVerifierPacked, DetectsFeaturesBeyondInt16)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    fb.numFeatures = lir::kPackedMaxFeatures;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packed.features"))
        << diag.toString();
}

TEST(LirVerifierPacked, DetectsCorruptShapeIdInRecord)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    int64_t root = fb.treeFirstTile[0];
    int16_t bad = static_cast<int16_t>(fb.shapes->numShapes() + 7);
    std::memcpy(fb.packedData() + root * fb.packedStride +
                    lir::packedShapeOffset(fb.tileSize),
                &bad, sizeof(bad));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.shape-id.range")) << diag.toString();
}

TEST(LirVerifierPacked, DetectsBackwardChildBaseInRecord)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    int64_t root = fb.treeFirstTile[0];
    // The root tile of a multi-node tree has tile children; pointing
    // its childBase at itself breaks termination.
    int32_t bad = static_cast<int32_t>(root);
    std::memcpy(fb.packedData() + root * fb.packedStride +
                    lir::packedChildBaseOffset(fb.tileSize),
                &bad, sizeof(bad));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.child-base.backward"))
        << diag.toString();
}

TEST(LirVerifierPacked, DetectsFeatureIndexOutOfRangeInRecord)
{
    lir::ForestBuffers fb = makeBuffers(hir::MemoryLayout::kPacked);
    int64_t root = fb.treeFirstTile[0];
    int16_t bad = static_cast<int16_t>(fb.numFeatures);
    std::memcpy(fb.packedData() + root * fb.packedStride +
                    lir::packedFeaturesOffset(fb.tileSize),
                &bad, sizeof(bad));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.feature.range")) << diag.toString();
}

// ---------------------------------------------------------------------
// LIR mutations: quantized packed layout
// ---------------------------------------------------------------------

lir::ForestBuffers
makeQuantizedBuffers(int32_t tile_size = 4)
{
    hir::Schedule schedule;
    schedule.tileSize = tile_size;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    hir::HirModule module = makeTiledModule(schedule);
    return lir::buildForestBuffers(module);
}

TEST(LirVerifierPackedQuantized, CleanBuffersHaveNoDiagnostics)
{
    for (int32_t tile_size : {1, 4, 8}) {
        lir::ForestBuffers fb = makeQuantizedBuffers(tile_size);
        ASSERT_EQ(fb.layout, lir::LayoutKind::kPackedQuantized);
        DiagnosticEngine diag = runLirVerifier(fb);
        EXPECT_TRUE(diag.empty())
            << "tile size " << tile_size << "\n" << diag.toString();
    }
}

TEST(LirVerifierPackedQuantized, DetectsWrongStride)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    fb.packedStride *= 2;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.stride"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsUndersizedRecordBuffer)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    ASSERT_GT(fb.packed.size(), 1u);
    fb.packed.resize(fb.packed.size() / 2);
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.stride"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsFeaturesBeyondUint8)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    fb.numFeatures = lir::kPackedQuantizedMaxFeatures;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.features"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsDegenerateAffineMap)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    fb.quantization.scale[0] = 0.0f;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.scale")) << diag.toString();

    fb = makeQuantizedBuffers();
    fb.quantization.offset[0] = std::nanf("");
    diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.scale")) << diag.toString();

    fb = makeQuantizedBuffers();
    fb.quantization.scale.pop_back();
    diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.scale")) << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsInconsistentStepBudget)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    // A step budget that disagrees with 1/scale understates (or
    // overstates) the rounding the records actually suffered.
    fb.quantization.stepBudget[0] *= 8.0f;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.budget"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsCorruptErrorBudgets)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    fb.quantization.predictionErrorBudget = -1.0f;
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.budget"))
        << diag.toString();

    // A zero max-threshold-error claims the records are exact; every
    // materialized threshold's real step contradicts it.
    fb = makeQuantizedBuffers();
    fb.quantization.maxThresholdError = 0.0f;
    diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.budget"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsSentinelInPopulatedSlot)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    int64_t root = fb.treeFirstTile[0];
    int16_t sentinel = lir::kQuantizedNaN;
    std::memcpy(fb.packedData() + root * fb.packedStride, &sentinel,
                sizeof(sentinel));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.packedq.threshold"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsCorruptShapeIdInRecord)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    int64_t root = fb.treeFirstTile[0];
    int16_t bad = static_cast<int16_t>(fb.shapes->numShapes() + 7);
    std::memcpy(fb.packedData() + root * fb.packedStride +
                    lir::packedqShapeOffset(fb.tileSize),
                &bad, sizeof(bad));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.shape-id.range")) << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsBackwardChildBaseInRecord)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    int64_t root = fb.treeFirstTile[0];
    int32_t bad = static_cast<int32_t>(root);
    std::memcpy(fb.packedData() + root * fb.packedStride +
                    lir::packedqChildBaseOffset(fb.tileSize),
                &bad, sizeof(bad));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.child-base.backward"))
        << diag.toString();
}

TEST(LirVerifierPackedQuantized, DetectsFeatureIndexOutOfRangeInRecord)
{
    lir::ForestBuffers fb = makeQuantizedBuffers();
    int64_t root = fb.treeFirstTile[0];
    uint8_t bad = 255; // model has 10 features
    std::memcpy(fb.packedData() + root * fb.packedStride +
                    lir::packedqFeaturesOffset(fb.tileSize),
                &bad, sizeof(bad));
    DiagnosticEngine diag = runLirVerifier(fb);
    EXPECT_TRUE(diag.hasCode("lir.feature.range")) << diag.toString();
}

// ---------------------------------------------------------------------
// LUT totality
// ---------------------------------------------------------------------

TEST(LirVerifier, LutLookupsAreTotalForAllTileSizes)
{
    for (int32_t tile_size = 1; tile_size <= 8; ++tile_size) {
        lir::ForestBuffers fb =
            makeBuffers(hir::MemoryLayout::kSparse, tile_size);
        DiagnosticEngine diag = runLirVerifier(fb);
        EXPECT_FALSE(diag.hasCode("lir.lut.range"))
            << "tile size " << tile_size << "\n"
            << diag.toString();
        EXPECT_FALSE(diag.hasCode("lir.lut.stride"))
            << "tile size " << tile_size;
    }
}

// ---------------------------------------------------------------------
// Pipeline integration: verifyEach and the pass-manager hook
// ---------------------------------------------------------------------

TEST(VerifyEach, CleanCompileProducesNoDiagnostics)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 10;
    model::Forest forest = testing::makeRandomForest(spec);
    for (hir::MemoryLayout layout :
         {hir::MemoryLayout::kArray, hir::MemoryLayout::kSparse,
          hir::MemoryLayout::kPacked}) {
        hir::Schedule schedule;
        schedule.layout = layout;
        schedule.interleaveFactor = 2;
        CompilerOptions options;
        options.verifyEach = true;
        Session session = compile(forest, schedule, options);
        EXPECT_TRUE(session.artifacts().diagnostics.empty())
            << hir::memoryLayoutName(layout);
        // Verification is compile-time instrumentation only: the
        // compiled session still predicts.
        std::vector<float> row(
            static_cast<size_t>(session.numFeatures()), 0.5f);
        float out = 0.0f;
        session.predict(row.data(), 1, &out);
        EXPECT_TRUE(std::isfinite(out));
    }
}

TEST(VerifyEach, PreCompileRejectsBadSchedule)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 2;
    model::Forest forest = testing::makeRandomForest(spec);
    hir::Schedule schedule;
    schedule.tileSize = 42;
    try {
        compile(forest, schedule, CompilerOptions());
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_TRUE(error.hasCode("schedule.tile-size.range"));
        EXPECT_EQ(error.pass(), "pre-compile");
    }
}

TEST(PassManager, InstrumentationRunsAfterEveryPass)
{
    ir::PassManager<int> pm;
    pm.addPass("one", [](int &value) { value += 1; });
    pm.addPass("two", [](int &value) { value *= 10; });
    std::vector<std::string> seen;
    std::vector<int> values;
    pm.setInstrumentation(
        [&](const ir::PassTrace &trace, int &value) {
            seen.push_back(trace.name);
            values.push_back(value);
        });
    int payload = 1;
    pm.run(payload);
    EXPECT_EQ(payload, 20);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "one");
    EXPECT_EQ(seen[1], "two");
    EXPECT_EQ(values[0], 2);
    EXPECT_EQ(values[1], 20);
}

TEST(PassManager, InstrumentationFailureStopsThePipeline)
{
    ir::PassManager<int> pm;
    pm.addPass("one", [](int &value) { value += 1; });
    pm.addPass("two", [](int &value) { value *= 10; });
    pm.setInstrumentation([](const ir::PassTrace &trace, int &) {
        if (trace.name == "one") {
            DiagnosticEngine diag;
            diag.setPass(trace.name);
            diag.error(analysis::IrLevel::kMir, "test.code", "boom");
            diag.throwIfErrors();
        }
    });
    int payload = 1;
    try {
        pm.run(payload);
        FAIL() << "expected VerificationError";
    } catch (const VerificationError &error) {
        EXPECT_EQ(error.pass(), "one");
        EXPECT_TRUE(error.hasCode("test.code"));
    }
    EXPECT_EQ(payload, 2) << "pass 'two' must not have run";
}

} // namespace
} // namespace treebeard
