/**
 * @file
 * Tests for the three comparison systems: XGBoost-style (both loop
 * orders), Treelite-style (if-else codegen through the system
 * compiler) and Hummingbird-style (GEMM and PerfectTreeTraversal).
 * Every baseline must agree with the reference model walk.
 */
#include <gtest/gtest.h>

#include "baselines/gemm.h"
#include "baselines/hummingbird_style.h"
#include "baselines/treelite_style.h"
#include "baselines/xgboost_style.h"
#include "lir/forest_buffers.h"
#include "test_utils.h"

namespace treebeard::baselines {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;
using testing::referencePredictions;

class BaselineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        testing::RandomForestSpec spec;
        spec.numTrees = 25;
        spec.maxDepth = 7;
        spec.seed = 31;
        forest_ = makeRandomForest(spec);
        quantizeLeafValues(forest_);
        rows_ = makeRandomRows(spec.numFeatures, 200, 32);
        expected_ = referencePredictions(forest_, rows_);
    }

    model::Forest forest_{1};
    std::vector<float> rows_;
    std::vector<float> expected_;
};

TEST_F(BaselineFixture, XgBoostV09MatchesReference)
{
    XgBoostStyle predictor(forest_, XgBoostVersion::kV09);
    std::vector<float> actual(expected_.size());
    predictor.predict(rows_.data(),
                      static_cast<int64_t>(expected_.size()),
                      actual.data());
    expectPredictionsExact(expected_, actual);
}

TEST_F(BaselineFixture, XgBoostV15MatchesReference)
{
    XgBoostStyle predictor(forest_, XgBoostVersion::kV15,
                           /*num_threads=*/1, /*row_block=*/7);
    std::vector<float> actual(expected_.size());
    predictor.predict(rows_.data(),
                      static_cast<int64_t>(expected_.size()),
                      actual.data());
    expectPredictionsExact(expected_, actual);
}

TEST_F(BaselineFixture, XgBoostParallelMatchesReference)
{
    XgBoostStyle predictor(forest_, XgBoostVersion::kV15,
                           /*num_threads=*/4);
    std::vector<float> actual(expected_.size());
    predictor.predict(rows_.data(),
                      static_cast<int64_t>(expected_.size()),
                      actual.data());
    expectPredictionsExact(expected_, actual);
    EXPECT_GT(predictor.footprintBytes(), 0);
}

TEST_F(BaselineFixture, TreeliteCodegenMatchesReference)
{
    TreeliteOptions options;
    options.optLevel = "-O0"; // fast compile for the test
    TreeliteStyle predictor(forest_, options);
    std::vector<float> actual(expected_.size());
    predictor.predict(rows_.data(),
                      static_cast<int64_t>(expected_.size()),
                      actual.data());
    expectPredictionsExact(expected_, actual);
    EXPECT_GT(predictor.compileSeconds(), 0.0);
    EXPECT_GT(predictor.generatedSourceBytes(), 1000);
}

TEST_F(BaselineFixture, TreeliteSourceLooksLikeIfElseCode)
{
    std::string source = TreeliteStyle::generateSource(forest_);
    EXPECT_NE(source.find("if (row["), std::string::npos);
    EXPECT_NE(source.find("} else {"), std::string::npos);
    EXPECT_NE(source.find("treelite_predict_range"),
              std::string::npos);
    // One function per tree.
    EXPECT_NE(source.find("tree_24"), std::string::npos);
    EXPECT_EQ(source.find("tree_25("), std::string::npos);
}

TEST_F(BaselineFixture, HummingbirdPttMatchesReference)
{
    HummingbirdOptions options;
    options.strategy = HummingbirdStrategy::kPerfectTreeTraversal;
    HummingbirdStyle predictor(forest_, options);
    EXPECT_EQ(predictor.strategy(),
              HummingbirdStrategy::kPerfectTreeTraversal);
    std::vector<float> actual(expected_.size());
    predictor.predict(rows_.data(),
                      static_cast<int64_t>(expected_.size()),
                      actual.data());
    expectPredictionsExact(expected_, actual);
}

TEST_F(BaselineFixture, HummingbirdGemmMatchesReference)
{
    HummingbirdOptions options;
    options.strategy = HummingbirdStrategy::kGemm;
    options.rowBlock = 33;
    HummingbirdStyle predictor(forest_, options);
    std::vector<float> actual(expected_.size());
    predictor.predict(rows_.data(),
                      static_cast<int64_t>(expected_.size()),
                      actual.data());
    expectPredictionsExact(expected_, actual);
}

TEST_F(BaselineFixture, HummingbirdAutoPicksPttForDeepTrees)
{
    HummingbirdStyle predictor(forest_, {});
    EXPECT_EQ(predictor.strategy(),
              HummingbirdStrategy::kPerfectTreeTraversal);
    // PTT pads trees: footprint exceeds the scalar representation.
    EXPECT_GT(predictor.footprintBytes(),
              lir::scalarRepresentationBytes(forest_));
}

TEST(HummingbirdAuto, PicksGemmForShallowTrees)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 10;
    spec.maxDepth = 3;
    spec.seed = 41;
    model::Forest forest = makeRandomForest(spec);
    HummingbirdStyle predictor(forest, {});
    EXPECT_EQ(predictor.strategy(), HummingbirdStrategy::kGemm);
}

TEST(BaselineObjectives, LogisticHandledEverywhere)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 8;
    spec.seed = 51;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kBinaryLogistic);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 50, 52);
    std::vector<float> expected = referencePredictions(forest, rows);

    XgBoostStyle xgb(forest, XgBoostVersion::kV15);
    std::vector<float> actual(50);
    xgb.predict(rows.data(), 50, actual.data());
    expectPredictionsExact(expected, actual);

    HummingbirdOptions hb_options;
    hb_options.strategy = HummingbirdStrategy::kPerfectTreeTraversal;
    HummingbirdStyle hb(forest, hb_options);
    hb.predict(rows.data(), 50, actual.data());
    expectPredictionsExact(expected, actual);

    TreeliteOptions tl_options;
    tl_options.optLevel = "-O0";
    TreeliteStyle tl(forest, tl_options);
    tl.predict(rows.data(), 50, actual.data());
    expectPredictionsExact(expected, actual);
}

TEST(Gemm, MatchesNaiveTripleLoop)
{
    Rng rng(61);
    int64_t m = 17, k = 23, n = 31;
    std::vector<float> a(static_cast<size_t>(m * k));
    std::vector<float> b(static_cast<size_t>(k * n));
    for (float &v : a)
        v = rng.uniformFloat(-1.0f, 1.0f);
    for (float &v : b)
        v = rng.uniformFloat(-1.0f, 1.0f);

    std::vector<float> c(static_cast<size_t>(m * n));
    sgemm(a.data(), b.data(), c.data(), m, k, n);

    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float expected = 0.0f;
            for (int64_t p = 0; p < k; ++p)
                expected += a[static_cast<size_t>(i * k + p)] *
                            b[static_cast<size_t>(p * n + j)];
            EXPECT_NEAR(c[static_cast<size_t>(i * n + j)], expected,
                        1e-4);
        }
    }
}

TEST(Gemm, LargeBlockedShapes)
{
    // Exercise multiple blocking tiles.
    int64_t m = 130, k = 300, n = 270;
    std::vector<float> a(static_cast<size_t>(m * k), 0.5f);
    std::vector<float> b(static_cast<size_t>(k * n), 2.0f);
    std::vector<float> c(static_cast<size_t>(m * n));
    sgemm(a.data(), b.data(), c.data(), m, k, n);
    for (size_t i = 0; i < c.size(); i += 9999)
        EXPECT_NEAR(c[i], 300.0f, 1e-2);
}

} // namespace
} // namespace treebeard::baselines
