/**
 * @file
 * Concurrency tests: one shared Session hammered by many caller
 * threads mixing predict() and predictDataset(). Sessions are
 * documented as safe for concurrent const prediction on both backends
 * — including threaded schedules, where every caller funnels work
 * through the one shared ThreadPool — and a bound Dataset is
 * immutable, so concurrent predictDataset on it is legal. Run under
 * tools/sanitize_matrix.sh thread mode to prove the absence of data
 * races in the pool handoff and the dataset cache.
 */
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;

/** Caller threads per test; kept modest so TSan runs stay fast. */
constexpr int kCallers = 8;
constexpr int kCallsPerThread = 16;

model::Forest
makeForest(uint64_t seed)
{
    testing::RandomForestSpec spec;
    spec.numFeatures = 11;
    spec.numTrees = 20;
    spec.maxDepth = 6;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    return forest;
}

struct ConcurrencyCase
{
    Backend backend;
    hir::MemoryLayout layout;
    hir::PackedPrecision precision;
    int32_t numThreads;
};

class SharedSessionConcurrency
    : public ::testing::TestWithParam<ConcurrencyCase>
{};

/**
 * Many threads call predict() and predictDataset() on one Session and
 * one bound Dataset; every call must produce the serial answer
 * bit-exactly, with no data race (TSan-checked).
 */
TEST_P(SharedSessionConcurrency, MixedPredictCallsStayExact)
{
    ConcurrencyCase param = GetParam();
    model::Forest forest = makeForest(808);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = param.layout;
    schedule.packedPrecision = param.precision;
    schedule.numThreads = param.numThreads;

    CompilerOptions options;
    options.backend = param.backend;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);

    int64_t num_rows = 53;
    std::vector<float> rows = makeRandomRows(11, num_rows, 17);
    std::vector<float> expected(static_cast<size_t>(num_rows));
    session.predict(rows.data(), num_rows, expected.data());
    Dataset dataset = session.bindDataset(rows.data(), num_rows);

    std::atomic<bool> start{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            std::vector<float> out(static_cast<size_t>(num_rows));
            while (!start.load(std::memory_order_acquire)) {
            }
            for (int call = 0; call < kCallsPerThread; ++call) {
                std::fill(out.begin(), out.end(), -1.0f);
                // Alternate paths so both run truly concurrently.
                if ((t + call) % 2 == 0)
                    session.predict(rows.data(), num_rows, out.data());
                else
                    session.predictDataset(dataset, out.data());
                if (out != expected)
                    failures.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    start.store(true, std::memory_order_release);
    for (std::thread &caller : callers)
        caller.join();
    EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SharedSessionConcurrency,
    ::testing::Values(
        ConcurrencyCase{Backend::kKernel, hir::MemoryLayout::kSparse,
                        hir::PackedPrecision::kF32, 1},
        ConcurrencyCase{Backend::kKernel, hir::MemoryLayout::kSparse,
                        hir::PackedPrecision::kF32, 4},
        ConcurrencyCase{Backend::kKernel, hir::MemoryLayout::kPacked,
                        hir::PackedPrecision::kI16, 4},
        ConcurrencyCase{Backend::kSourceJit,
                        hir::MemoryLayout::kSparse,
                        hir::PackedPrecision::kF32, 4},
        ConcurrencyCase{Backend::kSourceJit,
                        hir::MemoryLayout::kPacked,
                        hir::PackedPrecision::kI16, 4}));

/**
 * The pool handoff itself: concurrent parallelFor callers on one
 * ThreadPool must each see their own completion exactly (the
 * completion latch is heap-owned per call; a spurious wakeup on one
 * caller must never tear down state another task still touches).
 */
TEST(ThreadPoolConcurrency, ConcurrentParallelForCallers)
{
    ThreadPool pool(4);
    std::vector<std::thread> callers;
    std::atomic<int64_t> total{0};
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&] {
            for (int call = 0; call < 50; ++call) {
                std::atomic<int64_t> local{0};
                pool.parallelFor(0, 97, [&](int64_t begin, int64_t end) {
                    local.fetch_add(end - begin,
                                    std::memory_order_relaxed);
                });
                EXPECT_EQ(local.load(), 97);
                total.fetch_add(local.load(),
                                std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &caller : callers)
        caller.join();
    EXPECT_EQ(total.load(), int64_t{97} * 50 * kCallers);
}

/** runOnAllWorkers from several threads at once (the JIT fan-out). */
TEST(ThreadPoolConcurrency, ConcurrentRunOnAllWorkers)
{
    ThreadPool pool(3);
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&] {
            for (int call = 0; call < 50; ++call) {
                std::vector<int> hits(pool.numThreads(), 0);
                pool.runOnAllWorkers(
                    [&](unsigned worker) { hits[worker] += 1; });
                for (int hit : hits)
                    EXPECT_EQ(hit, 1);
            }
        });
    }
    for (std::thread &caller : callers)
        caller.join();
}

/**
 * Rebinding one Dataset while other datasets are being predicted:
 * each thread owns its dataset, all share the session. (Rebinding a
 * dataset concurrently with predictions *on that same dataset* is
 * documented as a race and not exercised.)
 */
TEST(SharedSessionConcurrency2, PerThreadDatasetsWithRebinds)
{
    model::Forest forest = makeForest(809);
    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    schedule.numThreads = 2;
    Session session = compile(forest, schedule, {});

    int64_t num_rows = 31;
    std::vector<float> rows_a = makeRandomRows(11, num_rows, 23);
    std::vector<float> rows_b = makeRandomRows(11, num_rows, 29);
    std::vector<float> expected_a(static_cast<size_t>(num_rows));
    std::vector<float> expected_b(static_cast<size_t>(num_rows));
    session.predict(rows_a.data(), num_rows, expected_a.data());
    session.predict(rows_b.data(), num_rows, expected_b.data());

    std::atomic<int> failures{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&] {
            Dataset dataset =
                session.bindDataset(rows_a.data(), num_rows);
            std::vector<float> out(static_cast<size_t>(num_rows));
            for (int call = 0; call < kCallsPerThread; ++call) {
                bool use_a = call % 2 == 0;
                session.rebindDataset(
                    dataset, use_a ? rows_a.data() : rows_b.data(),
                    num_rows);
                session.predictDataset(dataset, out.data());
                if (out != (use_a ? expected_a : expected_b))
                    failures.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &caller : callers)
        caller.join();
    EXPECT_EQ(failures.load(), 0);
}

} // namespace
} // namespace treebeard
