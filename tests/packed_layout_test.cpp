/**
 * @file
 * Tests for the cache-line-packed (AoS) memory layout: record
 * geometry, build equivalence with the sparse layout it repacks,
 * bit-exact predictions across all three layouts (including NaN
 * routing, default directions, interleaving and multiclass), and the
 * wide-feature fallback.
 */
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "hir/hir_module.h"
#include "lir/layout_builder.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

TEST(PackedRecord, GeometryIsCacheLineFriendly)
{
    // Offsets by construction: thresholds at 0, then int16 features,
    // int16 shape id, default-left byte, 4-aligned child base.
    static_assert(lir::packedFeaturesOffset(8) == 32);
    static_assert(lir::packedShapeOffset(8) == 48);
    static_assert(lir::packedDefaultLeftOffset(8) == 50);
    static_assert(lir::packedChildBaseOffset(8) == 52);
    // The tile-size-8 record is exactly one cache line.
    static_assert(lir::packedTileStride(8) == 64);
    static_assert(sizeof(lir::PackedLine) == 64);
    static_assert(alignof(lir::PackedLine) == 64);

    // Power-of-two strides, so records never straddle a cache line.
    for (int32_t nt : {1, 2, 3, 4, 5, 6, 7, 8}) {
        int32_t stride = lir::packedTileStride(nt);
        EXPECT_GE(stride, lir::packedChildBaseOffset(nt) + 4);
        EXPECT_EQ(64 % stride, 0) << "tile size " << nt;
        // Child base is int32-aligned within the record.
        EXPECT_EQ(lir::packedChildBaseOffset(nt) % 4, 0);
    }
    EXPECT_EQ(lir::packedTileStride(1), 16);
    EXPECT_EQ(lir::packedTileStride(2), 32);
    EXPECT_EQ(lir::packedTileStride(4), 32);
}

model::Forest
makeForestWithDefaults(uint64_t seed, int64_t trees = 16,
                       int32_t features = 12, int32_t depth = 7)
{
    testing::RandomForestSpec spec;
    spec.numTrees = trees;
    spec.numFeatures = features;
    spec.maxDepth = depth;
    spec.seed = seed;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    Rng rng(seed * 7 + 3);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        model::DecisionTree &tree = forest.mutableTree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            if (!tree.node(i).isLeaf())
                tree.mutableNode(i).defaultLeft = rng.bernoulli(0.5);
        }
    }
    return forest;
}

/** Rows with NaN values mixed in to exercise default directions. */
std::vector<float>
makeRowsWithNaNs(int32_t features, int64_t num_rows, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * features);
    for (float &value : rows) {
        value = rng.bernoulli(0.1) ? kNaN
                                   : rng.uniformFloat(0.0f, 1.0f);
    }
    return rows;
}

TEST(PackedLayout, BuildRepacksSparseFieldsExactly)
{
    model::Forest forest = makeForestWithDefaults(501);
    for (int32_t tile_size : {1, 2, 4, 8}) {
        hir::Schedule schedule;
        schedule.tileSize = tile_size;
        hir::HirModule module(forest, schedule);
        module.runAllHirPasses();

        lir::ForestBuffers sparse = lir::buildSparseLayout(module);
        lir::ForestBuffers packed = lir::buildPackedLayout(module);

        ASSERT_EQ(packed.layout, lir::LayoutKind::kPacked);
        ASSERT_EQ(packed.numTiles(), sparse.numTiles());
        ASSERT_EQ(packed.packedStride,
                  lir::packedTileStride(tile_size));
        ASSERT_EQ(packed.leaves, sparse.leaves);
        ASSERT_EQ(packed.treeFirstTile, sparse.treeFirstTile);
        // The SoA arrays are released after repacking.
        EXPECT_TRUE(packed.thresholds.empty());
        EXPECT_TRUE(packed.childBase.empty());
        // Records start 64-byte aligned.
        EXPECT_EQ(reinterpret_cast<uintptr_t>(packed.packedData()) %
                      64,
                  0u);

        for (int64_t tile = 0; tile < sparse.numTiles(); ++tile) {
            lir::ForestBuffers::TileFields a = sparse.tileFields(tile);
            lir::ForestBuffers::TileFields b = packed.tileFields(tile);
            ASSERT_EQ(a.shapeId, b.shapeId) << "tile " << tile;
            ASSERT_EQ(a.defaultLeft, b.defaultLeft) << "tile " << tile;
            ASSERT_EQ(a.childBase, b.childBase) << "tile " << tile;
            for (int32_t s = 0; s < tile_size; ++s) {
                // Compare bit patterns: padding slots hold +-inf.
                float at = a.thresholds[s];
                float bt = b.thresholds[s];
                ASSERT_EQ(std::memcmp(&at, &bt, sizeof(float)), 0)
                    << "tile " << tile << " slot " << s;
                ASSERT_EQ(a.feature(s), b.feature(s))
                    << "tile " << tile << " slot " << s;
            }
        }
    }
}

TEST(PackedLayout, PredictionsBitExactAcrossLayouts)
{
    model::Forest forest = makeForestWithDefaults(901, /*trees=*/24,
                                                  /*features=*/16,
                                                  /*depth=*/8);
    std::vector<float> rows = makeRowsWithNaNs(16, 200, 902);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    for (int32_t tile_size : {1, 2, 4, 8}) {
        for (int32_t interleave : {1, 4}) {
            for (bool unroll : {false, true}) {
                hir::Schedule schedule;
                schedule.tileSize = tile_size;
                schedule.interleaveFactor = interleave;
                schedule.padAndUnrollWalks = unroll;
                schedule.layout = hir::MemoryLayout::kPacked;

                Session session =
                    compile(forest, schedule);
                ASSERT_EQ(session.plan().buffers().layout,
                          lir::LayoutKind::kPacked);
                std::vector<float> actual(200);
                session.predict(rows.data(), 200, actual.data());
                testing::expectPredictionsExact(expected, actual);
            }
        }
    }
}

TEST(PackedLayout, MulticlassMatchesReference)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.numFeatures = 10;
    spec.maxDepth = 6;
    spec.seed = 777;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kMulticlassSoftmax);
    forest.setNumClasses(3);
    forest.setBaseScore(0.0f);

    std::vector<float> rows = makeRowsWithNaNs(10, 80, 778);
    std::vector<float> expected(80 * 3);
    forest.predictBatch(rows.data(), 80, expected.data());

    for (int32_t tile_size : {1, 4, 8}) {
        hir::Schedule schedule;
        schedule.tileSize = tile_size;
        schedule.interleaveFactor = 4;
        schedule.layout = hir::MemoryLayout::kPacked;
        Session session = compile(forest, schedule);
        std::vector<float> actual(80 * 3);
        session.predict(rows.data(), 80, actual.data());
        testing::expectPredictionsExact(expected, actual);
    }
}

TEST(PackedLayout, InstrumentedPathAgrees)
{
    model::Forest forest = makeForestWithDefaults(311);
    std::vector<float> rows = makeRowsWithNaNs(12, 64, 312);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.layout = hir::MemoryLayout::kPacked;
    Session session = compile(forest, schedule);
    std::vector<float> actual(64);
    runtime::WalkCounters counters;
    session.predictInstrumented(rows.data(), 64, actual.data(),
                                &counters);
    testing::expectPredictionsExact(expected, actual);
    EXPECT_GT(counters.tilesVisited, 0);
    // Every visited packed tile touches its full record stride.
    EXPECT_EQ(counters.modelBytesTouched,
              counters.tilesVisited *
                  session.plan().buffers().packedStride);
}

TEST(PackedLayout, WideFeatureModelsFallBackToSparse)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 3;
    spec.numFeatures = lir::kPackedMaxFeatures + 100;
    spec.maxDepth = 4;
    spec.statisticsRows = 0;
    spec.seed = 404;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = hir::MemoryLayout::kPacked;
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    // The explicit builder refuses; the driver falls back to sparse.
    EXPECT_THROW(lir::buildPackedLayout(module), Error);
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);
    EXPECT_EQ(buffers.layout, lir::LayoutKind::kSparse);

    // End to end the schedule still compiles and predicts correctly.
    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 8, 405);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);
    Session session = compile(forest, schedule);
    EXPECT_EQ(session.plan().buffers().layout,
              lir::LayoutKind::kSparse);
    std::vector<float> actual(8);
    session.predict(rows.data(), 8, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

// ---------------------------------------------------------------------
// Int16-quantized packed records (two tiles per cache line).
// ---------------------------------------------------------------------

TEST(PackedQuantizedRecord, GeometryIsTwoRecordsPerCacheLine)
{
    // Offsets by construction: int16 thresholds at 0, uint8 features,
    // 2-aligned int16 shape id, default-left byte, 4-aligned child
    // base.
    static_assert(lir::packedqFeaturesOffset(8) == 16);
    static_assert(lir::packedqShapeOffset(8) == 24);
    static_assert(lir::packedqDefaultLeftOffset(8) == 26);
    static_assert(lir::packedqChildBaseOffset(8) == 28);
    // The headline invariant: the tile-size-8 record is exactly 32
    // bytes, so two records share each cache line (half the f32
    // packed record).
    static_assert(lir::packedqTileStride(8) == 32);
    static_assert(lir::packedTileStride(8) ==
                  2 * lir::packedqTileStride(8));

    for (int32_t nt : {1, 2, 3, 4, 5, 6, 7, 8}) {
        int32_t stride = lir::packedqTileStride(nt);
        EXPECT_GE(stride, lir::packedqChildBaseOffset(nt) + 4);
        EXPECT_EQ(64 % stride, 0) << "tile size " << nt;
        EXPECT_EQ(lir::packedqChildBaseOffset(nt) % 4, 0);
        EXPECT_EQ(lir::packedqShapeOffset(nt) % 2, 0);
    }
    EXPECT_EQ(lir::packedqTileStride(1), 16);
    EXPECT_EQ(lir::packedqTileStride(2), 16);
    EXPECT_EQ(lir::packedqTileStride(4), 32);
}

TEST(PackedQuantizedLayout, BuildQuantizesSparseFieldsExactly)
{
    model::Forest forest = makeForestWithDefaults(601);
    for (int32_t tile_size : {1, 2, 4, 8}) {
        hir::Schedule schedule;
        schedule.tileSize = tile_size;
        hir::HirModule module(forest, schedule);
        module.runAllHirPasses();

        lir::ForestBuffers sparse = lir::buildSparseLayout(module);
        lir::ForestBuffers packed =
            lir::buildPackedQuantizedLayout(module);

        ASSERT_EQ(packed.layout, lir::LayoutKind::kPackedQuantized);
        ASSERT_EQ(packed.numTiles(), sparse.numTiles());
        ASSERT_EQ(packed.packedStride,
                  lir::packedqTileStride(tile_size));
        ASSERT_EQ(packed.leaves, sparse.leaves);
        ASSERT_EQ(packed.treeFirstTile, sparse.treeFirstTile);
        EXPECT_TRUE(packed.thresholds.empty());
        EXPECT_TRUE(packed.childBase.empty());
        EXPECT_EQ(reinterpret_cast<uintptr_t>(packed.packedData()) %
                      64,
                  0u);

        // Affine maps exist for every feature and are usable.
        const lir::QuantizationInfo &q = packed.quantization;
        ASSERT_EQ(q.scale.size(),
                  static_cast<size_t>(packed.numFeatures));
        ASSERT_EQ(q.offset.size(), q.scale.size());
        ASSERT_EQ(q.stepBudget.size(), q.scale.size());
        for (size_t f = 0; f < q.scale.size(); ++f) {
            EXPECT_TRUE(std::isfinite(q.scale[f]));
            EXPECT_GT(q.scale[f], 0.0f);
            EXPECT_TRUE(std::isfinite(q.offset[f]));
            EXPECT_NEAR(q.stepBudget[f] * q.scale[f], 1.0f, 1e-3f);
        }
        EXPECT_GE(q.predictionErrorBudget, 0.0f);

        for (int64_t tile = 0; tile < sparse.numTiles(); ++tile) {
            lir::ForestBuffers::TileFields a = sparse.tileFields(tile);
            lir::ForestBuffers::TileFields b = packed.tileFields(tile);
            ASSERT_EQ(a.shapeId, b.shapeId) << "tile " << tile;
            ASSERT_EQ(a.defaultLeft, b.defaultLeft) << "tile " << tile;
            ASSERT_EQ(a.childBase, b.childBase) << "tile " << tile;
            for (int32_t s = 0; s < tile_size; ++s) {
                ASSERT_EQ(a.feature(s), b.feature(s))
                    << "tile " << tile << " slot " << s;
                // A +inf (dummy/padding) slot takes the sentinel;
                // finite thresholds quantize with the runtime's exact
                // rounding, landing within one step of the original.
                float t = a.thresholds[s];
                int16_t expected =
                    std::isinf(t) ? lir::kQuantizedNaN
                                  : packed.quantization.quantizeValue(
                                        t, a.feature(s));
                ASSERT_EQ(b.qthresholds[s], expected)
                    << "tile " << tile << " slot " << s;
                if (!std::isinf(t) &&
                    expected != lir::kQuantizedNaN - 1 &&
                    expected != std::numeric_limits<int16_t>::min()) {
                    size_t f = static_cast<size_t>(a.feature(s));
                    float dequantized =
                        static_cast<float>(expected) / q.scale[f] +
                        q.offset[f];
                    ASSERT_LE(std::abs(dequantized - t),
                              q.stepBudget[f] * 0.6f +
                                  std::abs(t) * 1e-5f)
                        << "tile " << tile << " slot " << s;
                }
            }
        }
    }
}

TEST(PackedQuantizedLayout, QuantizeValueRoundsWithinHalfStep)
{
    hir::Schedule schedule;
    schedule.tileSize = 8;
    model::Forest forest = makeForestWithDefaults(602);
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers fb = lir::buildPackedQuantizedLayout(module);
    const lir::QuantizationInfo &q = fb.quantization;

    EXPECT_EQ(q.quantizeValue(kNaN, 0), lir::kQuantizedNaN);
    Rng rng(603);
    for (int32_t trial = 0; trial < 2000; ++trial) {
        int32_t f = static_cast<int32_t>(trial) % fb.numFeatures;
        float v = rng.uniformFloat(-0.5f, 1.5f);
        int16_t qv = q.quantizeValue(v, f);
        EXPECT_NE(qv, lir::kQuantizedNaN);
        if (qv == lir::kQuantizedNaN - 1 ||
            qv == std::numeric_limits<int16_t>::min()) {
            continue; // clamped: |v| is outside the threshold range
        }
        size_t fs = static_cast<size_t>(f);
        float dequantized =
            static_cast<float>(qv) / q.scale[fs] + q.offset[fs];
        EXPECT_LE(std::abs(dequantized - v),
                  q.stepBudget[fs] * 0.6f + std::abs(v) * 1e-5f)
            << "feature " << f << " value " << v;
    }
}

/**
 * Move every finite row value out of the quantization dead zones: any
 * value within two steps of some threshold of its feature could
 * legitimately flip its compare under int16 rounding, so nudge it
 * clear. The surviving rows must then predict bit-identically to f32.
 */
void
clearQuantizationDeadZones(std::vector<float> &rows,
                           const model::Forest &forest,
                           const lir::QuantizationInfo &q)
{
    int32_t nf = forest.numFeatures();
    std::vector<std::vector<float>> thresholds(
        static_cast<size_t>(nf));
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            const model::Node &node = tree.node(i);
            if (!node.isLeaf())
                thresholds[static_cast<size_t>(node.featureIndex)]
                    .push_back(node.threshold);
        }
    }
    for (size_t i = 0; i < rows.size(); ++i) {
        size_t f = i % static_cast<size_t>(nf);
        float &v = rows[i];
        if (v != v)
            continue; // NaN routes identically in both precisions
        float step = q.stepBudget[f];
        bool moved = true;
        while (moved) {
            moved = false;
            for (float t : thresholds[f]) {
                if (std::abs(v - t) <= 2.0f * step) {
                    v += 4.0f * step;
                    moved = true;
                }
            }
        }
    }
}

TEST(PackedQuantizedLayout, MatchesF32AwayFromDeadZones)
{
    model::Forest forest = makeForestWithDefaults(911, /*trees=*/24,
                                                  /*features=*/16,
                                                  /*depth=*/8);
    std::vector<float> rows = makeRowsWithNaNs(16, 200, 912);

    hir::Schedule quantized_schedule;
    quantized_schedule.tileSize = 8;
    quantized_schedule.layout = hir::MemoryLayout::kPacked;
    quantized_schedule.packedPrecision = hir::PackedPrecision::kI16;
    Session probe = compile(forest, quantized_schedule);
    ASSERT_EQ(probe.plan().buffers().layout,
              lir::LayoutKind::kPackedQuantized);
    clearQuantizationDeadZones(rows, forest,
                               probe.plan().buffers().quantization);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    for (int32_t tile_size : {1, 2, 4, 8}) {
        for (int32_t interleave : {1, 4}) {
            for (bool unroll : {false, true}) {
                for (bool pipeline : {false, true}) {
                    hir::Schedule schedule;
                    schedule.tileSize = tile_size;
                    schedule.interleaveFactor = interleave;
                    schedule.padAndUnrollWalks = unroll;
                    schedule.layout = hir::MemoryLayout::kPacked;
                    schedule.packedPrecision =
                        hir::PackedPrecision::kI16;
                    schedule.pipelinePackedWalks = pipeline;

                    Session session =
                        compile(forest, schedule);
                    ASSERT_EQ(session.plan().buffers().layout,
                              lir::LayoutKind::kPackedQuantized);
                    std::vector<float> actual(200);
                    session.predict(rows.data(), 200, actual.data());
                    testing::expectPredictionsExact(expected, actual);
                }
            }
        }
    }
}

TEST(PackedQuantizedLayout, MulticlassMatchesF32AwayFromDeadZones)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.numFeatures = 10;
    spec.maxDepth = 6;
    spec.seed = 787;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kMulticlassSoftmax);
    forest.setNumClasses(3);
    forest.setBaseScore(0.0f);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.interleaveFactor = 4;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;

    std::vector<float> rows = makeRowsWithNaNs(10, 80, 788);
    Session session = compile(forest, schedule);
    clearQuantizationDeadZones(rows, forest,
                               session.plan().buffers().quantization);
    std::vector<float> expected(80 * 3);
    forest.predictBatch(rows.data(), 80, expected.data());

    std::vector<float> actual(80 * 3);
    session.predict(rows.data(), 80, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

TEST(PackedQuantizedLayout, DriftIsBoundedByDeclaredBudget)
{
    // No dead-zone clearing here: rows may straddle effective
    // thresholds, so predictions can drift — but never past the
    // recorded worst-case budget.
    model::Forest forest = makeForestWithDefaults(921, /*trees=*/24,
                                                  /*features=*/16,
                                                  /*depth=*/8);
    std::vector<float> rows = makeRowsWithNaNs(16, 300, 922);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    Session session = compile(forest, schedule);
    float budget =
        session.plan().buffers().quantization.predictionErrorBudget;
    ASSERT_GT(budget, 0.0f);

    std::vector<float> actual(300);
    session.predict(rows.data(), 300, actual.data());
    for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_LE(std::abs(actual[i] - expected[i]),
                  budget + 1e-4f)
            << "row " << i;
    }
}

TEST(PackedQuantizedLayout, InstrumentedPathAgrees)
{
    model::Forest forest = makeForestWithDefaults(321);
    std::vector<float> rows = makeRowsWithNaNs(12, 64, 322);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    Session session = compile(forest, schedule);
    ASSERT_EQ(session.plan().buffers().layout,
              lir::LayoutKind::kPackedQuantized);

    // The instrumented walk quantizes on the fly with the same
    // rounding, so it must agree bit-for-bit with the kernels.
    std::vector<float> expected(64);
    session.predict(rows.data(), 64, expected.data());
    std::vector<float> actual(64);
    runtime::WalkCounters counters;
    session.predictInstrumented(rows.data(), 64, actual.data(),
                                &counters);
    testing::expectPredictionsExact(expected, actual);
    EXPECT_GT(counters.tilesVisited, 0);
    // Every visited quantized tile touches exactly its 32-byte record.
    EXPECT_EQ(session.plan().buffers().packedStride, 32);
    EXPECT_EQ(counters.modelBytesTouched, counters.tilesVisited * 32);
}

TEST(PackedQuantizedLayout, WideFeatureModelsFallBackToF32Packed)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 3;
    spec.numFeatures = lir::kPackedQuantizedMaxFeatures + 10;
    spec.maxDepth = 4;
    spec.statisticsRows = 0;
    spec.seed = 414;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    // The explicit builder refuses; the driver falls back to the f32
    // packed records, which predict exactly like any f32 layout.
    EXPECT_THROW(lir::buildPackedQuantizedLayout(module), Error);
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);
    EXPECT_EQ(buffers.layout, lir::LayoutKind::kPacked);

    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 8, 415);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);
    Session session = compile(forest, schedule);
    EXPECT_EQ(session.plan().buffers().layout,
              lir::LayoutKind::kPacked);
    std::vector<float> actual(8);
    session.predict(rows.data(), 8, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

TEST(PackedLayout, PipelineToggleIsBitExact)
{
    // The software-pipelined interleaved walkers must be a pure
    // scheduling change for the f32 records too.
    model::Forest forest = makeForestWithDefaults(931);
    std::vector<float> rows = makeRowsWithNaNs(12, 128, 932);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    for (bool unroll : {false, true}) {
        for (bool pipeline : {false, true}) {
            hir::Schedule schedule;
            schedule.tileSize = 8;
            schedule.interleaveFactor = 8;
            schedule.padAndUnrollWalks = unroll;
            schedule.layout = hir::MemoryLayout::kPacked;
            schedule.pipelinePackedWalks = pipeline;
            Session session = compile(forest, schedule);
            std::vector<float> actual(128);
            session.predict(rows.data(), 128, actual.data());
            testing::expectPredictionsExact(expected, actual);
        }
    }
}

} // namespace
} // namespace treebeard
