/**
 * @file
 * Tests for the cache-line-packed (AoS) memory layout: record
 * geometry, build equivalence with the sparse layout it repacks,
 * bit-exact predictions across all three layouts (including NaN
 * routing, default directions, interleaving and multiclass), and the
 * wide-feature fallback.
 */
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "hir/hir_module.h"
#include "lir/layout_builder.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

TEST(PackedRecord, GeometryIsCacheLineFriendly)
{
    // Offsets by construction: thresholds at 0, then int16 features,
    // int16 shape id, default-left byte, 4-aligned child base.
    static_assert(lir::packedFeaturesOffset(8) == 32);
    static_assert(lir::packedShapeOffset(8) == 48);
    static_assert(lir::packedDefaultLeftOffset(8) == 50);
    static_assert(lir::packedChildBaseOffset(8) == 52);
    // The tile-size-8 record is exactly one cache line.
    static_assert(lir::packedTileStride(8) == 64);
    static_assert(sizeof(lir::PackedLine) == 64);
    static_assert(alignof(lir::PackedLine) == 64);

    // Power-of-two strides, so records never straddle a cache line.
    for (int32_t nt : {1, 2, 3, 4, 5, 6, 7, 8}) {
        int32_t stride = lir::packedTileStride(nt);
        EXPECT_GE(stride, lir::packedChildBaseOffset(nt) + 4);
        EXPECT_EQ(64 % stride, 0) << "tile size " << nt;
        // Child base is int32-aligned within the record.
        EXPECT_EQ(lir::packedChildBaseOffset(nt) % 4, 0);
    }
    EXPECT_EQ(lir::packedTileStride(1), 16);
    EXPECT_EQ(lir::packedTileStride(2), 32);
    EXPECT_EQ(lir::packedTileStride(4), 32);
}

model::Forest
makeForestWithDefaults(uint64_t seed, int64_t trees = 16,
                       int32_t features = 12, int32_t depth = 7)
{
    testing::RandomForestSpec spec;
    spec.numTrees = trees;
    spec.numFeatures = features;
    spec.maxDepth = depth;
    spec.seed = seed;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    Rng rng(seed * 7 + 3);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        model::DecisionTree &tree = forest.mutableTree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            if (!tree.node(i).isLeaf())
                tree.mutableNode(i).defaultLeft = rng.bernoulli(0.5);
        }
    }
    return forest;
}

/** Rows with NaN values mixed in to exercise default directions. */
std::vector<float>
makeRowsWithNaNs(int32_t features, int64_t num_rows, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * features);
    for (float &value : rows) {
        value = rng.bernoulli(0.1) ? kNaN
                                   : rng.uniformFloat(0.0f, 1.0f);
    }
    return rows;
}

TEST(PackedLayout, BuildRepacksSparseFieldsExactly)
{
    model::Forest forest = makeForestWithDefaults(501);
    for (int32_t tile_size : {1, 2, 4, 8}) {
        hir::Schedule schedule;
        schedule.tileSize = tile_size;
        hir::HirModule module(forest, schedule);
        module.runAllHirPasses();

        lir::ForestBuffers sparse = lir::buildSparseLayout(module);
        lir::ForestBuffers packed = lir::buildPackedLayout(module);

        ASSERT_EQ(packed.layout, lir::LayoutKind::kPacked);
        ASSERT_EQ(packed.numTiles(), sparse.numTiles());
        ASSERT_EQ(packed.packedStride,
                  lir::packedTileStride(tile_size));
        ASSERT_EQ(packed.leaves, sparse.leaves);
        ASSERT_EQ(packed.treeFirstTile, sparse.treeFirstTile);
        // The SoA arrays are released after repacking.
        EXPECT_TRUE(packed.thresholds.empty());
        EXPECT_TRUE(packed.childBase.empty());
        // Records start 64-byte aligned.
        EXPECT_EQ(reinterpret_cast<uintptr_t>(packed.packedData()) %
                      64,
                  0u);

        for (int64_t tile = 0; tile < sparse.numTiles(); ++tile) {
            lir::ForestBuffers::TileFields a = sparse.tileFields(tile);
            lir::ForestBuffers::TileFields b = packed.tileFields(tile);
            ASSERT_EQ(a.shapeId, b.shapeId) << "tile " << tile;
            ASSERT_EQ(a.defaultLeft, b.defaultLeft) << "tile " << tile;
            ASSERT_EQ(a.childBase, b.childBase) << "tile " << tile;
            for (int32_t s = 0; s < tile_size; ++s) {
                // Compare bit patterns: padding slots hold +-inf.
                float at = a.thresholds[s];
                float bt = b.thresholds[s];
                ASSERT_EQ(std::memcmp(&at, &bt, sizeof(float)), 0)
                    << "tile " << tile << " slot " << s;
                ASSERT_EQ(a.feature(s), b.feature(s))
                    << "tile " << tile << " slot " << s;
            }
        }
    }
}

TEST(PackedLayout, PredictionsBitExactAcrossLayouts)
{
    model::Forest forest = makeForestWithDefaults(901, /*trees=*/24,
                                                  /*features=*/16,
                                                  /*depth=*/8);
    std::vector<float> rows = makeRowsWithNaNs(16, 200, 902);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    for (int32_t tile_size : {1, 2, 4, 8}) {
        for (int32_t interleave : {1, 4}) {
            for (bool unroll : {false, true}) {
                hir::Schedule schedule;
                schedule.tileSize = tile_size;
                schedule.interleaveFactor = interleave;
                schedule.padAndUnrollWalks = unroll;
                schedule.layout = hir::MemoryLayout::kPacked;

                InferenceSession session =
                    compileForest(forest, schedule);
                ASSERT_EQ(session.plan().buffers().layout,
                          lir::LayoutKind::kPacked);
                std::vector<float> actual(200);
                session.predict(rows.data(), 200, actual.data());
                testing::expectPredictionsExact(expected, actual);
            }
        }
    }
}

TEST(PackedLayout, MulticlassMatchesReference)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.numFeatures = 10;
    spec.maxDepth = 6;
    spec.seed = 777;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kMulticlassSoftmax);
    forest.setNumClasses(3);
    forest.setBaseScore(0.0f);

    std::vector<float> rows = makeRowsWithNaNs(10, 80, 778);
    std::vector<float> expected(80 * 3);
    forest.predictBatch(rows.data(), 80, expected.data());

    for (int32_t tile_size : {1, 4, 8}) {
        hir::Schedule schedule;
        schedule.tileSize = tile_size;
        schedule.interleaveFactor = 4;
        schedule.layout = hir::MemoryLayout::kPacked;
        InferenceSession session = compileForest(forest, schedule);
        std::vector<float> actual(80 * 3);
        session.predict(rows.data(), 80, actual.data());
        testing::expectPredictionsExact(expected, actual);
    }
}

TEST(PackedLayout, InstrumentedPathAgrees)
{
    model::Forest forest = makeForestWithDefaults(311);
    std::vector<float> rows = makeRowsWithNaNs(12, 64, 312);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.layout = hir::MemoryLayout::kPacked;
    InferenceSession session = compileForest(forest, schedule);
    std::vector<float> actual(64);
    runtime::WalkCounters counters;
    session.predictInstrumented(rows.data(), 64, actual.data(),
                                &counters);
    testing::expectPredictionsExact(expected, actual);
    EXPECT_GT(counters.tilesVisited, 0);
    // Every visited packed tile touches its full record stride.
    EXPECT_EQ(counters.modelBytesTouched,
              counters.tilesVisited *
                  session.plan().buffers().packedStride);
}

TEST(PackedLayout, WideFeatureModelsFallBackToSparse)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 3;
    spec.numFeatures = lir::kPackedMaxFeatures + 100;
    spec.maxDepth = 4;
    spec.statisticsRows = 0;
    spec.seed = 404;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = hir::MemoryLayout::kPacked;
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    // The explicit builder refuses; the driver falls back to sparse.
    EXPECT_THROW(lir::buildPackedLayout(module), Error);
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);
    EXPECT_EQ(buffers.layout, lir::LayoutKind::kSparse);

    // End to end the schedule still compiles and predicts correctly.
    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 8, 405);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);
    InferenceSession session = compileForest(forest, schedule);
    EXPECT_EQ(session.plan().buffers().layout,
              lir::LayoutKind::kSparse);
    std::vector<float> actual(8);
    session.predict(rows.data(), 8, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

} // namespace
} // namespace treebeard
