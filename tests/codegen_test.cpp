/**
 * @file
 * Tests for the source backend: the system JIT (compile + dlopen) and
 * the LIR -> C++ emitter, whose compiled output must match both the
 * reference walk and the kernel runtime across schedules.
 */
#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "codegen/cpp_emitter.h"
#include "common/json.h"
#include "lir/layout_builder.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard::codegen {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;
using testing::referencePredictions;

TEST(SystemJit, CompilesAndResolvesSymbols)
{
    ASSERT_TRUE(systemCompilerAvailable());
    std::string source = R"(
        extern "C" int add_ints(int a, int b) { return a + b; }
        extern "C" double the_answer() { return 42.0; }
    )";
    JitOptions options;
    options.optLevel = "-O0";
    JitModule module(source, options);
    auto add = module.function<int (*)(int, int)>("add_ints");
    EXPECT_EQ(add(20, 22), 42);
    auto answer = module.function<double (*)()>("the_answer");
    EXPECT_DOUBLE_EQ(answer(), 42.0);
    EXPECT_GT(module.compileSeconds(), 0.0);
    EXPECT_THROW(module.symbol("missing_symbol"), Error);
}

TEST(SystemJit, ReportsCompileErrorsWithDiagnostics)
{
    JitOptions options;
    options.optLevel = "-O0";
    try {
        JitModule module("this is not C++", options);
        FAIL() << "expected compilation failure";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find("error"),
                  std::string::npos);
    }
}

TEST(SystemJit, MoveSemantics)
{
    JitOptions options;
    options.optLevel = "-O0";
    JitModule a("extern \"C\" int f() { return 7; }", options);
    JitModule b = std::move(a);
    EXPECT_EQ(b.function<int (*)()>("f")(), 7);
}

TEST(SystemJit, DefaultsToO3)
{
    EXPECT_EQ(JitOptions{}.optLevel, "-O3");
}

TEST(SystemJit, MemoizesIdenticalCompilations)
{
    JitOptions options;
    options.optLevel = "-O1";
    std::string source = "extern \"C\" int g() { return 9; }";

    JitCacheStats before = jitCacheStats();
    JitModule a(source, options);
    EXPECT_GT(a.compileSeconds(), 0.0);

    // Same key: shared library, no compiler round-trip.
    JitModule b(source, options);
    EXPECT_EQ(b.compileSeconds(), 0.0);
    EXPECT_EQ(b.function<int (*)()>("g")(), 9);
    EXPECT_EQ(a.libraryPath(), b.libraryPath());

    JitCacheStats after = jitCacheStats();
    EXPECT_EQ(after.lookups, before.lookups + 2);
    EXPECT_EQ(after.hits, before.hits + 1);

    // Different flags are a different key.
    JitOptions other = options;
    other.optLevel = "-O0";
    JitModule c(source, other);
    EXPECT_GT(c.compileSeconds(), 0.0);
    EXPECT_NE(c.libraryPath(), a.libraryPath());

    // keepArtifacts compiles privately, bypassing the cache.
    JitOptions keep = options;
    keep.keepArtifacts = true;
    JitModule d(source, keep);
    EXPECT_GT(d.compileSeconds(), 0.0);
    EXPECT_NE(d.libraryPath(), a.libraryPath());
    EXPECT_EQ(jitCacheStats().lookups, after.lookups + 1);
}

/** A fresh unique disk-cache directory under the test temp dir. */
std::string
makeCacheDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(SystemJit, DiskCacheServesFreshProcesses)
{
    JitOptions options;
    options.optLevel = "-O0";
    options.cacheDir = makeCacheDir("jit_disk_cache");
    std::string source =
        "extern \"C\" int disk_cached() { return 31; }";

    JitCacheStats before = jitCacheStats();
    JitModule first(source, options);
    EXPECT_GT(first.compileSeconds(), 0.0);
    EXPECT_EQ(first.function<int (*)()>("disk_cached")(), 31);

    JitCacheStats stored = jitCacheStats();
    EXPECT_EQ(stored.diskLookups, before.diskLookups + 1);
    EXPECT_EQ(stored.diskHits, before.diskHits);
    EXPECT_EQ(stored.diskStores, before.diskStores + 1);

    // Dropping the in-memory memoization makes the next lookup behave
    // exactly like a fresh process: it must be served by dlopen'ing
    // the cached .so, never by the system compiler.
    clearJitMemoryCacheForTesting();
    JitModule second(source, options);
    EXPECT_EQ(second.compileSeconds(), 0.0);
    EXPECT_EQ(second.function<int (*)()>("disk_cached")(), 31);

    JitCacheStats after = jitCacheStats();
    EXPECT_EQ(after.diskLookups, stored.diskLookups + 1);
    EXPECT_EQ(after.diskHits, stored.diskHits + 1);
    EXPECT_EQ(after.diskStores, stored.diskStores);

    // The cache holds exactly one entry for the one key.
    int entries = 0;
    for (const auto &item :
         std::filesystem::directory_iterator(options.cacheDir)) {
        EXPECT_EQ(item.path().extension(), ".so");
        ++entries;
    }
    EXPECT_EQ(entries, 1);
}

TEST(SystemJit, DiskCacheRecoversFromCorruptEntry)
{
    JitOptions options;
    options.optLevel = "-O0";
    options.cacheDir = makeCacheDir("jit_corrupt_cache");
    std::string source =
        "extern \"C\" int corrupt_test() { return 57; }";

    JitModule first(source, options);
    EXPECT_EQ(first.function<int (*)()>("corrupt_test")(), 57);

    // Truncate/garble the published entry, as a crashed writer or a
    // disk error would.
    std::string entry;
    for (const auto &item :
         std::filesystem::directory_iterator(options.cacheDir))
        entry = item.path().string();
    ASSERT_FALSE(entry.empty());
    writeStringToFile(entry, "this is not a shared object");

    clearJitMemoryCacheForTesting();
    JitCacheStats before = jitCacheStats();
    JitModule second(source, options);
    // dlopen on the corrupt entry fails, so the source recompiles and
    // the entry is overwritten with a good .so.
    EXPECT_GT(second.compileSeconds(), 0.0);
    EXPECT_EQ(second.function<int (*)()>("corrupt_test")(), 57);
    JitCacheStats after = jitCacheStats();
    EXPECT_EQ(after.diskHits, before.diskHits);
    EXPECT_EQ(after.diskStores, before.diskStores + 1);

    // The overwritten entry now loads cleanly.
    clearJitMemoryCacheForTesting();
    JitModule third(source, options);
    EXPECT_EQ(third.compileSeconds(), 0.0);
    EXPECT_EQ(third.function<int (*)()>("corrupt_test")(), 57);
}

TEST(SystemJit, DiskCacheEvictsLeastRecentlyUsedOverCap)
{
    JitOptions options;
    options.optLevel = "-O0";
    options.cacheDir = makeCacheDir("jit_lru_cache");

    // Learn one entry's size, then cap the cache at two and a half
    // entries so a third store must evict.
    JitModule first("extern \"C\" int lru0() { return 0; }", options);
    int64_t entry_bytes = 0;
    std::string first_entry;
    for (const auto &item :
         std::filesystem::directory_iterator(options.cacheDir)) {
        entry_bytes = static_cast<int64_t>(
            std::filesystem::file_size(item.path()));
        first_entry = item.path().string();
    }
    ASSERT_GT(entry_bytes, 0);
    options.cacheMaxBytes = entry_bytes * 2 + entry_bytes / 2;

    JitCacheStats before = jitCacheStats();
    JitModule second("extern \"C\" int lru1() { return 1; }", options);
    EXPECT_EQ(jitCacheStats().diskEvictions, before.diskEvictions)
        << "two entries fit under the cap";

    // A disk hit refreshes lru0's recency, so the eviction below must
    // fall on lru1 instead.
    clearJitMemoryCacheForTesting();
    JitModule touch("extern \"C\" int lru0() { return 0; }", options);
    EXPECT_EQ(touch.compileSeconds(), 0.0);

    JitModule third("extern \"C\" int lru2() { return 2; }", options);
    JitCacheStats after = jitCacheStats();
    EXPECT_EQ(after.diskEvictions, before.diskEvictions + 1);
    EXPECT_TRUE(std::filesystem::exists(first_entry))
        << "the touched entry must survive";
    int entries = 0;
    for (const auto &item :
         std::filesystem::directory_iterator(options.cacheDir)) {
        (void)item;
        ++entries;
    }
    EXPECT_EQ(entries, 2);

    // The survivors still load from disk in a fresh process.
    clearJitMemoryCacheForTesting();
    JitModule reload("extern \"C\" int lru2() { return 2; }", options);
    EXPECT_EQ(reload.compileSeconds(), 0.0);
    EXPECT_EQ(reload.function<int (*)()>("lru2")(), 2);

    // An unlimited cap (the default) never evicts.
    options.cacheMaxBytes = 0;
    JitCacheStats unlimited = jitCacheStats();
    JitModule fourth("extern \"C\" int lru3() { return 3; }", options);
    EXPECT_EQ(jitCacheStats().diskEvictions, unlimited.diskEvictions);
}

/** The .so entries currently in @p dir. */
std::set<std::string>
cacheEntries(const std::string &dir)
{
    std::set<std::string> entries;
    for (const auto &item : std::filesystem::directory_iterator(dir)) {
        if (item.path().extension() == ".so")
            entries.insert(item.path().string());
    }
    return entries;
}

/** The single entry in @p after that is not in @p before. */
std::string
newEntry(const std::set<std::string> &before,
         const std::set<std::string> &after)
{
    std::string added;
    for (const std::string &entry : after) {
        if (!before.count(entry)) {
            EXPECT_TRUE(added.empty()) << "more than one new entry";
            added = entry;
        }
    }
    EXPECT_FALSE(added.empty());
    return added;
}

/**
 * A cap smaller than any single entry must never evict the entry just
 * stored (that would make the cache thrash uselessly: store, evict,
 * recompile, forever) — it holds exactly the newest entry instead.
 */
TEST(SystemJit, DiskCacheCapSmallerThanOneEntryKeepsNewestStore)
{
    JitOptions options;
    options.optLevel = "-O0";
    options.cacheDir = makeCacheDir("jit_tiny_cap_cache");
    options.cacheMaxBytes = 1;

    JitModule first("extern \"C\" int tiny0() { return 0; }", options);
    std::set<std::string> entries = cacheEntries(options.cacheDir);
    EXPECT_EQ(entries.size(), 1u)
        << "the just-stored entry survives its own store";

    // The next store keeps only itself: the older entry is the one
    // evicted.
    std::string first_entry = *entries.begin();
    JitModule second("extern \"C\" int tiny1() { return 1; }", options);
    entries = cacheEntries(options.cacheDir);
    EXPECT_EQ(entries.size(), 1u);
    EXPECT_FALSE(entries.count(first_entry));

    // The surviving entry still serves a fresh process, and a pure
    // disk hit performs no store, hence no eviction pass.
    clearJitMemoryCacheForTesting();
    JitCacheStats before = jitCacheStats();
    JitModule reload("extern \"C\" int tiny1() { return 1; }", options);
    EXPECT_EQ(reload.compileSeconds(), 0.0);
    EXPECT_EQ(reload.function<int (*)()>("tiny1")(), 1);
    EXPECT_EQ(jitCacheStats().diskEvictions, before.diskEvictions);
    EXPECT_EQ(cacheEntries(options.cacheDir).size(), 1u);
}

/**
 * Eviction order is mtime order, and a disk hit refreshes its entry's
 * mtime — pinning the mtimes explicitly makes the ordering fully
 * deterministic (no reliance on store timing or clock granularity).
 */
TEST(SystemJit, DiskCacheEvictionOrderFollowsMtimeTouches)
{
    namespace fs = std::filesystem;
    JitOptions options;
    options.optLevel = "-O0";
    options.cacheDir = makeCacheDir("jit_mtime_cache");

    std::set<std::string> seen;
    JitModule a("extern \"C\" int mt0() { return 0; }", options);
    std::set<std::string> now_stored = cacheEntries(options.cacheDir);
    std::string entry_a = newEntry(seen, now_stored);
    seen = now_stored;
    JitModule b("extern \"C\" int mt1() { return 1; }", options);
    now_stored = cacheEntries(options.cacheDir);
    std::string entry_b = newEntry(seen, now_stored);
    seen = now_stored;
    JitModule c("extern \"C\" int mt2() { return 2; }", options);
    now_stored = cacheEntries(options.cacheDir);
    std::string entry_c = newEntry(seen, now_stored);
    int64_t entry_bytes =
        static_cast<int64_t>(fs::file_size(entry_a));

    // Pin the recency order oldest-first as A, B, C.
    auto now = fs::file_time_type::clock::now();
    fs::last_write_time(entry_a, now - std::chrono::hours(3));
    fs::last_write_time(entry_b, now - std::chrono::hours(2));
    fs::last_write_time(entry_c, now - std::chrono::hours(1));

    // A disk hit on A must touch it ahead of B and C.
    clearJitMemoryCacheForTesting();
    JitModule touch("extern \"C\" int mt0() { return 0; }", options);
    EXPECT_EQ(touch.compileSeconds(), 0.0);
    EXPECT_GT(fs::last_write_time(entry_a),
              fs::last_write_time(entry_c));

    // Cap to three and a half entries and store a fourth: the evicted
    // entry must be B — the stale oldest — not A (touched) and not
    // the fresh store.
    options.cacheMaxBytes = entry_bytes * 3 + entry_bytes / 2;
    JitCacheStats before = jitCacheStats();
    JitModule d("extern \"C\" int mt3() { return 3; }", options);
    EXPECT_EQ(jitCacheStats().diskEvictions, before.diskEvictions + 1);
    std::set<std::string> entries = cacheEntries(options.cacheDir);
    EXPECT_TRUE(entries.count(entry_a)) << "touched entry evicted";
    EXPECT_FALSE(entries.count(entry_b)) << "stale entry must go";
    EXPECT_TRUE(entries.count(entry_c));
    EXPECT_EQ(entries.size(), 3u);
}

/**
 * A corrupt cached entry discovered by two Sessions at once: both
 * recompile, one's store races the other's, and both must come up
 * predicting correctly with a loadable entry left behind.
 */
TEST(SystemJit, CorruptEntryRecompileRacesConcurrentStore)
{
    using testing::makeRandomForest;
    using testing::makeRandomRows;

    testing::RandomForestSpec spec;
    spec.numFeatures = 8;
    spec.numTrees = 10;
    spec.maxDepth = 5;
    spec.seed = 2024;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    hir::Schedule schedule;
    schedule.tileSize = 2;

    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    options.jit.cacheDir = makeCacheDir("jit_race_cache");

    int64_t num_rows = 19;
    std::vector<float> rows = makeRandomRows(8, num_rows, 77);
    std::vector<float> expected(static_cast<size_t>(num_rows));
    {
        Session seeder = compile(forest, schedule, options);
        seeder.predict(rows.data(), num_rows, expected.data());
    }

    // Garble every cached object, as a crashed writer would.
    for (const std::string &entry : cacheEntries(options.jit.cacheDir))
        writeStringToFile(entry, "garbage, not ELF");
    clearJitMemoryCacheForTesting();

    // Two Sessions race the recompile + store on the same cacheDir.
    std::vector<float> out_a(static_cast<size_t>(num_rows), -1.0f);
    std::vector<float> out_b(static_cast<size_t>(num_rows), -1.0f);
    std::thread racer([&] {
        Session session = compile(forest, schedule, options);
        session.predict(rows.data(), num_rows, out_a.data());
    });
    Session session = compile(forest, schedule, options);
    session.predict(rows.data(), num_rows, out_b.data());
    racer.join();
    expectPredictionsExact(expected, out_a);
    expectPredictionsExact(expected, out_b);

    // Whichever store won, the published entry now loads cleanly.
    clearJitMemoryCacheForTesting();
    Session reload = compile(forest, schedule, options);
    std::vector<float> out_c(static_cast<size_t>(num_rows), -1.0f);
    reload.predict(rows.data(), num_rows, out_c.data());
    expectPredictionsExact(expected, out_c);
    EXPECT_EQ(reload.artifacts().jitCompileSeconds, 0.0);
}

struct EmitterCase
{
    hir::LoopOrder loopOrder;
    hir::MemoryLayout layout;
    int32_t tileSize;
    int32_t interleave;
    bool unroll;
};

class CppEmitterSweep : public ::testing::TestWithParam<EmitterCase>
{};

TEST_P(CppEmitterSweep, CompiledSourceMatchesReference)
{
    const EmitterCase &c = GetParam();
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.seed = 71;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 90, 72);
    std::vector<float> expected = referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.loopOrder = c.loopOrder;
    schedule.layout = c.layout;
    schedule.tileSize = c.tileSize;
    schedule.interleaveFactor = c.interleave;
    schedule.padAndUnrollWalks = c.unroll;

    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);

    JitOptions jit_options;
    jit_options.optLevel = "-O0";
    JitCompiledSession session(std::move(buffers), module.groups(),
                               schedule, jit_options);

    std::vector<float> actual(90);
    session.predict(rows.data(), 90, actual.data());
    expectPredictionsExact(expected, actual);
    EXPECT_NE(session.source().find("treebeard_predict"),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CppEmitterSweep,
    ::testing::Values(
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kSparse, 8, 1, true},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kSparse, 4, 4, true},
        EmitterCase{hir::LoopOrder::kOneRowAtATime,
                    hir::MemoryLayout::kSparse, 8, 2, false},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kArray, 4, 1, true},
        EmitterCase{hir::LoopOrder::kOneRowAtATime,
                    hir::MemoryLayout::kArray, 2, 4, true},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kPacked, 8, 1, true},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kPacked, 4, 4, false},
        EmitterCase{hir::LoopOrder::kOneRowAtATime,
                    hir::MemoryLayout::kPacked, 8, 2, true}));

TEST(CppEmitter, SourceReflectsSchedule)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 4;
    spec.seed = 73;
    model::Forest forest = makeRandomForest(spec);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.interleaveFactor = 4;
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);

    std::string source = emitPredictForestSource(
        buffers, module.groups(), schedule);
    // Interleave factor appears as the row-loop stride.
    EXPECT_NE(source.find("r += 4"), std::string::npos);
    // Walk helpers are emitted per group.
    EXPECT_NE(source.find("walk_group_0"), std::string::npos);
    // The tile evaluation is fully unrolled over 4 slots.
    EXPECT_NE(source.find("<< 3"), std::string::npos);
}

/** Emit a source string for a small forest under @p schedule. */
std::string
emitForSchedule(const model::Forest &forest,
                const hir::Schedule &schedule)
{
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);
    return emitPredictForestSource(buffers, module.groups(), schedule);
}

TEST(CppEmitter, EmitsAvx2TileEvaluation)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 4;
    spec.seed = 81;
    model::Forest forest = makeRandomForest(spec);

    hir::Schedule tile8;
    tile8.tileSize = 8;
    std::string source8 = emitForSchedule(forest, tile8);
    // Guarded 8-wide gather/compare/movemask with a scalar fallback.
    EXPECT_NE(source8.find("__AVX2__"), std::string::npos);
    EXPECT_NE(source8.find("_mm256_i32gather_ps"), std::string::npos);
    EXPECT_NE(source8.find("_mm256_cmp_ps"), std::string::npos);
    EXPECT_NE(source8.find("_mm256_movemask_ps"), std::string::npos);
    // NaN default-left routing is vectorized too.
    EXPECT_NE(source8.find("_CMP_UNORD_Q"), std::string::npos);

    hir::Schedule tile4;
    tile4.tileSize = 4;
    tile4.layout = hir::MemoryLayout::kPacked;
    std::string source4 = emitForSchedule(forest, tile4);
    // 4-wide SSE/AVX2 path; packed int16 feature indices widen first.
    EXPECT_NE(source4.find("_mm_i32gather_ps"), std::string::npos);
    EXPECT_NE(source4.find("_mm_cvtepi16_epi32"), std::string::npos);

    // Scalar tiles carry no vector code at all.
    hir::Schedule tile1;
    tile1.tileSize = 1;
    std::string source1 = emitForSchedule(forest, tile1);
    EXPECT_EQ(source1.find("_mm256"), std::string::npos);
    EXPECT_EQ(source1.find("_mm_i32gather_ps"), std::string::npos);
}

TEST(CppEmitter, AppendsHostSimdFlags)
{
    JitOptions options = withHostSimdFlags(JitOptions{});
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2")) {
        EXPECT_NE(options.extraFlags.find("-mavx2"),
                  std::string::npos);
        // Idempotent: a second application adds nothing.
        EXPECT_EQ(withHostSimdFlags(options).extraFlags,
                  options.extraFlags);
    }
#else
    EXPECT_EQ(options.extraFlags, JitOptions{}.extraFlags);
#endif
}

TEST(CppEmitter, MulticlassCompiledSourceMatchesReference)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.seed = 91;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kMulticlassSoftmax);
    forest.setNumClasses(3);
    forest.setBaseScore(0.0f);

    int64_t num_rows = 40;
    std::vector<float> rows =
        makeRandomRows(spec.numFeatures, num_rows, 92);
    std::vector<float> expected(
        static_cast<size_t>(num_rows) * 3);
    forest.predictBatch(rows.data(), num_rows, expected.data());

    for (hir::LoopOrder order :
         {hir::LoopOrder::kOneTreeAtATime,
          hir::LoopOrder::kOneRowAtATime}) {
        hir::Schedule schedule;
        schedule.loopOrder = order;
        schedule.tileSize = 4;
        schedule.interleaveFactor = 2;

        hir::HirModule module(forest, schedule);
        module.runAllHirPasses();
        lir::ForestBuffers buffers = lir::buildForestBuffers(module);

        JitOptions jit_options;
        jit_options.optLevel = "-O0";
        JitCompiledSession session(std::move(buffers),
                                   module.groups(), schedule,
                                   jit_options);
        EXPECT_EQ(session.numClasses(), 3);

        std::vector<float> actual(
            static_cast<size_t>(num_rows) * 3);
        session.predict(rows.data(), num_rows, actual.data());
        expectPredictionsExact(expected, actual);
        // The baked class table and per-row softmax are in the source.
        EXPECT_NE(session.source().find("kTreeClass"),
                  std::string::npos);
        EXPECT_NE(session.source().find("finishRow"),
                  std::string::npos);
    }
}

} // namespace
} // namespace treebeard::codegen
