/**
 * @file
 * Tests for the source backend: the system JIT (compile + dlopen) and
 * the LIR -> C++ emitter, whose compiled output must match both the
 * reference walk and the kernel runtime across schedules.
 */
#include <gtest/gtest.h>

#include "codegen/cpp_emitter.h"
#include "lir/layout_builder.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard::codegen {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;
using testing::referencePredictions;

TEST(SystemJit, CompilesAndResolvesSymbols)
{
    ASSERT_TRUE(systemCompilerAvailable());
    std::string source = R"(
        extern "C" int add_ints(int a, int b) { return a + b; }
        extern "C" double the_answer() { return 42.0; }
    )";
    JitOptions options;
    options.optLevel = "-O0";
    JitModule module(source, options);
    auto add = module.function<int (*)(int, int)>("add_ints");
    EXPECT_EQ(add(20, 22), 42);
    auto answer = module.function<double (*)()>("the_answer");
    EXPECT_DOUBLE_EQ(answer(), 42.0);
    EXPECT_GT(module.compileSeconds(), 0.0);
    EXPECT_THROW(module.symbol("missing_symbol"), Error);
}

TEST(SystemJit, ReportsCompileErrorsWithDiagnostics)
{
    JitOptions options;
    options.optLevel = "-O0";
    try {
        JitModule module("this is not C++", options);
        FAIL() << "expected compilation failure";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find("error"),
                  std::string::npos);
    }
}

TEST(SystemJit, MoveSemantics)
{
    JitOptions options;
    options.optLevel = "-O0";
    JitModule a("extern \"C\" int f() { return 7; }", options);
    JitModule b = std::move(a);
    EXPECT_EQ(b.function<int (*)()>("f")(), 7);
}

TEST(SystemJit, DefaultsToO3)
{
    EXPECT_EQ(JitOptions{}.optLevel, "-O3");
}

TEST(SystemJit, MemoizesIdenticalCompilations)
{
    JitOptions options;
    options.optLevel = "-O1";
    std::string source = "extern \"C\" int g() { return 9; }";

    JitCacheStats before = jitCacheStats();
    JitModule a(source, options);
    EXPECT_GT(a.compileSeconds(), 0.0);

    // Same key: shared library, no compiler round-trip.
    JitModule b(source, options);
    EXPECT_EQ(b.compileSeconds(), 0.0);
    EXPECT_EQ(b.function<int (*)()>("g")(), 9);
    EXPECT_EQ(a.libraryPath(), b.libraryPath());

    JitCacheStats after = jitCacheStats();
    EXPECT_EQ(after.lookups, before.lookups + 2);
    EXPECT_EQ(after.hits, before.hits + 1);

    // Different flags are a different key.
    JitOptions other = options;
    other.optLevel = "-O0";
    JitModule c(source, other);
    EXPECT_GT(c.compileSeconds(), 0.0);
    EXPECT_NE(c.libraryPath(), a.libraryPath());

    // keepArtifacts compiles privately, bypassing the cache.
    JitOptions keep = options;
    keep.keepArtifacts = true;
    JitModule d(source, keep);
    EXPECT_GT(d.compileSeconds(), 0.0);
    EXPECT_NE(d.libraryPath(), a.libraryPath());
    EXPECT_EQ(jitCacheStats().lookups, after.lookups + 1);
}

struct EmitterCase
{
    hir::LoopOrder loopOrder;
    hir::MemoryLayout layout;
    int32_t tileSize;
    int32_t interleave;
    bool unroll;
};

class CppEmitterSweep : public ::testing::TestWithParam<EmitterCase>
{};

TEST_P(CppEmitterSweep, CompiledSourceMatchesReference)
{
    const EmitterCase &c = GetParam();
    testing::RandomForestSpec spec;
    spec.numTrees = 12;
    spec.seed = 71;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 90, 72);
    std::vector<float> expected = referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.loopOrder = c.loopOrder;
    schedule.layout = c.layout;
    schedule.tileSize = c.tileSize;
    schedule.interleaveFactor = c.interleave;
    schedule.padAndUnrollWalks = c.unroll;

    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);

    JitOptions jit_options;
    jit_options.optLevel = "-O0";
    JitCompiledSession session(std::move(buffers), module.groups(),
                               schedule, jit_options);

    std::vector<float> actual(90);
    session.predict(rows.data(), 90, actual.data());
    expectPredictionsExact(expected, actual);
    EXPECT_NE(session.source().find("treebeard_predict"),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CppEmitterSweep,
    ::testing::Values(
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kSparse, 8, 1, true},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kSparse, 4, 4, true},
        EmitterCase{hir::LoopOrder::kOneRowAtATime,
                    hir::MemoryLayout::kSparse, 8, 2, false},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kArray, 4, 1, true},
        EmitterCase{hir::LoopOrder::kOneRowAtATime,
                    hir::MemoryLayout::kArray, 2, 4, true},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kPacked, 8, 1, true},
        EmitterCase{hir::LoopOrder::kOneTreeAtATime,
                    hir::MemoryLayout::kPacked, 4, 4, false},
        EmitterCase{hir::LoopOrder::kOneRowAtATime,
                    hir::MemoryLayout::kPacked, 8, 2, true}));

TEST(CppEmitter, SourceReflectsSchedule)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 4;
    spec.seed = 73;
    model::Forest forest = makeRandomForest(spec);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.interleaveFactor = 4;
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);

    std::string source = emitPredictForestSource(
        buffers, module.groups(), schedule);
    // Interleave factor appears as the row-loop stride.
    EXPECT_NE(source.find("r += 4"), std::string::npos);
    // Walk helpers are emitted per group.
    EXPECT_NE(source.find("walk_group_0"), std::string::npos);
    // The tile evaluation is fully unrolled over 4 slots.
    EXPECT_NE(source.find("<< 3"), std::string::npos);
}

} // namespace
} // namespace treebeard::codegen
