/**
 * @file
 * The cross-configuration correctness sweep: every point of the
 * schedule space (loop order x tile size x tiling algorithm x layout x
 * interleave x unroll/peel x threads) must produce predictions
 * bit-identical to the reference model walk. Leaf values are quantized
 * so float accumulation is exact regardless of summation order.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;
using testing::referencePredictions;

struct SweepCase
{
    hir::LoopOrder loopOrder;
    int32_t tileSize;
    hir::TilingAlgorithm tiling;
    hir::MemoryLayout layout;
    int32_t interleave;
    bool padAndUnroll;
    bool peel;
    int32_t threads;
};

std::string
caseName(const ::testing::TestParamInfo<SweepCase> &info)
{
    const SweepCase &c = info.param;
    std::string name;
    name += c.loopOrder == hir::LoopOrder::kOneTreeAtATime ? "tree"
                                                           : "row";
    name += "_nt" + std::to_string(c.tileSize);
    std::string tiling = hir::tilingAlgorithmName(c.tiling);
    for (char &ch : tiling) {
        if (ch == '-')
            ch = '_';
    }
    name += "_" + tiling;
    name += std::string("_") + hir::memoryLayoutName(c.layout);
    name += "_il" + std::to_string(c.interleave);
    name += c.padAndUnroll ? "_unroll" : "_nounroll";
    name += c.peel ? "_peel" : "_nopeel";
    name += "_t" + std::to_string(c.threads);
    return name;
}

std::vector<SweepCase>
buildSweep()
{
    std::vector<SweepCase> cases;
    for (auto order : {hir::LoopOrder::kOneTreeAtATime,
                       hir::LoopOrder::kOneRowAtATime}) {
        for (int32_t tile_size : {1, 2, 3, 4, 8}) {
            for (auto tiling :
                 {hir::TilingAlgorithm::kBasic,
                  hir::TilingAlgorithm::kProbabilityBased,
                  hir::TilingAlgorithm::kHybrid,
                  hir::TilingAlgorithm::kMinMaxDepth}) {
                for (auto layout : {hir::MemoryLayout::kArray,
                                    hir::MemoryLayout::kSparse,
                                    hir::MemoryLayout::kPacked}) {
                    for (int32_t interleave : {1, 4}) {
                        for (bool unroll : {false, true}) {
                            cases.push_back({order, tile_size, tiling,
                                             layout, interleave, unroll,
                                             /*peel=*/true,
                                             /*threads=*/1});
                        }
                    }
                }
            }
        }
    }
    // A few extra points covering the remaining knobs.
    cases.push_back({hir::LoopOrder::kOneTreeAtATime, 8,
                     hir::TilingAlgorithm::kHybrid,
                     hir::MemoryLayout::kSparse, 8, true, false, 1});
    cases.push_back({hir::LoopOrder::kOneTreeAtATime, 8,
                     hir::TilingAlgorithm::kHybrid,
                     hir::MemoryLayout::kSparse, 2, true, true, 4});
    cases.push_back({hir::LoopOrder::kOneRowAtATime, 4,
                     hir::TilingAlgorithm::kBasic,
                     hir::MemoryLayout::kArray, 2, true, true, 2});
    return cases;
}

class CorrectnessSweep : public ::testing::TestWithParam<SweepCase>
{
  protected:
    static void
    SetUpTestSuite()
    {
        testing::RandomForestSpec spec;
        spec.numFeatures = 12;
        spec.numTrees = 40;
        spec.maxDepth = 7;
        spec.splitProbability = 0.75;
        spec.statisticsRows = 800;
        forest_ = new model::Forest(makeRandomForest(spec));
        quantizeLeafValues(*forest_);
        rows_ = new std::vector<float>(
            makeRandomRows(spec.numFeatures, 257, 999));
        expected_ = new std::vector<float>(
            referencePredictions(*forest_, *rows_));
    }

    static void
    TearDownTestSuite()
    {
        delete forest_;
        delete rows_;
        delete expected_;
        forest_ = nullptr;
        rows_ = nullptr;
        expected_ = nullptr;
    }

    static model::Forest *forest_;
    static std::vector<float> *rows_;
    static std::vector<float> *expected_;
};

model::Forest *CorrectnessSweep::forest_ = nullptr;
std::vector<float> *CorrectnessSweep::rows_ = nullptr;
std::vector<float> *CorrectnessSweep::expected_ = nullptr;

TEST_P(CorrectnessSweep, MatchesReference)
{
    const SweepCase &c = GetParam();
    hir::Schedule schedule;
    schedule.loopOrder = c.loopOrder;
    schedule.tileSize = c.tileSize;
    schedule.tiling = c.tiling;
    schedule.layout = c.layout;
    schedule.interleaveFactor = c.interleave;
    schedule.padAndUnrollWalks = c.padAndUnroll;
    schedule.peelWalks = c.peel;
    schedule.numThreads = c.threads;

    Session session = compile(*forest_, schedule);
    int64_t num_rows =
        static_cast<int64_t>(rows_->size()) / forest_->numFeatures();
    std::vector<float> actual(static_cast<size_t>(num_rows));
    session.predict(rows_->data(), num_rows, actual.data());
    expectPredictionsExact(*expected_, actual);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, CorrectnessSweep,
                         ::testing::ValuesIn(buildSweep()), caseName);

TEST(CompilerCorrectness, LogisticObjectiveMatchesReference)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 15;
    spec.seed = 777;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kBinaryLogistic);
    forest.setBaseScore(0.25f);

    std::vector<float> rows = makeRandomRows(spec.numFeatures, 64, 31);
    std::vector<float> expected = referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    Session session = compile(forest, schedule);
    std::vector<float> actual(64);
    session.predict(rows.data(), 64, actual.data());
    expectPredictionsExact(expected, actual);
    for (float p : actual) {
        EXPECT_GT(p, 0.0f);
        EXPECT_LT(p, 1.0f);
    }
}

TEST(CompilerCorrectness, InstrumentedPathMatchesReference)
{
    testing::RandomForestSpec spec;
    spec.seed = 4242;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 50, 5);
    std::vector<float> expected = referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    Session session = compile(forest, schedule);
    std::vector<float> actual(50);
    runtime::WalkCounters counters;
    session.predictInstrumented(rows.data(), 50, actual.data(),
                                &counters);
    expectPredictionsExact(expected, actual);
    EXPECT_GT(counters.tilesVisited, 0);
    EXPECT_EQ(counters.nodePredicatesEvaluated,
              counters.tilesVisited * 8);
    EXPECT_GE(counters.nodePredicatesEvaluated,
              counters.scalarNodesNeeded);
}

TEST(CompilerCorrectness, EmptyBatchIsANoOp)
{
    model::Forest forest = makeRandomForest({});
    Session session = compile(forest, {});
    session.predict(nullptr, 0, nullptr);
}

TEST(CompilerCorrectness, SingleRowBatch)
{
    testing::RandomForestSpec spec;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 1, 77);
    std::vector<float> expected = referencePredictions(forest, rows);

    hir::Schedule schedule;
    schedule.interleaveFactor = 8; // larger than the batch
    Session session = compile(forest, schedule);
    std::vector<float> actual(1);
    session.predict(rows.data(), 1, actual.data());
    expectPredictionsExact(expected, actual);
}

TEST(CompilerCorrectness, InvalidScheduleIsRejected)
{
    model::Forest forest = makeRandomForest({});
    hir::Schedule schedule;
    schedule.tileSize = 99;
    EXPECT_THROW(compile(forest, schedule), Error);
    schedule = {};
    schedule.interleaveFactor = 3;
    EXPECT_THROW(compile(forest, schedule), Error);
    schedule = {};
    schedule.numThreads = 0;
    EXPECT_THROW(compile(forest, schedule), Error);
}

TEST(CompilerCorrectness, ArtifactsAreRecorded)
{
    model::Forest forest = makeRandomForest({});
    CompilerOptions options;
    options.recordIrDumps = true;
    Session session = compile(forest, {}, options);
    const CompilationArtifacts &artifacts = session.artifacts();
    EXPECT_FALSE(artifacts.passTraces.empty());
    EXPECT_NE(artifacts.hirDump.find("hir.module"), std::string::npos);
    EXPECT_NE(artifacts.mirDump.find("mir.func"), std::string::npos);
    EXPECT_NE(artifacts.lirSummary.find("lir.buffers"),
              std::string::npos);
}

} // namespace
} // namespace treebeard
