/**
 * @file
 * Tests for multiclass support: model-level softmax prediction,
 * round-robin tree-to-class assignment, serialization, multiclass
 * training, and compiled-session agreement with the reference across
 * schedules (including reordering, which permutes trees and must
 * preserve class assignment).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/serialization.h"
#include "test_utils.h"
#include "train/gbdt_trainer.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

/** A multiclass forest with controlled per-class trees. */
model::Forest
makeMulticlassForest(int32_t classes, int64_t rounds, uint64_t seed)
{
    testing::RandomForestSpec spec;
    spec.numTrees = classes * rounds;
    spec.numFeatures = 10;
    spec.maxDepth = 6;
    spec.seed = seed;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    forest.setObjective(model::Objective::kMulticlassSoftmax);
    forest.setNumClasses(classes);
    forest.setBaseScore(0.0f);
    return forest;
}

TEST(MulticlassModel, TreeClassAssignmentIsRoundRobin)
{
    model::Forest forest = makeMulticlassForest(3, 4, 2001);
    EXPECT_EQ(forest.numClasses(), 3);
    EXPECT_EQ(forest.treeClass(0), 0);
    EXPECT_EQ(forest.treeClass(1), 1);
    EXPECT_EQ(forest.treeClass(2), 2);
    EXPECT_EQ(forest.treeClass(3), 0);
}

TEST(MulticlassModel, SoftmaxOutputsAreADistribution)
{
    model::Forest forest = makeMulticlassForest(4, 3, 2002);
    std::vector<float> row = testing::makeRandomRows(10, 1, 2003);
    std::vector<float> out(4);
    forest.predictMulticlass(row.data(), out.data());
    float sum = 0.0f;
    for (float p : out) {
        EXPECT_GT(p, 0.0f);
        EXPECT_LT(p, 1.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(MulticlassModel, ValidationRules)
{
    model::Forest forest = makeMulticlassForest(3, 2, 2004);
    EXPECT_NO_THROW(forest.validate());
    // numClasses > 1 without the softmax objective is rejected.
    forest.setObjective(model::Objective::kRegression);
    EXPECT_THROW(forest.validate(), Error);
    // Softmax with a single class is rejected.
    forest.setObjective(model::Objective::kMulticlassSoftmax);
    forest.setNumClasses(1);
    EXPECT_THROW(forest.validate(), Error);
    EXPECT_THROW(forest.setNumClasses(0), Error);
}

TEST(MulticlassModel, SerializationRoundTrip)
{
    model::Forest forest = makeMulticlassForest(5, 2, 2005);
    model::Forest loaded =
        model::forestFromJson(model::forestToJson(forest));
    EXPECT_EQ(loaded.numClasses(), 5);
    EXPECT_EQ(loaded.objective(),
              model::Objective::kMulticlassSoftmax);

    std::vector<float> rows = testing::makeRandomRows(10, 20, 2006);
    std::vector<float> expected(20 * 5), actual(20 * 5);
    forest.predictBatch(rows.data(), 20, expected.data());
    loaded.predictBatch(rows.data(), 20, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

TEST(Softmax, StableAndNormalized)
{
    float values[3] = {1000.0f, 1001.0f, 999.0f};
    model::softmaxInPlace(values, 3);
    EXPECT_NEAR(values[0] + values[1] + values[2], 1.0f, 1e-6f);
    EXPECT_GT(values[1], values[0]);
    EXPECT_GT(values[0], values[2]);
}

struct MulticlassScheduleCase
{
    hir::LoopOrder loopOrder;
    int32_t tileSize;
    int32_t interleave;
    bool unroll;
    int32_t threads;
};

class MulticlassCompiled
    : public ::testing::TestWithParam<MulticlassScheduleCase>
{};

TEST_P(MulticlassCompiled, MatchesReference)
{
    const MulticlassScheduleCase &c = GetParam();
    model::Forest forest = makeMulticlassForest(3, 9, 2007);
    std::vector<float> rows = testing::makeRandomRows(10, 97, 2008);
    std::vector<float> expected(97 * 3);
    forest.predictBatch(rows.data(), 97, expected.data());

    hir::Schedule schedule;
    schedule.loopOrder = c.loopOrder;
    schedule.tileSize = c.tileSize;
    schedule.interleaveFactor = c.interleave;
    schedule.padAndUnrollWalks = c.unroll;
    schedule.numThreads = c.threads;

    Session session = compile(forest, schedule);
    EXPECT_EQ(session.numClasses(), 3);
    std::vector<float> actual(97 * 3);
    session.predict(rows.data(), 97, actual.data());
    // Softmax is exact given exact margins (quantized leaves), so
    // outputs are bit-identical.
    testing::expectPredictionsExact(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, MulticlassCompiled,
    ::testing::Values(
        MulticlassScheduleCase{hir::LoopOrder::kOneTreeAtATime, 8, 4,
                               true, 1},
        MulticlassScheduleCase{hir::LoopOrder::kOneTreeAtATime, 1, 1,
                               false, 1},
        MulticlassScheduleCase{hir::LoopOrder::kOneRowAtATime, 4, 4,
                               true, 1},
        MulticlassScheduleCase{hir::LoopOrder::kOneRowAtATime, 8, 1,
                               false, 1},
        MulticlassScheduleCase{hir::LoopOrder::kOneTreeAtATime, 8, 8,
                               true, 4},
        MulticlassScheduleCase{hir::LoopOrder::kOneTreeAtATime, 3, 1,
                               true, 1}));

TEST(MulticlassCompiledMisc, InstrumentedPathAgrees)
{
    model::Forest forest = makeMulticlassForest(4, 5, 2009);
    std::vector<float> rows = testing::makeRandomRows(10, 30, 2010);
    std::vector<float> expected(30 * 4);
    forest.predictBatch(rows.data(), 30, expected.data());

    Session session = compile(forest, {});
    std::vector<float> actual(30 * 4);
    runtime::WalkCounters counters;
    session.predictInstrumented(rows.data(), 30, actual.data(),
                                &counters);
    testing::expectPredictionsExact(expected, actual);
    EXPECT_GT(counters.tilesVisited, 0);
}

TEST(MulticlassTraining, LearnsSeparableClasses)
{
    // Three Gaussian-ish blobs along feature 0/1.
    Rng rng(2011);
    data::Dataset dataset(2);
    std::vector<float> labels;
    for (int64_t i = 0; i < 900; ++i) {
        int32_t k = static_cast<int32_t>(i % 3);
        float x0 = 0.2f + 0.3f * k +
                   0.05f * static_cast<float>(rng.gaussian());
        float x1 = 0.8f - 0.25f * k +
                   0.05f * static_cast<float>(rng.gaussian());
        dataset.appendRow({x0, x1});
        labels.push_back(static_cast<float>(k));
    }
    dataset.setLabels(std::move(labels));

    train::TrainingConfig config;
    config.objective = model::Objective::kMulticlassSoftmax;
    config.numClasses = 3;
    config.numTrees = 20; // rounds
    config.maxDepth = 4;
    config.learningRate = 0.3;
    train::GbdtTrainer trainer(config);
    model::Forest forest = trainer.train(dataset);

    EXPECT_EQ(forest.numClasses(), 3);
    EXPECT_EQ(forest.numTrees(), 60); // rounds x classes

    // Loss decreases.
    EXPECT_LT(trainer.history().back().trainingLoss,
              trainer.history().front().trainingLoss * 0.3);

    // Accuracy on the training blobs via the compiled session.
    Session session = compile(forest, {});
    std::vector<float> probabilities(
        static_cast<size_t>(dataset.numRows()) * 3);
    session.predict(dataset.rows(), dataset.numRows(),
                    probabilities.data());
    int64_t correct = 0;
    for (int64_t r = 0; r < dataset.numRows(); ++r) {
        const float *p = probabilities.data() + r * 3;
        int32_t argmax = 0;
        for (int32_t k = 1; k < 3; ++k) {
            if (p[k] > p[argmax])
                argmax = k;
        }
        correct += argmax == static_cast<int32_t>(dataset.label(r));
    }
    EXPECT_GT(static_cast<double>(correct) / dataset.numRows(), 0.95);
}

TEST(MulticlassTraining, RejectsBadLabels)
{
    data::Dataset dataset(2);
    dataset.appendRow({0.1f, 0.2f});
    dataset.appendRow({0.3f, 0.4f});
    dataset.setLabels({0.0f, 2.5f}); // not an integer class id

    train::TrainingConfig config;
    config.objective = model::Objective::kMulticlassSoftmax;
    config.numClasses = 3;
    config.numTrees = 2;
    EXPECT_THROW(train::GbdtTrainer(config).train(dataset), Error);

    config.numClasses = 1;
    EXPECT_THROW(train::GbdtTrainer(config).train(dataset), Error);
}

} // namespace
} // namespace treebeard
