/**
 * @file
 * Tests for the JSON substrate: parsing, serialization round-trips,
 * escapes, and malformed-input rejection.
 */
#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"

namespace treebeard {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_EQ(JsonValue::parse("true").asBoolean(), true);
    EXPECT_EQ(JsonValue::parse("false").asBoolean(), false);
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.25").asNumber(), -3.25);
    EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("2.5E-2").asNumber(), 0.025);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NestedStructures)
{
    JsonValue value = JsonValue::parse(
        R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
    ASSERT_TRUE(value.isObject());
    const auto &a = value.at("a").asArray();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[2].at("b").asBoolean(), true);
    EXPECT_TRUE(value.at("c").at("d").isNull());
    EXPECT_EQ(value.at("e").asString(), "x");
}

TEST(JsonParse, StringEscapes)
{
    JsonValue value =
        JsonValue::parse(R"("line\nbreak\ttab\\slash\"quoteA")");
    EXPECT_EQ(value.asString(), "line\nbreak\ttab\\slash\"quoteA");
}

TEST(JsonParse, UnicodeEscapeMultibyte)
{
    // U+00E9 (e-acute) encodes as two UTF-8 bytes.
    JsonValue value = JsonValue::parse(R"("é")");
    EXPECT_EQ(value.asString(), "\xc3\xa9");
}

TEST(JsonParse, WhitespaceTolerance)
{
    JsonValue value =
        JsonValue::parse("  {  \"k\" :\n[ 1 ,\t2 ]  }  ");
    EXPECT_EQ(value.at("k").asArray().size(), 2u);
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), Error);
    EXPECT_THROW(JsonValue::parse("{"), Error);
    EXPECT_THROW(JsonValue::parse("[1,]"), Error);
    EXPECT_THROW(JsonValue::parse("{\"a\":}"), Error);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), Error);
    EXPECT_THROW(JsonValue::parse("tru"), Error);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
    EXPECT_THROW(JsonValue::parse("1 2"), Error);
    EXPECT_THROW(JsonValue::parse("1."), Error);
    EXPECT_THROW(JsonValue::parse("-"), Error);
    EXPECT_THROW(JsonValue::parse("\"\\u00g1\""), Error);
    EXPECT_THROW(JsonValue::parse("nil"), Error);
}

TEST(JsonAccessors, KindMismatchesThrow)
{
    JsonValue number(1.5);
    EXPECT_THROW(number.asString(), Error);
    EXPECT_THROW(number.asArray(), Error);
    EXPECT_THROW(number.asObject(), Error);
    EXPECT_THROW(number.asBoolean(), Error);
    EXPECT_THROW(number.at("x"), Error);
    EXPECT_THROW(JsonValue(1.5).asInt(), Error);
    EXPECT_EQ(JsonValue(3.0).asInt(), 3);
}

TEST(JsonAccessors, GetOrAndContains)
{
    JsonValue value = JsonValue::parse(R"({"a": 1})");
    EXPECT_TRUE(value.contains("a"));
    EXPECT_FALSE(value.contains("b"));
    JsonValue fallback("dflt");
    EXPECT_EQ(value.getOr("b", fallback).asString(), "dflt");
    EXPECT_DOUBLE_EQ(value.getOr("a", fallback).asNumber(), 1.0);
}

TEST(JsonDump, RoundTrip)
{
    std::string text =
        R"({"arr":[1,2.5,"s"],"nested":{"t":true},"z":null})";
    JsonValue value = JsonValue::parse(text);
    JsonValue reparsed = JsonValue::parse(value.dump());
    EXPECT_EQ(reparsed.dump(), value.dump());
    // Pretty output parses back to the same document.
    EXPECT_EQ(JsonValue::parse(value.dumpPretty()).dump(), value.dump());
}

TEST(JsonDump, EscapesControlCharacters)
{
    JsonValue value(std::string("a\x01""b\"c\n"));
    std::string dumped = value.dump();
    EXPECT_EQ(JsonValue::parse(dumped).asString(), value.asString());
}

TEST(JsonDump, NumbersRoundTripPrecisely)
{
    double values[] = {0.1, 1e-8, 123456789.123, -0.0078125, 3.0};
    for (double v : values) {
        JsonValue parsed = JsonValue::parse(JsonValue(v).dump());
        EXPECT_DOUBLE_EQ(parsed.asNumber(), v);
    }
}

TEST(JsonBuild, MutableBuilders)
{
    JsonValue object;
    object.mutableObject()["k"] = JsonValue(5);
    JsonValue array;
    array.mutableArray().push_back(JsonValue("x"));
    object.mutableObject()["arr"] = array;
    EXPECT_EQ(object.at("k").asInt(), 5);
    EXPECT_EQ(object.at("arr").asArray()[0].asString(), "x");
    // A value that is already a non-object cannot become one.
    JsonValue number(2.0);
    EXPECT_THROW(number.mutableObject(), Error);
}

TEST(JsonFile, ReadWriteRoundTrip)
{
    std::string path = ::testing::TempDir() + "/treebeard_json_test.json";
    writeStringToFile(path, "{\"v\": 7}");
    JsonValue value = JsonValue::parse(readFileToString(path));
    EXPECT_EQ(value.at("v").asInt(), 7);
    EXPECT_THROW(readFileToString("/nonexistent/path/file.json"), Error);
}

} // namespace
} // namespace treebeard
