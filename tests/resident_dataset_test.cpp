/**
 * @file
 * Tests for the resident-dataset prediction path: Session::bindDataset
 * pays any per-batch input transform once (the i16 packed layout's row
 * quantization), and predictDataset then runs with zero per-call
 * quantization on both backends, bit-identical to predict() on the
 * same rows.
 */
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/plan.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;

hir::Schedule
makeSchedule(hir::MemoryLayout layout, hir::PackedPrecision precision,
             int32_t num_threads)
{
    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.layout = layout;
    schedule.packedPrecision = precision;
    schedule.numThreads = num_threads;
    return schedule;
}

Session
makeSession(const model::Forest &forest, const hir::Schedule &schedule,
            Backend backend)
{
    CompilerOptions options;
    options.backend = backend;
    options.jit.optLevel = "-O0";
    return compile(forest, schedule, options);
}

struct ResidentCase
{
    hir::MemoryLayout layout;
    hir::PackedPrecision precision;
    Backend backend;
    int32_t numThreads;
};

class ResidentDataset : public ::testing::TestWithParam<ResidentCase>
{};

/** predictDataset must match predict bit-exactly for every config. */
TEST_P(ResidentDataset, MatchesPredictBitExactly)
{
    ResidentCase param = GetParam();
    testing::RandomForestSpec spec;
    spec.numFeatures = 12;
    spec.numTrees = 24;
    spec.maxDepth = 6;
    spec.seed = 404;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);

    hir::Schedule schedule = makeSchedule(param.layout, param.precision,
                                          param.numThreads);
    Session session = makeSession(forest, schedule, param.backend);

    // Include a batch that is not a multiple of the worker count or
    // the tile width.
    for (int64_t num_rows : {int64_t{1}, int64_t{7}, int64_t{103}}) {
        std::vector<float> rows = makeRandomRows(
            spec.numFeatures, num_rows, 99 + static_cast<uint64_t>(num_rows));
        std::vector<float> expected(static_cast<size_t>(num_rows));
        session.predict(rows.data(), num_rows, expected.data());

        Dataset dataset = session.bindDataset(rows.data(), num_rows);
        EXPECT_EQ(dataset.numRows(), num_rows);
        EXPECT_EQ(dataset.numFeatures(), spec.numFeatures);
        bool expect_image =
            param.layout == hir::MemoryLayout::kPacked &&
            param.precision == hir::PackedPrecision::kI16;
        EXPECT_EQ(dataset.hasQuantizedImage(), expect_image);

        std::vector<float> actual(static_cast<size_t>(num_rows), -1.0f);
        session.predictDataset(dataset, actual.data());
        expectPredictionsExact(expected, actual);

        // Repeat calls stay exact (the cached image is not consumed).
        std::fill(actual.begin(), actual.end(), -1.0f);
        session.predictDataset(dataset, actual.data());
        expectPredictionsExact(expected, actual);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ResidentDataset,
    ::testing::Values(
        ResidentCase{hir::MemoryLayout::kArray,
                     hir::PackedPrecision::kF32, Backend::kKernel, 1},
        ResidentCase{hir::MemoryLayout::kSparse,
                     hir::PackedPrecision::kF32, Backend::kKernel, 2},
        ResidentCase{hir::MemoryLayout::kPacked,
                     hir::PackedPrecision::kF32, Backend::kKernel, 1},
        ResidentCase{hir::MemoryLayout::kPacked,
                     hir::PackedPrecision::kI16, Backend::kKernel, 1},
        ResidentCase{hir::MemoryLayout::kPacked,
                     hir::PackedPrecision::kI16, Backend::kKernel, 3},
        ResidentCase{hir::MemoryLayout::kArray,
                     hir::PackedPrecision::kF32, Backend::kSourceJit, 1},
        ResidentCase{hir::MemoryLayout::kSparse,
                     hir::PackedPrecision::kF32, Backend::kSourceJit, 2},
        ResidentCase{hir::MemoryLayout::kPacked,
                     hir::PackedPrecision::kI16, Backend::kSourceJit, 1},
        ResidentCase{hir::MemoryLayout::kPacked,
                     hir::PackedPrecision::kI16, Backend::kSourceJit,
                     3}));

model::Forest
makeQuantizedForest(uint64_t seed)
{
    testing::RandomForestSpec spec;
    spec.numFeatures = 10;
    spec.numTrees = 16;
    spec.maxDepth = 6;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    return forest;
}

hir::Schedule
i16PackedSchedule(int32_t num_threads = 1)
{
    return makeSchedule(hir::MemoryLayout::kPacked,
                        hir::PackedPrecision::kI16, num_threads);
}

/**
 * The point of the path: after binding, predictDataset performs zero
 * per-call quantization passes, while plain predict pays one per call.
 */
TEST(ResidentDatasetStats, NoPerCallQuantizationAfterBind)
{
    model::Forest forest = makeQuantizedForest(31);
    Session session =
        makeSession(forest, i16PackedSchedule(), Backend::kKernel);

    int64_t num_rows = 64;
    std::vector<float> rows = makeRandomRows(10, num_rows, 5);
    std::vector<float> out(static_cast<size_t>(num_rows));

    runtime::RowQuantizationStats before =
        runtime::rowQuantizationStats();
    Dataset dataset = session.bindDataset(rows.data(), num_rows);
    runtime::RowQuantizationStats bound =
        runtime::rowQuantizationStats();
    EXPECT_EQ(bound.datasetBinds, before.datasetBinds + 1);
    EXPECT_EQ(bound.datasetRows, before.datasetRows + num_rows);
    EXPECT_EQ(bound.batchPasses, before.batchPasses);

    for (int call = 0; call < 5; ++call)
        session.predictDataset(dataset, out.data());
    runtime::RowQuantizationStats after =
        runtime::rowQuantizationStats();
    EXPECT_EQ(after.batchPasses, bound.batchPasses)
        << "predictDataset must not quantize per call";
    EXPECT_EQ(after.batchRows, bound.batchRows);
    EXPECT_EQ(after.datasetBinds, bound.datasetBinds);

    // The ordinary path pays the pass on every call.
    session.predict(rows.data(), num_rows, out.data());
    runtime::RowQuantizationStats per_call =
        runtime::rowQuantizationStats();
    EXPECT_GT(per_call.batchPasses, after.batchPasses);
    EXPECT_EQ(per_call.batchRows, after.batchRows + num_rows);
}

/** Rebinding swaps the rows and rebuilds the cached image in place. */
TEST(ResidentDatasetRebind, RebindRevalidatesAndRequantizes)
{
    model::Forest forest = makeQuantizedForest(32);
    Session session =
        makeSession(forest, i16PackedSchedule(), Backend::kKernel);

    int64_t num_rows = 32;
    std::vector<float> rows_a = makeRandomRows(10, num_rows, 1);
    std::vector<float> rows_b = makeRandomRows(10, num_rows, 2);
    std::vector<float> expected_a(static_cast<size_t>(num_rows));
    std::vector<float> expected_b(static_cast<size_t>(num_rows));
    session.predict(rows_a.data(), num_rows, expected_a.data());
    session.predict(rows_b.data(), num_rows, expected_b.data());

    Dataset dataset = session.bindDataset(rows_a.data(), num_rows);
    std::vector<float> actual(static_cast<size_t>(num_rows));
    session.predictDataset(dataset, actual.data());
    expectPredictionsExact(expected_a, actual);

    session.rebindDataset(dataset, rows_b.data(), num_rows);
    session.predictDataset(dataset, actual.data());
    expectPredictionsExact(expected_b, actual);

    // Shrinking to empty clears the image and predicts nothing.
    session.rebindDataset(dataset, rows_b.data(), 0);
    EXPECT_EQ(dataset.numRows(), 0);
    EXPECT_FALSE(dataset.hasQuantizedImage());
    session.predictDataset(dataset, actual.data());
}

TEST(ResidentDatasetErrors, RejectsForeignAndInvalidBindings)
{
    model::Forest forest = makeQuantizedForest(33);
    Session session_a =
        makeSession(forest, i16PackedSchedule(), Backend::kKernel);
    Session session_b =
        makeSession(forest, i16PackedSchedule(), Backend::kKernel);

    std::vector<float> rows = makeRandomRows(10, 8, 3);
    std::vector<float> out(8);

    EXPECT_THROW(session_a.bindDataset(rows.data(), -1), Error);
    EXPECT_THROW(session_a.bindDataset(nullptr, 4), Error);

    // An unbound dataset and a dataset bound to another session are
    // both rejected as user errors (recoverable, not a panic).
    Dataset unbound;
    EXPECT_THROW(session_a.predictDataset(unbound, out.data()), Error);
    Dataset foreign = session_b.bindDataset(rows.data(), 8);
    EXPECT_THROW(session_a.predictDataset(foreign, out.data()), Error);
    // ... while its owner accepts it.
    session_b.predictDataset(foreign, out.data());

    // Binding zero rows is legal (nullptr allowed) and predicts
    // nothing.
    Dataset empty = session_a.bindDataset(nullptr, 0);
    EXPECT_EQ(empty.numRows(), 0);
    session_a.predictDataset(empty, out.data());
}

/** Datasets stay valid across moves of their binding session. */
TEST(ResidentDatasetMove, DatasetSurvivesSessionMove)
{
    model::Forest forest = makeQuantizedForest(34);
    Session session =
        makeSession(forest, i16PackedSchedule(), Backend::kKernel);

    int64_t num_rows = 16;
    std::vector<float> rows = makeRandomRows(10, num_rows, 4);
    std::vector<float> expected(static_cast<size_t>(num_rows));
    session.predict(rows.data(), num_rows, expected.data());
    Dataset dataset = session.bindDataset(rows.data(), num_rows);

    Session moved = std::move(session);
    std::vector<float> actual(static_cast<size_t>(num_rows));
    moved.predictDataset(dataset, actual.data());
    expectPredictionsExact(expected, actual);
}

/**
 * Regression test for the per-chunk allocation bug in the threaded
 * quantization path: the per-worker scratch buffer is reused across
 * chunks, and a threaded multi-chunk run must stay bit-identical to
 * the serial one (small rowChunkRows forces each worker through many
 * scratch reuses per call).
 */
TEST(ResidentDatasetScratch, ChunkedQuantizationReusesScratchExactly)
{
    model::Forest forest = makeQuantizedForest(35);
    Session serial =
        makeSession(forest, i16PackedSchedule(1), Backend::kKernel);

    hir::Schedule chunked = i16PackedSchedule(4);
    chunked.rowChunkRows = 3;
    Session threaded = makeSession(forest, chunked, Backend::kKernel);

    int64_t num_rows = 257;
    std::vector<float> rows = makeRandomRows(10, num_rows, 6);
    std::vector<float> expected(static_cast<size_t>(num_rows));
    std::vector<float> actual(static_cast<size_t>(num_rows));
    serial.predict(rows.data(), num_rows, expected.data());

    for (int repeat = 0; repeat < 3; ++repeat) {
        std::fill(actual.begin(), actual.end(), -1.0f);
        threaded.predict(rows.data(), num_rows, actual.data());
        expectPredictionsExact(expected, actual);
    }

    // And the resident path through the same chunked dispatch.
    Dataset dataset = threaded.bindDataset(rows.data(), num_rows);
    std::fill(actual.begin(), actual.end(), -1.0f);
    threaded.predictDataset(dataset, actual.data());
    expectPredictionsExact(expected, actual);
}

/** The JIT resident entries are emitted only for quantized plans. */
TEST(ResidentDatasetJit, ResidentEntryPresenceTracksLayout)
{
    model::Forest forest = makeQuantizedForest(36);
    Session quantized =
        makeSession(forest, i16PackedSchedule(), Backend::kSourceJit);
    EXPECT_TRUE(quantized.jit().hasResidentEntry());
    EXPECT_NE(quantized.artifacts().generatedSource.find(
                  "treebeard_predict_resident"),
              std::string::npos);

    Session plain = makeSession(
        forest,
        makeSchedule(hir::MemoryLayout::kPacked,
                     hir::PackedPrecision::kF32, 1),
        Backend::kSourceJit);
    EXPECT_FALSE(plain.jit().hasResidentEntry());
}

} // namespace
} // namespace treebeard
