/**
 * @file
 * The row-parallel traversal axis: eight rows walk one tree in
 * lockstep behind a divergence mask. Predictions are defined by the
 * accumulation order (baseScore + leaf values in tree-group order per
 * row), which traversal does not change, so every test here demands
 * bit-exactness — against the scalar reference, against the
 * node-parallel plan, and between the kernel and source-JIT backends
 * across all layouts and both packed precisions. Also holds the
 * zero-row fast-return regression (counters must not move).
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "runtime/plan.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;

/**
 * A quantized test forest; optionally multiclass, optionally with
 * random per-node default directions so NaN routing is non-trivial.
 */
model::Forest
makeForest(bool multiclass, bool default_directions, uint64_t seed)
{
    testing::RandomForestSpec spec;
    spec.numTrees = multiclass ? 12 : 14;
    spec.numFeatures = 9;
    spec.maxDepth = 6;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    if (multiclass) {
        forest.setObjective(model::Objective::kMulticlassSoftmax);
        forest.setNumClasses(3);
        forest.setBaseScore(0.0f);
    }
    if (default_directions) {
        Rng rng(seed * 17 + 5);
        for (int64_t t = 0; t < forest.numTrees(); ++t) {
            model::DecisionTree &tree = forest.mutableTree(t);
            for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
                if (!tree.node(i).isLeaf())
                    tree.mutableNode(i).defaultLeft =
                        rng.bernoulli(0.5);
            }
        }
    }
    return forest;
}

/** Rows with NaNs sprinkled in to exercise default-left routing. */
std::vector<float>
makeRowsWithNans(int32_t num_features, int64_t num_rows, uint64_t seed)
{
    std::vector<float> rows =
        makeRandomRows(num_features, num_rows, seed);
    for (size_t i = 0; i < rows.size(); i += 7)
        rows[i] = std::numeric_limits<float>::quiet_NaN();
    return rows;
}

std::vector<float>
predictWith(Backend backend, const model::Forest &forest,
            const hir::Schedule &schedule,
            const std::vector<float> &rows)
{
    CompilerOptions options;
    options.backend = backend;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);
    int64_t num_rows =
        static_cast<int64_t>(rows.size()) / forest.numFeatures();
    std::vector<float> predictions(
        static_cast<size_t>(num_rows) * forest.numClasses());
    session.predict(rows.data(), num_rows, predictions.data());
    return predictions;
}

struct RowParallelCase
{
    hir::MemoryLayout layout;
    hir::PackedPrecision precision;
    bool multiclass;
    bool defaultDirections;
};

class RowParallelParity
    : public ::testing::TestWithParam<RowParallelCase>
{};

/**
 * The axis is orthogonal: flipping traversal on an otherwise fixed
 * schedule must not change a single bit, on either backend, and the
 * two backends must agree with each other. Batch 101 leaves a
 * 5-row remainder after the 8-wide lane groups.
 */
TEST_P(RowParallelParity, MatchesNodeParallelAndCrossBackend)
{
    const RowParallelCase &c = GetParam();
    model::Forest forest =
        makeForest(c.multiclass, c.defaultDirections, 7100);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 101, 7101);

    hir::Schedule node;
    node.tileSize = 1;
    node.layout = c.layout;
    node.packedPrecision = c.precision;
    hir::Schedule row = node;
    row.traversal = hir::TraversalKind::kRowParallel;

    std::vector<float> node_kernel =
        predictWith(Backend::kKernel, forest, node, rows);
    std::vector<float> row_kernel =
        predictWith(Backend::kKernel, forest, row, rows);
    expectPredictionsExact(node_kernel, row_kernel);

    std::vector<float> row_jit =
        predictWith(Backend::kSourceJit, forest, row, rows);
    expectPredictionsExact(row_kernel, row_jit);

    // Non-quantized layouts must also match the scalar reference.
    if (!(c.layout == hir::MemoryLayout::kPacked &&
          c.precision == hir::PackedPrecision::kI16) &&
        !c.multiclass) {
        std::vector<float> expected =
            testing::referencePredictions(forest, rows);
        expectPredictionsExact(expected, row_kernel);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RowParallelParity,
    ::testing::Values(
        RowParallelCase{hir::MemoryLayout::kSparse,
                        hir::PackedPrecision::kF32, false, false},
        RowParallelCase{hir::MemoryLayout::kSparse,
                        hir::PackedPrecision::kF32, false, true},
        RowParallelCase{hir::MemoryLayout::kArray,
                        hir::PackedPrecision::kF32, false, true},
        RowParallelCase{hir::MemoryLayout::kPacked,
                        hir::PackedPrecision::kF32, false, true},
        RowParallelCase{hir::MemoryLayout::kPacked,
                        hir::PackedPrecision::kI16, false, true},
        RowParallelCase{hir::MemoryLayout::kSparse,
                        hir::PackedPrecision::kF32, true, true},
        RowParallelCase{hir::MemoryLayout::kPacked,
                        hir::PackedPrecision::kI16, true, false}));

/**
 * Row-parallel under a non-vectorizable schedule (tile size > 1)
 * degrades to scalar lockstep walks; it must still be exact on both
 * backends.
 */
TEST(RowParallel, LargeTilesStayExact)
{
    model::Forest forest = makeForest(false, true, 7200);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 67, 7201);
    for (int32_t tile : {2, 4, 8}) {
        hir::Schedule row;
        row.tileSize = tile;
        row.traversal = hir::TraversalKind::kRowParallel;
        std::vector<float> expected =
            testing::referencePredictions(forest, rows);
        expectPredictionsExact(
            expected, predictWith(Backend::kKernel, forest, row, rows));
        expectPredictionsExact(
            expected,
            predictWith(Backend::kSourceJit, forest, row, rows));
    }
}

/** Threaded, chunked row-parallel plans stay exact on both backends. */
TEST(RowParallel, ThreadedChunkedStaysExact)
{
    model::Forest forest = makeForest(false, true, 7300);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 109, 7301);

    hir::Schedule serial;
    serial.tileSize = 1;
    serial.traversal = hir::TraversalKind::kRowParallel;
    std::vector<float> expected =
        predictWith(Backend::kKernel, forest, serial, rows);

    for (int32_t chunk : {0, 5, 64}) {
        hir::Schedule threaded = serial;
        threaded.numThreads = 4;
        threaded.rowChunkRows = chunk;
        expectPredictionsExact(
            expected,
            predictWith(Backend::kKernel, forest, threaded, rows));
        expectPredictionsExact(
            expected,
            predictWith(Backend::kSourceJit, forest, threaded, rows));
    }
}

/**
 * predictDataset under quantized packed row-parallel takes the
 * resident fast path (pre-quantized int32 row image, no per-call
 * quantization) and must match plain predict bit-exactly.
 */
TEST(RowParallel, ResidentDatasetMatchesPredict)
{
    model::Forest forest = makeForest(false, true, 7400);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 83, 7401);

    hir::Schedule schedule;
    schedule.tileSize = 1;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    schedule.traversal = hir::TraversalKind::kRowParallel;

    for (Backend backend : {Backend::kKernel, Backend::kSourceJit}) {
        CompilerOptions options;
        options.backend = backend;
        options.jit.optLevel = "-O0";
        Session session = compile(forest, schedule, options);
        std::vector<float> direct(83, -7.f), resident(83, -7.f);
        session.predict(rows.data(), 83, direct.data());

        runtime::RowQuantizationStats before =
            runtime::rowQuantizationStats();
        Dataset dataset = session.bindDataset(rows.data(), 83);
        session.predictDataset(dataset, resident.data());
        runtime::RowQuantizationStats after =
            runtime::rowQuantizationStats();
        expectPredictionsExact(direct, resident);
        // The resident path quantizes at bind time, never per call.
        EXPECT_EQ(after.datasetBinds, before.datasetBinds + 1);
        EXPECT_EQ(after.batchPasses, before.batchPasses);
    }
}

/**
 * The emitted row-parallel TU really carries the lane-group walker:
 * masked leaf gathers behind a divergence mask, with a scalar
 * fallback branch for hosts without AVX2.
 */
TEST(RowParallel, GeneratedSourceCarriesLaneGroupWalker)
{
    model::Forest forest = makeForest(false, true, 7500);
    hir::Schedule schedule;
    schedule.tileSize = 1;
    schedule.traversal = hir::TraversalKind::kRowParallel;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);

    const std::string &source = session.artifacts().generatedSource;
    EXPECT_NE(source.find("_rows8"), std::string::npos);
    EXPECT_NE(source.find("_mm256_mask_i32gather_ps"),
              std::string::npos);
    EXPECT_NE(source.find("__AVX2__"), std::string::npos);
}

/**
 * Satellite regression: a zero-row batch returns before any backend
 * dispatch — no quantization pass runs and no counter moves, on
 * either backend, serial or pooled, through predict and
 * predictDataset alike.
 */
TEST(RowParallel, ZeroRowBatchTouchesNoCounters)
{
    model::Forest forest = makeForest(false, false, 7600);
    hir::Schedule schedule;
    schedule.tileSize = 1;
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = hir::PackedPrecision::kI16;
    schedule.traversal = hir::TraversalKind::kRowParallel;

    for (Backend backend : {Backend::kKernel, Backend::kSourceJit}) {
        for (int32_t threads : {1, 4}) {
            hir::Schedule s = schedule;
            s.numThreads = threads;
            CompilerOptions options;
            options.backend = backend;
            options.jit.optLevel = "-O0";
            Session session = compile(forest, s, options);

            runtime::RowQuantizationStats before =
                runtime::rowQuantizationStats();
            float sentinel = -7.f;
            session.predict(nullptr, 0, &sentinel);
            Dataset empty = session.bindDataset(nullptr, 0);
            session.predictDataset(empty, &sentinel);
            runtime::RowQuantizationStats after =
                runtime::rowQuantizationStats();

            EXPECT_EQ(after.batchPasses, before.batchPasses);
            EXPECT_EQ(after.batchRows, before.batchRows);
            EXPECT_EQ(after.datasetBinds, before.datasetBinds);
            EXPECT_EQ(after.datasetRows, before.datasetRows);
            // The output buffer is untouched too.
            EXPECT_EQ(sentinel, -7.f);
        }
    }
}

} // namespace
} // namespace treebeard
