/**
 * @file
 * Direct tests of the runtime walk kernels against the tiled-tree
 * reference traversal: every (layout, tile size, walk mode,
 * interleave width) combination, plus robustness of the sparse
 * layout's safety tail against NaN inputs.
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "lir/layout_builder.h"
#include "runtime/walkers.h"
#include "test_utils.h"

namespace treebeard::runtime {
namespace {

struct WalkerFixtureState
{
    model::Forest forest{1};
    std::unique_ptr<hir::HirModule> module;
    lir::ForestBuffers sparse;
    lir::ForestBuffers array;
    std::vector<float> rows;
    int64_t numRows = 0;
};

WalkerFixtureState
makeState(int32_t tile_size, bool unroll, uint64_t seed)
{
    WalkerFixtureState state;
    testing::RandomForestSpec spec;
    spec.numTrees = 6;
    spec.maxDepth = 7;
    spec.seed = seed;
    state.forest = testing::makeRandomForest(spec);

    hir::Schedule schedule;
    schedule.tileSize = tile_size;
    schedule.padAndUnrollWalks = unroll;
    state.module =
        std::make_unique<hir::HirModule>(state.forest, schedule);
    state.module->runAllHirPasses();
    state.sparse = lir::buildSparseLayout(*state.module);
    state.array = lir::buildArrayLayout(*state.module);

    state.numRows = 64;
    state.rows = testing::makeRandomRows(spec.numFeatures,
                                         state.numRows, seed + 1);
    return state;
}

/** Reference per-(tree, row) leaf values via the tiled trees. */
float
referenceTreeValue(const WalkerFixtureState &state, int64_t pos,
                   const float *row)
{
    int64_t tree_id =
        state.module->treeOrder()[static_cast<size_t>(pos)];
    return state.module->tiledTree(tree_id).predict(row);
}

template <int NT>
void
checkAllWalkers(const WalkerFixtureState &state)
{
    const lir::ForestBuffers &sparse = state.sparse;
    const lir::ForestBuffers &array = state.array;
    const int8_t *lut = sparse.shapes->lutData();
    int32_t stride = sparse.shapes->lutStride();
    int32_t nf = state.forest.numFeatures();

    for (int64_t pos = 0; pos < sparse.numTrees; ++pos) {
        const lir::TreeWalkInfo &info =
            sparse.walkInfo[static_cast<size_t>(pos)];
        int64_t sparse_root =
            sparse.treeFirstTile[static_cast<size_t>(pos)];
        int64_t array_base =
            array.treeFirstTile[static_cast<size_t>(pos)];

        for (int64_t r = 0; r < state.numRows; ++r) {
            const float *row = state.rows.data() + r * nf;
            float expected = referenceTreeValue(state, pos, row);

            EXPECT_EQ((walkSparse<NT, true>(sparse, lut, stride, sparse_root,
                                     row)),
                      expected);
            EXPECT_EQ((walkArray<NT, true>(array, lut, stride, array_base,
                                    row)),
                      expected);
            if (info.unrolled) {
                EXPECT_EQ((walkSparseUnrolled<NT, true>(sparse, lut, stride,
                                                 sparse_root, row,
                                                 info.unrolledDepth)),
                          expected);
                EXPECT_EQ((walkArrayUnrolled<NT, true>(array, lut, stride,
                                                array_base, row,
                                                info.unrolledDepth)),
                          expected);
            } else {
                EXPECT_EQ((walkSparsePeeled<NT, true>(sparse, lut, stride,
                                               sparse_root, row,
                                               info.peelDepth)),
                          expected);
                EXPECT_EQ((walkArrayPeeled<NT, true>(array, lut, stride,
                                              array_base, row,
                                              info.peelDepth)),
                          expected);
            }
        }

        // Interleaved variants, 4 rows at a time.
        constexpr int K = 4;
        for (int64_t r = 0; r + K <= state.numRows; r += K) {
            const float *row_ptrs[K];
            int64_t sparse_roots[K], array_bases[K];
            float expected[K];
            for (int k = 0; k < K; ++k) {
                row_ptrs[k] = state.rows.data() + (r + k) * nf;
                sparse_roots[k] = sparse_root;
                array_bases[k] = array_base;
                expected[k] = referenceTreeValue(state, pos,
                                                 row_ptrs[k]);
            }
            float out[K];
            if (info.unrolled) {
                walkSparseUnrolledInterleaved<NT, true, K>(
                    sparse, lut, stride, sparse_roots, row_ptrs,
                    info.unrolledDepth, out);
                for (int k = 0; k < K; ++k)
                    EXPECT_EQ(out[k], expected[k]);
                walkArrayUnrolledInterleaved<NT, true, K>(
                    array, lut, stride, array_bases, row_ptrs,
                    info.unrolledDepth, out);
                for (int k = 0; k < K; ++k)
                    EXPECT_EQ(out[k], expected[k]);
            } else {
                walkSparseGenericInterleaved<NT, true, K>(
                    sparse, lut, stride, sparse_roots, row_ptrs,
                    info.peelDepth, out);
                for (int k = 0; k < K; ++k)
                    EXPECT_EQ(out[k], expected[k]);
                walkArrayGenericInterleaved<NT, true, K>(
                    array, lut, stride, array_bases, row_ptrs,
                    info.peelDepth, out);
                for (int k = 0; k < K; ++k)
                    EXPECT_EQ(out[k], expected[k]);
            }
        }
    }
}

TEST(Walkers, Tile1Generic)
{
    checkAllWalkers<1>(makeState(1, false, 501));
}

TEST(Walkers, Tile2Unrolled)
{
    checkAllWalkers<2>(makeState(2, true, 502));
}

TEST(Walkers, Tile4Generic)
{
    checkAllWalkers<4>(makeState(4, false, 503));
}

TEST(Walkers, Tile4Unrolled)
{
    checkAllWalkers<4>(makeState(4, true, 504));
}

TEST(Walkers, Tile8Generic)
{
    checkAllWalkers<8>(makeState(8, false, 505));
}

TEST(Walkers, Tile8Unrolled)
{
    checkAllWalkers<8>(makeState(8, true, 506));
}

TEST(Walkers, NanInputsStayMemorySafe)
{
    // NaN features break the dummy tiles' all-true routing; the
    // sparse layout's safety tail must keep such walks in bounds (the
    // result is unspecified, the execution must not fault).
    WalkerFixtureState state = makeState(8, true, 507);
    std::vector<float> nan_row(
        static_cast<size_t>(state.forest.numFeatures()),
        std::numeric_limits<float>::quiet_NaN());
    const int8_t *lut = state.sparse.shapes->lutData();
    int32_t stride = state.sparse.shapes->lutStride();
    for (int64_t pos = 0; pos < state.sparse.numTrees; ++pos) {
        int64_t root =
            state.sparse.treeFirstTile[static_cast<size_t>(pos)];
        float value = walkSparse<8, true>(state.sparse, lut, stride, root,
                                    nan_row.data());
        EXPECT_TRUE(std::isfinite(value) || std::isnan(value));
    }
}

TEST(Walkers, EvalTileAgreesWithDynamicPath)
{
    WalkerFixtureState state = makeState(8, false, 508);
    const int8_t *lut = state.sparse.shapes->lutData();
    int32_t stride = state.sparse.shapes->lutStride();
    for (int64_t tile = 0; tile < state.sparse.numTiles(); ++tile) {
        for (int64_t r = 0; r < 8; ++r) {
            const float *row = state.rows.data() +
                               r * state.forest.numFeatures();
            EXPECT_EQ((evalTile<8, false>(state.sparse, lut, stride,
                                          tile, row)),
                      evalTileDynamic(state.sparse, tile, row))
                << "tile " << tile << " row " << r;
        }
    }
}

} // namespace
} // namespace treebeard::runtime
