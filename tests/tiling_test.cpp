/**
 * @file
 * Tests for the HIR tiling transformations (Section III): validity
 * constraints of both tiling algorithms, traversal equivalence of
 * tiled trees, padding, expected-depth behaviour of probability-based
 * tiling on leaf-biased trees, and the leaf-bias gate.
 */
#include <gtest/gtest.h>

#include "hir/tiling.h"
#include "model/model_stats.h"
#include "test_utils.h"

namespace treebeard::hir {
namespace {

using testing::makeRandomForest;
using testing::makeRandomRows;

struct TilingCase
{
    int32_t tileSize;
    TilingAlgorithm algorithm;
    uint64_t seed;
};

std::string
tilingCaseName(const ::testing::TestParamInfo<TilingCase> &info)
{
    std::string name = tilingAlgorithmName(info.param.algorithm);
    // gtest parameterized-test names must be alphanumeric.
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name + "_nt" + std::to_string(info.param.tileSize) +
           "_seed" + std::to_string(info.param.seed);
}

class TilingValidity : public ::testing::TestWithParam<TilingCase>
{};

TEST_P(TilingValidity, ProducesValidTilingAndEquivalentWalks)
{
    const TilingCase &c = GetParam();
    testing::RandomForestSpec spec;
    spec.numTrees = 8;
    spec.maxDepth = 8;
    spec.splitProbability = 0.7;
    spec.seed = c.seed;
    model::Forest forest = makeRandomForest(spec);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 100,
                                             c.seed + 1);

    TilingOptions options;
    options.algorithm = c.algorithm;
    options.tileSize = c.tileSize;
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        TiledTree tiled = tileTree(tree, options);
        tiled.validate();

        // Tile sizes respected.
        for (TileId id = 0; id < tiled.numTiles(); ++id) {
            EXPECT_LE(tiled.tile(id).numNodes(), c.tileSize);
        }

        // Walk equivalence against the binary tree.
        for (int64_t r = 0; r < 100; ++r) {
            const float *row = rows.data() + r * spec.numFeatures;
            EXPECT_EQ(tree.predict(row), tiled.predict(row))
                << "tree " << t << " row " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TilingValidity,
    ::testing::Values(
        TilingCase{1, TilingAlgorithm::kBasic, 1},
        TilingCase{2, TilingAlgorithm::kBasic, 2},
        TilingCase{3, TilingAlgorithm::kBasic, 3},
        TilingCase{4, TilingAlgorithm::kBasic, 4},
        TilingCase{8, TilingAlgorithm::kBasic, 5},
        TilingCase{1, TilingAlgorithm::kProbabilityBased, 6},
        TilingCase{2, TilingAlgorithm::kProbabilityBased, 7},
        TilingCase{4, TilingAlgorithm::kProbabilityBased, 8},
        TilingCase{8, TilingAlgorithm::kProbabilityBased, 9},
        TilingCase{5, TilingAlgorithm::kBasic, 10},
        TilingCase{6, TilingAlgorithm::kProbabilityBased, 11},
        TilingCase{7, TilingAlgorithm::kProbabilityBased, 12},
        TilingCase{2, TilingAlgorithm::kMinMaxDepth, 13},
        TilingCase{4, TilingAlgorithm::kMinMaxDepth, 14},
        TilingCase{8, TilingAlgorithm::kMinMaxDepth, 15},
        TilingCase{4, TilingAlgorithm::kHybrid, 16},
        TilingCase{8, TilingAlgorithm::kHybrid, 17}),
    tilingCaseName);

TEST(MinMaxDepthTiling, NeverDeeperThanBasicOnChains)
{
    // On an unbalanced tree the min-max-depth heuristic must achieve
    // a maximum tiled leaf depth no worse than basic tiling's.
    testing::RandomForestSpec spec;
    spec.numTrees = 10;
    spec.maxDepth = 9;
    spec.splitProbability = 0.55; // very unbalanced
    spec.seed = 777;
    model::Forest forest = makeRandomForest(spec);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        TiledTree minmax = minMaxDepthTiling(forest.tree(t), 4);
        TiledTree basic = basicTiling(forest.tree(t), 4);
        minmax.validate();
        EXPECT_LE(minmax.maxLeafDepth(), basic.maxLeafDepth() + 1);
    }
}

TEST(BasicTiling, SingleLeafTree)
{
    model::DecisionTree tree;
    tree.setRoot(tree.addLeaf(0.75f));
    TiledTree tiled = basicTiling(tree, 4);
    tiled.validate();
    EXPECT_EQ(tiled.numTiles(), 1);
    EXPECT_EQ(tiled.maxLeafDepth(), 0);
    float row = 0.0f;
    EXPECT_EQ(tiled.predict(&row), 0.75f);
}

TEST(BasicTiling, CompleteTreeMatchesFastStyleTiling)
{
    // A perfectly balanced depth-4 tree with tile size 3 should tile
    // into complete triangular tiles of 3 nodes covering two levels
    // each (the FAST tiling the paper generalizes): depth-4 tree ->
    // tiled depth 2.
    model::DecisionTree tree;
    // Build a complete tree of depth 4 bottom-up.
    std::vector<model::NodeIndex> level;
    for (int i = 0; i < 16; ++i)
        level.push_back(tree.addLeaf(static_cast<float>(i)));
    int32_t feature = 0;
    while (level.size() > 1) {
        std::vector<model::NodeIndex> next;
        for (size_t i = 0; i < level.size(); i += 2) {
            next.push_back(tree.addInternal(feature % 4, 0.5f, level[i],
                                            level[i + 1]));
            ++feature;
        }
        level = std::move(next);
    }
    tree.setRoot(level[0]);
    tree.validate(4);

    TiledTree tiled = basicTiling(tree, 3);
    tiled.validate();
    EXPECT_TRUE(tiled.isPerfectlyBalanced());
    EXPECT_EQ(tiled.maxLeafDepth(), 2);
    for (TileId id = 0; id < tiled.numTiles(); ++id) {
        const Tile &tile = tiled.tile(id);
        if (tile.kind == Tile::Kind::kInternal)
            EXPECT_EQ(tile.numNodes(), 3);
    }
}

TEST(BasicTiling, ReducesImbalanceOfChains)
{
    // A pure left chain of depth 8: basic tiling with tile size 4
    // groups 4 chain nodes per tile, giving tiled depth 2 --
    // "naturally reduces the imbalance in trees".
    model::DecisionTree tree;
    model::NodeIndex current = tree.addLeaf(1.0f);
    for (int d = 0; d < 8; ++d) {
        model::NodeIndex leaf = tree.addLeaf(static_cast<float>(d));
        current = tree.addInternal(0, 0.1f * (d + 1), current, leaf);
    }
    tree.setRoot(current);
    tree.validate(1);
    EXPECT_EQ(tree.maxDepth(), 8);

    TiledTree tiled = basicTiling(tree, 4);
    tiled.validate();
    EXPECT_EQ(tiled.maxLeafDepth(), 2);
}

TEST(ProbabilityTiling, ShortensHotPathOnBiasedTree)
{
    // A chain tree where the deepest leaf receives nearly all hits:
    // probability-based tiling must give the hot leaf a smaller tiled
    // depth than basic tiling gives it, reducing expected depth.
    model::DecisionTree tree;
    // Chain to the LEFT: hot path is left-left-left...
    model::NodeIndex current = tree.addLeaf(9.0f, /*hit_count=*/1000);
    for (int d = 0; d < 6; ++d) {
        model::NodeIndex cold = tree.addLeaf(static_cast<float>(d),
                                             /*hit_count=*/1);
        current = tree.addInternal(0, 0.9f - 0.1f * d, current, cold);
    }
    tree.setRoot(current);
    tree.validate(1);
    tree.accumulateInternalHitCounts();

    TiledTree prob = probabilityBasedTiling(tree, 4);
    TiledTree basic = basicTiling(tree, 4);
    prob.validate();
    basic.validate();
    EXPECT_LE(prob.expectedDepth(), basic.expectedDepth() + 1e-12);
}

TEST(ProbabilityTiling, MinimizesExpectedDepthOnRandomBiasedTrees)
{
    // On strongly biased synthetic trees, probability tiling should
    // (weakly) beat basic tiling's expected depth most of the time.
    data::SyntheticModelSpec spec;
    spec.name = "biased";
    spec.numFeatures = 6;
    spec.numTrees = 30;
    spec.maxDepth = 9;
    spec.featureDistribution = data::FeatureDistribution::kBinarySparse;
    spec.binaryOneProbability = 0.05;
    spec.trainingRows = 2000;
    spec.seed = 99;
    model::Forest forest = data::synthesizeForest(spec);

    int better_or_equal = 0;
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        TiledTree prob = probabilityBasedTiling(forest.tree(t), 8);
        TiledTree basic = basicTiling(forest.tree(t), 8);
        if (prob.expectedDepth() <= basic.expectedDepth() + 1e-9)
            ++better_or_equal;
    }
    EXPECT_GE(better_or_equal, forest.numTrees() * 2 / 3);
}

TEST(Padding, BalancesTreeAndPreservesPredictions)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 5;
    spec.splitProbability = 0.55; // quite unbalanced
    spec.seed = 321;
    model::Forest forest = makeRandomForest(spec);
    std::vector<float> rows = makeRandomRows(spec.numFeatures, 60, 7);

    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        TiledTree tiled = basicTiling(tree, 4);
        int32_t target = tiled.maxLeafDepth();
        tiled.padToDepth(target);
        tiled.validate();
        EXPECT_TRUE(tiled.isPerfectlyBalanced());
        EXPECT_EQ(tiled.maxLeafDepth(), target);
        for (int64_t r = 0; r < 60; ++r) {
            const float *row = rows.data() + r * spec.numFeatures;
            EXPECT_EQ(tree.predict(row), tiled.predict(row));
        }
    }
}

TEST(Padding, PadBeyondCurrentDepth)
{
    model::DecisionTree tree;
    model::NodeIndex left = tree.addLeaf(1.0f);
    model::NodeIndex right = tree.addLeaf(2.0f);
    tree.setRoot(tree.addInternal(0, 0.5f, left, right));

    TiledTree tiled = basicTiling(tree, 2);
    EXPECT_EQ(tiled.maxLeafDepth(), 1);
    tiled.padToDepth(3);
    tiled.validate();
    EXPECT_TRUE(tiled.isPerfectlyBalanced());
    EXPECT_EQ(tiled.maxLeafDepth(), 3);

    float row_low = 0.2f, row_high = 0.8f;
    EXPECT_EQ(tiled.predict(&row_low), 1.0f);
    EXPECT_EQ(tiled.predict(&row_high), 2.0f);

    EXPECT_THROW(tiled.padToDepth(1), Error);
}

TEST(LeafBiasGate, HybridSelectsPerTree)
{
    // Leaf-biased tree: one dominant leaf.
    model::DecisionTree biased;
    {
        std::vector<model::NodeIndex> leaves;
        for (int i = 0; i < 8; ++i)
            leaves.push_back(biased.addLeaf(
                static_cast<float>(i), i == 0 ? 10000.0 : 1.0));
        std::vector<model::NodeIndex> level = leaves;
        int f = 0;
        while (level.size() > 1) {
            std::vector<model::NodeIndex> next;
            for (size_t i = 0; i < level.size(); i += 2) {
                next.push_back(biased.addInternal(
                    f++ % 3, 0.5f, level[i], level[i + 1]));
            }
            level = std::move(next);
        }
        biased.setRoot(level[0]);
        biased.accumulateInternalHitCounts();
    }
    EXPECT_TRUE(model::isLeafBiased(biased, 0.2, 0.9));
    EXPECT_FALSE(model::isLeafBiased(biased, 0.05, 0.9));

    // Uniform tree: no bias at any sensible alpha.
    model::DecisionTree uniform;
    {
        std::vector<model::NodeIndex> level;
        for (int i = 0; i < 8; ++i)
            level.push_back(uniform.addLeaf(static_cast<float>(i), 10.0));
        int f = 0;
        while (level.size() > 1) {
            std::vector<model::NodeIndex> next;
            for (size_t i = 0; i < level.size(); i += 2) {
                next.push_back(uniform.addInternal(
                    f++ % 3, 0.5f, level[i], level[i + 1]));
            }
            level = std::move(next);
        }
        uniform.setRoot(level[0]);
        uniform.accumulateInternalHitCounts();
    }
    EXPECT_FALSE(model::isLeafBiased(uniform, 0.2, 0.9));
}

TEST(TiledTreeStructure, SignatureDistinguishesShapes)
{
    model::DecisionTree small;
    small.setRoot(small.addInternal(0, 0.5f, small.addLeaf(1.0f),
                                    small.addLeaf(2.0f)));
    model::DecisionTree larger;
    {
        model::NodeIndex l1 = larger.addLeaf(1.0f);
        model::NodeIndex l2 = larger.addLeaf(2.0f);
        model::NodeIndex l3 = larger.addLeaf(3.0f);
        model::NodeIndex inner = larger.addInternal(1, 0.3f, l1, l2);
        larger.setRoot(larger.addInternal(0, 0.5f, inner, l3));
    }
    TiledTree a = basicTiling(small, 2);
    TiledTree b = basicTiling(larger, 2);
    EXPECT_NE(a.structureSignature(), b.structureSignature());
    TiledTree a2 = basicTiling(small, 2);
    EXPECT_EQ(a.structureSignature(), a2.structureSignature());
}

} // namespace
} // namespace treebeard::hir
