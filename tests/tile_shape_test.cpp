/**
 * @file
 * Tests for tile-shape enumeration and the child-index LUT
 * (Section V-A): shape counts match Catalan numbers, the LUT agrees
 * with direct in-shape walks for every outcome, exit ordinals are
 * consistent, and don't-care bits do not change the result.
 */
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "lir/tile_shape.h"

namespace treebeard::lir {
namespace {

TEST(CatalanNumber, FirstValues)
{
    EXPECT_EQ(catalanNumber(0), 1);
    EXPECT_EQ(catalanNumber(1), 1);
    EXPECT_EQ(catalanNumber(2), 2);
    EXPECT_EQ(catalanNumber(3), 5);
    EXPECT_EQ(catalanNumber(4), 14);
    EXPECT_EQ(catalanNumber(8), 1430);
}

class ShapeTableTest : public ::testing::TestWithParam<int32_t>
{};

TEST_P(ShapeTableTest, ShapeCountMatchesCatalanSum)
{
    int32_t tile_size = GetParam();
    const TileShapeTable &table = TileShapeTable::get(tile_size);
    int64_t expected = 0;
    for (int32_t k = 1; k <= tile_size; ++k)
        expected += catalanNumber(k);
    EXPECT_EQ(table.numShapes(), expected);
}

TEST_P(ShapeTableTest, SerializationsAreUnique)
{
    const TileShapeTable &table = TileShapeTable::get(GetParam());
    std::set<std::string> seen;
    for (int32_t s = 0; s < table.numShapes(); ++s) {
        std::string key = table.shape(s).serialize();
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate serialization " << key;
    }
}

TEST_P(ShapeTableTest, LutMatchesDirectWalkForAllOutcomes)
{
    int32_t tile_size = GetParam();
    const TileShapeTable &table = TileShapeTable::get(tile_size);
    for (int32_t s = 0; s < table.numShapes(); ++s) {
        for (int32_t outcome = 0; outcome < (1 << tile_size);
             ++outcome) {
            EXPECT_EQ(table.child(s, static_cast<uint32_t>(outcome)),
                      table.walkShape(s, static_cast<uint32_t>(outcome)))
                << "shape " << s << " outcome " << outcome;
        }
    }
}

TEST_P(ShapeTableTest, ChildIndicesWithinArity)
{
    int32_t tile_size = GetParam();
    const TileShapeTable &table = TileShapeTable::get(tile_size);
    for (int32_t s = 0; s < table.numShapes(); ++s) {
        const TileShape &shape = table.shape(s);
        for (int32_t outcome = 0; outcome < (1 << tile_size);
             ++outcome) {
            int32_t child =
                table.child(s, static_cast<uint32_t>(outcome));
            EXPECT_GE(child, 0);
            EXPECT_LT(child, shape.numChildren());
        }
    }
}

TEST_P(ShapeTableTest, DontCareBitsDoNotChangeResult)
{
    int32_t tile_size = GetParam();
    const TileShapeTable &table = TileShapeTable::get(tile_size);
    for (int32_t s = 0; s < table.numShapes(); ++s) {
        int32_t nodes = table.shape(s).numNodes();
        if (nodes == tile_size)
            continue;
        uint32_t care_mask = (1u << nodes) - 1;
        for (uint32_t care = 0; care <= care_mask; ++care) {
            int32_t baseline = table.child(s, care);
            // Flip every combination of don't-care bits.
            for (int32_t bit = nodes; bit < tile_size; ++bit) {
                EXPECT_EQ(table.child(s, care | (1u << bit)), baseline);
            }
        }
    }
}

TEST_P(ShapeTableTest, ExitOrdinalsCoverAllChildren)
{
    const TileShapeTable &table = TileShapeTable::get(GetParam());
    for (int32_t s = 0; s < table.numShapes(); ++s) {
        const TileShape &shape = table.shape(s);
        std::set<int32_t> ordinals;
        for (int32_t slot = 0; slot < shape.numNodes(); ++slot) {
            for (int32_t side = 0; side < 2; ++side) {
                int32_t link =
                    side == 0 ? shape.left[static_cast<size_t>(slot)]
                              : shape.right[static_cast<size_t>(slot)];
                int32_t ordinal = table.exitOrdinal(s, slot, side);
                if (link == kExit) {
                    EXPECT_TRUE(ordinals.insert(ordinal).second);
                } else {
                    EXPECT_EQ(ordinal, -1);
                }
            }
        }
        EXPECT_EQ(static_cast<int32_t>(ordinals.size()),
                  shape.numChildren());
        EXPECT_EQ(*ordinals.begin(), 0);
        EXPECT_EQ(*ordinals.rbegin(), shape.numChildren() - 1);
    }
}

TEST_P(ShapeTableTest, LeftChainAllOnesExitsAtChildZero)
{
    int32_t tile_size = GetParam();
    const TileShapeTable &table = TileShapeTable::get(tile_size);
    int32_t chain = table.leftChainShapeId();
    EXPECT_EQ(table.shape(chain).numNodes(), tile_size);
    uint32_t all_ones = (1u << tile_size) - 1;
    EXPECT_EQ(table.child(chain, all_ones), 0);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, ShapeTableTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ShapeTable, Size3MatchesFigure4)
{
    // Figure 4: five shapes of tile size 3 (plus sizes 1 and 2:
    // 1 + 2 = 3 smaller shapes).
    const TileShapeTable &table = TileShapeTable::get(3);
    EXPECT_EQ(table.numShapes(), 1 + 2 + 5);
}

TEST(ShapeTable, Figure5FirstTileTraversals)
{
    // The first tile of Figure 5 is the left-leaning chain of size 3
    // (nodes 0 -> 1 -> 2 along left edges; children a..d are the exit
    // edges left-to-right: a = left(2), b = right(2), c = right(1),
    // d = right(0)). The paper's bit strings are MSB = node 0; our
    // convention is LSB = slot 0, so the paper's b0 b1 b2 maps to our
    // bits (b0 | b1<<1 | b2<<2). The paper's worked examples:
    //   111 -> a;  LUT(T1, 110) = b (second child);  011 -> d.
    const TileShapeTable &table = TileShapeTable::get(3);
    std::vector<int32_t> left{1, 2, kExit};
    std::vector<int32_t> right{kExit, kExit, kExit};
    int32_t shape = table.shapeIdOf(left, right);
    EXPECT_EQ(shape, table.leftChainShapeId());

    auto bits = [](int b0, int b1, int b2) {
        return static_cast<uint32_t>(b0 | (b1 << 1) | (b2 << 2));
    };
    EXPECT_EQ(table.child(shape, bits(1, 1, 1)), 0); // a
    EXPECT_EQ(table.child(shape, bits(1, 1, 0)), 1); // b
    EXPECT_EQ(table.child(shape, bits(1, 0, 0)), 2); // c
    EXPECT_EQ(table.child(shape, bits(1, 0, 1)), 2); // c (don't care)
    EXPECT_EQ(table.child(shape, bits(0, 1, 1)), 3); // d
    EXPECT_EQ(table.child(shape, bits(0, 0, 0)), 3); // d (don't care)

    // The complete shape of size 3 for contrast: 011 (paper order)
    // lands on the third child, as the paper notes for such shapes.
    std::vector<int32_t> full_left{1, kExit, kExit};
    std::vector<int32_t> full_right{2, kExit, kExit};
    int32_t full = table.shapeIdOf(full_left, full_right);
    EXPECT_EQ(table.child(full, bits(0, 1, 1)), 2);
}

TEST(ShapeTable, RejectsInvalidLookups)
{
    const TileShapeTable &table = TileShapeTable::get(3);
    // Too many nodes for the tile size.
    std::vector<int32_t> left{1, 2, 3, kExit};
    std::vector<int32_t> right{kExit, kExit, kExit, kExit};
    EXPECT_THROW(table.shapeIdOf(left, right), Error);
    EXPECT_THROW(TileShapeTable::get(0), Error);
    EXPECT_THROW(TileShapeTable::get(9), Error);
}

} // namespace
} // namespace treebeard::lir
