/**
 * @file
 * Selective branchless hot-path emission: selection invariants of
 * buildHotPathProgram (coverage, budget truncation, no-statistics
 * fallback), cross-backend bit-exactness with nonzero coverage across
 * layouts and precisions, the hir.hotpath.no-stats diagnostic, the
 * schedule knob's JSON round-trip, the leafProbabilities uniform-
 * fallback guarantee, and the tuner's JSON-lines database writer.
 */
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json.h"
#include "hir/hot_path.h"
#include "hir/tiling.h"
#include "test_utils.h"
#include "treebeard/compiler.h"
#include "tuner/auto_tuner.h"

namespace treebeard {
namespace {

using testing::expectPredictionsExact;
using testing::makeRandomForest;
using testing::makeRandomRows;
using testing::quantizeLeafValues;

/** Rows with NaNs sprinkled in to exercise default-left routing. */
std::vector<float>
makeRowsWithNans(int32_t num_features, int64_t num_rows, uint64_t seed)
{
    std::vector<float> rows =
        makeRandomRows(num_features, num_rows, seed);
    for (size_t i = 0; i < rows.size(); i += 7)
        rows[i] = std::numeric_limits<float>::quiet_NaN();
    return rows;
}

/**
 * Interpret a hot-path program against its base tree. Returns the leaf
 * value when the row resolves in-region and sets @p resolved; cold
 * exits leave @p resolved false (the caller cannot continue without
 * the lowered buffers, which the parity tests cover end to end).
 */
float
runProgram(const hir::HotPathProgram &program,
           const model::DecisionTree &tree, const float *row,
           bool *resolved)
{
    int32_t ref = program.nodes.empty() ? -1 : 0;
    while (ref >= 0) {
        const hir::HotPathProgram::Node &pn = program.nodes[ref];
        const model::Node &n = tree.node(pn.node);
        float value = row[n.featureIndex];
        bool go_left =
            std::isnan(value) ? n.defaultLeft : value < n.threshold;
        ref = go_left ? pn.left : pn.right;
    }
    const hir::HotPathProgram::Outcome &out =
        program.outcomes[static_cast<size_t>(-(ref + 1))];
    *resolved = out.isLeaf;
    return out.isLeaf ? out.leafValue : 0.0f;
}

double
outcomeProbabilitySum(const hir::HotPathProgram &program)
{
    double total = 0.0;
    for (const hir::HotPathProgram::Outcome &out : program.outcomes)
        total += out.probability;
    return total;
}

TEST(HotPathSelection, FullCoverageResolvesEveryRowInRegion)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 6;
    spec.maxDepth = 6;
    spec.seed = 9100;
    model::Forest forest = makeRandomForest(spec);
    std::vector<float> rows =
        makeRowsWithNans(spec.numFeatures, 80, 9101);

    hir::TilingOptions options;
    options.tileSize = 4;
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        hir::TiledTree tiled = hir::tileTree(tree, options);
        hir::HotPathProgram program =
            hir::buildHotPathProgram(tiled, 1.0);
        EXPECT_FALSE(program.depthFallback);
        EXPECT_NEAR(program.hotCoverage, 1.0, 1e-9);
        EXPECT_NEAR(outcomeProbabilitySum(program), 1.0, 1e-9);
        // Leaves never hit during training carry zero mass and may
        // stay outside the region even at coverage 1; every outcome
        // that carries mass must be a resolved leaf.
        for (const hir::HotPathProgram::Outcome &out :
             program.outcomes) {
            if (!out.isLeaf) {
                EXPECT_NEAR(out.probability, 0.0, 1e-12);
            }
        }
        for (int64_t r = 0; r < 80; ++r) {
            const float *row = rows.data() + r * spec.numFeatures;
            bool resolved = false;
            float value = runProgram(program, tree, row, &resolved);
            if (resolved) {
                EXPECT_EQ(value, tree.predict(row))
                    << "tree " << t << " row " << r;
            }
        }
    }
}

/**
 * Under the uniform no-statistics distribution every leaf carries
 * mass, so coverage 1 must resolve every row in-region — the strict
 * form of the full-coverage property.
 */
TEST(HotPathSelection, UniformFullCoverageResolvesEveryRow)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 6;
    spec.maxDepth = 6;
    spec.statisticsRows = 0;
    spec.seed = 9150;
    model::Forest forest = makeRandomForest(spec);
    std::vector<float> rows =
        makeRowsWithNans(spec.numFeatures, 80, 9151);

    hir::TilingOptions options;
    options.tileSize = 4;
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        hir::TiledTree tiled = hir::tileTree(tree, options);
        hir::HotPathProgram program =
            hir::buildHotPathProgram(tiled, 1.0);
        EXPECT_TRUE(program.depthFallback);
        EXPECT_NEAR(program.hotCoverage, 1.0, 1e-9);
        for (const hir::HotPathProgram::Outcome &out :
             program.outcomes) {
            EXPECT_TRUE(out.isLeaf);
        }
        for (int64_t r = 0; r < 80; ++r) {
            const float *row = rows.data() + r * spec.numFeatures;
            bool resolved = false;
            float value = runProgram(program, tree, row, &resolved);
            ASSERT_TRUE(resolved) << "tree " << t << " row " << r;
            EXPECT_EQ(value, tree.predict(row))
                << "tree " << t << " row " << r;
        }
    }
}

TEST(HotPathSelection, ZeroCoverageIsEmpty)
{
    model::Forest forest = makeRandomForest({});
    hir::TiledTree tiled =
        hir::tileTree(forest.tree(0), hir::TilingOptions{});
    EXPECT_TRUE(hir::buildHotPathProgram(tiled, 0.0).empty());
}

TEST(HotPathSelection, PartialCoverageMeetsTargetAndAgreesOnHotRows)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 4;
    spec.maxDepth = 7;
    spec.splitProbability = 0.8;
    spec.seed = 9200;
    model::Forest forest = makeRandomForest(spec);
    std::vector<float> rows =
        makeRowsWithNans(spec.numFeatures, 120, 9201);

    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        hir::TiledTree tiled =
            hir::tileTree(tree, hir::TilingOptions{});
        hir::HotPathProgram half =
            hir::buildHotPathProgram(tiled, 0.5);
        hir::HotPathProgram full =
            hir::buildHotPathProgram(tiled, 1.0);
        // The greedy selection admits tiles until the target mass is
        // reached, so the partial region is never larger than the full
        // one and carries at least the requested leaf mass.
        EXPECT_GE(half.hotCoverage, 0.5);
        EXPECT_LE(half.nodes.size(), full.nodes.size());
        EXPECT_NEAR(outcomeProbabilitySum(half), 1.0, 1e-9);
        for (int64_t r = 0; r < 120; ++r) {
            const float *row = rows.data() + r * spec.numFeatures;
            bool resolved = false;
            float value = runProgram(half, tree, row, &resolved);
            if (resolved) {
                EXPECT_EQ(value, tree.predict(row));
            }
        }
    }
}

TEST(HotPathSelection, NodeBudgetTruncatesButStaysValid)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 1;
    spec.maxDepth = 10;
    spec.splitProbability = 0.95;
    spec.seed = 9300;
    model::Forest forest = makeRandomForest(spec);
    const model::DecisionTree &tree = forest.tree(0);
    hir::TiledTree tiled = hir::tileTree(tree, hir::TilingOptions{});

    hir::HotPathProgram program =
        hir::buildHotPathProgram(tiled, 1.0, /*node_budget=*/7);
    EXPECT_LE(program.nodes.size(), 7u);
    EXPECT_LT(program.hotCoverage, 1.0);
    EXPECT_NEAR(outcomeProbabilitySum(program), 1.0, 1e-9);
    bool has_cold_exit = false;
    double leaf_mass = 0.0;
    for (const hir::HotPathProgram::Outcome &out : program.outcomes) {
        if (!out.isLeaf)
            has_cold_exit = true;
        else
            leaf_mass += out.probability;
    }
    EXPECT_TRUE(has_cold_exit);
    EXPECT_NEAR(leaf_mass, program.hotCoverage, 1e-9);
}

TEST(HotPathSelection, NoStatisticsFallsBackToDepthSelection)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 1;
    spec.statisticsRows = 0;
    spec.seed = 9400;
    model::Forest forest = makeRandomForest(spec);
    hir::TiledTree tiled =
        hir::tileTree(forest.tree(0), hir::TilingOptions{});
    hir::HotPathProgram program =
        hir::buildHotPathProgram(tiled, 0.8);
    EXPECT_TRUE(program.depthFallback);
    EXPECT_FALSE(program.empty());
    EXPECT_NEAR(outcomeProbabilitySum(program), 1.0, 1e-9);
}

/**
 * Documented guarantee of DecisionTree::leafProbabilities(): with no
 * recorded hit counts the result is the deterministic uniform
 * distribution, not zeros or NaNs.
 */
TEST(LeafProbabilities, UniformFallbackWithoutStatistics)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 3;
    spec.statisticsRows = 0;
    spec.seed = 9500;
    model::Forest forest = makeRandomForest(spec);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        std::vector<double> probabilities =
            forest.tree(t).leafProbabilities();
        ASSERT_FALSE(probabilities.empty());
        double uniform = 1.0 / probabilities.size();
        double total = 0.0;
        for (double p : probabilities) {
            EXPECT_DOUBLE_EQ(p, uniform);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(LeafProbabilities, RecordedStatisticsSumToOne)
{
    model::Forest forest = makeRandomForest({});
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        std::vector<double> probabilities =
            forest.tree(t).leafProbabilities();
        double total = 0.0;
        for (double p : probabilities)
            total += p;
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

/** A binary or multiclass quantized test forest. */
model::Forest
makeForest(bool multiclass, uint64_t seed)
{
    testing::RandomForestSpec spec;
    spec.numTrees = multiclass ? 12 : 10;
    spec.maxDepth = 5;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    if (multiclass) {
        forest.setObjective(model::Objective::kMulticlassSoftmax);
        forest.setNumClasses(3);
        forest.setBaseScore(0.0f);
    }
    return forest;
}

/** Predictions from one backend (verifyEach exercises the LIR hot-path
 * verifier on every kernel compile). */
std::vector<float>
predictWith(Backend backend, const model::Forest &forest,
            const hir::Schedule &schedule,
            const std::vector<float> &rows)
{
    CompilerOptions options;
    options.backend = backend;
    options.jit.optLevel = "-O0";
    options.verifyEach = backend == Backend::kKernel;
    Session session = compile(forest, schedule, options);
    int64_t num_rows = static_cast<int64_t>(rows.size()) /
                       forest.numFeatures();
    std::vector<float> predictions(
        static_cast<size_t>(num_rows) * forest.numClasses());
    session.predict(rows.data(), num_rows, predictions.data());
    return predictions;
}

struct HotParityCase
{
    hir::MemoryLayout layout;
    int32_t tileSize;
    bool multiclass;
    hir::PackedPrecision precision = hir::PackedPrecision::kF32;
};

class HotPathParity : public ::testing::TestWithParam<HotParityCase>
{};

/**
 * With a nonzero hot-path coverage, both backends must stay bit-exact
 * with each other AND with the coverage-0 plain walk: the hot region
 * only changes how a row reaches its leaf, never which leaf it
 * reaches, and per-row accumulation stays positions-ascending.
 */
TEST_P(HotPathParity, HotRegionPreservesBitExactness)
{
    const HotParityCase &c = GetParam();
    model::Forest forest = makeForest(c.multiclass, 9600 + c.tileSize);
    std::vector<float> rows =
        makeRowsWithNans(forest.numFeatures(), 64, 9700);

    hir::Schedule cold;
    cold.layout = c.layout;
    cold.tileSize = c.tileSize;
    cold.packedPrecision = c.precision;
    std::vector<float> baseline =
        predictWith(Backend::kKernel, forest, cold, rows);

    for (double coverage : {0.5, 1.0}) {
        hir::Schedule hot = cold;
        hot.hotPathCoverage = coverage;
        std::vector<float> kernel =
            predictWith(Backend::kKernel, forest, hot, rows);
        expectPredictionsExact(baseline, kernel);
        std::vector<float> jit =
            predictWith(Backend::kSourceJit, forest, hot, rows);
        expectPredictionsExact(baseline, jit);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HotPathParity,
    ::testing::Values(
        HotParityCase{hir::MemoryLayout::kSparse, 1, false},
        HotParityCase{hir::MemoryLayout::kSparse, 4, false},
        HotParityCase{hir::MemoryLayout::kArray, 4, false},
        HotParityCase{hir::MemoryLayout::kPacked, 4, false},
        // Int16-quantized records: hot compares run on the same
        // quantized immediates as the cold walker, NaN sentinel
        // included.
        HotParityCase{hir::MemoryLayout::kPacked, 4, false,
                      hir::PackedPrecision::kI16},
        HotParityCase{hir::MemoryLayout::kSparse, 4, true},
        HotParityCase{hir::MemoryLayout::kPacked, 4, true,
                      hir::PackedPrecision::kI16}));

TEST(HotPathCompile, NoStatsDiagnosticSurfacesInArtifacts)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 4;
    spec.statisticsRows = 0;
    spec.seed = 9800;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    std::vector<float> rows =
        makeRowsWithNans(spec.numFeatures, 32, 9801);

    hir::Schedule cold;
    hir::Schedule hot;
    hot.hotPathCoverage = 0.8;
    CompilerOptions options;
    Session session = compile(forest, hot, options);

    bool found = false;
    for (const analysis::Diagnostic &d :
         session.artifacts().diagnostics) {
        if (d.code == "hir.hotpath.no-stats")
            found = true;
    }
    EXPECT_TRUE(found)
        << "expected hir.hotpath.no-stats for a statistics-free model";

    // The depth-based fallback region still predicts identically.
    std::vector<float> expected =
        predictWith(Backend::kKernel, forest, cold, rows);
    std::vector<float> predictions(32);
    session.predict(rows.data(), 32, predictions.data());
    expectPredictionsExact(expected, predictions);
}

TEST(HotPathCompile, GeneratedSourceCarriesHotFunctions)
{
    model::Forest forest = makeForest(false, 9900);
    hir::Schedule schedule;
    schedule.hotPathCoverage = 0.8;
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    options.jit.optLevel = "-O0";
    Session session = compile(forest, schedule, options);
    const std::string &source = session.artifacts().generatedSource;
    EXPECT_NE(source.find("hot_tree_0"), std::string::npos);
    EXPECT_NE(source.find("cold_walk"), std::string::npos);

    // Coverage 0 emits neither.
    schedule.hotPathCoverage = 0.0;
    Session cold = compile(forest, schedule, options);
    EXPECT_EQ(cold.artifacts().generatedSource.find("hot_tree_"),
              std::string::npos);
}

TEST(HotPathSchedule, JsonRoundTripAndRangeValidation)
{
    hir::Schedule schedule;
    schedule.hotPathCoverage = 0.8;
    hir::Schedule parsed =
        hir::scheduleFromJsonString(hir::scheduleToJsonString(schedule));
    EXPECT_DOUBLE_EQ(parsed.hotPathCoverage, 0.8);

    schedule.hotPathCoverage = 1.5;
    EXPECT_THROW(schedule.validate(), Error);
    schedule.hotPathCoverage = -0.1;
    EXPECT_THROW(schedule.validate(), Error);
    schedule.hotPathCoverage = 1.0;
    EXPECT_NO_THROW(schedule.validate());
}

TEST(HotPathTuner, GridEnumeratesCoveragesOnRepresentativePoints)
{
    tuner::TunerOptions options;
    std::vector<hir::Schedule> schedules =
        tuner::enumerateSchedules(options);
    int64_t hot_points = 0;
    for (const hir::Schedule &s : schedules) {
        if (s.hotPathCoverage <= 0.0)
            continue;
        ++hot_points;
        // Nonzero coverages ride one representative loop order and
        // interleave factor (hot emission ignores both knobs).
        EXPECT_EQ(s.loopOrder, options.loopOrders.front());
        EXPECT_EQ(s.interleaveFactor,
                  options.interleaveFactors.front());
        EXPECT_EQ(s.traversal, hir::TraversalKind::kNodeParallel);
    }
    EXPECT_GT(hot_points, 0);
}

TEST(HotPathTuner, AppendTuningRecordWritesParseableJsonLines)
{
    model::Forest forest = makeForest(false, 10000);
    std::vector<float> rows = makeRandomRows(10, 64, 10001);

    tuner::TunerOptions options;
    options.loopOrders = {hir::LoopOrder::kOneTreeAtATime};
    options.tileSizes = {1};
    options.tilings = {hir::TilingAlgorithm::kBasic};
    options.padAndUnroll = {false};
    options.interleaveFactors = {1};
    options.layouts = {hir::MemoryLayout::kSparse};
    options.traversals = {hir::TraversalKind::kNodeParallel};
    options.hotPathCoverages = {0.0, 0.8};
    options.repetitions = 1;
    tuner::TunerResult result =
        tuner::exploreSchedules(forest, rows.data(), 64, options);
    ASSERT_EQ(result.all.size(), 2u);

    std::string path =
        ::testing::TempDir() + "/treebeard_tuning_db.jsonl";
    std::remove(path.c_str());
    tuner::appendTuningRecord(path, forest, result);
    tuner::appendTuningRecord(path, forest, result);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    int64_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        JsonValue record = JsonValue::parse(line);
        EXPECT_EQ(record.at("model").at("num_trees").asInt(),
                  forest.numTrees());
        const JsonValue::Array &points =
            record.at("points").asArray();
        EXPECT_EQ(points.size(), 2u);
        // The full schedule round-trips out of the database.
        hir::Schedule best = hir::scheduleFromJsonString(
            record.at("best").at("schedule").dump());
        EXPECT_NO_THROW(best.validate());
        bool has_hot_point = false;
        for (const JsonValue &point : points) {
            EXPECT_GT(point.at("seconds").asNumber(), 0.0);
            if (point.at("schedule")
                    .at("hot_path_coverage")
                    .asNumber() > 0.0)
                has_hot_point = true;
        }
        EXPECT_TRUE(has_hot_point);
    }
    EXPECT_EQ(lines, 2);
    std::remove(path.c_str());
}

} // namespace
} // namespace treebeard
