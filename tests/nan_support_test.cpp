/**
 * @file
 * Missing-value (NaN) support tests: per-node default directions must
 * be honored identically by the reference walk, the tiled reference
 * walk, every compiled schedule (SIMD tile evaluation included), the
 * source-JIT backend, and the Treelite/XGBoost-style baselines.
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baselines/treelite_style.h"
#include "baselines/xgboost_style.h"
#include "codegen/cpp_emitter.h"
#include "hir/tiling.h"
#include "lir/layout_builder.h"
#include "model/serialization.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/** Give every internal node a pseudo-random default direction. */
void
assignDefaultDirections(model::Forest &forest, uint64_t seed)
{
    Rng rng(seed);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        model::DecisionTree &tree = forest.mutableTree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            if (!tree.node(i).isLeaf())
                tree.mutableNode(i).defaultLeft = rng.bernoulli(0.5);
        }
    }
}

/** Rows where a random subset of features is NaN. */
std::vector<float>
makeRowsWithMissing(int32_t num_features, int64_t num_rows,
                    double missing_probability, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * num_features);
    for (float &value : rows) {
        value = rng.bernoulli(missing_probability)
                    ? kNaN
                    : rng.uniformFloat(0.0f, 1.0f);
    }
    return rows;
}

class NanSupportFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        testing::RandomForestSpec spec;
        spec.numTrees = 20;
        spec.maxDepth = 7;
        spec.seed = 9001;
        forest_ = testing::makeRandomForest(spec);
        testing::quantizeLeafValues(forest_);
        assignDefaultDirections(forest_, 9002);
        rows_ = makeRowsWithMissing(spec.numFeatures, 150, 0.3, 9003);
        expected_ = testing::referencePredictions(forest_, rows_);
    }

    model::Forest forest_{1};
    std::vector<float> rows_;
    std::vector<float> expected_;
};

TEST_F(NanSupportFixture, ReferenceWalkUsesDefaultDirections)
{
    // A NaN-only row must still land on a well-defined leaf per tree.
    std::vector<float> nan_row(
        static_cast<size_t>(forest_.numFeatures()), kNaN);
    for (int64_t t = 0; t < forest_.numTrees(); ++t) {
        float value = forest_.tree(t).predict(nan_row.data());
        EXPECT_TRUE(std::isfinite(value));
    }
}

TEST_F(NanSupportFixture, TiledWalkMatchesReference)
{
    for (int64_t t = 0; t < forest_.numTrees(); ++t) {
        hir::TiledTree tiled = hir::basicTiling(forest_.tree(t), 4);
        for (int64_t r = 0; r < 150; ++r) {
            const float *row =
                rows_.data() + r * forest_.numFeatures();
            EXPECT_EQ(tiled.predict(row), forest_.tree(t).predict(row))
                << "tree " << t << " row " << r;
        }
    }
}

TEST_F(NanSupportFixture, CompiledSchedulesMatchReference)
{
    for (int32_t tile_size : {1, 2, 4, 8}) {
        for (auto layout : {hir::MemoryLayout::kArray,
                            hir::MemoryLayout::kSparse,
                            hir::MemoryLayout::kPacked}) {
            hir::Schedule schedule;
            schedule.tileSize = tile_size;
            schedule.layout = layout;
            schedule.interleaveFactor = tile_size >= 4 ? 4 : 1;
            Session session = compile(forest_, schedule);
            std::vector<float> actual(150);
            session.predict(rows_.data(), 150, actual.data());
            for (size_t i = 0; i < actual.size(); ++i) {
                EXPECT_EQ(expected_[i], actual[i])
                    << "tile " << tile_size << " layout "
                    << static_cast<int>(layout) << " row " << i;
            }
        }
    }
}

TEST_F(NanSupportFixture, SourceBackendMatchesReference)
{
    for (auto layout : {hir::MemoryLayout::kSparse,
                        hir::MemoryLayout::kPacked}) {
        hir::Schedule schedule;
        schedule.tileSize = 4;
        schedule.layout = layout;
        hir::HirModule module(forest_, schedule);
        module.runAllHirPasses();
        lir::ForestBuffers buffers = lir::buildForestBuffers(module);
        codegen::JitOptions jit_options;
        jit_options.optLevel = "-O0";
        codegen::JitCompiledSession session(std::move(buffers),
                                            module.groups(), schedule,
                                            jit_options);
        std::vector<float> actual(150);
        session.predict(rows_.data(), 150, actual.data());
        testing::expectPredictionsExact(expected_, actual);
    }
}

TEST_F(NanSupportFixture, TreeliteBaselineMatchesReference)
{
    baselines::TreeliteOptions options;
    options.optLevel = "-O0";
    baselines::TreeliteStyle treelite(forest_, options);
    std::vector<float> actual(150);
    treelite.predict(rows_.data(), 150, actual.data());
    testing::expectPredictionsExact(expected_, actual);
}

TEST_F(NanSupportFixture, XgBoostBaselineMatchesReference)
{
    for (auto version : {baselines::XgBoostVersion::kV09,
                         baselines::XgBoostVersion::kV15}) {
        baselines::XgBoostStyle xgboost(forest_, version);
        std::vector<float> actual(150);
        xgboost.predict(rows_.data(), 150, actual.data());
        testing::expectPredictionsExact(expected_, actual);
    }
}

TEST_F(NanSupportFixture, SerializationPreservesDefaultDirections)
{
    model::Forest loaded =
        model::forestFromJson(model::forestToJson(forest_));
    std::vector<float> actual =
        testing::referencePredictions(loaded, rows_);
    testing::expectPredictionsExact(expected_, actual);
}

TEST(NanSupport, XgboostImportReadsDefaultLeft)
{
    std::string text = R"({
      "learner": {
        "learner_model_param": {"num_feature": "2", "base_score": "0"},
        "objective": {"name": "reg:squarederror"},
        "gradient_booster": {
          "model": {
            "trees": [
              {
                "split_indices": [0, 0, 0],
                "split_conditions": [0.5, 0, 0],
                "left_children": [1, -1, -1],
                "right_children": [2, -1, -1],
                "base_weights": [0, 10.0, 20.0],
                "default_left": [1, 0, 0]
              }
            ]
          }
        }
      }
    })";
    model::Forest forest =
        model::importXgboostJson(JsonValue::parse(text));
    float nan_row[2] = {kNaN, 0.0f};
    EXPECT_EQ(forest.predict(nan_row), 10.0f); // default-left
    float present[2] = {0.9f, 0.0f};
    EXPECT_EQ(forest.predict(present), 20.0f);
}

TEST(NanSupport, DefaultRightIsTheDefault)
{
    model::DecisionTree tree;
    model::NodeIndex left = tree.addLeaf(1.0f);
    model::NodeIndex right = tree.addLeaf(2.0f);
    tree.setRoot(tree.addInternal(0, 0.5f, left, right));
    float nan_value = kNaN;
    EXPECT_EQ(tree.predict(&nan_value), 2.0f);
}

} // namespace
} // namespace treebeard
