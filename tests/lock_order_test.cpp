/**
 * @file
 * Lock-order validator tests.
 *
 * The injected-violation suites prove the detector actually fires:
 * a deliberately constructed A->B / B->A acquisition cycle through
 * the checked-mutex API must report runtime.lock.order-cycle, and a
 * condition-variable wait entered while holding a second mutex must
 * report runtime.lock.held-across-wait. The serving suites prove the
 * inverse: real traffic through the full concurrent core — registry
 * compile/evict, batcher flush, server routing, thread-pool fan-out —
 * fires *nothing*, including a TSan-able stress that evicts models
 * out from under live batcher flushes.
 */
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lock_diagnostics.h"
#include "common/checked_mutex.h"
#include "common/thread_pool.h"
#include "serve/server.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

using namespace treebeard;
using namespace treebeard::testing;

namespace {

/**
 * Enable checking and isolate the process-wide validator state for
 * one test: edges and violations recorded by other tests (or by
 * fixture setup) are dropped on entry and on exit.
 */
class LockCheckScope
{
  public:
    LockCheckScope() : wasEnabled_(lockCheckingEnabled())
    {
        clearLockStateForTesting();
        setLockChecking(true);
    }

    ~LockCheckScope()
    {
        setLockChecking(wasEnabled_);
        clearLockStateForTesting();
    }

  private:
    bool wasEnabled_;
};

/**
 * TSan's own deadlock detector flags the same deliberate inversions
 * these tests inject (independent confirmation they are real
 * hazards) and fails the binary on them, so the injection tests run
 * only outside thread mode; the clean-traffic and stress suites are
 * the TSan payload.
 */
#if defined(__SANITIZE_THREAD__)
#define SKIP_UNDER_TSAN() \
    GTEST_SKIP() << "deliberate inversion would trip TSan itself"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SKIP_UNDER_TSAN() \
    GTEST_SKIP() << "deliberate inversion would trip TSan itself"
#endif
#endif
#ifndef SKIP_UNDER_TSAN
#define SKIP_UNDER_TSAN() (void)0
#endif

bool
hasViolation(const char *code)
{
    for (const LockViolation &violation : lockViolations()) {
        if (violation.code == code)
            return true;
    }
    return false;
}

/** A small forest cheap enough for stress loops. */
model::Forest
makeSmallForest(uint64_t seed)
{
    RandomForestSpec spec;
    spec.numFeatures = 8;
    spec.numTrees = 8;
    spec.maxDepth = 4;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    return forest;
}

// ---------------------------------------------------------------------
// Injected violations: the detector must fire.
// ---------------------------------------------------------------------

TEST(LockOrderValidator, DetectsInjectedAcquisitionCycle)
{
    SKIP_UNDER_TSAN();
    LockCheckScope scope;
    Mutex a("test.cycle.A");
    Mutex b("test.cycle.B");

    {
        MutexLock lock_a(a);
        MutexLock lock_b(b); // records A -> B
    }
    EXPECT_EQ(lockViolationCount(), 0)
        << "one-directional nesting is not a violation";
    {
        MutexLock lock_b(b);
        MutexLock lock_a(a); // records B -> A: closes the cycle
    }

    EXPECT_TRUE(hasViolation(kErrLockOrderCycle));
    EXPECT_EQ(lockViolationCount(), 1) << "one cycle, one report";

    // The violation renders through the DiagnosticEngine with the
    // stable code, runtime level and validator provenance.
    analysis::DiagnosticEngine report = analysis::lockOrderReport();
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.hasCode(kErrLockOrderCycle));
    const analysis::Diagnostic &diagnostic = report.diagnostics()[0];
    EXPECT_EQ(diagnostic.level, analysis::IrLevel::kRuntime);
    EXPECT_EQ(diagnostic.pass, "lock-order-validator");
    EXPECT_NE(diagnostic.message.find("test.cycle.A"),
              std::string::npos);
    EXPECT_NE(diagnostic.message.find("test.cycle.B"),
              std::string::npos);
    EXPECT_THROW(report.throwIfErrors(),
                 analysis::VerificationError);
}

TEST(LockOrderValidator, DetectsCycleBuiltAcrossThreads)
{
    SKIP_UNDER_TSAN();
    LockCheckScope scope;
    Mutex a("test.threads.A");
    Mutex b("test.threads.B");
    Mutex c("test.threads.C");

    // Three threads each nest a consistent-looking pair; only the
    // *global* graph A -> B -> C -> A reveals the deadlock potential.
    // Sequential joins make the edge order deterministic.
    std::thread([&] {
        MutexLock lock_a(a);
        MutexLock lock_b(b);
    }).join();
    std::thread([&] {
        MutexLock lock_b(b);
        MutexLock lock_c(c);
    }).join();
    EXPECT_EQ(lockViolationCount(), 0);
    std::thread([&] {
        MutexLock lock_c(c);
        MutexLock lock_a(a);
    }).join();

    EXPECT_TRUE(hasViolation(kErrLockOrderCycle));
}

TEST(LockOrderValidator, DetectsWaitWhileHoldingAnotherMutex)
{
    LockCheckScope scope;
    Mutex outer("test.wait.outer");
    Mutex inner("test.wait.inner");
    CondVar cv;

    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
    // Nobody notifies; the deadline bounds the test. The wait itself
    // is the violation: `outer` stays frozen for its whole duration.
    cv.waitUntil(hold_inner,
                 std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(1));

    EXPECT_TRUE(hasViolation(kErrLockHeldAcrossWait));
    analysis::DiagnosticEngine report = analysis::lockOrderReport();
    EXPECT_TRUE(report.hasCode(kErrLockHeldAcrossWait));
    EXPECT_NE(report.diagnostics()[0].message.find("test.wait.outer"),
              std::string::npos);
}

TEST(LockOrderValidator, ConsistentOrderAndLoneWaitsAreClean)
{
    LockCheckScope scope;
    Mutex a("test.clean.A");
    Mutex b("test.clean.B");
    CondVar cv;

    for (int i = 0; i < 3; ++i) {
        MutexLock lock_a(a);
        MutexLock lock_b(b);
    }
    {
        MutexLock lock_b(b); // b alone, without a, is still consistent
        cv.waitUntil(lock_b, std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(1));
    }

    EXPECT_EQ(lockViolationCount(), 0);
    EXPECT_TRUE(analysis::lockOrderReport().empty());
}

TEST(LockOrderValidator, DisabledCheckingRecordsNothing)
{
    SKIP_UNDER_TSAN();
    LockCheckScope scope;
    setLockChecking(false);
    Mutex a("test.disabled.A");
    Mutex b("test.disabled.B");
    {
        MutexLock lock_a(a);
        MutexLock lock_b(b);
    }
    {
        MutexLock lock_b(b);
        MutexLock lock_a(a);
    }
    EXPECT_EQ(lockViolationCount(), 0);
}

// ---------------------------------------------------------------------
// Real traffic: the concurrent core must fire nothing.
// ---------------------------------------------------------------------

TEST(LockOrderServing, ThreadPoolFanOutIsClean)
{
    LockCheckScope scope;
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    for (int round = 0; round < 8; ++round) {
        pool.parallelFor(0, 1000, [&](int64_t begin, int64_t end) {
            sum.fetch_add(end - begin, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 8 * 1000);
    EXPECT_EQ(lockViolationCount(), 0)
        << analysis::lockOrderReport().toString();
}

TEST(LockOrderServing, CleanServingTrafficFiresNothing)
{
    LockCheckScope scope;
    serve::ServerOptions options;
    options.batcher.maxBatchRows = 16;
    options.batcher.maxQueueDelayMicros = 500;
    serve::Server server(options);

    serve::ModelHandle first = server.loadModel(makeSmallForest(7));
    serve::ModelHandle second = server.loadModel(makeSmallForest(8));

    std::vector<float> rows = makeRandomRows(8, 64, 11);
    std::vector<std::thread> clients;
    for (int t = 0; t < 6; ++t) {
        clients.emplace_back([&, t] {
            const serve::ModelHandle &handle =
                (t % 2 == 0) ? first : second;
            for (int r = 0; r < 40; ++r) {
                server.predict(handle, rows.data() + (r % 64) * 8, 1);
                if (r % 16 == 0)
                    server.stats();
            }
        });
    }
    for (std::thread &client : clients)
        client.join();

    server.evictModel(first);
    server.shutdown();

    EXPECT_EQ(lockViolationCount(), 0)
        << analysis::lockOrderReport().toString();
}

/**
 * Registry-evict-while-batcher-flush: a capped registry forces every
 * load to evict the other tenant's model while its batcher may be
 * mid-flush, exercising the reap path (snapshot residency, retire
 * stale batchers, fold retired stats) against live predict traffic.
 * Runs under the thread sanitizer via tools/sanitize_matrix.sh; the
 * validator must stay silent throughout.
 */
TEST(LockOrderServing, EvictWhileBatcherFlushStress)
{
    LockCheckScope scope;
    serve::ServerOptions options;
    options.registry.maxResidentModels = 1;
    options.batcher.maxBatchRows = 8;
    options.batcher.maxQueueDelayMicros = 200;
    serve::Server server(options);

    model::Forest forest_a = makeSmallForest(21);
    model::Forest forest_b = makeSmallForest(22);
    serve::ModelHandle handle_a = server.loadModel(forest_a);
    serve::ModelHandle handle_b =
        server.registry().handleFor(forest_b, hir::Schedule{});

    std::vector<float> rows = makeRandomRows(8, 32, 13);
    std::atomic<bool> done{false};
    std::atomic<int64_t> served{0};

    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            const serve::ModelHandle &handle =
                (t % 2 == 0) ? handle_a : handle_b;
            while (!done.load(std::memory_order_relaxed)) {
                try {
                    server.predict(handle, rows.data() + (t % 32) * 8,
                                   1);
                    served.fetch_add(1, std::memory_order_relaxed);
                } catch (const Error &error) {
                    // Eviction races are expected traffic here: a
                    // stale handle or a draining queue must fail with
                    // a stable code, never deadlock or crash.
                    ASSERT_TRUE(
                        error.code() == serve::kErrUnknownModel ||
                        error.code() == serve::kErrQueueShutdown ||
                        error.code() == serve::kErrQueueFull)
                        << error.code() << ": " << error.what();
                }
            }
        });
    }

    // The loader thrashes the single registry slot: each load evicts
    // the other model and reaps its batcher mid-traffic.
    for (int round = 0; round < 30; ++round)
        server.loadModel(round % 2 == 0 ? forest_b : forest_a);
    done.store(true, std::memory_order_relaxed);
    for (std::thread &client : clients)
        client.join();
    server.shutdown();

    EXPECT_GT(served.load(), 0) << "stress never served a request";
    EXPECT_EQ(lockViolationCount(), 0)
        << analysis::lockOrderReport().toString();
}

} // namespace
