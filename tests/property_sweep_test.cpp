/**
 * @file
 * Randomized property sweep: across many seeds, generate a forest
 * with random structural parameters and a random schedule, and check
 * the full pipeline invariants — valid tiling, balanced groups,
 * predictions bit-identical to the reference, and layout structural
 * properties. This is the suite's fuzzing backstop: each seed
 * exercises a different corner of the (model x schedule) space.
 */
#include <cstdlib>
#include <limits>

#include <gtest/gtest.h>

#include "lir/layout_builder.h"
#include "model/serialization.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

class PropertySweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PropertySweep, PipelineInvariantsHold)
{
    uint64_t seed = GetParam();
    Rng rng(seed);

    // Random model shape.
    testing::RandomForestSpec spec;
    spec.numFeatures = static_cast<int32_t>(rng.uniformInt(2, 40));
    spec.numTrees = rng.uniformInt(1, 30);
    spec.maxDepth = static_cast<int32_t>(rng.uniformInt(1, 9));
    spec.splitProbability = rng.uniform(0.4, 0.95);
    spec.statisticsRows = rng.uniformInt(0, 400);
    spec.seed = seed * 31 + 7;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);

    // Random default directions on some runs.
    if (rng.bernoulli(0.5)) {
        for (int64_t t = 0; t < forest.numTrees(); ++t) {
            model::DecisionTree &tree = forest.mutableTree(t);
            for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
                if (!tree.node(i).isLeaf())
                    tree.mutableNode(i).defaultLeft =
                        rng.bernoulli(0.5);
            }
        }
    }

    // Random schedule.
    hir::Schedule schedule;
    const int32_t tile_sizes[] = {1, 2, 3, 4, 5, 6, 7, 8};
    schedule.tileSize =
        tile_sizes[rng.uniformInt(0, 7)];
    schedule.loopOrder = rng.bernoulli(0.5)
                             ? hir::LoopOrder::kOneTreeAtATime
                             : hir::LoopOrder::kOneRowAtATime;
    const hir::TilingAlgorithm tilings[] = {
        hir::TilingAlgorithm::kBasic,
        hir::TilingAlgorithm::kProbabilityBased,
        hir::TilingAlgorithm::kHybrid,
        hir::TilingAlgorithm::kMinMaxDepth};
    schedule.tiling = tilings[rng.uniformInt(0, 3)];
    const hir::MemoryLayout layouts[] = {hir::MemoryLayout::kArray,
                                         hir::MemoryLayout::kSparse,
                                         hir::MemoryLayout::kPacked};
    schedule.layout = layouts[rng.uniformInt(0, 2)];
    const int32_t interleaves[] = {1, 2, 4, 8};
    schedule.interleaveFactor =
        interleaves[rng.uniformInt(0, 3)];
    schedule.padAndUnrollWalks = rng.bernoulli(0.7);
    schedule.peelWalks = rng.bernoulli(0.7);
    schedule.numThreads =
        static_cast<int32_t>(rng.uniformInt(1, 4));

    // Pipeline invariants at the HIR level.
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    module.validateTiling();
    int64_t covered = 0;
    for (const hir::TreeGroup &group : module.groups())
        covered += group.size();
    ASSERT_EQ(covered, forest.numTrees());

    // Layout invariants.
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);
    ASSERT_EQ(buffers.numTrees, forest.numTrees());
    for (int64_t pos = 0; pos < buffers.numTrees; ++pos) {
        EXPECT_LT(buffers.treeFirstTile[static_cast<size_t>(pos)],
                  buffers.treeTileEnd[static_cast<size_t>(pos)]);
    }

    // End-to-end agreement, with some NaN inputs mixed in.
    int64_t num_rows = rng.uniformInt(1, 100);
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * spec.numFeatures);
    for (float &value : rows) {
        value = rng.bernoulli(0.05)
                    ? std::numeric_limits<float>::quiet_NaN()
                    : rng.uniformFloat(0.0f, 1.0f);
    }
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    Session session = compile(forest, schedule);
    std::vector<float> actual(static_cast<size_t>(num_rows));
    session.predict(rows.data(), num_rows, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<uint64_t>(1, 33));

} // namespace
} // namespace treebeard

namespace treebeard {
namespace {

/**
 * Serialization round-trip property: across random model shapes
 * (objectives, classes, default directions, hit counts), the native
 * JSON format must reproduce the forest exactly — structure, metadata
 * and predictions.
 */
class SerializationSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SerializationSweep, NativeFormatRoundTripsExactly)
{
    uint64_t seed = GetParam();
    Rng rng(seed * 131 + 17);

    testing::RandomForestSpec spec;
    spec.numFeatures = static_cast<int32_t>(rng.uniformInt(1, 30));
    spec.numTrees = rng.uniformInt(1, 20);
    spec.maxDepth = static_cast<int32_t>(rng.uniformInt(1, 8));
    spec.statisticsRows = rng.uniformInt(0, 300);
    spec.seed = seed;
    model::Forest forest = testing::makeRandomForest(spec);

    // Random metadata.
    if (rng.bernoulli(0.3)) {
        forest.setObjective(model::Objective::kBinaryLogistic);
    } else if (rng.bernoulli(0.3) && forest.numTrees() >= 2) {
        forest.setObjective(model::Objective::kMulticlassSoftmax);
        forest.setNumClasses(
            static_cast<int32_t>(rng.uniformInt(2, 4)));
    }
    forest.setBaseScore(rng.uniformFloat(-1.0f, 1.0f));
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        model::DecisionTree &tree = forest.mutableTree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            if (!tree.node(i).isLeaf())
                tree.mutableNode(i).defaultLeft = rng.bernoulli(0.3);
        }
    }

    model::Forest loaded =
        model::forestFromJson(model::forestToJson(forest));

    // Metadata and structure.
    ASSERT_EQ(loaded.numTrees(), forest.numTrees());
    EXPECT_EQ(loaded.numFeatures(), forest.numFeatures());
    EXPECT_EQ(loaded.objective(), forest.objective());
    EXPECT_EQ(loaded.numClasses(), forest.numClasses());
    EXPECT_EQ(loaded.baseScore(), forest.baseScore());
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &a = forest.tree(t);
        const model::DecisionTree &b = loaded.tree(t);
        ASSERT_EQ(a.numNodes(), b.numNodes());
        for (model::NodeIndex i = 0; i < a.numNodes(); ++i) {
            EXPECT_EQ(a.node(i).threshold, b.node(i).threshold);
            EXPECT_EQ(a.node(i).featureIndex, b.node(i).featureIndex);
            EXPECT_EQ(a.node(i).left, b.node(i).left);
            EXPECT_EQ(a.node(i).right, b.node(i).right);
            EXPECT_EQ(a.node(i).defaultLeft, b.node(i).defaultLeft);
            EXPECT_EQ(a.node(i).hitCount, b.node(i).hitCount);
        }
    }

    // Predictions, including NaN routing.
    int64_t num_rows = 40;
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * spec.numFeatures);
    for (float &value : rows) {
        value = rng.bernoulli(0.1)
                    ? std::numeric_limits<float>::quiet_NaN()
                    : rng.uniformFloat(0.0f, 1.0f);
    }
    std::vector<float> expected(
        static_cast<size_t>(num_rows) * forest.numClasses());
    std::vector<float> actual(expected.size());
    forest.predictBatch(rows.data(), num_rows, expected.data());
    loaded.predictBatch(rows.data(), num_rows, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationSweep,
                         ::testing::Range<uint64_t>(1, 13));

} // namespace
} // namespace treebeard

namespace treebeard {
namespace {

/**
 * Cross-backend fuzz sweep: random forests x random schedules
 * (including the i16 packed precision, the packed software pipeline
 * and both traversal kinds — node-parallel tile evaluation and
 * row-parallel lane groups) x random batch sizes (0, 1 and
 * non-multiples of the vector width included) must be bit-identical
 * between the kernel backend, the source-JIT backend and — when the
 * effective layout is not quantized — the scalar reference walk. predictDataset() is
 * checked against predict() on both backends every iteration.
 *
 * Quantized plans (i16 packed) legitimately differ from the f32
 * reference (threshold rounding can flip a comparison), but they are
 * deterministic: the two backends share one quantizer definition, so
 * they must still agree with each other bit-exactly.
 *
 * The suite registers 64 seeds but runs only the first
 * TREEBEARD_FUZZ_SEEDS of them (default 6; each seed pays a system
 * compiler invocation). CI can raise the bound for a deeper soak; the
 * rest GTEST_SKIP so the registered set is stable for ctest. The
 * whole suite carries the ctest label "fuzz".
 */
int
fuzzSeedBound()
{
    const char *env = std::getenv("TREEBEARD_FUZZ_SEEDS");
    if (env == nullptr || *env == '\0')
        return 6;
    int bound = std::atoi(env);
    return bound < 0 ? 0 : bound;
}

class CrossBackendFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CrossBackendFuzz, BackendsAgreeBitExactly)
{
    uint64_t seed = GetParam();
    if (seed >= static_cast<uint64_t>(fuzzSeedBound()))
        GTEST_SKIP() << "seed beyond TREEBEARD_FUZZ_SEEDS bound";
    Rng rng(seed * 977 + 101);

    testing::RandomForestSpec spec;
    spec.numFeatures = static_cast<int32_t>(rng.uniformInt(2, 32));
    spec.numTrees = rng.uniformInt(1, 24);
    spec.maxDepth = static_cast<int32_t>(rng.uniformInt(1, 8));
    spec.splitProbability = rng.uniform(0.4, 0.95);
    spec.seed = seed * 53 + 11;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);

    hir::Schedule schedule;
    const int32_t tile_sizes[] = {1, 2, 4, 8};
    schedule.tileSize = tile_sizes[rng.uniformInt(0, 3)];
    schedule.loopOrder = rng.bernoulli(0.5)
                             ? hir::LoopOrder::kOneTreeAtATime
                             : hir::LoopOrder::kOneRowAtATime;
    const hir::MemoryLayout layouts[] = {hir::MemoryLayout::kArray,
                                         hir::MemoryLayout::kSparse,
                                         hir::MemoryLayout::kPacked};
    schedule.layout = layouts[rng.uniformInt(0, 2)];
    if (schedule.layout == hir::MemoryLayout::kPacked &&
        rng.bernoulli(0.5))
        schedule.packedPrecision = hir::PackedPrecision::kI16;
    schedule.pipelinePackedWalks = rng.bernoulli(0.5);
    const int32_t interleaves[] = {1, 2, 4};
    schedule.interleaveFactor = interleaves[rng.uniformInt(0, 2)];
    schedule.padAndUnrollWalks = rng.bernoulli(0.7);
    schedule.peelWalks = rng.bernoulli(0.7);
    schedule.numThreads = static_cast<int32_t>(rng.uniformInt(1, 4));
    const int32_t chunks[] = {0, 1, 5, 64};
    schedule.rowChunkRows = chunks[rng.uniformInt(0, 3)];
    // The traversal axis is orthogonal to everything above; both
    // kinds must agree bit-exactly on every configuration, including
    // non-vectorizable ones (tile > 1, array layout) where
    // row-parallel degrades to scalar lockstep walks.
    schedule.traversal = rng.bernoulli(0.5)
                             ? hir::TraversalKind::kRowParallel
                             : hir::TraversalKind::kNodeParallel;
    // Hot-path axis: nonzero coverages route high-probability rows
    // through the branchless region and the rest across the hot/cold
    // boundary into the tiled walkers (the NaN sprinkle below crosses
    // it too); coverage 1.0 stresses the all-leaf region, and both
    // backends must stay bit-exact with each other regardless.
    const double hot_coverages[] = {0.0, 0.5, 0.8, 1.0};
    schedule.hotPathCoverage = hot_coverages[rng.uniformInt(0, 3)];

    // Batch sizes stressing the row-loop edges: empty, single row,
    // below/above the SIMD width, non-multiples of 8 and of the
    // worker count.
    const int64_t batch_sizes[] = {0, 1, 3, 7, 8, 33, 101};
    int64_t num_rows = batch_sizes[rng.uniformInt(0, 6)];

    std::vector<float> rows(
        static_cast<size_t>(num_rows) * spec.numFeatures);
    for (float &value : rows) {
        value = rng.bernoulli(0.05)
                    ? std::numeric_limits<float>::quiet_NaN()
                    : rng.uniformFloat(0.0f, 1.0f);
    }

    Session kernel = compile(forest, schedule, {});
    CompilerOptions jit_options;
    jit_options.backend = Backend::kSourceJit;
    jit_options.jit.optLevel = "-O0";
    Session jit = compile(forest, schedule, jit_options);

    std::vector<float> kernel_out(static_cast<size_t>(num_rows), -7.f);
    std::vector<float> jit_out(static_cast<size_t>(num_rows), -7.f);
    kernel.predict(rows.data(), num_rows, kernel_out.data());
    jit.predict(rows.data(), num_rows, jit_out.data());
    testing::expectPredictionsExact(kernel_out, jit_out);

    // The quantized layout rounds thresholds, so the f32 reference
    // only gates non-quantized effective layouts (fallbacks included:
    // the compiled plan's LayoutKind is the ground truth).
    if (kernel.plan().buffers().layout !=
        lir::LayoutKind::kPackedQuantized) {
        std::vector<float> expected =
            testing::referencePredictions(forest, rows);
        testing::expectPredictionsExact(expected, kernel_out);
    }

    // Resident datasets take a different dispatch path (cached
    // quantized image, resident JIT entry points); they must stay
    // bit-identical to plain predict on both backends.
    Dataset kernel_ds = kernel.bindDataset(rows.data(), num_rows);
    Dataset jit_ds = jit.bindDataset(rows.data(), num_rows);
    std::vector<float> resident_out(static_cast<size_t>(num_rows),
                                    -7.f);
    kernel.predictDataset(kernel_ds, resident_out.data());
    if (num_rows > 0)
        testing::expectPredictionsExact(kernel_out, resident_out);
    std::fill(resident_out.begin(), resident_out.end(), -7.f);
    jit.predictDataset(jit_ds, resident_out.data());
    if (num_rows > 0)
        testing::expectPredictionsExact(jit_out, resident_out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendFuzz,
                         ::testing::Range<uint64_t>(0, 64));

} // namespace
} // namespace treebeard
