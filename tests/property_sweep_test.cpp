/**
 * @file
 * Randomized property sweep: across many seeds, generate a forest
 * with random structural parameters and a random schedule, and check
 * the full pipeline invariants — valid tiling, balanced groups,
 * predictions bit-identical to the reference, and layout structural
 * properties. This is the suite's fuzzing backstop: each seed
 * exercises a different corner of the (model x schedule) space.
 */
#include <limits>

#include <gtest/gtest.h>

#include "lir/layout_builder.h"
#include "model/serialization.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

namespace treebeard {
namespace {

class PropertySweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PropertySweep, PipelineInvariantsHold)
{
    uint64_t seed = GetParam();
    Rng rng(seed);

    // Random model shape.
    testing::RandomForestSpec spec;
    spec.numFeatures = static_cast<int32_t>(rng.uniformInt(2, 40));
    spec.numTrees = rng.uniformInt(1, 30);
    spec.maxDepth = static_cast<int32_t>(rng.uniformInt(1, 9));
    spec.splitProbability = rng.uniform(0.4, 0.95);
    spec.statisticsRows = rng.uniformInt(0, 400);
    spec.seed = seed * 31 + 7;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);

    // Random default directions on some runs.
    if (rng.bernoulli(0.5)) {
        for (int64_t t = 0; t < forest.numTrees(); ++t) {
            model::DecisionTree &tree = forest.mutableTree(t);
            for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
                if (!tree.node(i).isLeaf())
                    tree.mutableNode(i).defaultLeft =
                        rng.bernoulli(0.5);
            }
        }
    }

    // Random schedule.
    hir::Schedule schedule;
    const int32_t tile_sizes[] = {1, 2, 3, 4, 5, 6, 7, 8};
    schedule.tileSize =
        tile_sizes[rng.uniformInt(0, 7)];
    schedule.loopOrder = rng.bernoulli(0.5)
                             ? hir::LoopOrder::kOneTreeAtATime
                             : hir::LoopOrder::kOneRowAtATime;
    const hir::TilingAlgorithm tilings[] = {
        hir::TilingAlgorithm::kBasic,
        hir::TilingAlgorithm::kProbabilityBased,
        hir::TilingAlgorithm::kHybrid,
        hir::TilingAlgorithm::kMinMaxDepth};
    schedule.tiling = tilings[rng.uniformInt(0, 3)];
    const hir::MemoryLayout layouts[] = {hir::MemoryLayout::kArray,
                                         hir::MemoryLayout::kSparse,
                                         hir::MemoryLayout::kPacked};
    schedule.layout = layouts[rng.uniformInt(0, 2)];
    const int32_t interleaves[] = {1, 2, 4, 8};
    schedule.interleaveFactor =
        interleaves[rng.uniformInt(0, 3)];
    schedule.padAndUnrollWalks = rng.bernoulli(0.7);
    schedule.peelWalks = rng.bernoulli(0.7);
    schedule.numThreads =
        static_cast<int32_t>(rng.uniformInt(1, 4));

    // Pipeline invariants at the HIR level.
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    module.validateTiling();
    int64_t covered = 0;
    for (const hir::TreeGroup &group : module.groups())
        covered += group.size();
    ASSERT_EQ(covered, forest.numTrees());

    // Layout invariants.
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);
    ASSERT_EQ(buffers.numTrees, forest.numTrees());
    for (int64_t pos = 0; pos < buffers.numTrees; ++pos) {
        EXPECT_LT(buffers.treeFirstTile[static_cast<size_t>(pos)],
                  buffers.treeTileEnd[static_cast<size_t>(pos)]);
    }

    // End-to-end agreement, with some NaN inputs mixed in.
    int64_t num_rows = rng.uniformInt(1, 100);
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * spec.numFeatures);
    for (float &value : rows) {
        value = rng.bernoulli(0.05)
                    ? std::numeric_limits<float>::quiet_NaN()
                    : rng.uniformFloat(0.0f, 1.0f);
    }
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    InferenceSession session = compileForest(forest, schedule);
    std::vector<float> actual(static_cast<size_t>(num_rows));
    session.predict(rows.data(), num_rows, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<uint64_t>(1, 33));

} // namespace
} // namespace treebeard

namespace treebeard {
namespace {

/**
 * Serialization round-trip property: across random model shapes
 * (objectives, classes, default directions, hit counts), the native
 * JSON format must reproduce the forest exactly — structure, metadata
 * and predictions.
 */
class SerializationSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SerializationSweep, NativeFormatRoundTripsExactly)
{
    uint64_t seed = GetParam();
    Rng rng(seed * 131 + 17);

    testing::RandomForestSpec spec;
    spec.numFeatures = static_cast<int32_t>(rng.uniformInt(1, 30));
    spec.numTrees = rng.uniformInt(1, 20);
    spec.maxDepth = static_cast<int32_t>(rng.uniformInt(1, 8));
    spec.statisticsRows = rng.uniformInt(0, 300);
    spec.seed = seed;
    model::Forest forest = testing::makeRandomForest(spec);

    // Random metadata.
    if (rng.bernoulli(0.3)) {
        forest.setObjective(model::Objective::kBinaryLogistic);
    } else if (rng.bernoulli(0.3) && forest.numTrees() >= 2) {
        forest.setObjective(model::Objective::kMulticlassSoftmax);
        forest.setNumClasses(
            static_cast<int32_t>(rng.uniformInt(2, 4)));
    }
    forest.setBaseScore(rng.uniformFloat(-1.0f, 1.0f));
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        model::DecisionTree &tree = forest.mutableTree(t);
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            if (!tree.node(i).isLeaf())
                tree.mutableNode(i).defaultLeft = rng.bernoulli(0.3);
        }
    }

    model::Forest loaded =
        model::forestFromJson(model::forestToJson(forest));

    // Metadata and structure.
    ASSERT_EQ(loaded.numTrees(), forest.numTrees());
    EXPECT_EQ(loaded.numFeatures(), forest.numFeatures());
    EXPECT_EQ(loaded.objective(), forest.objective());
    EXPECT_EQ(loaded.numClasses(), forest.numClasses());
    EXPECT_EQ(loaded.baseScore(), forest.baseScore());
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        const model::DecisionTree &a = forest.tree(t);
        const model::DecisionTree &b = loaded.tree(t);
        ASSERT_EQ(a.numNodes(), b.numNodes());
        for (model::NodeIndex i = 0; i < a.numNodes(); ++i) {
            EXPECT_EQ(a.node(i).threshold, b.node(i).threshold);
            EXPECT_EQ(a.node(i).featureIndex, b.node(i).featureIndex);
            EXPECT_EQ(a.node(i).left, b.node(i).left);
            EXPECT_EQ(a.node(i).right, b.node(i).right);
            EXPECT_EQ(a.node(i).defaultLeft, b.node(i).defaultLeft);
            EXPECT_EQ(a.node(i).hitCount, b.node(i).hitCount);
        }
    }

    // Predictions, including NaN routing.
    int64_t num_rows = 40;
    std::vector<float> rows(
        static_cast<size_t>(num_rows) * spec.numFeatures);
    for (float &value : rows) {
        value = rng.bernoulli(0.1)
                    ? std::numeric_limits<float>::quiet_NaN()
                    : rng.uniformFloat(0.0f, 1.0f);
    }
    std::vector<float> expected(
        static_cast<size_t>(num_rows) * forest.numClasses());
    std::vector<float> actual(expected.size());
    forest.predictBatch(rows.data(), num_rows, expected.data());
    loaded.predictBatch(rows.data(), num_rows, actual.data());
    testing::expectPredictionsExact(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationSweep,
                         ::testing::Range<uint64_t>(1, 13));

} // namespace
} // namespace treebeard
