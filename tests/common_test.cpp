/**
 * @file
 * Tests for the common substrate: bit utilities, RNG determinism and
 * distribution sanity, string helpers, logging semantics, and the
 * pass manager.
 */
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_utils.h"
#include "common/timer.h"
#include "ir/pass_manager.h"

namespace treebeard {
namespace {

TEST(Bits, TestAndSet)
{
    EXPECT_TRUE(testBit(0b1010, 1));
    EXPECT_FALSE(testBit(0b1010, 0));
    EXPECT_EQ(setBit(0, 3, true), 0b1000u);
    EXPECT_EQ(setBit(0b1111, 2, false), 0b1011u);
    EXPECT_EQ(popcount(0xFF), 8u);
    EXPECT_EQ(popcount(0), 0u);
}

TEST(Bits, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(64), 64u);
    EXPECT_EQ(nextPowerOfTwo(65), 128u);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
    EXPECT_EQ(ceilDiv(1024, 16), 64);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DistributionsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
        int64_t n = rng.uniformInt(-5, 5);
        EXPECT_GE(n, -5);
        EXPECT_LE(n, 5);
        double beta = rng.beta(2.0, 5.0);
        EXPECT_GE(beta, 0.0);
        EXPECT_LE(beta, 1.0);
    }
}

TEST(Rng, BetaSkewsLow)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i)
        sum += rng.beta(2.0, 5.0);
    // E[Beta(2,5)] = 2/7 ~ 0.2857.
    EXPECT_NEAR(sum / 4000.0, 2.0 / 7.0, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(13);
    std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        counts[rng.weightedIndex(weights)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(StringUtils, SplitAndTrimAndJoin)
{
    EXPECT_EQ(splitString("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(trimString("  x y \t\n"), "x y");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_TRUE(startsWith("treebeard", "tree"));
    EXPECT_FALSE(startsWith("tree", "treebeard"));
    EXPECT_TRUE(endsWith("model.json", ".json"));
    EXPECT_FALSE(endsWith("model.json", ".csv"));
    EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(Logging, FatalThrowsAndFormats)
{
    try {
        fatal("value is ", 42, " not ", 3.5);
        FAIL() << "fatal must throw";
    } catch (const Error &error) {
        EXPECT_STREQ(error.what(), "value is 42 not 3.5");
    }
    EXPECT_NO_THROW(fatalIf(false, "never"));
    EXPECT_THROW(fatalIf(true, "always"), Error);
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer timer;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += i;
    double first = timer.elapsedSeconds();
    EXPECT_GT(first, 0.0);
    timer.reset();
    EXPECT_LE(timer.elapsedSeconds(), first + 1.0);
    EXPECT_GE(timer.elapsedMicros(), 0.0);
}

TEST(PassManager, RunsPassesInOrderWithTraces)
{
    ir::PassManager<std::vector<int>> pm;
    pm.addPass("append-1", [](std::vector<int> &v) { v.push_back(1); });
    pm.addPass("append-2", [](std::vector<int> &v) { v.push_back(2); });
    pm.addPass("double", [](std::vector<int> &v) {
        for (int &x : v)
            x *= 2;
    });
    pm.enableDumps([](const std::vector<int> &v) {
        std::string out;
        for (int x : v)
            out += std::to_string(x) + " ";
        return out;
    });

    std::vector<int> payload;
    pm.run(payload);
    EXPECT_EQ(payload, (std::vector<int>{2, 4}));
    ASSERT_EQ(pm.traces().size(), 3u);
    EXPECT_EQ(pm.traces()[0].name, "append-1");
    EXPECT_EQ(pm.traces()[0].dumpAfter, "1 ");
    EXPECT_EQ(pm.traces()[2].dumpAfter, "2 4 ");
    EXPECT_GE(pm.totalSeconds(), 0.0);

    // Re-running resets traces.
    pm.run(payload);
    EXPECT_EQ(pm.traces().size(), 3u);
}

} // namespace
} // namespace treebeard
