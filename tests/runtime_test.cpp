/**
 * @file
 * Tests for the runtime substrate: the thread pool's parallelFor
 * semantics and the plan's parallel execution, plus the tuner's grid
 * enumeration and exploration.
 */
#include <atomic>
#include <thread>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "test_utils.h"
#include "treebeard/compiler.h"
#include "tuner/auto_tuner.h"

namespace treebeard {
namespace {

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 0u); // no background workers
    std::vector<int> touched(100, 0);
    pool.parallelFor(0, 100, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i)
            touched[static_cast<size_t>(i)] += 1;
    });
    for (int v : touched)
        EXPECT_EQ(v, 1);
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> touched(1000);
    pool.parallelFor(0, 1000, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i)
            touched[static_cast<size_t>(i)].fetch_add(1);
    });
    for (const auto &v : touched)
        EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ChunksMatchPaperTiling)
{
    // Section IV-C: the row loop is tiled by ceil(rows / cores).
    ThreadPool pool(8);
    std::mutex mutex;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.parallelFor(0, 64, [&](int64_t begin, int64_t end) {
        std::lock_guard<std::mutex> lock(mutex);
        chunks.push_back({begin, end});
    });
    ASSERT_EQ(chunks.size(), 8u);
    for (const auto &[begin, end] : chunks)
        EXPECT_EQ(end - begin, 8);
}

TEST(ThreadPool, EmptyAndTinyRanges)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> covered{0};
    pool.parallelFor(0, 2, [&](int64_t begin, int64_t end) {
        covered += static_cast<int>(end - begin);
    });
    EXPECT_EQ(covered.load(), 2);
}

TEST(ThreadPool, RunOnAllWorkers)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<unsigned> seen;
    pool.runOnAllWorkers([&](unsigned index) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(index);
    });
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ParallelPlan, ManyThreadConfigsMatchReference)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 30;
    spec.seed = 81;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 301, 82);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    for (int32_t threads : {2, 3, 8, 16}) {
        hir::Schedule schedule;
        schedule.numThreads = threads;
        schedule.interleaveFactor = 4;
        Session session = compile(forest, schedule);
        std::vector<float> actual(301);
        session.predict(rows.data(), 301, actual.data());
        testing::expectPredictionsExact(expected, actual);
    }
}

TEST(Tuner, GridEnumerationPrunesGatePairs)
{
    tuner::TunerOptions options;
    options.loopOrders = {hir::LoopOrder::kOneTreeAtATime};
    options.tileSizes = {4, 8};
    options.tilings = {hir::TilingAlgorithm::kBasic,
                       hir::TilingAlgorithm::kHybrid};
    options.padAndUnroll = {true};
    options.interleaveFactors = {1, 8};
    // Per layout-precision point: basic 2 tiles x 1 gate x 1 unroll x
    // 2 interleave = 4 plus hybrid 2 tiles x 3 gates x 1 x 2 = 12; the
    // default grid explores sparse, array, and packed at both record
    // precisions (f32 and i16) — 4 layout-precision points — giving
    // 64 coverage-0 points. The hot-path axis rides only the first
    // interleave factor (32 of those points), adding 3 nonzero
    // coverages each: 64 + 96 = 160.
    std::vector<hir::Schedule> schedules =
        tuner::enumerateSchedules(options);
    EXPECT_EQ(schedules.size(), 160u);
    size_t hot = 0;
    for (const hir::Schedule &schedule : schedules) {
        EXPECT_NO_THROW(schedule.validate());
        // Serial grids never sweep the row-chunk knob.
        EXPECT_EQ(schedule.rowChunkRows, 0);
        if (schedule.hotPathCoverage > 0.0) {
            ++hot;
            EXPECT_EQ(schedule.interleaveFactor,
                      options.interleaveFactors.front());
        }
    }
    EXPECT_EQ(hot, 96u);

    // Threaded grids additionally sweep rowChunkRows.
    options.numThreads = 4;
    options.rowChunks = {0, 128};
    std::vector<hir::Schedule> threaded =
        tuner::enumerateSchedules(options);
    EXPECT_EQ(threaded.size(), 320u);
    bool saw_chunk = false;
    for (const hir::Schedule &schedule : threaded) {
        EXPECT_NO_THROW(schedule.validate());
        saw_chunk = saw_chunk || schedule.rowChunkRows == 128;
    }
    EXPECT_TRUE(saw_chunk);
}

TEST(Tuner, GridSweepsTraversalKindsAtTileOne)
{
    tuner::TunerOptions options;
    options.loopOrders = {hir::LoopOrder::kOneTreeAtATime};
    options.tileSizes = {1};
    options.tilings = {hir::TilingAlgorithm::kBasic};
    options.padAndUnroll = {true};
    options.interleaveFactors = {1};
    std::vector<hir::Schedule> schedules =
        tuner::enumerateSchedules(options);
    // 4 layout-precision points per traversal kind; the node-parallel
    // points additionally sweep the 4 hot-path coverages (single
    // interleave factor, so every point is the representative one),
    // while row-parallel stays at coverage 0: 16 + 4.
    EXPECT_EQ(schedules.size(), 20u);
    size_t row_parallel = 0;
    for (const hir::Schedule &schedule : schedules) {
        EXPECT_NO_THROW(schedule.validate());
        if (schedule.traversal == hir::TraversalKind::kRowParallel) {
            ++row_parallel;
            // The row-parallel sub-grid pins the knobs it ignores.
            EXPECT_EQ(schedule.tileSize, 1);
            EXPECT_EQ(schedule.interleaveFactor, 1);
            EXPECT_EQ(schedule.loopOrder,
                      hir::LoopOrder::kOneTreeAtATime);
            EXPECT_EQ(schedule.hotPathCoverage, 0.0);
        }
    }
    EXPECT_EQ(row_parallel, 4u);

    // Row-parallel rides on tile size 1; a grid without it collapses
    // to the node-parallel points.
    options.tileSizes = {4};
    for (const hir::Schedule &schedule :
         tuner::enumerateSchedules(options))
        EXPECT_EQ(schedule.traversal,
                  hir::TraversalKind::kNodeParallel);
}

TEST(Tuner, ExplorationFindsAValidBest)
{
    testing::RandomForestSpec spec;
    spec.numTrees = 20;
    spec.seed = 91;
    model::Forest forest = testing::makeRandomForest(spec);
    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 128, 92);

    tuner::TunerOptions options;
    options.loopOrders = {hir::LoopOrder::kOneTreeAtATime};
    options.tileSizes = {1, 8};
    options.tilings = {hir::TilingAlgorithm::kBasic};
    options.padAndUnroll = {true};
    options.interleaveFactors = {1, 8};
    options.repetitions = 1;

    tuner::TunerResult result =
        tuner::exploreSchedules(forest, rows.data(), 128, options);
    // Node-parallel: 2 tiles x 2 interleaves x 4 layout-precision
    // points (sparse, array, packed-f32, packed-i16) = 16, plus 3
    // nonzero hot-path coverages on each interleave-1 point (2 tiles
    // x 4 lp = 8 -> 24 more); plus the row-parallel sub-grid at tile
    // 1 (interleave and order pinned, coverage 0): 4 layout-precision
    // points. 16 + 24 + 4 = 44.
    EXPECT_EQ(result.all.size(), 44u);
    EXPECT_GT(result.best.seconds, 0.0);
    // `all` is sorted ascending; best is the head.
    EXPECT_EQ(result.all.front().seconds, result.best.seconds);
    for (size_t i = 1; i < result.all.size(); ++i)
        EXPECT_GE(result.all[i].seconds, result.all[i - 1].seconds);
}

} // namespace
} // namespace treebeard

namespace treebeard {
namespace {

TEST(SessionConcurrency, ConcurrentPredictCallsAreSafe)
{
    // Session::predict is const and must be callable from
    // several threads at once (a serving pattern).
    testing::RandomForestSpec spec;
    spec.numTrees = 25;
    spec.seed = 3001;
    model::Forest forest = testing::makeRandomForest(spec);
    testing::quantizeLeafValues(forest);
    std::vector<float> rows =
        testing::makeRandomRows(spec.numFeatures, 200, 3002);
    std::vector<float> expected =
        testing::referencePredictions(forest, rows);

    Session session = compile(forest, {});
    constexpr int kThreads = 4;
    std::vector<std::vector<float>> results(
        kThreads, std::vector<float>(200));
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int repeat = 0; repeat < 10; ++repeat) {
                session.predict(rows.data(), 200,
                                results[static_cast<size_t>(t)].data());
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        testing::expectPredictionsExact(expected,
                                        results[static_cast<size_t>(t)]);
}

} // namespace
} // namespace treebeard
