/**
 * @file
 * Tests for the data substrate: datasets, CSV I/O, synthetic feature
 * generation and the Table I benchmark suite's structural properties.
 */
#include <gtest/gtest.h>

#include "common/json.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "model/model_stats.h"

namespace treebeard::data {
namespace {

TEST(Dataset, AppendAndAccess)
{
    Dataset dataset(3);
    dataset.appendRow({1.0f, 2.0f, 3.0f});
    dataset.appendRow({4.0f, 5.0f, 6.0f});
    EXPECT_EQ(dataset.numRows(), 2);
    EXPECT_EQ(dataset.row(1)[2], 6.0f);
    EXPECT_THROW(dataset.appendRow({1.0f}), Error);

    dataset.setLabels({0.5f, 1.5f});
    EXPECT_TRUE(dataset.hasLabels());
    EXPECT_EQ(dataset.label(0), 0.5f);
    EXPECT_THROW(dataset.setLabels({1.0f}), Error);
}

TEST(Dataset, SliceCarriesLabels)
{
    Dataset dataset(2);
    for (int i = 0; i < 5; ++i) {
        dataset.appendRow(
            {static_cast<float>(i), static_cast<float>(2 * i)});
    }
    dataset.setLabels({0, 1, 2, 3, 4});
    Dataset sliced = dataset.slice(1, 4);
    EXPECT_EQ(sliced.numRows(), 3);
    EXPECT_EQ(sliced.row(0)[0], 1.0f);
    EXPECT_EQ(sliced.label(2), 3.0f);
    EXPECT_THROW(dataset.slice(3, 2), Error);
}

TEST(Dataset, BufferConstructorValidatesShape)
{
    std::vector<float> values{1, 2, 3, 4, 5, 6};
    Dataset ok(3, values);
    EXPECT_EQ(ok.numRows(), 2);
    EXPECT_THROW(Dataset(4, values), Error);
}

TEST(Csv, RoundTripWithLabels)
{
    Dataset dataset(2);
    dataset.appendRow({0.5f, 1.5f});
    dataset.appendRow({2.5f, 3.5f});
    dataset.setLabels({1.0f, 0.0f});

    std::string path = ::testing::TempDir() + "/treebeard_test.csv";
    saveCsv(dataset, path);
    Dataset loaded = loadCsv(path, /*last_column_is_label=*/true);
    EXPECT_EQ(loaded.numRows(), 2);
    EXPECT_EQ(loaded.numFeatures(), 2);
    EXPECT_EQ(loaded.row(1)[0], 2.5f);
    EXPECT_EQ(loaded.label(0), 1.0f);
}

TEST(Csv, HeaderSkippingAndErrors)
{
    std::string path = ::testing::TempDir() + "/treebeard_test2.csv";
    writeStringToFile(path, "a,b\n1,2\n3,4\n");
    Dataset loaded = loadCsv(path, false, /*has_header=*/true);
    EXPECT_EQ(loaded.numRows(), 2);
    EXPECT_EQ(loaded.numFeatures(), 2);

    writeStringToFile(path, "1,2\n3\n");
    EXPECT_THROW(loadCsv(path, false), Error);
    writeStringToFile(path, "1,x\n");
    EXPECT_THROW(loadCsv(path, false), Error);
    writeStringToFile(path, "");
    EXPECT_THROW(loadCsv(path, false), Error);
    EXPECT_THROW(loadCsv("/does/not/exist.csv", false), Error);
}

TEST(Synthetic, FeatureDistributionsHaveExpectedSupport)
{
    SyntheticModelSpec spec;
    spec.name = "t";
    spec.numFeatures = 4;
    spec.numTrees = 1;
    spec.maxDepth = 3;

    spec.featureDistribution = FeatureDistribution::kUniform;
    Dataset uniform = generateFeatures(spec, 500);
    spec.featureDistribution = FeatureDistribution::kBinarySparse;
    spec.binaryOneProbability = 0.1;
    Dataset binary = generateFeatures(spec, 500);

    double binary_ones = 0;
    for (int64_t r = 0; r < 500; ++r) {
        for (int32_t c = 0; c < 4; ++c) {
            float u = uniform.row(r)[c];
            EXPECT_GE(u, 0.0f);
            EXPECT_LT(u, 1.0f);
            float b = binary.row(r)[c];
            EXPECT_TRUE(b == 0.0f || b == 1.0f);
            binary_ones += b;
        }
    }
    // Roughly 10% ones.
    EXPECT_NEAR(binary_ones / (500.0 * 4), 0.1, 0.05);
}

TEST(Synthetic, GenerationIsDeterministic)
{
    SyntheticModelSpec spec;
    spec.name = "t";
    spec.numFeatures = 5;
    spec.numTrees = 4;
    spec.maxDepth = 5;
    spec.trainingRows = 100;

    model::Forest a = synthesizeForest(spec);
    model::Forest b = synthesizeForest(spec);
    EXPECT_EQ(a.numTrees(), b.numTrees());
    for (int64_t t = 0; t < a.numTrees(); ++t) {
        ASSERT_EQ(a.tree(t).numNodes(), b.tree(t).numNodes());
        for (model::NodeIndex i = 0; i < a.tree(t).numNodes(); ++i) {
            EXPECT_EQ(a.tree(t).node(i).threshold,
                      b.tree(t).node(i).threshold);
            EXPECT_EQ(a.tree(t).node(i).hitCount,
                      b.tree(t).node(i).hitCount);
        }
    }
}

TEST(Synthetic, HitCountsMatchTrainingRows)
{
    SyntheticModelSpec spec;
    spec.name = "t";
    spec.numFeatures = 5;
    spec.numTrees = 3;
    spec.maxDepth = 5;
    spec.trainingRows = 250;
    model::Forest forest = synthesizeForest(spec);
    for (int64_t t = 0; t < forest.numTrees(); ++t) {
        double total = 0;
        for (model::NodeIndex leaf : forest.tree(t).leafIndices())
            total += forest.tree(t).node(leaf).hitCount;
        EXPECT_DOUBLE_EQ(total, 250.0);
        // Root accumulates everything.
        EXPECT_DOUBLE_EQ(
            forest.tree(t).node(forest.tree(t).root()).hitCount, 250.0);
    }
}

TEST(Synthetic, StandardSuiteMatchesTableOneParameters)
{
    std::vector<SyntheticModelSpec> suite = standardBenchmarkSuite();
    ASSERT_EQ(suite.size(), 8u);

    auto find = [&](const std::string &name) {
        return benchmarkSpecByName(name);
    };
    EXPECT_EQ(find("abalone").numFeatures, 8);
    EXPECT_EQ(find("abalone").numTrees, 1000);
    EXPECT_EQ(find("abalone").maxDepth, 7);
    EXPECT_EQ(find("airline").numFeatures, 13);
    EXPECT_EQ(find("airline-ohe").numFeatures, 692);
    EXPECT_EQ(find("covtype").numTrees, 800);
    EXPECT_EQ(find("epsilon").numFeatures, 2000);
    EXPECT_EQ(find("letter").numTrees, 2600);
    EXPECT_EQ(find("higgs").numFeatures, 28);
    EXPECT_EQ(find("year").numFeatures, 90);
    EXPECT_THROW(benchmarkSpecByName("nope"), Error);
}

TEST(Synthetic, LeafBiasProfilesFollowTableOne)
{
    // Scaled-down versions of one strongly biased and one unbiased
    // benchmark: airline-ohe must be mostly leaf-biased, epsilon not
    // at all (Table I's last column).
    SyntheticModelSpec biased =
        scaledDown(benchmarkSpecByName("airline-ohe"), 40, 1500);
    SyntheticModelSpec unbiased =
        scaledDown(benchmarkSpecByName("epsilon"), 40, 1500);

    model::Forest biased_forest = synthesizeForest(biased);
    model::Forest unbiased_forest = synthesizeForest(unbiased);

    int64_t biased_count =
        model::countLeafBiasedTrees(biased_forest, 0.075, 0.9);
    int64_t unbiased_count =
        model::countLeafBiasedTrees(unbiased_forest, 0.075, 0.9);
    EXPECT_GE(biased_count, 30);
    EXPECT_LE(unbiased_count, 2);
}

} // namespace
} // namespace treebeard::data
