/**
 * @file
 * Serving-layer tests: the content-hash ModelRegistry (dedup, LRU
 * eviction, recompile-through-the-JIT-disk-cache), the DynamicBatcher
 * (coalescing, flush triggers, admission control, shutdown draining)
 * and the multi-tenant Server front-end. The exactness tests assert
 * served predictions bit-identical to direct Session::predict on both
 * backends: a coalesced batch is one predict() over row-independent
 * walks, so batching must never change a single bit of any response.
 */
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "test_utils.h"
#include "treebeard/compiler.h"

using namespace treebeard;
using namespace treebeard::testing;

namespace {

/** A small quantized forest distinct per @p seed. */
model::Forest
makeServableForest(uint64_t seed, int32_t num_features = 10)
{
    RandomForestSpec spec;
    spec.numFeatures = num_features;
    spec.numTrees = 24;
    spec.maxDepth = 5;
    spec.seed = seed;
    model::Forest forest = makeRandomForest(spec);
    quantizeLeafValues(forest);
    return forest;
}

/** Direct (unserved) predictions for @p rows under @p schedule. */
std::vector<float>
directPredictions(const model::Forest &forest,
                  const hir::Schedule &schedule,
                  const CompilerOptions &options,
                  const std::vector<float> &rows)
{
    Session session = compile(forest, schedule, options);
    int64_t num_rows = static_cast<int64_t>(rows.size()) /
                       forest.numFeatures();
    std::vector<float> predictions(
        static_cast<size_t>(num_rows) * session.numClasses());
    session.predict(rows.data(), num_rows, predictions.data());
    return predictions;
}

// ---------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------

TEST(ModelRegistry, ContentHashDeduplicatesLoads)
{
    serve::ModelRegistry registry;
    model::Forest forest = makeServableForest(101);

    serve::ModelHandle first = registry.load(forest);
    serve::ModelHandle second = registry.load(forest);
    EXPECT_EQ(first, second);
    EXPECT_EQ(registry.residentModels(), 1);
    EXPECT_EQ(registry.stats().loads, 2);
    EXPECT_EQ(registry.stats().compiles, 1);
    EXPECT_EQ(registry.stats().hits, 1);

    // A different schedule is different content: new handle, new
    // compilation.
    hir::Schedule scalar;
    scalar.tileSize = 1;
    scalar.tiling = hir::TilingAlgorithm::kBasic;
    serve::ModelHandle tuned = registry.load(forest, scalar);
    EXPECT_NE(tuned, first);
    EXPECT_EQ(registry.residentModels(), 2);
    EXPECT_EQ(registry.stats().compiles, 2);

    // handleFor precomputes the routing key without loading.
    EXPECT_EQ(registry.handleFor(forest, scalar), tuned);
}

TEST(ModelRegistry, UnknownHandleThrowsStableCode)
{
    serve::ModelRegistry registry;
    try {
        registry.session("tb-ffffffffffffffff");
        FAIL() << "expected serve.registry.unknown-model";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrUnknownModel);
    }
}

TEST(ModelRegistry, LruCapEvictsColdestModel)
{
    serve::RegistryOptions options;
    options.maxResidentModels = 2;
    serve::ModelRegistry registry(options);

    serve::ModelHandle a = registry.load(makeServableForest(1));
    serve::ModelHandle b = registry.load(makeServableForest(2));
    // Touch a so b becomes the LRU entry.
    registry.session(a);
    serve::ModelHandle c = registry.load(makeServableForest(3));

    EXPECT_TRUE(registry.contains(a));
    EXPECT_FALSE(registry.contains(b));
    EXPECT_TRUE(registry.contains(c));
    EXPECT_EQ(registry.residentModels(), 2);
    EXPECT_EQ(registry.stats().evictions, 1);

    // Reloading the evicted model recompiles under the same handle.
    EXPECT_EQ(registry.load(makeServableForest(2)), b);
    EXPECT_EQ(registry.stats().compiles, 4);
}

TEST(ModelRegistry, EvictionKeepsHandedOutSessionsAlive)
{
    serve::ModelRegistry registry;
    model::Forest forest = makeServableForest(7);
    serve::ModelHandle handle = registry.load(forest);
    std::shared_ptr<const Session> session = registry.session(handle);

    EXPECT_TRUE(registry.evict(handle));
    EXPECT_FALSE(registry.contains(handle));

    // The shared session outlives its registry entry.
    std::vector<float> rows = makeRandomRows(forest.numFeatures(), 8, 9);
    std::vector<float> predictions(8);
    session->predict(rows.data(), 8, predictions.data());
    expectPredictionsClose(referencePredictions(forest, rows),
                           predictions);
}

TEST(ModelRegistry, EvictedModelRecompilesThroughJitDiskCache)
{
    serve::RegistryOptions options;
    options.compiler.backend = Backend::kSourceJit;
    options.compiler.jit.cacheDir =
        ::testing::TempDir() + "/treebeard_serving_cache";
    serve::ModelRegistry registry(options);

    model::Forest forest = makeServableForest(11);
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), 16, 13);

    serve::ModelHandle handle = registry.load(forest);
    std::vector<float> first(16);
    registry.session(handle)->predict(rows.data(), 16, first.data());

    EXPECT_TRUE(registry.evict(handle));
    // The reload recompiles, but the source JIT serves it from the
    // disk cache (dlopen fast path) instead of the system compiler.
    EXPECT_EQ(registry.load(forest), handle);
    std::vector<float> second(16);
    registry.session(handle)->predict(rows.data(), 16, second.data());
    expectPredictionsExact(first, second);
    EXPECT_EQ(registry.stats().compiles, 2);
}

TEST(ModelRegistry, ConcurrentLoadsOfSameContentShareOneCompile)
{
    serve::ModelRegistry registry;
    model::Forest forest = makeServableForest(17);

    std::vector<std::thread> threads;
    std::vector<serve::ModelHandle> handles(6);
    for (size_t t = 0; t < handles.size(); ++t) {
        threads.emplace_back(
            [&, t] { handles[t] = registry.load(forest); });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (const serve::ModelHandle &handle : handles)
        EXPECT_EQ(handle, handles[0]);
    EXPECT_EQ(registry.stats().compiles, 1);
    EXPECT_EQ(registry.stats().loads, 6);
}

// ---------------------------------------------------------------------
// DynamicBatcher
// ---------------------------------------------------------------------

TEST(DynamicBatcher, BatchTargetAlignsToRowChunks)
{
    model::Forest forest = makeServableForest(23);
    hir::Schedule schedule;
    schedule.numThreads = 2;
    schedule.rowChunkRows = 64;
    auto session = std::make_shared<const Session>(
        compile(forest, schedule, {}));

    serve::BatcherOptions options;
    options.maxBatchRows = 100; // not a chunk multiple
    serve::DynamicBatcher batcher(session, schedule, options);
    EXPECT_EQ(batcher.batchRowTarget(), 128);
    batcher.shutdown();
}

TEST(DynamicBatcher, CoalescesConcurrentSingleRowsExactly)
{
    model::Forest forest = makeServableForest(29);
    hir::Schedule schedule;
    auto session = std::make_shared<const Session>(
        compile(forest, schedule, {}));

    const int64_t kThreads = 8, kRequests = 50;
    std::vector<float> rows = makeRandomRows(
        forest.numFeatures(), kThreads * kRequests, 31);
    std::vector<float> direct =
        directPredictions(forest, schedule, {}, rows);

    serve::BatcherOptions options;
    options.maxBatchRows = 16;
    options.maxQueueDelayMicros = 2000;
    serve::DynamicBatcher batcher(session, schedule, options);

    std::vector<std::thread> threads;
    for (int64_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int64_t r = 0; r < kRequests; ++r) {
                int64_t row = t * kRequests + r;
                std::vector<float> prediction =
                    batcher
                        .submit(rows.data() +
                                    row * forest.numFeatures(),
                                1)
                        .get();
                ASSERT_EQ(prediction.size(), 1u);
                EXPECT_EQ(prediction[0], direct[row])
                    << "served row " << row
                    << " differs from direct predict";
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    serve::BatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.requestsAdmitted, kThreads * kRequests);
    EXPECT_EQ(stats.singleRowRequests, kThreads * kRequests);
    EXPECT_EQ(stats.rowsExecuted, kThreads * kRequests);
    // Eight closed-loop clients against one flusher must coalesce at
    // least some batches.
    EXPECT_GT(stats.coalescedBatches, 0);
    EXPECT_GT(stats.largestBatchRows, 1);
    batcher.shutdown();
}

TEST(DynamicBatcher, DeadlineFlushesALoneRequest)
{
    model::Forest forest = makeServableForest(37);
    hir::Schedule schedule;
    auto session = std::make_shared<const Session>(
        compile(forest, schedule, {}));

    serve::BatcherOptions options;
    options.maxBatchRows = 1 << 20; // size flush unreachable
    options.maxQueueDelayMicros = 200;
    serve::DynamicBatcher batcher(session, schedule, options);

    std::vector<float> rows = makeRandomRows(forest.numFeatures(), 1, 41);
    std::vector<float> prediction =
        batcher.submit(rows.data(), 1).get();
    EXPECT_EQ(prediction.size(), 1u);
    serve::BatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.deadlineFlushes, 1);
    EXPECT_EQ(stats.sizeFlushes, 0);
    batcher.shutdown();
}

TEST(DynamicBatcher, AdmissionControlRejectsPastQueueCap)
{
    model::Forest forest = makeServableForest(43);
    hir::Schedule schedule;
    auto session = std::make_shared<const Session>(
        compile(forest, schedule, {}));

    serve::BatcherOptions options;
    options.maxBatchRows = 1 << 20;
    options.maxQueueDelayMicros = 500000; // hold the queue
    options.maxQueuedRows = 4;
    serve::DynamicBatcher batcher(session, schedule, options);

    std::vector<float> rows = makeRandomRows(forest.numFeatures(), 8, 47);
    std::future<std::vector<float>> queued =
        batcher.submit(rows.data(), 1);
    try {
        batcher.submit(rows.data(), 8);
        FAIL() << "expected serve.queue.full";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrQueueFull);
    }
    EXPECT_EQ(batcher.stats().requestsRejected, 1);

    // Shutdown drains: the admitted request still completes.
    batcher.shutdown();
    EXPECT_EQ(queued.get().size(), 1u);
}

TEST(DynamicBatcher, SubmitAfterShutdownThrowsStableCode)
{
    model::Forest forest = makeServableForest(53);
    hir::Schedule schedule;
    auto session = std::make_shared<const Session>(
        compile(forest, schedule, {}));
    serve::DynamicBatcher batcher(session, schedule, {});
    batcher.shutdown();

    std::vector<float> rows = makeRandomRows(forest.numFeatures(), 1, 59);
    try {
        batcher.submit(rows.data(), 1);
        FAIL() << "expected serve.queue.shutdown";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrQueueShutdown);
    }
}

TEST(DynamicBatcher, BadRequestsThrowStableCode)
{
    model::Forest forest = makeServableForest(61);
    hir::Schedule schedule;
    auto session = std::make_shared<const Session>(
        compile(forest, schedule, {}));
    serve::DynamicBatcher batcher(session, schedule, {});

    try {
        batcher.submit(nullptr, 3);
        FAIL() << "expected serve.queue.bad-request";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrBadRequest);
    }
    // Zero rows is a valid no-op, resolved without queueing.
    EXPECT_TRUE(batcher.submit(nullptr, 0).get().empty());
    batcher.shutdown();
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/**
 * The tentpole exactness test: several tenants' models served
 * concurrently under mixed single/small-batch traffic, every response
 * compared bit-exact against direct Session::predict. Parameterized
 * over both backends.
 */
class ServingExactness : public ::testing::TestWithParam<Backend>
{};

TEST_P(ServingExactness, MultiTenantMixedTrafficMatchesDirectPredict)
{
    CompilerOptions compiler;
    compiler.backend = GetParam();

    const int kModels = 3;
    const int64_t kThreads = 6, kRequests = 40;
    std::vector<model::Forest> forests;
    std::vector<std::vector<float>> rows, direct;
    hir::Schedule schedule; // defaults; quantized leaves => exact sums
    for (int m = 0; m < kModels; ++m) {
        forests.push_back(makeServableForest(700 + m));
        rows.push_back(makeRandomRows(forests[m].numFeatures(),
                                      kThreads * kRequests * 4,
                                      900 + m));
        direct.push_back(directPredictions(forests[m], schedule,
                                           compiler, rows[m]));
    }

    serve::ServerOptions options;
    options.registry.compiler = compiler;
    options.registry.defaultSchedule = schedule;
    options.batcher.maxBatchRows = 32;
    options.batcher.maxQueueDelayMicros = 1000;
    serve::Server server(options);
    std::vector<serve::ModelHandle> handles;
    for (const model::Forest &forest : forests)
        handles.push_back(server.loadModel(forest));

    std::vector<std::thread> threads;
    for (int64_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int64_t r = 0; r < kRequests; ++r) {
                // Mixed traffic: rotate tenants and request sizes
                // (1..4 rows) per thread.
                int m = static_cast<int>((t + r) % kModels);
                int64_t num_rows = 1 + (t * kRequests + r) % 4;
                int64_t start = (t * kRequests + r) % (kThreads *
                                                       kRequests * 4 -
                                                       num_rows);
                int32_t features = forests[m].numFeatures();
                std::vector<float> served = server.predict(
                    handles[static_cast<size_t>(m)],
                    rows[m].data() + start * features, num_rows);
                ASSERT_EQ(served.size(),
                          static_cast<size_t>(num_rows));
                for (int64_t i = 0; i < num_rows; ++i) {
                    EXPECT_EQ(served[static_cast<size_t>(i)],
                              direct[m][static_cast<size_t>(
                                  start + i)])
                        << "tenant " << m << " row " << start + i
                        << " differs from direct predict";
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.registry.compiles, kModels);
    EXPECT_EQ(stats.residentModels, kModels);
    EXPECT_EQ(stats.batching.requestsAdmitted, kThreads * kRequests);
    server.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Backends, ServingExactness,
                         ::testing::Values(Backend::kKernel,
                                           Backend::kSourceJit),
                         [](const auto &info) {
                             return std::string(
                                 backendName(info.param));
                         });

TEST(Server, UnknownHandleAndShutdownCodes)
{
    serve::Server server;
    std::vector<float> row(4, 0.5f);
    try {
        server.predict("tb-0000000000000000", row.data(), 1);
        FAIL() << "expected serve.registry.unknown-model";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrUnknownModel);
    }

    server.shutdown();
    try {
        server.predict("tb-0000000000000000", row.data(), 1);
        FAIL() << "expected serve.queue.shutdown";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrQueueShutdown);
    }
}

TEST(Server, ZeroRowPredictAsyncThrowsBadRequest)
{
    // The batcher treats zero rows as a resolved no-op (asserted
    // above), but the Server API rejects it: an empty predict has no
    // answer to wait for, and the TCP transport relies on this code
    // to answer an empty PREDICT frame deterministically.
    serve::Server server;
    model::Forest forest = makeServableForest(307);
    serve::ModelHandle handle = server.loadModel(forest);
    std::vector<float> row(forest.numFeatures(), 0.5f);
    for (int64_t num_rows : {int64_t{0}, int64_t{-3}}) {
        try {
            server.predictAsync(handle, row.data(), num_rows);
            FAIL() << "expected serve.queue.bad-request for "
                   << num_rows << " rows";
        } catch (const Error &error) {
            EXPECT_EQ(error.code(), serve::kErrBadRequest);
        }
    }
    // The model still serves after the rejections.
    EXPECT_EQ(server.predict(handle, row.data(), 1).size(), 1u);
}

TEST(Server, EvictThenReloadServesAgain)
{
    serve::Server server;
    model::Forest forest = makeServableForest(71);
    std::vector<float> rows =
        makeRandomRows(forest.numFeatures(), 4, 73);

    serve::ModelHandle handle = server.loadModel(forest);
    std::vector<float> before = server.predict(handle, rows.data(), 4);

    EXPECT_TRUE(server.evictModel(handle));
    EXPECT_FALSE(server.evictModel(handle));
    try {
        server.predict(handle, rows.data(), 4);
        FAIL() << "expected serve.registry.unknown-model";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrUnknownModel);
    }

    EXPECT_EQ(server.loadModel(forest), handle);
    expectPredictionsExact(before,
                           server.predict(handle, rows.data(), 4));
    EXPECT_EQ(server.stats().registry.compiles, 2);
}

TEST(Server, RegistryCapRetiresServedModelsBatchers)
{
    serve::ServerOptions options;
    options.registry.maxResidentModels = 1;
    serve::Server server(options);

    model::Forest first = makeServableForest(79);
    model::Forest second = makeServableForest(83);
    serve::ModelHandle a = server.loadModel(first);
    std::vector<float> rows =
        makeRandomRows(first.numFeatures(), 2, 89);
    server.predict(a, rows.data(), 2);

    // Loading a second model under a cap of one evicts the first and
    // reaps its batcher: the stale handle now fails fast.
    serve::ModelHandle b = server.loadModel(second);
    EXPECT_NE(a, b);
    try {
        server.predict(a, rows.data(), 2);
        FAIL() << "expected serve.registry.unknown-model";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrUnknownModel);
    }
    // The retired batcher's counters are folded into server stats.
    EXPECT_EQ(server.stats().batching.requestsAdmitted, 1);
    EXPECT_EQ(server.stats().registry.evictions, 1);
}

TEST(Server, WholeRowValidationThrowsBadRequest)
{
    serve::Server server;
    model::Forest forest = makeServableForest(97);
    serve::ModelHandle handle = server.loadModel(forest);

    std::vector<float> ragged(
        static_cast<size_t>(forest.numFeatures()) + 1, 0.25f);
    try {
        server.predict(handle, ragged);
        FAIL() << "expected serve.queue.bad-request";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), serve::kErrBadRequest);
    }
}

TEST(Server, SharedContentServedToTwoTenantsCompilesOnce)
{
    serve::Server server;
    model::Forest forest = makeServableForest(103);

    serve::ModelHandle tenant_a = server.loadModel(forest);
    serve::ModelHandle tenant_b = server.loadModel(forest);
    EXPECT_EQ(tenant_a, tenant_b);
    EXPECT_EQ(server.stats().registry.compiles, 1);
    EXPECT_EQ(server.stats().registry.hits, 1);
    EXPECT_EQ(server.stats().residentModels, 1);
}

} // namespace
