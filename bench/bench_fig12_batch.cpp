/**
 * @file
 * Regenerates Figure 12: single-core geomean speedup (over all
 * benchmarks) of fully optimized Treebeard code over the scalar
 * baseline, across batch sizes.
 *
 * Expected shape: the speedup is roughly flat across batch sizes
 * (the paper reports ~2-2.5x from batch 64 through 4k).
 */
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    const std::vector<int64_t> batch_sizes{64, 128, 256, 512, 1024,
                                           2048, 4096};
    std::printf("# Figure 12: geomean speedup of optimized code over "
                "scalar baseline across batch sizes\n");
    bench::printCsvRow({"batch_size", "geomean_speedup"});

    struct PerBenchmark
    {
        data::SyntheticModelSpec spec;
        std::unique_ptr<Session> scalar;
        std::unique_ptr<Session> optimized;
    };
    std::vector<PerBenchmark> setups;
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        PerBenchmark setup;
        setup.spec = spec;
        setup.scalar = std::make_unique<Session>(
            compile(forest, bench::scalarBaselineSchedule()));
        setup.optimized = std::make_unique<Session>(
            compile(forest, bench::optimizedSchedule(1)));
        setups.push_back(std::move(setup));
    }

    for (int64_t batch_size : batch_sizes) {
        std::vector<double> speedups;
        for (PerBenchmark &setup : setups) {
            data::Dataset batch =
                bench::benchmarkBatch(setup.spec, batch_size);
            std::vector<float> predictions(
                static_cast<size_t>(batch_size));
            double scalar_us = bench::timeMicrosPerRow(
                [&] {
                    setup.scalar->predict(batch.rows(), batch_size,
                                          predictions.data());
                },
                batch_size, 3);
            double optimized_us = bench::timeMicrosPerRow(
                [&] {
                    setup.optimized->predict(batch.rows(), batch_size,
                                             predictions.data());
                },
                batch_size, 3);
            speedups.push_back(scalar_us / optimized_us);
        }
        bench::printCsvRow({std::to_string(batch_size),
                            bench::fmt(bench::geomean(speedups), 2)});
    }
    return 0;
}
