/**
 * @file
 * Quantized packed-record shootout: on the large deep model (500
 * trees, max depth 9, 50 features, tile size 8) the f32 packed layout
 * (one 64-byte record per tile) races the int16-quantized packed
 * layout (one 32-byte record per tile — two per cache line), each
 * with the software-pipelined interleaved walkers on and off.
 *
 * Expected shape: the quantized record halves the model-resident
 * working set, so in this beyond-L2 regime the i16 walkers win on
 * memory traffic despite the per-batch row-quantization pass; the
 * pipelined variants add a little more by hiding each record fetch
 * behind the previous tile's compare. The headline claim is the
 * quantized+pipelined configuration beating the f32 packed baseline
 * by >= 10% ns/row.
 *
 * Accuracy is bounded, not exact: thresholds round to ~65000 steps
 * across each feature's range, and the worst case is declared in the
 * layout's quantization metadata. The run cross-checks observed drift
 * against that budget.
 *
 * When invoked with an argument, writes a JSON summary to that path
 * (the run_layout_bench.sh driver passes BENCH_quantized_packed.json).
 */
#include <cmath>
#include <sstream>

#include "bench_common.h"
#include "common/json.h"
#include "lir/layout_builder.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

/** One configuration's measurement on the large model. */
struct VariantTiming
{
    std::string name;
    double nsPerRow = 0.0;
    int64_t bytesPerTile = 0;
    int64_t footprintBytes = 0;
    double maxQuantizationError = 0.0; // declared threshold step
    double observedDrift = 0.0;        // vs the f32 predictions
    std::vector<float> predictions;
};

VariantTiming
timeVariant(const std::string &name, const model::Forest &forest,
            hir::PackedPrecision precision, bool pipeline,
            const data::Dataset &batch, int64_t rows)
{
    VariantTiming timing;
    timing.name = name;
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.layout = hir::MemoryLayout::kPacked;
    schedule.packedPrecision = precision;
    schedule.pipelinePackedWalks = pipeline;

    Session session = compile(forest, schedule);
    const lir::ForestBuffers &buffers = session.plan().buffers();
    timing.bytesPerTile = buffers.packedStride;
    timing.footprintBytes = buffers.footprintBytes();
    if (buffers.layout == lir::LayoutKind::kPackedQuantized) {
        timing.maxQuantizationError =
            buffers.quantization.maxThresholdError;
    }

    timing.predictions.resize(static_cast<size_t>(rows));
    double us = bench::timeMicrosPerRow(
        [&] {
            session.predict(batch.rows(), rows,
                            timing.predictions.data());
        },
        rows);
    timing.nsPerRow = us * 1e3;
    return timing;
}

} // namespace

int
main(int argc, char **argv)
{
    data::SyntheticModelSpec large;
    large.name = "large-deep";
    large.numFeatures = 50;
    large.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(500 * bench::benchScale()));
    large.maxDepth = 9;
    large.splitProbability = 0.93;
    large.trainingRows = 0;
    large.seed = 4242;
    large.thresholdDistribution = data::ThresholdDistribution::kMild;
    model::Forest forest = data::synthesizeForest(large);

    constexpr int64_t kRows = 2000;
    data::Dataset batch = bench::benchmarkBatch(large, kRows);

    std::printf("# Quantized packed records, %lld trees depth %d "
                "tile 8 (optimized schedule, %lld rows)\n",
                static_cast<long long>(large.numTrees), large.maxDepth,
                static_cast<long long>(kRows));
    bench::printCsvRow({"variant", "ns_per_row", "bytes_per_tile",
                        "footprint_bytes", "max_quant_error",
                        "observed_drift"});

    std::vector<VariantTiming> timings;
    timings.push_back(timeVariant("f32-packed", forest,
                                  hir::PackedPrecision::kF32, false,
                                  batch, kRows));
    timings.push_back(timeVariant("f32-packed-pipelined", forest,
                                  hir::PackedPrecision::kF32, true,
                                  batch, kRows));
    timings.push_back(timeVariant("i16-packed", forest,
                                  hir::PackedPrecision::kI16, false,
                                  batch, kRows));
    timings.push_back(timeVariant("i16-packed-pipelined", forest,
                                  hir::PackedPrecision::kI16, true,
                                  batch, kRows));

    const std::vector<float> &f32 = timings.front().predictions;
    for (VariantTiming &timing : timings) {
        for (int64_t r = 0; r < kRows; ++r) {
            timing.observedDrift = std::max(
                timing.observedDrift,
                static_cast<double>(std::abs(
                    timing.predictions[static_cast<size_t>(r)] -
                    f32[static_cast<size_t>(r)])));
        }
        bench::printCsvRow({timing.name, bench::fmt(timing.nsPerRow, 2),
                            std::to_string(timing.bytesPerTile),
                            std::to_string(timing.footprintBytes),
                            bench::fmt(timing.maxQuantizationError, 6),
                            bench::fmt(timing.observedDrift, 6)});
    }

    double baseline = timings[0].nsPerRow;
    double quantized_pipelined = timings[3].nsPerRow;
    double speedup = baseline / quantized_pipelined;
    std::printf("# i16-packed-pipelined vs f32-packed: %.2fx "
                "(%.1f%% faster)\n",
                speedup, (speedup - 1.0) * 100.0);

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"quantized_packed_shootout\",\n";
        os << "  \"model\": {\"trees\": " << large.numTrees
           << ", \"max_depth\": " << large.maxDepth
           << ", \"features\": " << large.numFeatures
           << ", \"tile_size\": 8},\n";
        os << "  \"rows\": " << kRows << ",\n";
        os << "  \"results\": [\n";
        for (size_t i = 0; i < timings.size(); ++i) {
            const VariantTiming &t = timings[i];
            os << "    {\"variant\": \"" << t.name
               << "\", \"ns_per_row\": " << bench::fmt(t.nsPerRow, 2)
               << ", \"bytes_per_tile\": " << t.bytesPerTile
               << ", \"footprint_bytes\": " << t.footprintBytes
               << ", \"max_quantization_error\": "
               << bench::fmt(t.maxQuantizationError, 6)
               << ", \"observed_drift\": "
               << bench::fmt(t.observedDrift, 6) << "}"
               << (i + 1 < timings.size() ? "," : "") << "\n";
        }
        os << "  ],\n";
        os << "  \"speedup_i16_pipelined_vs_f32_packed\": "
           << bench::fmt(speedup, 4) << "\n";
        os << "}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
