/**
 * @file
 * QuickScorer crossover study (an extension; Section VII notes
 * QuickScorer "is extremely fast for smaller models, [but] does not
 * scale well to larger models" and could be integrated as another
 * Treebeard traversal strategy — implemented here as
 * baselines::QuickScorer).
 *
 * Sweeps the ensemble size of one benchmark model family and compares
 * QuickScorer against the XGBoost-style walker and compiled
 * Treebeard.
 *
 * Expected shape: QuickScorer is competitive (often fastest among
 * scalar strategies) at small tree counts and degrades super-linearly
 * as the per-row bit-vector state outgrows the cache; Treebeard stays
 * fastest at scale.
 */
#include "baselines/quickscorer.h"
#include "baselines/xgboost_style.h"
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    constexpr int64_t kBatch = 1024;
    std::printf("# QuickScorer crossover: airline-family models of "
                "growing size, batch %lld\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow({"trees", "quickscorer_us", "xgboost_us",
                        "treebeard_us", "qs_bitvector_kb"});

    // QuickScorer's design point is learning-to-rank ensembles with
    // <= 64 leaves per tree; depth-5 trees keep every tree in one
    // mask word (the paper's large-model scaling critique then shows
    // up purely through the tree count).
    data::SyntheticModelSpec base =
        data::benchmarkSpecByName("airline");
    base.maxDepth = 5;
    for (int64_t trees : {10, 50, 200, 800}) {
        data::SyntheticModelSpec spec = base;
        spec.numTrees = trees;
        spec.name = "airline-d5-" + std::to_string(trees);
        model::Forest forest = data::synthesizeForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);

        baselines::QuickScorer quickscorer(forest);
        baselines::XgBoostStyle xgboost(
            forest, baselines::XgBoostVersion::kV15);
        Session session =
            compile(forest, bench::optimizedSchedule(1));

        double qs_us = bench::timeMicrosPerRow(
            [&] {
                quickscorer.predict(batch.rows(), kBatch,
                                    predictions.data());
            },
            kBatch, 3);
        double xgb_us = bench::timeMicrosPerRow(
            [&] {
                xgboost.predict(batch.rows(), kBatch,
                                predictions.data());
            },
            kBatch, 3);
        double tb_us = bench::timeMicrosPerRow(
            [&] {
                session.predict(batch.rows(), kBatch,
                                predictions.data());
            },
            kBatch, 3);

        bench::printCsvRow(
            {std::to_string(trees), bench::fmt(qs_us),
             bench::fmt(xgb_us), bench::fmt(tb_us),
             bench::fmt(quickscorer.bitvectorWords() * 8 / 1024.0,
                        1)});
    }
    return 0;
}
