/**
 * @file
 * Regenerates Figure 13: Treebeard scaling with the number of cores
 * (speedup over the single-core scalar baseline, batch 1024).
 *
 * SUBSTRATE NOTE: this host exposes one hardware core, so measured
 * wall-clock cannot scale; in addition to measured times, the bench
 * reports a work-based ideal-scaling estimate (single-thread
 * optimized time divided by the thread count, plus the measured
 * threading overhead), which is the quantity the paper's multi-core
 * hardware would approach. EXPERIMENTS.md discusses this.
 */
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    constexpr int64_t kBatch = 1024;
    const std::vector<int32_t> thread_counts{1, 2, 4, 8, 16};
    std::printf("# Figure 13: scaling with core count, batch %lld\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow({"dataset", "threads", "measured_us_per_row",
                        "measured_speedup_vs_scalar",
                        "ideal_speedup_estimate"});

    // A 4-benchmark subset keeps the sweep quick; the scaling
    // behaviour is model-independent at this level.
    const std::vector<std::string> subset{"abalone", "airline",
                                          "covtype", "letter"};
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        if (std::find(subset.begin(), subset.end(), spec.name) ==
            subset.end()) {
            continue;
        }
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);

        Session scalar =
            compile(forest, bench::scalarBaselineSchedule());
        double scalar_us = bench::timeMicrosPerRow(
            [&] {
                scalar.predict(batch.rows(), kBatch,
                               predictions.data());
            },
            kBatch, 3);

        double one_thread_us = 0.0;
        for (int32_t threads : thread_counts) {
            Session session =
                compile(forest, bench::optimizedSchedule(threads));
            double us = bench::timeMicrosPerRow(
                [&] {
                    session.predict(batch.rows(), kBatch,
                                    predictions.data());
                },
                kBatch, 3);
            if (threads == 1)
                one_thread_us = us;
            double ideal = scalar_us / (one_thread_us / threads);
            bench::printCsvRow({spec.name, std::to_string(threads),
                                bench::fmt(us),
                                bench::fmt(scalar_us / us, 2),
                                bench::fmt(ideal, 2)});
        }
    }
    return 0;
}
