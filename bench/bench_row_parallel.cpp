/**
 * @file
 * Node- vs row-parallel traversal crossover. Both kinds spend the
 * same SIMD width differently: node-parallel evaluates the nodes of
 * one tile for one row per vector, row-parallel walks eight rows down
 * one tree in lockstep behind a divergence mask, several lane groups
 * in flight to keep the gather chains pipelined. The crossover runs
 * along the batch axis: below a few lane groups of rows the wide
 * row-parallel loop cannot fill and the 8-row/scalar remainders
 * dominate, so node-parallel wins; from batch ~64 up the lockstep
 * walk wins on both model shapes — under padded unrolled walks lanes
 * never diverge, and deeper trees gain the most because their longer
 * serial gather chains profit most from group interleaving.
 *
 * The bench times the pure axis flip (identical schedule, only
 * Schedule::traversal changes) across two model shapes and a batch
 * sweep, then runs the auto-tuner on both models over a grid that
 * includes both traversal kinds and reports which kind it picks per
 * model — the crossover must be found automatically, not encoded.
 *
 * When invoked with an argument, writes a JSON summary to that path
 * (BENCH_row_parallel.json).
 */
#include <sstream>

#include "bench_common.h"
#include "common/json.h"
#include "treebeard/compiler.h"
#include "tuner/auto_tuner.h"

using namespace treebeard;

namespace {

/** One (model, batch) axis-flip measurement. */
struct CrossoverPoint
{
    std::string model;
    int64_t batch = 0;
    double nodeRowsPerSec = 0.0;
    double rowRowsPerSec = 0.0;
    double rowOverNode = 0.0;
};

/** Rows/sec for one compiled session on one batch. */
double
rowsPerSec(Session &session, const data::Dataset &batch, int64_t rows)
{
    std::vector<float> predictions(
        static_cast<size_t>(rows) *
        static_cast<size_t>(session.numClasses()));
    double seconds = bench::timeSeconds(
        [&] { session.predict(batch.rows(), rows, predictions.data()); });
    return static_cast<double>(rows) / seconds;
}

/** The traversal-axis base point: tile-size-1 sparse, serial. */
hir::Schedule
baseSchedule()
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    schedule.tileSize = 1;
    schedule.tiling = hir::TilingAlgorithm::kBasic;
    schedule.layout = hir::MemoryLayout::kSparse;
    schedule.padAndUnrollWalks = true;
    schedule.peelWalks = true;
    schedule.interleaveFactor = 8;
    schedule.numThreads = 1;
    schedule.assumeNoMissingValues = true;
    return schedule;
}

} // namespace

int
main(int argc, char **argv)
{
    // The two ends of the crossover: a wide forest of shallow trees
    // (lockstep-friendly: little lane divergence) and a narrow forest
    // of deep trees (divergence-heavy).
    data::SyntheticModelSpec shallow;
    shallow.name = "shallow-wide";
    shallow.numFeatures = 50;
    shallow.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(600 * bench::benchScale()));
    shallow.maxDepth = 4;
    shallow.splitProbability = 0.97;
    shallow.trainingRows = 0;
    shallow.seed = 6161;
    shallow.thresholdDistribution = data::ThresholdDistribution::kMild;

    data::SyntheticModelSpec deep = shallow;
    deep.name = "deep-narrow";
    deep.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(100 * bench::benchScale()));
    deep.maxDepth = 9;
    deep.splitProbability = 0.93;
    deep.seed = 6262;

    const int64_t batches[] = {8, 64, 512, 2048};

    std::printf("# Traversal-axis flip (tile 1 sparse, serial): "
                "node-parallel vs row-parallel lane groups\n");
    std::printf("# Row-parallel should win from batch >= 64 on both "
                "shapes (%s most) and lose the small batches, where "
                "the wide loop cannot fill its lane groups.\n",
                deep.name.c_str());
    bench::printCsvRow({"model", "batch", "node_rows_per_sec",
                        "row_rows_per_sec", "row_over_node"});

    std::vector<CrossoverPoint> points;
    for (const data::SyntheticModelSpec &spec : {shallow, deep}) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        hir::Schedule node = baseSchedule();
        hir::Schedule row = node;
        row.traversal = hir::TraversalKind::kRowParallel;
        Session node_session = compile(forest, node, {});
        Session row_session = compile(forest, row, {});

        for (int64_t batch : batches) {
            data::Dataset rows = bench::benchmarkBatch(spec, batch);
            CrossoverPoint point;
            point.model = spec.name;
            point.batch = batch;
            point.nodeRowsPerSec = rowsPerSec(node_session, rows, batch);
            point.rowRowsPerSec = rowsPerSec(row_session, rows, batch);
            point.rowOverNode =
                point.rowRowsPerSec / point.nodeRowsPerSec;
            points.push_back(point);
            bench::printCsvRow({point.model, std::to_string(batch),
                                bench::fmt(point.nodeRowsPerSec, 0),
                                bench::fmt(point.rowRowsPerSec, 0),
                                bench::fmt(point.rowOverNode, 3)});
        }
    }

    // The tuner must find the crossover on its own: same grid for
    // both models, both traversal kinds included, winner reported.
    std::printf("# Auto-tuner choice per model (grid includes both "
                "traversal kinds):\n");
    struct TunerChoice
    {
        std::string model;
        std::string traversal;
        std::string schedule;
    };
    std::vector<TunerChoice> choices;
    for (const data::SyntheticModelSpec &spec : {shallow, deep}) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        int64_t sample_rows = 512;
        data::Dataset sample = bench::benchmarkBatch(spec, sample_rows);

        tuner::TunerOptions options;
        options.loopOrders = {hir::LoopOrder::kOneTreeAtATime};
        options.tileSizes = {1, 8};
        options.tilings = {hir::TilingAlgorithm::kBasic};
        options.padAndUnroll = {true};
        options.interleaveFactors = {1, 8};
        options.layouts = {hir::MemoryLayout::kSparse};
        options.repetitions = 3;
        tuner::TunerResult result = tuner::exploreSchedules(
            forest, sample.rows(), sample_rows, options);

        TunerChoice choice;
        choice.model = spec.name;
        choice.traversal =
            hir::traversalKindName(result.best.schedule.traversal);
        choice.schedule = result.best.schedule.toString();
        choices.push_back(choice);
        std::printf("# %s -> %s (%s)\n", choice.model.c_str(),
                    choice.traversal.c_str(), choice.schedule.c_str());
    }

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"row_parallel\",\n";
        os << "  \"models\": {\"" << shallow.name
           << "\": {\"trees\": " << shallow.numTrees
           << ", \"max_depth\": " << shallow.maxDepth << "}, \""
           << deep.name << "\": {\"trees\": " << deep.numTrees
           << ", \"max_depth\": " << deep.maxDepth << "}},\n";
        os << "  \"crossover\": [\n";
        for (size_t i = 0; i < points.size(); ++i) {
            const CrossoverPoint &p = points[i];
            os << "    {\"model\": \"" << p.model
               << "\", \"batch\": " << p.batch
               << ", \"node_rows_per_sec\": "
               << bench::fmt(p.nodeRowsPerSec, 0)
               << ", \"row_rows_per_sec\": "
               << bench::fmt(p.rowRowsPerSec, 0)
               << ", \"row_over_node\": "
               << bench::fmt(p.rowOverNode, 4) << "}"
               << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ],\n";
        os << "  \"tuner_choices\": [\n";
        for (size_t i = 0; i < choices.size(); ++i) {
            os << "    {\"model\": \"" << choices[i].model
               << "\", \"chosen_traversal\": \""
               << choices[i].traversal << "\", \"schedule\": \""
               << choices[i].schedule << "\"}"
               << (i + 1 < choices.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
