/**
 * @file
 * Resident-dataset shootout: on the large deep model with the
 * int16-quantized packed layout, repeated predict() pays a full row
 * quantization pass per call, while bindDataset() + predictDataset()
 * quantizes the resident rows once and serves every subsequent call
 * from the cached int32 image. The bench times both paths over many
 * repeated calls on one batch — the scoring-service pattern the
 * resident path exists for — and cross-checks via
 * runtime::rowQuantizationStats() that the resident path really runs
 * zero per-call quantization passes (while staying bit-identical).
 *
 * The f32 packed layout is included as a control: with no bind-time
 * transform to cache, predictDataset() must cost the same as
 * predict().
 *
 * When invoked with an argument, writes a JSON summary to that path
 * (BENCH_resident_rows.json).
 */
#include <cmath>
#include <sstream>

#include "bench_common.h"
#include "common/json.h"
#include "runtime/plan.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

/** One (precision, path) measurement over repeated calls. */
struct PathTiming
{
    std::string name;
    double nsPerRow = 0.0;
    double bindMs = 0.0;
    int64_t quantizePassesPerCall = 0;
    bool exactVsPredict = true;
};

PathTiming
timePath(const std::string &name, Session &session,
         const data::Dataset &batch, int64_t rows, bool resident)
{
    PathTiming timing;
    timing.name = name;

    std::vector<float> expected(static_cast<size_t>(rows));
    session.predict(batch.rows(), rows, expected.data());
    std::vector<float> predictions(static_cast<size_t>(rows));

    treebeard::Dataset bound;
    if (resident) {
        Timer bind_timer;
        bound = session.bindDataset(batch.rows(), rows);
        timing.bindMs = bind_timer.elapsedSeconds() * 1e3;
    }

    auto run_once = [&] {
        if (resident)
            session.predictDataset(bound, predictions.data());
        else
            session.predict(batch.rows(), rows, predictions.data());
    };

    // Count quantization passes across a fixed call count, then time.
    constexpr int kCountedCalls = 10;
    runtime::RowQuantizationStats before =
        runtime::rowQuantizationStats();
    for (int call = 0; call < kCountedCalls; ++call)
        run_once();
    runtime::RowQuantizationStats after =
        runtime::rowQuantizationStats();
    timing.quantizePassesPerCall =
        (after.batchPasses - before.batchPasses) / kCountedCalls;

    for (int64_t r = 0; r < rows; ++r) {
        if (predictions[static_cast<size_t>(r)] !=
            expected[static_cast<size_t>(r)])
            timing.exactVsPredict = false;
    }

    double us = bench::timeMicrosPerRow(run_once, rows);
    timing.nsPerRow = us * 1e3;
    return timing;
}

} // namespace

int
main(int argc, char **argv)
{
    data::SyntheticModelSpec large;
    large.name = "large-deep";
    large.numFeatures = 50;
    large.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(500 * bench::benchScale()));
    large.maxDepth = 9;
    large.splitProbability = 0.93;
    large.trainingRows = 0;
    large.seed = 4242;
    large.thresholdDistribution = data::ThresholdDistribution::kMild;
    model::Forest forest = data::synthesizeForest(large);

    constexpr int64_t kRows = 2000;
    data::Dataset batch = bench::benchmarkBatch(large, kRows);

    std::printf("# Resident-dataset path, %lld trees depth %d tile 8 "
                "(%lld rows, repeated calls on one batch)\n",
                static_cast<long long>(large.numTrees), large.maxDepth,
                static_cast<long long>(kRows));
    bench::printCsvRow({"variant", "ns_per_row", "bind_ms",
                        "quantize_passes_per_call",
                        "exact_vs_predict"});

    std::vector<PathTiming> timings;
    for (hir::PackedPrecision precision :
         {hir::PackedPrecision::kI16, hir::PackedPrecision::kF32}) {
        hir::Schedule schedule = bench::optimizedSchedule(1);
        schedule.layout = hir::MemoryLayout::kPacked;
        schedule.packedPrecision = precision;
        Session session = compile(forest, schedule, {});
        const char *tag =
            precision == hir::PackedPrecision::kI16 ? "i16" : "f32";
        timings.push_back(timePath(std::string(tag) + "-predict",
                                   session, batch, kRows, false));
        timings.push_back(timePath(std::string(tag) + "-resident",
                                   session, batch, kRows, true));
    }

    for (const PathTiming &t : timings) {
        bench::printCsvRow(
            {t.name, bench::fmt(t.nsPerRow, 2), bench::fmt(t.bindMs, 3),
             std::to_string(t.quantizePassesPerCall),
             t.exactVsPredict ? "yes" : "no"});
    }

    double repeated = timings[0].nsPerRow; // i16-predict
    double resident = timings[1].nsPerRow; // i16-resident
    double speedup = repeated / resident;
    std::printf("# i16 resident vs repeated predict: %.2fx "
                "(%.1f%% faster; %lld vs %lld quantize passes/call)\n",
                speedup, (speedup - 1.0) * 100.0,
                static_cast<long long>(timings[1].quantizePassesPerCall),
                static_cast<long long>(
                    timings[0].quantizePassesPerCall));

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"resident_rows\",\n";
        os << "  \"model\": {\"trees\": " << large.numTrees
           << ", \"max_depth\": " << large.maxDepth
           << ", \"features\": " << large.numFeatures
           << ", \"tile_size\": 8},\n";
        os << "  \"rows\": " << kRows << ",\n";
        os << "  \"results\": [\n";
        for (size_t i = 0; i < timings.size(); ++i) {
            const PathTiming &t = timings[i];
            os << "    {\"variant\": \"" << t.name
               << "\", \"ns_per_row\": " << bench::fmt(t.nsPerRow, 2)
               << ", \"bind_ms\": " << bench::fmt(t.bindMs, 3)
               << ", \"quantize_passes_per_call\": "
               << t.quantizePassesPerCall << ", \"exact_vs_predict\": "
               << (t.exactVsPredict ? "true" : "false") << "}"
               << (i + 1 < timings.size() ? "," : "") << "\n";
        }
        os << "  ],\n";
        os << "  \"speedup_i16_resident_vs_predict\": "
           << bench::fmt(speedup, 4) << "\n";
        os << "}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
