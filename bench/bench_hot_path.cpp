/**
 * @file
 * Selective branchless hot-path emission: batch-axis crossover of the
 * straight-line register-resident region against the plain tiled walk.
 * The hot path pays off exactly when training statistics are skewed —
 * a leaf-biased model resolves most rows inside a few immediates-only
 * compares and never touches the node arrays — and does nothing for a
 * uniform model, whose best region covers no more mass than its size.
 * The bench times the pure coverage flip (identical base schedule,
 * only Schedule::hotPathCoverage changes) on both shapes across a
 * batch sweep on the source-JIT backend, then runs the auto-tuner
 * over a grid that includes the coverage axis and reports what it
 * picks per model — the crossover must be found, not encoded.
 *
 * When invoked with an argument, writes a JSON summary to that path
 * (BENCH_hot_path.json).
 */
#include <sstream>

#include "bench_common.h"
#include "common/json.h"
#include "treebeard/compiler.h"
#include "tuner/auto_tuner.h"

using namespace treebeard;

namespace {

/** One (model, batch) coverage-sweep measurement. */
struct SweepPoint
{
    std::string model;
    int64_t batch = 0;
    double coldRowsPerSec = 0.0;
    /** rows/sec per swept coverage, aligned with kCoverages. */
    std::vector<double> hotRowsPerSec;
    double bestCoverage = 0.0;
    double hotOverCold = 0.0;
};

const double kCoverages[] = {0.5, 0.8, 0.95};

/** Rows/sec for one compiled session on one batch. */
double
rowsPerSec(Session &session, const data::Dataset &batch, int64_t rows)
{
    std::vector<float> predictions(
        static_cast<size_t>(rows) *
        static_cast<size_t>(session.numClasses()));
    double seconds = bench::timeSeconds(
        [&] { session.predict(batch.rows(), rows, predictions.data()); });
    return static_cast<double>(rows) / seconds;
}

/**
 * The coverage-axis base point: tile-size-1 sparse serial walk, the
 * shape whose cold fallthrough the hot region shares.
 */
hir::Schedule
baseSchedule()
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    schedule.tileSize = 1;
    schedule.tiling = hir::TilingAlgorithm::kBasic;
    schedule.layout = hir::MemoryLayout::kSparse;
    schedule.padAndUnrollWalks = true;
    schedule.peelWalks = true;
    schedule.numThreads = 1;
    return schedule;
}

Session
compileJit(const model::Forest &forest, const hir::Schedule &schedule)
{
    CompilerOptions options;
    options.backend = Backend::kSourceJit;
    return compile(forest, schedule, options);
}

} // namespace

int
main(int argc, char **argv)
{
    // The two ends of the crossover: skewed features and thresholds
    // concentrate training hits on a few root-to-leaf paths (the
    // profile probability tiling exploits, Section III-B2), while the
    // uniform model spreads hits evenly so no small region can absorb
    // a large mass.
    data::SyntheticModelSpec biased;
    biased.name = "leaf-biased";
    biased.numFeatures = 50;
    biased.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(200 * bench::benchScale()));
    biased.maxDepth = 8;
    biased.splitProbability = 0.9;
    biased.trainingRows = 4000;
    biased.seed = 7171;
    biased.featureDistribution = data::FeatureDistribution::kSkewed;
    biased.thresholdDistribution = data::ThresholdDistribution::kSkewed;

    data::SyntheticModelSpec uniform = biased;
    uniform.name = "uniform";
    uniform.seed = 7272;
    uniform.featureDistribution = data::FeatureDistribution::kUniform;
    uniform.thresholdDistribution =
        data::ThresholdDistribution::kBalanced;

    const int64_t batches[] = {8, 64, 512, 2048};

    std::printf("# Hot-path coverage flip (tile 1 sparse, source JIT): "
                "branchless root region vs plain tiled walk\n");
    std::printf("# The leaf-biased model should win from batch >= 64 "
                "(straight-line compares on immediates resolve most "
                "rows without touching the node arrays); the uniform "
                "model should stay near 1x.\n");
    bench::printCsvRow({"model", "batch", "cold_rows_per_sec",
                        "hot50_rows_per_sec", "hot80_rows_per_sec",
                        "hot95_rows_per_sec", "best_coverage",
                        "hot_over_cold"});

    std::vector<SweepPoint> points;
    for (const data::SyntheticModelSpec &spec : {biased, uniform}) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        Session cold = compileJit(forest, baseSchedule());
        std::vector<Session> hot_sessions;
        for (double coverage : kCoverages) {
            hir::Schedule hot = baseSchedule();
            hot.hotPathCoverage = coverage;
            hot_sessions.push_back(compileJit(forest, hot));
        }

        for (int64_t batch : batches) {
            data::Dataset rows = bench::benchmarkBatch(spec, batch);
            SweepPoint point;
            point.model = spec.name;
            point.batch = batch;
            point.coldRowsPerSec = rowsPerSec(cold, rows, batch);
            double best = 0.0;
            for (size_t i = 0; i < hot_sessions.size(); ++i) {
                double rate =
                    rowsPerSec(hot_sessions[i], rows, batch);
                point.hotRowsPerSec.push_back(rate);
                if (rate > best) {
                    best = rate;
                    point.bestCoverage = kCoverages[i];
                }
            }
            point.hotOverCold = best / point.coldRowsPerSec;
            points.push_back(point);
            bench::printCsvRow(
                {point.model, std::to_string(batch),
                 bench::fmt(point.coldRowsPerSec, 0),
                 bench::fmt(point.hotRowsPerSec[0], 0),
                 bench::fmt(point.hotRowsPerSec[1], 0),
                 bench::fmt(point.hotRowsPerSec[2], 0),
                 bench::fmt(point.bestCoverage, 2),
                 bench::fmt(point.hotOverCold, 3)});
        }
    }

    // The tuner must find the crossover on its own: one grid with the
    // full coverage axis for both models, winner reported.
    std::printf("# Auto-tuner choice per model (grid includes "
                "hot-path coverages {0, 0.5, 0.8, 0.95}):\n");
    struct TunerChoice
    {
        std::string model;
        double coverage = 0.0;
        std::string schedule;
    };
    std::vector<TunerChoice> choices;
    for (const data::SyntheticModelSpec &spec : {biased, uniform}) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        int64_t sample_rows = 512;
        data::Dataset sample = bench::benchmarkBatch(spec, sample_rows);

        tuner::TunerOptions options;
        options.loopOrders = {hir::LoopOrder::kOneTreeAtATime};
        options.tileSizes = {1};
        options.tilings = {hir::TilingAlgorithm::kBasic};
        options.padAndUnroll = {true};
        options.interleaveFactors = {1};
        options.layouts = {hir::MemoryLayout::kSparse};
        options.traversals = {hir::TraversalKind::kNodeParallel};
        options.backends = {Backend::kSourceJit};
        options.repetitions = 3;
        tuner::TunerResult result = tuner::exploreSchedules(
            forest, sample.rows(), sample_rows, options);

        TunerChoice choice;
        choice.model = spec.name;
        choice.coverage = result.best.schedule.hotPathCoverage;
        choice.schedule = result.best.schedule.toString();
        choices.push_back(choice);
        std::printf("# %s -> coverage %.2f (%s)\n",
                    choice.model.c_str(), choice.coverage,
                    choice.schedule.c_str());
    }

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"hot_path\",\n";
        os << "  \"models\": {\"" << biased.name
           << "\": {\"trees\": " << biased.numTrees
           << ", \"max_depth\": " << biased.maxDepth << "}, \""
           << uniform.name << "\": {\"trees\": " << uniform.numTrees
           << ", \"max_depth\": " << uniform.maxDepth << "}},\n";
        os << "  \"coverages\": [0.5, 0.8, 0.95],\n";
        os << "  \"sweep\": [\n";
        for (size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &p = points[i];
            os << "    {\"model\": \"" << p.model
               << "\", \"batch\": " << p.batch
               << ", \"cold_rows_per_sec\": "
               << bench::fmt(p.coldRowsPerSec, 0)
               << ", \"hot_rows_per_sec\": ["
               << bench::fmt(p.hotRowsPerSec[0], 0) << ", "
               << bench::fmt(p.hotRowsPerSec[1], 0) << ", "
               << bench::fmt(p.hotRowsPerSec[2], 0) << "]"
               << ", \"best_coverage\": "
               << bench::fmt(p.bestCoverage, 2)
               << ", \"hot_over_cold\": "
               << bench::fmt(p.hotOverCold, 4) << "}"
               << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ],\n";
        os << "  \"tuner_choices\": [\n";
        for (size_t i = 0; i < choices.size(); ++i) {
            os << "    {\"model\": \"" << choices[i].model
               << "\", \"chosen_coverage\": "
               << bench::fmt(choices[i].coverage, 2)
               << ", \"schedule\": \"" << choices[i].schedule
               << "\"}" << (i + 1 < choices.size() ? "," : "")
               << "\n";
        }
        os << "  ]\n}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
