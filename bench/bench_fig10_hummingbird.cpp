/**
 * @file
 * Regenerates Figure 10: single-core comparison with Hummingbird at
 * batch size 1024. Bars are per-row inference times of the
 * Hummingbird-style tensor predictor, XGBoost-style v0.9 (one row at
 * a time), XGBoost-style v1.5 (one tree at a time) and Treebeard,
 * normalized to Hummingbird (lower is better).
 *
 * Expected shape: the one-tree-at-a-time v1.5 loop order beats the
 * v0.9 order; Treebeard is the fastest on every benchmark; the
 * Hummingbird tensor predictor (full-depth padded walks, no early
 * exit, no model specialization) is the slowest or near-slowest on
 * these deep-tree models (the paper reports Treebeard 5.4x faster,
 * geomean).
 */
#include "baselines/hummingbird_style.h"
#include "baselines/xgboost_style.h"
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    constexpr int64_t kBatch = 1024;
    std::printf("# Figure 10: comparison with Hummingbird-style "
                "tensor inference, batch %lld, single core\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow({"dataset", "hummingbird_us", "xgb_v09_us",
                        "xgb_v15_us", "treebeard_us",
                        "xgb_v09_norm", "xgb_v15_norm",
                        "treebeard_norm"});

    std::vector<double> tb_vs_hb;
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);

        baselines::HummingbirdStyle hummingbird(forest, {});
        baselines::XgBoostStyle xgb_v09(
            forest, baselines::XgBoostVersion::kV09);
        baselines::XgBoostStyle xgb_v15(
            forest, baselines::XgBoostVersion::kV15);
        Session treebeard_session =
            compile(forest, bench::optimizedSchedule(1));

        double hb_us = bench::timeMicrosPerRow(
            [&] {
                hummingbird.predict(batch.rows(), kBatch,
                                    predictions.data());
            },
            kBatch, 3);
        double v09_us = bench::timeMicrosPerRow(
            [&] {
                xgb_v09.predict(batch.rows(), kBatch,
                                predictions.data());
            },
            kBatch);
        double v15_us = bench::timeMicrosPerRow(
            [&] {
                xgb_v15.predict(batch.rows(), kBatch,
                                predictions.data());
            },
            kBatch);
        double tb_us = bench::timeMicrosPerRow(
            [&] {
                treebeard_session.predict(batch.rows(), kBatch,
                                          predictions.data());
            },
            kBatch);

        tb_vs_hb.push_back(hb_us / tb_us);
        bench::printCsvRow(
            {spec.name, bench::fmt(hb_us), bench::fmt(v09_us),
             bench::fmt(v15_us), bench::fmt(tb_us),
             bench::fmt(v09_us / hb_us, 3),
             bench::fmt(v15_us / hb_us, 3),
             bench::fmt(tb_us / hb_us, 3)});
    }
    bench::printCsvRow({"geomean_treebeard_speedup_vs_hb", "", "", "",
                        "", "", "",
                        bench::fmt(bench::geomean(tb_vs_hb), 2)});
    return 0;
}
