/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmark harness:
 * benchmark-model construction (the Table I suite), input batches,
 * timing helpers and CSV output formatting.
 *
 * Every bench binary regenerates one table or figure of the paper and
 * prints a CSV table to stdout, with '#'-prefixed commentary lines
 * explaining the expected shape of the results.
 */
#ifndef TREEBEARD_BENCH_BENCH_COMMON_H
#define TREEBEARD_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/timer.h"
#include "data/synthetic.h"
#include "hir/schedule.h"
#include "model/forest.h"

namespace treebeard::bench {

/**
 * Global benchmark scale factor from TREEBEARD_BENCH_SCALE in (0, 1]:
 * scales tree counts (and nothing else) to shorten full harness runs
 * on slow machines. Default 1 (paper-size models).
 */
inline double
benchScale()
{
    static double scale = [] {
        const char *env = std::getenv("TREEBEARD_BENCH_SCALE");
        if (env == nullptr)
            return 1.0;
        double value = std::atof(env);
        return (value > 0.0 && value <= 1.0) ? value : 1.0;
    }();
    return scale;
}

/** The benchmark suite scaled by benchScale(). */
inline std::vector<data::SyntheticModelSpec>
benchmarkSuite()
{
    std::vector<data::SyntheticModelSpec> suite =
        data::standardBenchmarkSuite();
    for (data::SyntheticModelSpec &spec : suite) {
        spec.numTrees = std::max<int64_t>(
            1, static_cast<int64_t>(spec.numTrees * benchScale()));
    }
    return suite;
}

/** Synthesize (and cache per process) one benchmark's forest. */
inline const model::Forest &
benchmarkForest(const data::SyntheticModelSpec &spec)
{
    static std::map<std::string, model::Forest> cache;
    auto it = cache.find(spec.name);
    if (it == cache.end()) {
        it = cache.emplace(spec.name, data::synthesizeForest(spec))
                 .first;
    }
    return it->second;
}

/** A deterministic input batch drawn from the spec's distribution. */
inline data::Dataset
benchmarkBatch(const data::SyntheticModelSpec &spec, int64_t rows)
{
    return data::generateFeatures(spec, rows, /*seed_offset=*/7);
}

/**
 * Best-of-N wall-clock seconds of @p body (after one warm-up call).
 */
inline double
timeSeconds(const std::function<void()> &body, int repetitions = 5)
{
    body(); // warm-up
    double best = 1e300;
    for (int rep = 0; rep < repetitions; ++rep) {
        Timer timer;
        body();
        best = std::min(best, timer.elapsedSeconds());
    }
    return best;
}

/** Microseconds per row for a batch-sized run. */
inline double
timeMicrosPerRow(const std::function<void()> &body, int64_t rows,
                 int repetitions = 5)
{
    return timeSeconds(body, repetitions) * 1e6 /
           static_cast<double>(rows);
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double value : values)
        log_sum += std::log(value);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** The configuration the paper reports as broadly best on Intel. */
inline hir::Schedule
optimizedSchedule(int32_t threads = 1)
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    schedule.tileSize = 8;
    schedule.tiling = hir::TilingAlgorithm::kHybrid;
    schedule.layout = hir::MemoryLayout::kSparse;
    schedule.padAndUnrollWalks = true;
    schedule.peelWalks = true;
    schedule.interleaveFactor = 8;
    schedule.numThreads = threads;
    // The paper's setting: no missing-value support; benchmark inputs
    // are NaN-free, so use the faster kernels.
    schedule.assumeNoMissingValues = true;
    return schedule;
}

/**
 * The unoptimized scalar baseline of Section VI: tile size 1, naive
 * one-row-at-a-time walks, no unrolling/peeling/interleaving.
 */
inline hir::Schedule
scalarBaselineSchedule()
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneRowAtATime;
    schedule.tileSize = 1;
    schedule.tiling = hir::TilingAlgorithm::kBasic;
    schedule.layout = hir::MemoryLayout::kSparse;
    schedule.padAndUnrollWalks = false;
    schedule.peelWalks = false;
    schedule.interleaveFactor = 1;
    schedule.numThreads = 1;
    schedule.assumeNoMissingValues = true;
    return schedule;
}

/** Print one CSV row from string cells. */
inline void
printCsvRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i)
        std::printf("%s%s", i ? "," : "", cells[i].c_str());
    std::printf("\n");
}

/** Format helper. */
inline std::string
fmt(double value, int precision = 3)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

} // namespace treebeard::bench

#endif // TREEBEARD_BENCH_BENCH_COMMON_H
