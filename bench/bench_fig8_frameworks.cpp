/**
 * @file
 * Regenerates Figure 8: Treebeard vs the XGBoost-style library
 * predictor and the Treelite-style if-else compiler at batch size
 * 1024, in (a) single-core and (b) multi-threaded settings.
 *
 * Expected shape: Treebeard is fastest on every benchmark; the paper
 * reports ~2.6x (geomean) over XGBoost and ~4.7x over Treelite on a
 * single core. The Treelite baseline here really is compiled if-else
 * native code (generated C++ through the system compiler); each model
 * is compiled once (time reported, excluded from inference timing).
 */
#include "baselines/treelite_style.h"
#include "baselines/xgboost_style.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    constexpr int64_t kBatch = 1024;
    std::printf("# Figure 8: Treebeard vs XGBoost-style and "
                "Treelite-style, batch %lld\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow(
        {"dataset", "threads", "xgboost_us_per_row",
         "treelite_us_per_row", "treebeard_us_per_row",
         "speedup_vs_xgboost", "speedup_vs_treelite",
         "treelite_compile_s"});

    struct Row
    {
        std::string cells[8];
    };
    std::vector<double> vs_xgb[2], vs_treelite[2];
    std::vector<Row> rows_out[2];

    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);
        int32_t nf = forest.numFeatures();

        // Compile the Treelite-style baseline once per model.
        baselines::TreeliteStyle treelite(forest, {});
        ThreadPool pool(16);

        for (int config = 0; config < 2; ++config) {
            int32_t threads = config == 0 ? 1 : 16;
            baselines::XgBoostStyle xgboost(
                forest, baselines::XgBoostVersion::kV15, threads);
            Session treebeard_session = compile(
                forest, bench::optimizedSchedule(threads));

            double xgb_us = bench::timeMicrosPerRow(
                [&] {
                    xgboost.predict(batch.rows(), kBatch,
                                    predictions.data());
                },
                kBatch);
            double treelite_us = bench::timeMicrosPerRow(
                [&] {
                    if (threads == 1) {
                        treelite.predict(batch.rows(), kBatch,
                                         predictions.data());
                    } else {
                        pool.parallelFor(
                            0, kBatch,
                            [&](int64_t begin, int64_t end) {
                                treelite.predict(
                                    batch.rows() + begin * nf,
                                    end - begin,
                                    predictions.data() + begin);
                            });
                    }
                },
                kBatch);
            double treebeard_us = bench::timeMicrosPerRow(
                [&] {
                    treebeard_session.predict(batch.rows(), kBatch,
                                              predictions.data());
                },
                kBatch);

            vs_xgb[config].push_back(xgb_us / treebeard_us);
            vs_treelite[config].push_back(treelite_us / treebeard_us);
            rows_out[config].push_back(
                {{spec.name, std::to_string(threads),
                  bench::fmt(xgb_us), bench::fmt(treelite_us),
                  bench::fmt(treebeard_us),
                  bench::fmt(xgb_us / treebeard_us, 2),
                  bench::fmt(treelite_us / treebeard_us, 2),
                  bench::fmt(treelite.compileSeconds(), 1)}});
        }
    }

    for (int config = 0; config < 2; ++config) {
        for (const Row &row : rows_out[config]) {
            bench::printCsvRow({row.cells[0], row.cells[1],
                                row.cells[2], row.cells[3],
                                row.cells[4], row.cells[5],
                                row.cells[6], row.cells[7]});
        }
        bench::printCsvRow(
            {"geomean", config == 0 ? "1" : "16", "", "", "",
             bench::fmt(bench::geomean(vs_xgb[config]), 2),
             bench::fmt(bench::geomean(vs_treelite[config]), 2), ""});
    }
    return 0;
}
