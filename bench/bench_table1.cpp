/**
 * @file
 * Regenerates Table I: the benchmark suite's structural parameters
 * and the number of leaf-biased trees at (alpha = 0.075, beta = 0.9).
 *
 * Expected shape vs the paper: #features / #trees / max depth match
 * Table I exactly (they are inputs to the synthesis); the leaf-biased
 * column should reproduce the paper's profile qualitatively —
 * airline-ohe nearly all biased, abalone/covtype partially, epsilon /
 * letter / year none or almost none.
 */
#include "bench_common.h"
#include "model/model_stats.h"

using namespace treebeard;

int
main()
{
    std::printf("# Table I: benchmark datasets and their parameters\n");
    std::printf("# (leaf-biased counted at alpha=0.075, beta=0.9)\n");
    bench::printCsvRow({"dataset", "features", "trees", "max_depth",
                        "leaf_biased", "leaf_biased_frac",
                        "total_nodes", "avg_leaf_depth"});
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        model::ForestStats stats =
            model::computeForestStats(forest, 0.075, 0.9);
        bench::printCsvRow(
            {spec.name, std::to_string(stats.numFeatures),
             std::to_string(stats.numTrees),
             std::to_string(stats.maxDepth),
             std::to_string(stats.leafBiasedTrees),
             bench::fmt(static_cast<double>(stats.leafBiasedTrees) /
                            stats.numTrees,
                        3),
             std::to_string(stats.totalNodes),
             bench::fmt(stats.averageLeafDepth, 2)});
    }
    return 0;
}
