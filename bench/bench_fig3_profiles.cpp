/**
 * @file
 * Regenerates Figure 3: leaf-coverage statistical profiles for
 * airline-ohe (3a) and epsilon (3b). Each curve answers: with a
 * fraction x of its (most probable) leaves, what fraction y of trees
 * covers a fraction f of the training data?
 *
 * Expected shape: for airline-ohe the f=0.9 curve rises almost
 * immediately (most trees need a tiny fraction of leaves — strongly
 * leaf-biased); for epsilon the curves rise only at large leaf
 * fractions (no leaf bias).
 */
#include "bench_common.h"
#include "model/model_stats.h"

using namespace treebeard;

namespace {

data::SyntheticModelSpec
suiteSpec(const std::string &name)
{
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown benchmark '", name, "'");
}

void
printCurves(const char *name)
{
    const model::Forest &forest = bench::benchmarkForest(suiteSpec(name));
    for (double coverage : {0.5, 0.8, 0.9, 0.95}) {
        std::vector<model::CoveragePoint> curve =
            model::leafCoverageCurve(forest, coverage);
        // Sample the curve at a handful of x positions.
        for (double x : {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
                         1.0}) {
            double y = 0.0;
            for (const model::CoveragePoint &point : curve) {
                if (point.leafFraction <= x + 1e-12)
                    y = point.treeFraction;
            }
            bench::printCsvRow({name, bench::fmt(coverage, 2),
                                bench::fmt(x, 2), bench::fmt(y, 3)});
        }
    }
}

} // namespace

int
main()
{
    std::printf("# Figure 3: leaf coverage profiles\n");
    std::printf("# y = fraction of trees covering f of training data "
                "with <= x of their leaves\n");
    bench::printCsvRow({"dataset", "f", "leaf_fraction",
                        "tree_fraction"});
    printCurves("airline-ohe");
    printCurves("epsilon");
    return 0;
}
