/**
 * @file
 * Regenerates Table II: the optimization space Treebeard explores,
 * and demonstrates the exploration itself (the artifact's --explore
 * workflow) on two benchmarks, reporting the best configuration found
 * per benchmark.
 *
 * Expected shape: the winning configurations use large tiles with
 * unrolling and interleaving; leaf-biased benchmarks pick hybrid
 * (probability-based) tiling.
 */
#include "bench_common.h"
#include "tuner/auto_tuner.h"

using namespace treebeard;

int
main()
{
    // Print the explored grid (Table II).
    std::printf("# Table II: space of optimizations explored\n");
    bench::printCsvRow({"optimization", "configurations"});
    bench::printCsvRow({"loop_order",
                        "one-tree-at-a-time | one-row-at-a-time"});
    bench::printCsvRow({"tile_size", "1 | 2 | 4 | 8"});
    bench::printCsvRow({"tiling_type", "basic | probability-based "
                                       "(hybrid gate)"});
    bench::printCsvRow({"tree_padding_and_unrolling", "yes | no"});
    bench::printCsvRow({"tree_walk_interleaving", "2 | 4 | 8"});
    bench::printCsvRow(
        {"alpha_beta", "(0.05 0.9) | (0.075 0.9) | (0.1 0.9)"});

    tuner::TunerOptions options;
    options.interleaveFactors = {1, 2, 4, 8};
    options.repetitions = 2;
    std::printf("# grid points per benchmark: %zu\n",
                tuner::enumerateSchedules(options).size());

    // Exploration demo on two contrasting benchmarks: one leaf-biased
    // (abalone) and one not (letter), at a reduced sample batch.
    constexpr int64_t kSampleRows = 256;
    bench::printCsvRow({"dataset", "best_schedule", "best_us_per_row",
                        "worst_us_per_row", "explored"});
    for (const std::string &name : {std::string("abalone"),
                                    std::string("airline")}) {
        data::SyntheticModelSpec spec;
        for (const data::SyntheticModelSpec &candidate :
             bench::benchmarkSuite()) {
            if (candidate.name == name)
                spec = candidate;
        }
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset sample = bench::benchmarkBatch(spec, kSampleRows);

        tuner::TunerResult result = tuner::exploreSchedules(
            forest, sample.rows(), kSampleRows, options);
        bench::printCsvRow(
            {name, result.best.schedule.toString(),
             bench::fmt(result.best.seconds * 1e6 / kSampleRows),
             bench::fmt(result.all.back().seconds * 1e6 / kSampleRows),
             std::to_string(result.all.size())});
    }
    return 0;
}
