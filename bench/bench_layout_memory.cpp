/**
 * @file
 * Regenerates the Section V-B memory-footprint numbers and the
 * layout latency shootout: per benchmark, the model size under the
 * scalar (tile size 1) representation and the tile-size-8 array,
 * sparse and packed representations; then, on a large deep model, the
 * inference latency of all three layouts under the paper's optimized
 * schedule.
 *
 * Expected shape (paper, tile size 8): the array representation is
 * ~8x the scalar one on average; the sparse representation is ~6.8x
 * (geomean) smaller than the array one and within tens of percent of
 * the scalar baseline. The packed representation stores the sparse
 * topology in fixed-stride cache-line records, trading some bytes
 * (power-of-two stride padding) for one-line tile visits; on deep
 * models it is the fastest layout.
 *
 * When invoked with an argument, also writes a JSON summary of the
 * latency shootout to that path (the run_layout_bench.sh driver
 * passes BENCH_packed_layout.json).
 */
#include <sstream>

#include "bench_common.h"
#include "common/json.h"
#include "lir/layout_builder.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

/** One layout's latency measurement on the large model. */
struct LayoutTiming
{
    std::string layout;
    double usPerRow = 0.0;
    int64_t footprintBytes = 0;
    bool feasible = false;
    std::string note;
};

LayoutTiming
timeLayout(const model::Forest &forest, hir::MemoryLayout layout,
           const data::Dataset &batch, int64_t rows)
{
    LayoutTiming timing;
    timing.layout = hir::memoryLayoutName(layout);
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.layout = layout;
    try {
        Session session = compile(forest, schedule);
        timing.footprintBytes =
            session.plan().buffers().footprintBytes();
        std::vector<float> predictions(static_cast<size_t>(rows));
        timing.usPerRow = bench::timeMicrosPerRow(
            [&] {
                session.predict(batch.rows(), rows,
                                predictions.data());
            },
            rows);
        timing.feasible = true;
    } catch (const Error &error) {
        // E.g. the array layout's total-tile cap on deep forests.
        timing.note = error.what();
    }
    return timing;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("# Section V-B: in-memory representation sizes "
                "(tile size 8)\n");
    bench::printCsvRow({"dataset", "scalar_bytes", "array_bytes",
                        "sparse_bytes", "packed_bytes",
                        "array_over_scalar", "array_over_sparse",
                        "sparse_over_scalar", "packed_over_sparse"});

    std::vector<double> array_vs_scalar, array_vs_sparse,
        sparse_vs_scalar, packed_vs_sparse;
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        int64_t scalar = lir::scalarRepresentationBytes(forest);

        hir::Schedule schedule = bench::optimizedSchedule(1);
        schedule.layout = hir::MemoryLayout::kSparse;
        hir::HirModule sparse_module(forest, schedule);
        sparse_module.runAllHirPasses();
        int64_t sparse =
            lir::buildSparseLayout(sparse_module).footprintBytes();
        // Packed repacks the same tiled trees into strided records.
        int64_t packed =
            lir::buildPackedLayout(sparse_module).footprintBytes();

        // The array layout of prob-tiled trees can blow past the tile
        // cap; size it with basic tiling (as the paper's array
        // variant effectively requires balanced-ish tiled trees).
        schedule.tiling = hir::TilingAlgorithm::kBasic;
        schedule.layout = hir::MemoryLayout::kArray;
        // The paper's array variant stores unpadded tiled trees;
        // padding would inflate every tree to its max leaf depth.
        schedule.padAndUnrollWalks = false;
        hir::HirModule array_module(forest, schedule);
        array_module.runAllHirPasses();
        int64_t array =
            lir::buildArrayLayout(array_module).footprintBytes();

        array_vs_scalar.push_back(static_cast<double>(array) / scalar);
        array_vs_sparse.push_back(static_cast<double>(array) / sparse);
        sparse_vs_scalar.push_back(static_cast<double>(sparse) /
                                   scalar);
        packed_vs_sparse.push_back(static_cast<double>(packed) /
                                   sparse);
        bench::printCsvRow(
            {spec.name, std::to_string(scalar), std::to_string(array),
             std::to_string(sparse), std::to_string(packed),
             bench::fmt(static_cast<double>(array) / scalar, 2),
             bench::fmt(static_cast<double>(array) / sparse, 2),
             bench::fmt(static_cast<double>(sparse) / scalar, 2),
             bench::fmt(static_cast<double>(packed) / sparse, 2)});
    }
    bench::printCsvRow({"geomean", "", "", "", "",
                        bench::fmt(bench::geomean(array_vs_scalar), 2),
                        bench::fmt(bench::geomean(array_vs_sparse), 2),
                        bench::fmt(bench::geomean(sparse_vs_scalar), 2),
                        bench::fmt(bench::geomean(packed_vs_sparse),
                                   2)});

    // ----------------------------------------------------------------
    // Layout latency shootout on a large deep model (500 trees, max
    // depth 9, tile size 8): the regime the packed layout targets —
    // a model-resident working set far beyond L2, where each tile
    // visit's memory traffic dominates.
    // ----------------------------------------------------------------
    data::SyntheticModelSpec large;
    large.name = "large-deep";
    large.numFeatures = 50;
    large.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(500 * bench::benchScale()));
    large.maxDepth = 9;
    large.splitProbability = 0.93;
    large.trainingRows = 0;
    large.seed = 4242;
    large.thresholdDistribution = data::ThresholdDistribution::kMild;
    model::Forest forest = data::synthesizeForest(large);

    constexpr int64_t kRows = 2000;
    data::Dataset batch = bench::benchmarkBatch(large, kRows);

    std::printf("\n# Layout latency, %lld trees depth %d tile 8 "
                "(optimized schedule, %lld rows)\n",
                static_cast<long long>(large.numTrees), large.maxDepth,
                static_cast<long long>(kRows));
    bench::printCsvRow(
        {"layout", "us_per_row", "footprint_bytes", "feasible"});

    std::vector<LayoutTiming> timings;
    for (hir::MemoryLayout layout : {hir::MemoryLayout::kSparse,
                                     hir::MemoryLayout::kPacked,
                                     hir::MemoryLayout::kArray}) {
        LayoutTiming timing = timeLayout(forest, layout, batch, kRows);
        timings.push_back(timing);
        bench::printCsvRow({timing.layout,
                            timing.feasible
                                ? bench::fmt(timing.usPerRow, 3)
                                : "n/a",
                            std::to_string(timing.footprintBytes),
                            timing.feasible ? "yes" : "no"});
    }

    const LayoutTiming *winner = nullptr;
    for (const LayoutTiming &timing : timings) {
        if (timing.feasible &&
            (winner == nullptr || timing.usPerRow < winner->usPerRow))
            winner = &timing;
    }
    if (winner != nullptr)
        std::printf("# fastest layout: %s\n", winner->layout.c_str());

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"layout_latency_shootout\",\n";
        os << "  \"model\": {\"trees\": " << large.numTrees
           << ", \"max_depth\": " << large.maxDepth
           << ", \"features\": " << large.numFeatures
           << ", \"tile_size\": 8},\n";
        os << "  \"rows\": " << kRows << ",\n";
        os << "  \"results\": [\n";
        for (size_t i = 0; i < timings.size(); ++i) {
            const LayoutTiming &t = timings[i];
            os << "    {\"layout\": \"" << t.layout
               << "\", \"feasible\": " << (t.feasible ? "true" : "false")
               << ", \"us_per_row\": "
               << (t.feasible ? bench::fmt(t.usPerRow, 4) : "null")
               << ", \"footprint_bytes\": " << t.footprintBytes << "}"
               << (i + 1 < timings.size() ? "," : "") << "\n";
        }
        os << "  ],\n";
        os << "  \"fastest_layout\": \""
           << (winner != nullptr ? winner->layout : "none") << "\"\n";
        os << "}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
