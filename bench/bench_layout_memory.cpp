/**
 * @file
 * Regenerates the Section V-B memory-footprint numbers: per
 * benchmark, the model size under the scalar (tile size 1)
 * representation, the tile-size-8 array-based representation and the
 * tile-size-8 sparse representation.
 *
 * Expected shape (paper, tile size 8): the array representation is
 * ~8x the scalar one on average; the sparse representation is ~6.8x
 * (geomean) smaller than the array one and within tens of percent of
 * the scalar baseline.
 */
#include "bench_common.h"
#include "lir/layout_builder.h"

using namespace treebeard;

int
main()
{
    std::printf("# Section V-B: in-memory representation sizes "
                "(tile size 8)\n");
    bench::printCsvRow({"dataset", "scalar_bytes", "array_bytes",
                        "sparse_bytes", "array_over_scalar",
                        "array_over_sparse", "sparse_over_scalar"});

    std::vector<double> array_vs_scalar, array_vs_sparse,
        sparse_vs_scalar;
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        int64_t scalar = lir::scalarRepresentationBytes(forest);

        hir::Schedule schedule = bench::optimizedSchedule(1);
        schedule.layout = hir::MemoryLayout::kSparse;
        hir::HirModule sparse_module(forest, schedule);
        sparse_module.runAllHirPasses();
        int64_t sparse =
            lir::buildSparseLayout(sparse_module).footprintBytes();

        // The array layout of prob-tiled trees can blow past the tile
        // cap; size it with basic tiling (as the paper's array
        // variant effectively requires balanced-ish tiled trees).
        schedule.tiling = hir::TilingAlgorithm::kBasic;
        schedule.layout = hir::MemoryLayout::kArray;
        // The paper's array variant stores unpadded tiled trees;
        // padding would inflate every tree to its max leaf depth.
        schedule.padAndUnrollWalks = false;
        hir::HirModule array_module(forest, schedule);
        array_module.runAllHirPasses();
        int64_t array =
            lir::buildArrayLayout(array_module).footprintBytes();

        array_vs_scalar.push_back(static_cast<double>(array) / scalar);
        array_vs_sparse.push_back(static_cast<double>(array) / sparse);
        sparse_vs_scalar.push_back(static_cast<double>(sparse) /
                                   scalar);
        bench::printCsvRow(
            {spec.name, std::to_string(scalar), std::to_string(array),
             std::to_string(sparse),
             bench::fmt(static_cast<double>(array) / scalar, 2),
             bench::fmt(static_cast<double>(array) / sparse, 2),
             bench::fmt(static_cast<double>(sparse) / scalar, 2)});
    }
    bench::printCsvRow({"geomean", "", "", "",
                        bench::fmt(bench::geomean(array_vs_scalar), 2),
                        bench::fmt(bench::geomean(array_vs_sparse), 2),
                        bench::fmt(bench::geomean(sparse_vs_scalar),
                                   2)});
    return 0;
}
