/**
 * @file
 * Serving-layer load sweep: dynamic batching vs unbatched dispatch.
 *
 * A closed-loop driver (every client keeps exactly one request in
 * flight, so offered load scales with the client count) issues
 * single-row requests — the online-serving traffic shape — against a
 * serve::Server in two modes over the same row-parallel schedule:
 * dynamic batching on, and unbatched dispatch (each request predicts
 * alone on its caller's thread). The sweep reports p50/p99 request
 * latency and total rows/sec per load level for two model shapes.
 *
 * Expected shape of the results: at one or two clients unbatched
 * dispatch wins — batching pays the deadline wait for nothing because
 * there is nobody to coalesce with. As clients grow the batcher
 * coalesces one request per client into each batch, the wide
 * row-parallel loop fills (the PR-6 crossover: lockstep walks win
 * from batch ~64, and already pay off well before), and batched
 * throughput pulls ahead of unbatched single-row dispatch, whose
 * per-row cost never improves with load.
 *
 * When invoked with an argument, writes a JSON summary to that path
 * (BENCH_serving.json).
 */
#include <atomic>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "common/json.h"
#include "serve/server.h"

using namespace treebeard;

namespace {

/** One (model, mode, clients) measurement. */
struct LoadPoint
{
    std::string model;
    bool batched = false;
    int64_t clients = 0;
    double rowsPerSec = 0.0;
    double p50Micros = 0.0;
    double p99Micros = 0.0;
    double avgBatchRows = 0.0;
    int64_t batches = 0;
    int64_t sizeFlushes = 0;
    int64_t deadlineFlushes = 0;
};

/**
 * The serving schedule: the row-parallel traversal point the tuner
 * picks for both bench shapes (see BENCH_row_parallel.json) — the
 * configuration whose batch-size sensitivity dynamic batching is
 * built to exploit.
 */
hir::Schedule
servingSchedule()
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    schedule.tileSize = 1;
    schedule.tiling = hir::TilingAlgorithm::kBasic;
    schedule.layout = hir::MemoryLayout::kSparse;
    schedule.traversal = hir::TraversalKind::kRowParallel;
    schedule.padAndUnrollWalks = true;
    schedule.peelWalks = true;
    schedule.interleaveFactor = 1;
    schedule.numThreads = 1;
    schedule.assumeNoMissingValues = true;
    return schedule;
}

/** Closed-loop run: @p clients threads, @p requests rows each. */
LoadPoint
runPoint(serve::Server &server, const serve::ModelHandle &handle,
         const data::Dataset &pool, int64_t pool_rows,
         int32_t num_features, int64_t clients, int64_t requests)
{
    serve::BatcherStats before = server.batcherStats(handle);
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    Timer wall;
    std::vector<std::thread> threads;
    for (int64_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<double> &lat =
                latencies[static_cast<size_t>(c)];
            lat.reserve(static_cast<size_t>(requests));
            for (int64_t r = 0; r < requests; ++r) {
                const float *row =
                    pool.rows() +
                    ((c * 131 + r) % pool_rows) * num_features;
                Timer timer;
                server.predict(handle, row, 1);
                lat.push_back(timer.elapsedMicros());
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    double wall_seconds = wall.elapsedSeconds();

    std::vector<double> all;
    for (const std::vector<double> &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());
    auto percentile = [&](double p) {
        return all[static_cast<size_t>(
            p * static_cast<double>(all.size() - 1))];
    };

    serve::BatcherStats after = server.batcherStats(handle);
    LoadPoint point;
    point.clients = clients;
    point.rowsPerSec =
        static_cast<double>(all.size()) / wall_seconds;
    point.p50Micros = percentile(0.50);
    point.p99Micros = percentile(0.99);
    point.batches = after.batchesExecuted - before.batchesExecuted;
    point.sizeFlushes = after.sizeFlushes - before.sizeFlushes;
    point.deadlineFlushes =
        after.deadlineFlushes - before.deadlineFlushes;
    point.avgBatchRows =
        point.batches > 0
            ? static_cast<double>(after.rowsExecuted -
                                  before.rowsExecuted) /
                  static_cast<double>(point.batches)
            : 0.0;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    // The two shapes of the traversal crossover bench: coalesced
    // batches speed both up, the divergence-heavy deep shape most.
    data::SyntheticModelSpec shallow;
    shallow.name = "shallow-wide";
    shallow.numFeatures = 50;
    shallow.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(600 * bench::benchScale()));
    shallow.maxDepth = 4;
    shallow.splitProbability = 0.97;
    shallow.trainingRows = 0;
    shallow.seed = 6161;
    shallow.thresholdDistribution = data::ThresholdDistribution::kMild;

    data::SyntheticModelSpec deep = shallow;
    deep.name = "deep-narrow";
    deep.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(100 * bench::benchScale()));
    deep.maxDepth = 9;
    deep.splitProbability = 0.93;
    deep.seed = 6262;

    const int64_t client_sweep[] = {1, 2, 4, 8, 16, 32, 64};
    const int64_t kHighLoad =
        client_sweep[std::size(client_sweep) - 1];
    const int64_t requests_per_client = std::max<int64_t>(
        40, static_cast<int64_t>(600 * bench::benchScale()));
    const int64_t pool_rows = 256;

    std::printf("# Closed-loop serving sweep: single-row requests, "
                "%lld per client, dynamic batching vs unbatched "
                "dispatch over one row-parallel schedule.\n",
                static_cast<long long>(requests_per_client));
    std::printf("# Unbatched should win the light loads (no deadline "
                "wait); batching should win throughput at high load "
                "by filling the wide row-parallel loop.\n");
    bench::printCsvRow({"model", "mode", "clients", "rows_per_sec",
                        "p50_us", "p99_us", "avg_batch_rows",
                        "batches", "size_flushes",
                        "deadline_flushes"});

    std::vector<LoadPoint> points;
    for (const data::SyntheticModelSpec &spec : {shallow, deep}) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset pool = bench::benchmarkBatch(spec, pool_rows);
        for (bool batched : {true, false}) {
            serve::ServerOptions options;
            options.registry.defaultSchedule = servingSchedule();
            options.batcher.enabled = batched;
            // Size target at the saturation batch size: once a batch
            // worth of clients is waiting, flush immediately instead
            // of sleeping out the deadline — saturated load runs
            // back-to-back size flushes, and only the underloaded
            // tail pays the deadline.
            options.batcher.maxBatchRows = 32;
            options.batcher.maxQueueDelayMicros = 100;
            serve::Server server(options);
            serve::ModelHandle handle = server.loadModel(forest);

            for (int64_t clients : client_sweep) {
                // One warm-up pass per load level, then the
                // measured run.
                runPoint(server, handle, pool, pool_rows,
                         forest.numFeatures(), clients,
                         std::max<int64_t>(8,
                                           requests_per_client / 8));
                LoadPoint point = runPoint(
                    server, handle, pool, pool_rows,
                    forest.numFeatures(), clients,
                    requests_per_client);
                point.model = spec.name;
                point.batched = batched;
                points.push_back(point);
                bench::printCsvRow(
                    {point.model,
                     batched ? "batched" : "unbatched",
                     std::to_string(clients),
                     bench::fmt(point.rowsPerSec, 0),
                     bench::fmt(point.p50Micros, 1),
                     bench::fmt(point.p99Micros, 1),
                     bench::fmt(point.avgBatchRows, 1),
                     std::to_string(point.batches),
                     std::to_string(point.sizeFlushes),
                     std::to_string(point.deadlineFlushes)});
            }
            server.shutdown();
        }
    }

    // Headline: batched over unbatched throughput at the highest
    // load level, per model.
    for (const data::SyntheticModelSpec &spec : {shallow, deep}) {
        double batched_best = 0.0, unbatched_best = 0.0;
        for (const LoadPoint &point : points) {
            if (point.model != spec.name ||
                point.clients != kHighLoad)
                continue;
            (point.batched ? batched_best : unbatched_best) =
                point.rowsPerSec;
        }
        std::printf("# %s at %lld clients: batching %.2fx unbatched "
                    "throughput\n",
                    spec.name.c_str(),
                    static_cast<long long>(kHighLoad),
                    batched_best / unbatched_best);
    }

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"serving\",\n";
        os << "  \"schedule\": \"" << servingSchedule().toString()
           << "\",\n";
        os << "  \"requests_per_client\": " << requests_per_client
           << ",\n";
        os << "  \"models\": {\"" << shallow.name
           << "\": {\"trees\": " << shallow.numTrees
           << ", \"max_depth\": " << shallow.maxDepth << "}, \""
           << deep.name << "\": {\"trees\": " << deep.numTrees
           << ", \"max_depth\": " << deep.maxDepth << "}},\n";
        os << "  \"sweep\": [\n";
        for (size_t i = 0; i < points.size(); ++i) {
            const LoadPoint &p = points[i];
            os << "    {\"model\": \"" << p.model << "\", \"mode\": \""
               << (p.batched ? "batched" : "unbatched")
               << "\", \"clients\": " << p.clients
               << ", \"rows_per_sec\": " << bench::fmt(p.rowsPerSec, 0)
               << ", \"p50_us\": " << bench::fmt(p.p50Micros, 1)
               << ", \"p99_us\": " << bench::fmt(p.p99Micros, 1)
               << ", \"avg_batch_rows\": "
               << bench::fmt(p.avgBatchRows, 1) << "}"
               << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
