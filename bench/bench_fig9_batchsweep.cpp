/**
 * @file
 * Regenerates Figure 9: single-core geomean speedup of Treebeard over
 * the XGBoost-style and Treelite-style baselines across batch sizes.
 *
 * To bound the harness's compile time, the Treelite comparison runs
 * on the four smaller-model benchmarks (airline, higgs, year,
 * abalone); the XGBoost comparison covers the full suite.
 *
 * Expected shape: the speedups are roughly flat across batch sizes
 * (the paper reports consistent improvements from batch 64 up to 4k+).
 */
#include "baselines/treelite_style.h"
#include "baselines/xgboost_style.h"
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    const std::vector<int64_t> batch_sizes{64, 256, 1024, 4096};
    const std::vector<std::string> treelite_set{"abalone", "airline",
                                                "higgs", "year"};

    std::printf("# Figure 9: geomean single-core speedup over batch "
                "sizes\n");
    bench::printCsvRow({"batch_size", "geomean_vs_xgboost",
                        "geomean_vs_treelite_subset"});

    // Build everything once.
    struct PerBenchmark
    {
        data::SyntheticModelSpec spec;
        std::unique_ptr<baselines::XgBoostStyle> xgboost;
        std::unique_ptr<baselines::TreeliteStyle> treelite;
        std::unique_ptr<Session> treebeard;
    };
    std::vector<PerBenchmark> setups;
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        PerBenchmark setup;
        setup.spec = spec;
        setup.xgboost = std::make_unique<baselines::XgBoostStyle>(
            forest, baselines::XgBoostVersion::kV15);
        bool in_treelite_set =
            std::find(treelite_set.begin(), treelite_set.end(),
                      spec.name) != treelite_set.end();
        if (in_treelite_set) {
            setup.treelite =
                std::make_unique<baselines::TreeliteStyle>(forest,
                                                           baselines::TreeliteOptions{});
        }
        setup.treebeard = std::make_unique<Session>(
            compile(forest, bench::optimizedSchedule(1)));
        setups.push_back(std::move(setup));
    }

    for (int64_t batch_size : batch_sizes) {
        std::vector<double> vs_xgb, vs_treelite;
        for (PerBenchmark &setup : setups) {
            data::Dataset batch =
                bench::benchmarkBatch(setup.spec, batch_size);
            std::vector<float> predictions(
                static_cast<size_t>(batch_size));

            double treebeard_us = bench::timeMicrosPerRow(
                [&] {
                    setup.treebeard->predict(batch.rows(), batch_size,
                                             predictions.data());
                },
                batch_size);
            double xgb_us = bench::timeMicrosPerRow(
                [&] {
                    setup.xgboost->predict(batch.rows(), batch_size,
                                           predictions.data());
                },
                batch_size);
            vs_xgb.push_back(xgb_us / treebeard_us);
            if (setup.treelite) {
                double treelite_us = bench::timeMicrosPerRow(
                    [&] {
                        setup.treelite->predict(batch.rows(),
                                                batch_size,
                                                predictions.data());
                    },
                    batch_size);
                vs_treelite.push_back(treelite_us / treebeard_us);
            }
        }
        bench::printCsvRow({std::to_string(batch_size),
                            bench::fmt(bench::geomean(vs_xgb), 2),
                            bench::fmt(bench::geomean(vs_treelite),
                                       2)});
    }
    return 0;
}
