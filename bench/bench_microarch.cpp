/**
 * @file
 * Regenerates the Section VI-E microarchitectural analysis for
 * abalone and higgs, using software event counters in place of Intel
 * VTune (unavailable without PMU access). Four Treebeard variants are
 * analyzed, mirroring the paper:
 *
 *   OneRow      scalar (tile 1), one row at a time
 *   OneTree     scalar (tile 1), one tree at a time
 *   Vector      tile size 8, one tree at a time
 *   Interleaved Vector + walk unrolling + 8-way interleaving
 *
 * Reported per-row: wall time, tile evaluations, node predicates
 * evaluated (speculative work), node predicates a plain binary walk
 * needs, feature loads (gather elements), model bytes touched, and
 * data-dependent walk branches. A Treelite-style row reports its
 * branch count (every node is a branch) and generated-code size, the
 * front-end-pressure proxies for the paper's I-cache findings.
 *
 * Expected shape: OneTree ~= OneRow in work but faster in time
 * (locality); Vector cuts time further while *increasing* evaluated
 * predicates (speculation) — the win comes from fewer, wider
 * operations; Interleaved removes dependency stalls (fastest, fewest
 * branches); Treelite executes one branch per node with a huge code
 * footprint.
 */
#include "baselines/treelite_style.h"
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

struct Variant
{
    const char *name;
    hir::Schedule schedule;
};

std::vector<Variant>
variants()
{
    hir::Schedule one_row = bench::scalarBaselineSchedule();

    hir::Schedule one_tree = one_row;
    one_tree.loopOrder = hir::LoopOrder::kOneTreeAtATime;

    hir::Schedule vector = bench::optimizedSchedule(1);
    vector.padAndUnrollWalks = false;
    vector.peelWalks = false;
    vector.interleaveFactor = 1;

    hir::Schedule interleaved = bench::optimizedSchedule(1);

    return {{"OneRow", one_row},
            {"OneTree", one_tree},
            {"Vector", vector},
            {"Interleaved", interleaved}};
}

} // namespace

int
main()
{
    constexpr int64_t kBatch = 1024;
    std::printf("# Section VI-E: microarchitectural proxies, batch "
                "%lld\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow({"dataset", "variant", "us_per_row",
                        "tiles_per_row", "predicates_per_row",
                        "needed_predicates_per_row",
                        "feature_loads_per_row", "model_kb_per_row",
                        "branches_per_row"});

    for (const std::string &name : {std::string("abalone"),
                                    std::string("higgs")}) {
        data::SyntheticModelSpec spec;
        for (const data::SyntheticModelSpec &candidate :
             bench::benchmarkSuite()) {
            if (candidate.name == name)
                spec = candidate;
        }
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);

        for (const Variant &variant : variants()) {
            Session session =
                compile(forest, variant.schedule);
            double us = bench::timeMicrosPerRow(
                [&] {
                    session.predict(batch.rows(), kBatch,
                                    predictions.data());
                },
                kBatch, 3);
            runtime::WalkCounters counters;
            session.predictInstrumented(batch.rows(), kBatch,
                                        predictions.data(), &counters);
            double rows = static_cast<double>(kBatch);
            bench::printCsvRow(
                {name, variant.name, bench::fmt(us),
                 bench::fmt(counters.tilesVisited / rows, 1),
                 bench::fmt(counters.nodePredicatesEvaluated / rows,
                            1),
                 bench::fmt(counters.scalarNodesNeeded / rows, 1),
                 bench::fmt(counters.featureGathers / rows, 1),
                 bench::fmt(counters.modelBytesTouched / rows / 1024.0,
                            2),
                 bench::fmt(counters.walkBranches / rows, 1)});
        }

        // Treelite-style: the front-end pressure proxies.
        std::string source =
            baselines::TreeliteStyle::generateSource(forest);
        runtime::WalkCounters scalar_counters;
        Session scalar = compile(
            forest, bench::scalarBaselineSchedule());
        scalar.predictInstrumented(batch.rows(), kBatch,
                                   predictions.data(),
                                   &scalar_counters);
        // In if-else code every visited node is one branch; code size
        // scales with total nodes.
        bench::printCsvRow(
            {name, "TreeliteStyle", "-",
             "-", "-",
             bench::fmt(scalar_counters.scalarNodesNeeded /
                            static_cast<double>(kBatch),
                        1),
             "-",
             bench::fmt(static_cast<double>(source.size()) / 1024.0,
                        1),
             bench::fmt(scalar_counters.scalarNodesNeeded /
                            static_cast<double>(kBatch),
                        1)});
    }
    return 0;
}
