/**
 * @file
 * Wire-transport overhead sweep: the same closed-loop single-row load
 * driven two ways against one serve::Server — direct in-process
 * predict() calls, and loopback TCP through the length-prefixed wire
 * protocol (one serve::Client per driver thread). The difference
 * isolates what the socket adds per request: framing, two copies and
 * a loopback round trip, on top of identical batching and execution.
 *
 * Expected shape: wire p50 sits a fixed few-tens-of-microseconds
 * above in-process at light load (the loopback round trip), while
 * throughput at saturation converges — the batcher coalesces both
 * traffic sources the same way, so the socket tax amortizes across
 * the batch and the execution dominates.
 *
 * When invoked with an argument, writes a JSON summary to that path
 * (BENCH_transport.json).
 */
#include <functional>
#include <memory>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "common/json.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"

using namespace treebeard;

namespace {

struct LoadPoint
{
    std::string mode;
    int64_t clients = 0;
    double rowsPerSec = 0.0;
    double p50Micros = 0.0;
    double p99Micros = 0.0;
};

/** The row-parallel serving schedule (see bench_serving.cpp). */
hir::Schedule
servingSchedule()
{
    hir::Schedule schedule;
    schedule.loopOrder = hir::LoopOrder::kOneTreeAtATime;
    schedule.tileSize = 1;
    schedule.tiling = hir::TilingAlgorithm::kBasic;
    schedule.layout = hir::MemoryLayout::kSparse;
    schedule.traversal = hir::TraversalKind::kRowParallel;
    schedule.interleaveFactor = 1;
    schedule.numThreads = 1;
    schedule.assumeNoMissingValues = true;
    return schedule;
}

/**
 * Closed-loop drive of @p predict_one (client index, row pointer);
 * the caller chooses whether that lands in-process or on a socket.
 */
LoadPoint
runPoint(const data::Dataset &pool, int64_t pool_rows,
         int32_t num_features, int64_t clients, int64_t requests,
         const std::function<void(int64_t, const float *)>
             &predict_one)
{
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    Timer wall;
    std::vector<std::thread> threads;
    for (int64_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<double> &lat =
                latencies[static_cast<size_t>(c)];
            lat.reserve(static_cast<size_t>(requests));
            for (int64_t r = 0; r < requests; ++r) {
                const float *row =
                    pool.rows() +
                    ((c * 131 + r) % pool_rows) * num_features;
                Timer timer;
                predict_one(c, row);
                lat.push_back(timer.elapsedMicros());
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    double wall_seconds = wall.elapsedSeconds();

    std::vector<double> all;
    for (const std::vector<double> &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());
    auto percentile = [&](double p) {
        return all[static_cast<size_t>(
            p * static_cast<double>(all.size() - 1))];
    };
    LoadPoint point;
    point.clients = clients;
    point.rowsPerSec =
        static_cast<double>(all.size()) / wall_seconds;
    point.p50Micros = percentile(0.50);
    point.p99Micros = percentile(0.99);
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    data::SyntheticModelSpec spec;
    spec.name = "shallow-wide";
    spec.numFeatures = 50;
    spec.numTrees = std::max<int64_t>(
        1, static_cast<int64_t>(600 * bench::benchScale()));
    spec.maxDepth = 4;
    spec.splitProbability = 0.97;
    spec.trainingRows = 0;
    spec.seed = 6161;
    spec.thresholdDistribution = data::ThresholdDistribution::kMild;

    const int64_t client_sweep[] = {1, 2, 4, 8, 16};
    const int64_t requests_per_client = std::max<int64_t>(
        30, static_cast<int64_t>(400 * bench::benchScale()));
    const int64_t pool_rows = 256;

    const model::Forest &forest = bench::benchmarkForest(spec);
    data::Dataset pool = bench::benchmarkBatch(spec, pool_rows);

    serve::ServerOptions options;
    options.registry.defaultSchedule = servingSchedule();
    options.batcher.maxBatchRows = 32;
    options.batcher.maxQueueDelayMicros = 100;
    serve::Server server(options);
    serve::ModelHandle handle = server.loadModel(forest);
    serve::WireServer wire_server(server);

    std::printf("# Wire-transport overhead: identical closed-loop "
                "single-row load, in-process vs loopback TCP, "
                "%lld requests per client.\n",
                static_cast<long long>(requests_per_client));
    bench::printCsvRow({"mode", "clients", "rows_per_sec", "p50_us",
                        "p99_us"});

    std::vector<LoadPoint> points;
    for (int64_t clients : client_sweep) {
        auto in_process = [&](int64_t, const float *row) {
            server.predict(handle, row, 1);
        };
        // One warm-up pass per load level, then the measured run.
        runPoint(pool, pool_rows, forest.numFeatures(), clients,
                 std::max<int64_t>(8, requests_per_client / 8),
                 in_process);
        LoadPoint point = runPoint(pool, pool_rows,
                                   forest.numFeatures(), clients,
                                   requests_per_client, in_process);
        point.mode = "in-process";
        points.push_back(point);
        bench::printCsvRow({point.mode, std::to_string(clients),
                            bench::fmt(point.rowsPerSec, 0),
                            bench::fmt(point.p50Micros, 1),
                            bench::fmt(point.p99Micros, 1)});

        // Wire mode: one connected Client per driver thread, reused
        // across that thread's whole request stream.
        std::vector<std::unique_ptr<serve::Client>> wire_clients;
        for (int64_t c = 0; c < clients; ++c) {
            wire_clients.push_back(std::make_unique<serve::Client>(
                "127.0.0.1", wire_server.port()));
        }
        auto over_wire = [&](int64_t c, const float *row) {
            wire_clients[static_cast<size_t>(c)]->predict(
                handle, row, 1, forest.numFeatures());
        };
        runPoint(pool, pool_rows, forest.numFeatures(), clients,
                 std::max<int64_t>(8, requests_per_client / 8),
                 over_wire);
        point = runPoint(pool, pool_rows, forest.numFeatures(),
                         clients, requests_per_client, over_wire);
        point.mode = "wire";
        points.push_back(point);
        bench::printCsvRow({point.mode, std::to_string(clients),
                            bench::fmt(point.rowsPerSec, 0),
                            bench::fmt(point.p50Micros, 1),
                            bench::fmt(point.p99Micros, 1)});
    }

    // Headline: the loopback tax at the lightest and heaviest loads.
    for (int64_t clients : {client_sweep[0],
                            client_sweep[std::size(client_sweep) - 1]}) {
        double in_process_p50 = 0.0, wire_p50 = 0.0;
        for (const LoadPoint &point : points) {
            if (point.clients != clients)
                continue;
            (point.mode == "wire" ? wire_p50 : in_process_p50) =
                point.p50Micros;
        }
        std::printf("# %lld client(s): wire adds %.1f us to p50 "
                    "(%.1f -> %.1f)\n",
                    static_cast<long long>(clients),
                    wire_p50 - in_process_p50, in_process_p50,
                    wire_p50);
    }

    wire_server.stop();
    server.shutdown();

    if (argc > 1) {
        std::ostringstream os;
        os << "{\n  \"benchmark\": \"transport\",\n";
        os << "  \"schedule\": \"" << servingSchedule().toString()
           << "\",\n";
        os << "  \"requests_per_client\": " << requests_per_client
           << ",\n";
        os << "  \"model\": {\"trees\": " << spec.numTrees
           << ", \"max_depth\": " << spec.maxDepth << "},\n";
        os << "  \"sweep\": [\n";
        for (size_t i = 0; i < points.size(); ++i) {
            const LoadPoint &p = points[i];
            os << "    {\"mode\": \"" << p.mode
               << "\", \"clients\": " << p.clients
               << ", \"rows_per_sec\": " << bench::fmt(p.rowsPerSec, 0)
               << ", \"p50_us\": " << bench::fmt(p.p50Micros, 1)
               << ", \"p99_us\": " << bench::fmt(p.p99Micros, 1)
               << "}" << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        writeStringToFile(argv[1], os.str());
        std::printf("# wrote %s\n", argv[1]);
    }
    return 0;
}
