/**
 * @file
 * Regenerates Figure 11: the impact of individual Treebeard
 * optimizations at batch size 1024.
 *
 *  (a) Tiling: basic tiling vs hybrid (probability-based tiling on
 *      leaf-biased trees), with mid-level optimizations disabled —
 *      speedups over the scalar baseline.
 *  (b) Walk unrolling + interleaving added on top of tiling.
 *
 * Expected shape: tiling alone speeds up every benchmark (paper:
 * 1.3-2.5x); probability-based tiling adds on leaf-biased benchmarks
 * (airline-ohe most of all) and changes nothing for epsilon/letter/
 * year (no leaf-biased trees); unrolling + interleaving add further
 * gains on top (paper: average 1.5x -> 2.4x).
 */
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    constexpr int64_t kBatch = 1024;

    std::printf("# Figure 11a/11b: impact of individual "
                "optimizations, batch %lld\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow({"dataset", "scalar_us", "basic_tiling_speedup",
                        "hybrid_tiling_speedup",
                        "plus_unroll_speedup",
                        "plus_unroll_interleave_speedup"});

    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);

        auto time_schedule = [&](const hir::Schedule &schedule) {
            Session session = compile(forest, schedule);
            return bench::timeMicrosPerRow(
                [&] {
                    session.predict(batch.rows(), kBatch,
                                    predictions.data());
                },
                kBatch);
        };

        double scalar_us =
            time_schedule(bench::scalarBaselineSchedule());

        // Figure 11a configurations: tiling + low-level lowering only
        // (no unrolling, no interleaving, no peeling).
        hir::Schedule tiling_only = bench::optimizedSchedule(1);
        tiling_only.padAndUnrollWalks = false;
        tiling_only.peelWalks = false;
        tiling_only.interleaveFactor = 1;

        tiling_only.tiling = hir::TilingAlgorithm::kBasic;
        double basic_us = time_schedule(tiling_only);
        tiling_only.tiling = hir::TilingAlgorithm::kHybrid;
        double hybrid_us = time_schedule(tiling_only);

        // Figure 11b: add unrolling/peeling, then interleaving.
        hir::Schedule with_unroll = tiling_only;
        with_unroll.padAndUnrollWalks = true;
        with_unroll.peelWalks = true;
        double unroll_us = time_schedule(with_unroll);

        hir::Schedule with_interleave = with_unroll;
        with_interleave.interleaveFactor = 8;
        double interleave_us = time_schedule(with_interleave);

        bench::printCsvRow({spec.name, bench::fmt(scalar_us),
                            bench::fmt(scalar_us / basic_us, 2),
                            bench::fmt(scalar_us / hybrid_us, 2),
                            bench::fmt(scalar_us / unroll_us, 2),
                            bench::fmt(scalar_us / interleave_us, 2)});
    }
    return 0;
}
