/**
 * @file
 * Regenerates Figure 7: speedup of Treebeard-optimized code over the
 * unoptimized scalar baseline at batch size 1024 — (a) single core,
 * (b) "16-core" parallel configuration. Per-row inference times are
 * printed like the numbers above the paper's bars.
 *
 * Expected shape: optimized code is consistently faster than the
 * scalar baseline on every benchmark (the paper reports 1.9-3.5x,
 * geomean 2.45x on Intel). NOTE: this host exposes a single hardware
 * core, so the parallel column measures the threaded code path's
 * overhead rather than real scaling; EXPERIMENTS.md discusses this
 * substrate limitation.
 */
#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    constexpr int64_t kBatch = 1024;
    std::printf("# Figure 7: Treebeard optimized vs scalar baseline, "
                "batch %lld\n",
                static_cast<long long>(kBatch));
    bench::printCsvRow({"dataset", "scalar_us_per_row",
                        "optimized_us_per_row", "speedup_1core",
                        "parallel16_us_per_row", "speedup_parallel16"});

    std::vector<double> single_speedups, parallel_speedups;
    for (const data::SyntheticModelSpec &spec : bench::benchmarkSuite()) {
        const model::Forest &forest = bench::benchmarkForest(spec);
        data::Dataset batch = bench::benchmarkBatch(spec, kBatch);
        std::vector<float> predictions(kBatch);

        Session scalar =
            compile(forest, bench::scalarBaselineSchedule());
        Session optimized =
            compile(forest, bench::optimizedSchedule(1));
        Session parallel =
            compile(forest, bench::optimizedSchedule(16));

        double scalar_us = bench::timeMicrosPerRow(
            [&] {
                scalar.predict(batch.rows(), kBatch,
                               predictions.data());
            },
            kBatch);
        double optimized_us = bench::timeMicrosPerRow(
            [&] {
                optimized.predict(batch.rows(), kBatch,
                                  predictions.data());
            },
            kBatch);
        double parallel_us = bench::timeMicrosPerRow(
            [&] {
                parallel.predict(batch.rows(), kBatch,
                                 predictions.data());
            },
            kBatch);

        single_speedups.push_back(scalar_us / optimized_us);
        parallel_speedups.push_back(scalar_us / parallel_us);
        bench::printCsvRow({spec.name, bench::fmt(scalar_us),
                            bench::fmt(optimized_us),
                            bench::fmt(scalar_us / optimized_us, 2),
                            bench::fmt(parallel_us),
                            bench::fmt(scalar_us / parallel_us, 2)});
    }
    bench::printCsvRow({"geomean", "", "",
                        bench::fmt(bench::geomean(single_speedups), 2),
                        "",
                        bench::fmt(bench::geomean(parallel_speedups),
                                   2)});
    return 0;
}
