/**
 * @file
 * Google-benchmark microbenchmarks of the compiled inference kernels:
 * per-(tile size, layout, interleave) throughput on one mid-size
 * model. These are the building blocks behind the figure-level
 * benches; useful for spotting kernel-level regressions.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

constexpr int64_t kBatch = 512;

const model::Forest &
kernelForest()
{
    static model::Forest forest = [] {
        data::SyntheticModelSpec spec;
        spec.name = "kernel-bench";
        spec.numFeatures = 20;
        spec.numTrees = 200;
        spec.maxDepth = 8;
        spec.trainingRows = 1000;
        spec.seed = 4711;
        return data::synthesizeForest(spec);
    }();
    return forest;
}

const data::Dataset &
kernelBatch()
{
    static data::Dataset batch = [] {
        data::SyntheticModelSpec spec;
        spec.name = "kernel-bench";
        spec.numFeatures = 20;
        spec.seed = 4711;
        return data::generateFeatures(spec, kBatch);
    }();
    return batch;
}

void
runSchedule(benchmark::State &state, const hir::Schedule &schedule)
{
    Session session = compile(kernelForest(), schedule);
    std::vector<float> predictions(kBatch);
    for (auto _ : state) {
        session.predict(kernelBatch().rows(), kBatch,
                        predictions.data());
        benchmark::DoNotOptimize(predictions.data());
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_TileSizeSweep(benchmark::State &state)
{
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.tileSize = static_cast<int32_t>(state.range(0));
    schedule.interleaveFactor = 1;
    runSchedule(state, schedule);
}
BENCHMARK(BM_TileSizeSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_InterleaveSweep(benchmark::State &state)
{
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.interleaveFactor = static_cast<int32_t>(state.range(0));
    runSchedule(state, schedule);
}
BENCHMARK(BM_InterleaveSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_LayoutSparse(benchmark::State &state)
{
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.layout = hir::MemoryLayout::kSparse;
    runSchedule(state, schedule);
}
BENCHMARK(BM_LayoutSparse);

void
BM_LayoutArray(benchmark::State &state)
{
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.layout = hir::MemoryLayout::kArray;
    schedule.tiling = hir::TilingAlgorithm::kBasic;
    runSchedule(state, schedule);
}
BENCHMARK(BM_LayoutArray);

void
BM_LoopOrderOneRow(benchmark::State &state)
{
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.loopOrder = hir::LoopOrder::kOneRowAtATime;
    runSchedule(state, schedule);
}
BENCHMARK(BM_LoopOrderOneRow);

void
BM_UnrollOnOff(benchmark::State &state)
{
    hir::Schedule schedule = bench::optimizedSchedule(1);
    schedule.padAndUnrollWalks = state.range(0) != 0;
    schedule.peelWalks = schedule.padAndUnrollWalks;
    runSchedule(state, schedule);
}
BENCHMARK(BM_UnrollOnOff)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
