file(REMOVE_RECURSE
  "CMakeFiles/emit_source.dir/emit_source.cpp.o"
  "CMakeFiles/emit_source.dir/emit_source.cpp.o.d"
  "emit_source"
  "emit_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
