# Empty dependencies file for emit_source.
# This may be replaced when dependencies are built.
