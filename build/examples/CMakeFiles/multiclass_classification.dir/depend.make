# Empty dependencies file for multiclass_classification.
# This may be replaced when dependencies are built.
