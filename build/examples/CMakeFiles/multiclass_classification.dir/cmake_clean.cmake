file(REMOVE_RECURSE
  "CMakeFiles/multiclass_classification.dir/multiclass_classification.cpp.o"
  "CMakeFiles/multiclass_classification.dir/multiclass_classification.cpp.o.d"
  "multiclass_classification"
  "multiclass_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclass_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
