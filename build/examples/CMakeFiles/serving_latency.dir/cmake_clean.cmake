file(REMOVE_RECURSE
  "CMakeFiles/serving_latency.dir/serving_latency.cpp.o"
  "CMakeFiles/serving_latency.dir/serving_latency.cpp.o.d"
  "serving_latency"
  "serving_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
