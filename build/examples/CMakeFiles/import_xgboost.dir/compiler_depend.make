# Empty compiler generated dependencies file for import_xgboost.
# This may be replaced when dependencies are built.
