file(REMOVE_RECURSE
  "CMakeFiles/import_xgboost.dir/import_xgboost.cpp.o"
  "CMakeFiles/import_xgboost.dir/import_xgboost.cpp.o.d"
  "import_xgboost"
  "import_xgboost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/import_xgboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
