file(REMOVE_RECURSE
  "CMakeFiles/bench_microarch.dir/bench_microarch.cpp.o"
  "CMakeFiles/bench_microarch.dir/bench_microarch.cpp.o.d"
  "bench_microarch"
  "bench_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
