file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_scaling.dir/bench_fig13_scaling.cpp.o"
  "CMakeFiles/bench_fig13_scaling.dir/bench_fig13_scaling.cpp.o.d"
  "bench_fig13_scaling"
  "bench_fig13_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
