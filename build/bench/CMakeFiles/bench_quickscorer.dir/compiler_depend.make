# Empty compiler generated dependencies file for bench_quickscorer.
# This may be replaced when dependencies are built.
