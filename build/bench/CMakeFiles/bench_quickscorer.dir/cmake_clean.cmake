file(REMOVE_RECURSE
  "CMakeFiles/bench_quickscorer.dir/bench_quickscorer.cpp.o"
  "CMakeFiles/bench_quickscorer.dir/bench_quickscorer.cpp.o.d"
  "bench_quickscorer"
  "bench_quickscorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quickscorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
