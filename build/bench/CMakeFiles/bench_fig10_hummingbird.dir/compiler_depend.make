# Empty compiler generated dependencies file for bench_fig10_hummingbird.
# This may be replaced when dependencies are built.
