file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hummingbird.dir/bench_fig10_hummingbird.cpp.o"
  "CMakeFiles/bench_fig10_hummingbird.dir/bench_fig10_hummingbird.cpp.o.d"
  "bench_fig10_hummingbird"
  "bench_fig10_hummingbird.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hummingbird.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
