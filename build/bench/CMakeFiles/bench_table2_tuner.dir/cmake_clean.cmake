file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tuner.dir/bench_table2_tuner.cpp.o"
  "CMakeFiles/bench_table2_tuner.dir/bench_table2_tuner.cpp.o.d"
  "bench_table2_tuner"
  "bench_table2_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
