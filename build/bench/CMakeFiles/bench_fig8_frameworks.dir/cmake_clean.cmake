file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_frameworks.dir/bench_fig8_frameworks.cpp.o"
  "CMakeFiles/bench_fig8_frameworks.dir/bench_fig8_frameworks.cpp.o.d"
  "bench_fig8_frameworks"
  "bench_fig8_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
