file(REMOVE_RECURSE
  "CMakeFiles/bench_layout_memory.dir/bench_layout_memory.cpp.o"
  "CMakeFiles/bench_layout_memory.dir/bench_layout_memory.cpp.o.d"
  "bench_layout_memory"
  "bench_layout_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
