
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_layout_memory.cpp" "bench/CMakeFiles/bench_layout_memory.dir/bench_layout_memory.cpp.o" "gcc" "bench/CMakeFiles/bench_layout_memory.dir/bench_layout_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/treebeard/CMakeFiles/treebeard_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/treebeard_data.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/treebeard_train.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/treebeard_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/treebeard_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/treebeard_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/treebeard_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/treebeard_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/treebeard_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/treebeard_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/treebeard_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/treebeard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
