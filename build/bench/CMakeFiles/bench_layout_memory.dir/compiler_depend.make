# Empty compiler generated dependencies file for bench_layout_memory.
# This may be replaced when dependencies are built.
