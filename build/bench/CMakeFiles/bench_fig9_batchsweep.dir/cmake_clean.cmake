file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_batchsweep.dir/bench_fig9_batchsweep.cpp.o"
  "CMakeFiles/bench_fig9_batchsweep.dir/bench_fig9_batchsweep.cpp.o.d"
  "bench_fig9_batchsweep"
  "bench_fig9_batchsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_batchsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
