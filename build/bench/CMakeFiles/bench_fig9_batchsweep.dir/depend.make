# Empty dependencies file for bench_fig9_batchsweep.
# This may be replaced when dependencies are built.
