# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tile_shape_test[1]_include.cmake")
include("/root/repo/build/tests/tiling_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_correctness_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/hir_mir_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/quickscorer_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/walkers_test[1]_include.cmake")
include("/root/repo/build/tests/multiclass_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/nan_support_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
