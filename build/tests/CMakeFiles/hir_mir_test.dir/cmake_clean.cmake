file(REMOVE_RECURSE
  "CMakeFiles/hir_mir_test.dir/hir_mir_test.cpp.o"
  "CMakeFiles/hir_mir_test.dir/hir_mir_test.cpp.o.d"
  "hir_mir_test"
  "hir_mir_test.pdb"
  "hir_mir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hir_mir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
