# Empty dependencies file for hir_mir_test.
# This may be replaced when dependencies are built.
