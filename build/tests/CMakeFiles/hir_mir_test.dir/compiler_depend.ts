# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hir_mir_test.
