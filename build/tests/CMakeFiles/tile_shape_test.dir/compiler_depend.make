# Empty compiler generated dependencies file for tile_shape_test.
# This may be replaced when dependencies are built.
