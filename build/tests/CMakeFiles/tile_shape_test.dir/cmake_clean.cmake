file(REMOVE_RECURSE
  "CMakeFiles/tile_shape_test.dir/tile_shape_test.cpp.o"
  "CMakeFiles/tile_shape_test.dir/tile_shape_test.cpp.o.d"
  "tile_shape_test"
  "tile_shape_test.pdb"
  "tile_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
