# Empty compiler generated dependencies file for quickscorer_test.
# This may be replaced when dependencies are built.
