file(REMOVE_RECURSE
  "CMakeFiles/quickscorer_test.dir/quickscorer_test.cpp.o"
  "CMakeFiles/quickscorer_test.dir/quickscorer_test.cpp.o.d"
  "quickscorer_test"
  "quickscorer_test.pdb"
  "quickscorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quickscorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
