file(REMOVE_RECURSE
  "CMakeFiles/compiler_correctness_test.dir/compiler_correctness_test.cpp.o"
  "CMakeFiles/compiler_correctness_test.dir/compiler_correctness_test.cpp.o.d"
  "compiler_correctness_test"
  "compiler_correctness_test.pdb"
  "compiler_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
