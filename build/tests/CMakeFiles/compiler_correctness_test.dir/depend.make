# Empty dependencies file for compiler_correctness_test.
# This may be replaced when dependencies are built.
