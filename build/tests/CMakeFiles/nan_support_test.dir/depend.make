# Empty dependencies file for nan_support_test.
# This may be replaced when dependencies are built.
