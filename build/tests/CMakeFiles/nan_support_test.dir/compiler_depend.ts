# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nan_support_test.
