file(REMOVE_RECURSE
  "CMakeFiles/nan_support_test.dir/nan_support_test.cpp.o"
  "CMakeFiles/nan_support_test.dir/nan_support_test.cpp.o.d"
  "nan_support_test"
  "nan_support_test.pdb"
  "nan_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nan_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
