file(REMOVE_RECURSE
  "CMakeFiles/walkers_test.dir/walkers_test.cpp.o"
  "CMakeFiles/walkers_test.dir/walkers_test.cpp.o.d"
  "walkers_test"
  "walkers_test.pdb"
  "walkers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walkers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
