# Empty dependencies file for walkers_test.
# This may be replaced when dependencies are built.
