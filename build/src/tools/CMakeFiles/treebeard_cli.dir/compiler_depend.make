# Empty compiler generated dependencies file for treebeard_cli.
# This may be replaced when dependencies are built.
