file(REMOVE_RECURSE
  "CMakeFiles/treebeard_cli.dir/treebeard_cli.cc.o"
  "CMakeFiles/treebeard_cli.dir/treebeard_cli.cc.o.d"
  "treebeard"
  "treebeard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
