
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/decision_tree.cc" "src/model/CMakeFiles/treebeard_model.dir/decision_tree.cc.o" "gcc" "src/model/CMakeFiles/treebeard_model.dir/decision_tree.cc.o.d"
  "/root/repo/src/model/forest.cc" "src/model/CMakeFiles/treebeard_model.dir/forest.cc.o" "gcc" "src/model/CMakeFiles/treebeard_model.dir/forest.cc.o.d"
  "/root/repo/src/model/model_stats.cc" "src/model/CMakeFiles/treebeard_model.dir/model_stats.cc.o" "gcc" "src/model/CMakeFiles/treebeard_model.dir/model_stats.cc.o.d"
  "/root/repo/src/model/serialization.cc" "src/model/CMakeFiles/treebeard_model.dir/serialization.cc.o" "gcc" "src/model/CMakeFiles/treebeard_model.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treebeard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
