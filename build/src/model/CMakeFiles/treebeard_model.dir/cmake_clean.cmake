file(REMOVE_RECURSE
  "CMakeFiles/treebeard_model.dir/decision_tree.cc.o"
  "CMakeFiles/treebeard_model.dir/decision_tree.cc.o.d"
  "CMakeFiles/treebeard_model.dir/forest.cc.o"
  "CMakeFiles/treebeard_model.dir/forest.cc.o.d"
  "CMakeFiles/treebeard_model.dir/model_stats.cc.o"
  "CMakeFiles/treebeard_model.dir/model_stats.cc.o.d"
  "CMakeFiles/treebeard_model.dir/serialization.cc.o"
  "CMakeFiles/treebeard_model.dir/serialization.cc.o.d"
  "libtreebeard_model.a"
  "libtreebeard_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
