file(REMOVE_RECURSE
  "libtreebeard_model.a"
)
