# Empty dependencies file for treebeard_model.
# This may be replaced when dependencies are built.
