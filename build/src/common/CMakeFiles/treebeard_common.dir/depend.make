# Empty dependencies file for treebeard_common.
# This may be replaced when dependencies are built.
