file(REMOVE_RECURSE
  "libtreebeard_common.a"
)
