file(REMOVE_RECURSE
  "CMakeFiles/treebeard_common.dir/json.cc.o"
  "CMakeFiles/treebeard_common.dir/json.cc.o.d"
  "CMakeFiles/treebeard_common.dir/string_utils.cc.o"
  "CMakeFiles/treebeard_common.dir/string_utils.cc.o.d"
  "CMakeFiles/treebeard_common.dir/thread_pool.cc.o"
  "CMakeFiles/treebeard_common.dir/thread_pool.cc.o.d"
  "libtreebeard_common.a"
  "libtreebeard_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
