# Empty compiler generated dependencies file for treebeard_baselines.
# This may be replaced when dependencies are built.
