file(REMOVE_RECURSE
  "libtreebeard_baselines.a"
)
