file(REMOVE_RECURSE
  "CMakeFiles/treebeard_baselines.dir/gemm.cc.o"
  "CMakeFiles/treebeard_baselines.dir/gemm.cc.o.d"
  "CMakeFiles/treebeard_baselines.dir/hummingbird_style.cc.o"
  "CMakeFiles/treebeard_baselines.dir/hummingbird_style.cc.o.d"
  "CMakeFiles/treebeard_baselines.dir/quickscorer.cc.o"
  "CMakeFiles/treebeard_baselines.dir/quickscorer.cc.o.d"
  "CMakeFiles/treebeard_baselines.dir/treelite_style.cc.o"
  "CMakeFiles/treebeard_baselines.dir/treelite_style.cc.o.d"
  "CMakeFiles/treebeard_baselines.dir/xgboost_style.cc.o"
  "CMakeFiles/treebeard_baselines.dir/xgboost_style.cc.o.d"
  "libtreebeard_baselines.a"
  "libtreebeard_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
