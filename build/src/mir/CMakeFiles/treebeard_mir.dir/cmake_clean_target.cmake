file(REMOVE_RECURSE
  "libtreebeard_mir.a"
)
