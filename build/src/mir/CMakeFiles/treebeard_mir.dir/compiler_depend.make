# Empty compiler generated dependencies file for treebeard_mir.
# This may be replaced when dependencies are built.
