# Empty dependencies file for treebeard_mir.
# This may be replaced when dependencies are built.
