file(REMOVE_RECURSE
  "CMakeFiles/treebeard_mir.dir/lowering.cc.o"
  "CMakeFiles/treebeard_mir.dir/lowering.cc.o.d"
  "CMakeFiles/treebeard_mir.dir/mir.cc.o"
  "CMakeFiles/treebeard_mir.dir/mir.cc.o.d"
  "CMakeFiles/treebeard_mir.dir/passes.cc.o"
  "CMakeFiles/treebeard_mir.dir/passes.cc.o.d"
  "libtreebeard_mir.a"
  "libtreebeard_mir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_mir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
