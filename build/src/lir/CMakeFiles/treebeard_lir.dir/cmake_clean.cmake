file(REMOVE_RECURSE
  "CMakeFiles/treebeard_lir.dir/forest_buffers.cc.o"
  "CMakeFiles/treebeard_lir.dir/forest_buffers.cc.o.d"
  "CMakeFiles/treebeard_lir.dir/layout_builder.cc.o"
  "CMakeFiles/treebeard_lir.dir/layout_builder.cc.o.d"
  "CMakeFiles/treebeard_lir.dir/tile_shape.cc.o"
  "CMakeFiles/treebeard_lir.dir/tile_shape.cc.o.d"
  "libtreebeard_lir.a"
  "libtreebeard_lir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_lir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
