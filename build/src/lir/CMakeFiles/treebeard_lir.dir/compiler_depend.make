# Empty compiler generated dependencies file for treebeard_lir.
# This may be replaced when dependencies are built.
