file(REMOVE_RECURSE
  "libtreebeard_lir.a"
)
