file(REMOVE_RECURSE
  "libtreebeard_compiler.a"
)
