file(REMOVE_RECURSE
  "CMakeFiles/treebeard_compiler.dir/compiler.cc.o"
  "CMakeFiles/treebeard_compiler.dir/compiler.cc.o.d"
  "libtreebeard_compiler.a"
  "libtreebeard_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
