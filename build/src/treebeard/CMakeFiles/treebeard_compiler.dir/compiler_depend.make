# Empty compiler generated dependencies file for treebeard_compiler.
# This may be replaced when dependencies are built.
