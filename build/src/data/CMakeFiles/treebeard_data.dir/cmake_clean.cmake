file(REMOVE_RECURSE
  "CMakeFiles/treebeard_data.dir/csv.cc.o"
  "CMakeFiles/treebeard_data.dir/csv.cc.o.d"
  "CMakeFiles/treebeard_data.dir/dataset.cc.o"
  "CMakeFiles/treebeard_data.dir/dataset.cc.o.d"
  "CMakeFiles/treebeard_data.dir/synthetic.cc.o"
  "CMakeFiles/treebeard_data.dir/synthetic.cc.o.d"
  "libtreebeard_data.a"
  "libtreebeard_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
