# Empty compiler generated dependencies file for treebeard_data.
# This may be replaced when dependencies are built.
