file(REMOVE_RECURSE
  "libtreebeard_data.a"
)
