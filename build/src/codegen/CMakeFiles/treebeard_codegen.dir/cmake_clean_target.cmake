file(REMOVE_RECURSE
  "libtreebeard_codegen.a"
)
