
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/cpp_emitter.cc" "src/codegen/CMakeFiles/treebeard_codegen.dir/cpp_emitter.cc.o" "gcc" "src/codegen/CMakeFiles/treebeard_codegen.dir/cpp_emitter.cc.o.d"
  "/root/repo/src/codegen/system_jit.cc" "src/codegen/CMakeFiles/treebeard_codegen.dir/system_jit.cc.o" "gcc" "src/codegen/CMakeFiles/treebeard_codegen.dir/system_jit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treebeard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/treebeard_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/treebeard_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/treebeard_hir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
