# Empty compiler generated dependencies file for treebeard_codegen.
# This may be replaced when dependencies are built.
