file(REMOVE_RECURSE
  "CMakeFiles/treebeard_codegen.dir/cpp_emitter.cc.o"
  "CMakeFiles/treebeard_codegen.dir/cpp_emitter.cc.o.d"
  "CMakeFiles/treebeard_codegen.dir/system_jit.cc.o"
  "CMakeFiles/treebeard_codegen.dir/system_jit.cc.o.d"
  "libtreebeard_codegen.a"
  "libtreebeard_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
