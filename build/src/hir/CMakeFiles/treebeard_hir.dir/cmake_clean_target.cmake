file(REMOVE_RECURSE
  "libtreebeard_hir.a"
)
