
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hir/hir_module.cc" "src/hir/CMakeFiles/treebeard_hir.dir/hir_module.cc.o" "gcc" "src/hir/CMakeFiles/treebeard_hir.dir/hir_module.cc.o.d"
  "/root/repo/src/hir/schedule.cc" "src/hir/CMakeFiles/treebeard_hir.dir/schedule.cc.o" "gcc" "src/hir/CMakeFiles/treebeard_hir.dir/schedule.cc.o.d"
  "/root/repo/src/hir/tiled_tree.cc" "src/hir/CMakeFiles/treebeard_hir.dir/tiled_tree.cc.o" "gcc" "src/hir/CMakeFiles/treebeard_hir.dir/tiled_tree.cc.o.d"
  "/root/repo/src/hir/tiling.cc" "src/hir/CMakeFiles/treebeard_hir.dir/tiling.cc.o" "gcc" "src/hir/CMakeFiles/treebeard_hir.dir/tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treebeard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/treebeard_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
