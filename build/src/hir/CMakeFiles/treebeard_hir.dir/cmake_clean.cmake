file(REMOVE_RECURSE
  "CMakeFiles/treebeard_hir.dir/hir_module.cc.o"
  "CMakeFiles/treebeard_hir.dir/hir_module.cc.o.d"
  "CMakeFiles/treebeard_hir.dir/schedule.cc.o"
  "CMakeFiles/treebeard_hir.dir/schedule.cc.o.d"
  "CMakeFiles/treebeard_hir.dir/tiled_tree.cc.o"
  "CMakeFiles/treebeard_hir.dir/tiled_tree.cc.o.d"
  "CMakeFiles/treebeard_hir.dir/tiling.cc.o"
  "CMakeFiles/treebeard_hir.dir/tiling.cc.o.d"
  "libtreebeard_hir.a"
  "libtreebeard_hir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_hir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
