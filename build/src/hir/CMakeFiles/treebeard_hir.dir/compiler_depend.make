# Empty compiler generated dependencies file for treebeard_hir.
# This may be replaced when dependencies are built.
