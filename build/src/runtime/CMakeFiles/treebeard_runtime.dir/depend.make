# Empty dependencies file for treebeard_runtime.
# This may be replaced when dependencies are built.
