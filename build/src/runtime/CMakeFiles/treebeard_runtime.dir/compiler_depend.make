# Empty compiler generated dependencies file for treebeard_runtime.
# This may be replaced when dependencies are built.
