file(REMOVE_RECURSE
  "CMakeFiles/treebeard_runtime.dir/plan.cc.o"
  "CMakeFiles/treebeard_runtime.dir/plan.cc.o.d"
  "libtreebeard_runtime.a"
  "libtreebeard_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
