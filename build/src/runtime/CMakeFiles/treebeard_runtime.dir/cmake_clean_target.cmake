file(REMOVE_RECURSE
  "libtreebeard_runtime.a"
)
