file(REMOVE_RECURSE
  "CMakeFiles/treebeard_train.dir/gbdt_trainer.cc.o"
  "CMakeFiles/treebeard_train.dir/gbdt_trainer.cc.o.d"
  "libtreebeard_train.a"
  "libtreebeard_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
