
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/gbdt_trainer.cc" "src/train/CMakeFiles/treebeard_train.dir/gbdt_trainer.cc.o" "gcc" "src/train/CMakeFiles/treebeard_train.dir/gbdt_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treebeard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/treebeard_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/treebeard_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
