file(REMOVE_RECURSE
  "libtreebeard_train.a"
)
