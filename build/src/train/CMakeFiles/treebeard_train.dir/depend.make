# Empty dependencies file for treebeard_train.
# This may be replaced when dependencies are built.
