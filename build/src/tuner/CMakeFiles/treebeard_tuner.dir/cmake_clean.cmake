file(REMOVE_RECURSE
  "CMakeFiles/treebeard_tuner.dir/auto_tuner.cc.o"
  "CMakeFiles/treebeard_tuner.dir/auto_tuner.cc.o.d"
  "libtreebeard_tuner.a"
  "libtreebeard_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treebeard_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
