# Empty dependencies file for treebeard_tuner.
# This may be replaced when dependencies are built.
