file(REMOVE_RECURSE
  "libtreebeard_tuner.a"
)
