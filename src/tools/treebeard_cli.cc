/**
 * @file
 * The `treebeard` command-line tool: model inspection, synthesis,
 * compilation (with IR dumps), batch prediction, timing and schedule
 * auto-tuning — the operational surface the original artifact exposes
 * through its scripts.
 *
 * Usage:
 *   treebeard stats   <model.json>
 *   treebeard synth   <benchmark-name> <out-model.json> [trees]
 *   treebeard compile <model.json> [schedule flags] [--dump-ir]
 *   treebeard predict <model.json> <input.csv> [out.csv] [flags]
 *   treebeard bench   <model.json> [batch] [flags]
 *   treebeard tune    <model.json> [sample-rows] [tune flags]
 *   treebeard verify  <model.json> [schedule.json] [flags] [--json]
 *   treebeard serve   <model.json> [serve flags] [schedule flags]
 *
 * Schedule flags: --tile N --interleave N --threads N
 *   --row-chunk N (rows per parallel-loop chunk; 0 = one per worker)
 *   --order tree|row --layout sparse|array|packed
 *   --packed-precision f32|i16 (int16-quantized packed records)
 *   --traversal node|row (SIMD shape: node-parallel tile evaluation
 *     vs row-parallel lane groups walking 8 rows in lockstep)
 *   --tiling basic|probability|hybrid|min-max-depth
 *   --hot-path F (fraction of training hits the per-tree branchless
 *     hot path must cover; 0 = off)
 *   --no-unroll --no-peel --no-pipeline --verify-each
 *
 * bench additionally takes --resident: bind the batch once as a
 * resident Dataset (quantize-once on i16 packed plans) and time
 * predictDataset() instead of per-call predict().
 *
 * Backend flags (compile/predict/bench): --backend kernel|jit
 *   --jit-cache-dir DIR (persist jit-compiled objects across runs)
 *   --jit-cache-max-bytes N (LRU-evict the disk cache past N bytes)
 *
 * Tune flags: --backend kernel|jit|both --jit-cache-dir DIR
 *   --jit-cache-max-bytes N
 *   --db PATH (append this run — model features, every timed point,
 *     the chosen schedule — as one JSON line to a tuning database)
 *
 * serve starts the in-process multi-tenant serving layer (model
 * registry + dynamic batcher, src/serve) on the model and drives it
 * with a closed-loop load: --clients N caller threads each issue
 * --requests R requests of --rows K rows back-to-back, then the
 * driver reports p50/p95/p99 request latency, rows/sec and the
 * batching counters. Serve flags: --clients N --requests N --rows N
 *   --max-batch-rows N (size-flush target, rowChunkRows-aligned)
 *   --max-delay-us N (deadline flush bound)
 *   --max-queued-rows N (admission-control cap; 0 = unbounded)
 *   --no-batching (unbatched dispatch baseline)
 * plus the schedule/backend flags above (the model's schedule is the
 * registry default).
 *
 * serve also speaks the TCP wire protocol (docs/SERVING.md):
 *   --listen HOST:PORT   serve the model over a socket instead of
 *     driving load; prints "listening on HOST:PORT" (the actual port
 *     when PORT is 0) and blocks until a SHUTDOWN frame arrives, then
 *     reports whether the lock-order validator stayed silent.
 *   --connect HOST:PORT  run the closed-loop driver against a remote
 *     listener (one wire Client per thread) and print the results as
 *     one JSON document instead of text; --shutdown additionally
 *     sends a SHUTDOWN frame once the load completes.
 *
 * verify loads the model and schedule (from a schedule JSON file or
 * from schedule flags), runs every IR-level verifier after every
 * compiler pass, and prints the diagnostic report as text or, with
 * --json, as a machine-readable JSON document. Exit status 0 means no
 * errors (warnings allowed), 1 means at least one error.
 */
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>

#include "analysis/diagnostics.h"
#include "common/checked_mutex.h"
#include "common/timer.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "model/model_stats.h"
#include "model/serialization.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "treebeard/compiler.h"
#include "tuner/auto_tuner.h"

using namespace treebeard;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: treebeard <stats|synth|compile|predict|bench|"
                 "tune|verify|serve> ... (see the file header for "
                 "details)\n");
    std::exit(2);
}

/**
 * Parse the trailing schedule + backend flags shared by several
 * subcommands. Backend flags fill @p compiler_options when given.
 */
hir::Schedule
parseSchedule(const std::vector<std::string> &args, bool *dump_ir,
              CompilerOptions *compiler_options = nullptr)
{
    hir::Schedule schedule;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            fatalIf(i + 1 >= args.size(), "flag ", arg,
                    " needs a value");
            return args[++i];
        };
        if (arg == "--tile") {
            schedule.tileSize = std::stoi(next());
        } else if (arg == "--interleave") {
            schedule.interleaveFactor = std::stoi(next());
        } else if (arg == "--threads") {
            schedule.numThreads = std::stoi(next());
        } else if (arg == "--row-chunk") {
            schedule.rowChunkRows = std::stoi(next());
        } else if (arg == "--order") {
            const std::string &value = next();
            schedule.loopOrder = value == "row"
                                     ? hir::LoopOrder::kOneRowAtATime
                                     : hir::LoopOrder::kOneTreeAtATime;
        } else if (arg == "--layout") {
            const std::string &value = next();
            if (value == "array")
                schedule.layout = hir::MemoryLayout::kArray;
            else if (value == "packed")
                schedule.layout = hir::MemoryLayout::kPacked;
            else if (value == "sparse")
                schedule.layout = hir::MemoryLayout::kSparse;
            else
                fatal("--layout must be sparse, array or packed "
                      "(got \"", value, "\")");
        } else if (arg == "--tiling") {
            const std::string &value = next();
            if (value == "basic")
                schedule.tiling = hir::TilingAlgorithm::kBasic;
            else if (value == "probability")
                schedule.tiling =
                    hir::TilingAlgorithm::kProbabilityBased;
            else if (value == "hybrid")
                schedule.tiling = hir::TilingAlgorithm::kHybrid;
            else if (value == "min-max-depth")
                schedule.tiling = hir::TilingAlgorithm::kMinMaxDepth;
            else
                fatal("unknown tiling '", value, "'");
        } else if (arg == "--traversal") {
            const std::string &value = next();
            if (value == "node")
                schedule.traversal = hir::TraversalKind::kNodeParallel;
            else if (value == "row")
                schedule.traversal = hir::TraversalKind::kRowParallel;
            else
                fatal("--traversal must be node or row (got \"", value,
                      "\")");
        } else if (arg == "--packed-precision") {
            const std::string &value = next();
            if (value == "f32")
                schedule.packedPrecision = hir::PackedPrecision::kF32;
            else if (value == "i16")
                schedule.packedPrecision = hir::PackedPrecision::kI16;
            else
                fatal("--packed-precision must be f32 or i16 (got \"",
                      value, "\")");
        } else if (arg == "--hot-path") {
            schedule.hotPathCoverage = std::stod(next());
        } else if (arg == "--no-unroll") {
            schedule.padAndUnrollWalks = false;
        } else if (arg == "--no-peel") {
            schedule.peelWalks = false;
        } else if (arg == "--no-pipeline") {
            schedule.pipelinePackedWalks = false;
        } else if (arg == "--backend" && compiler_options != nullptr) {
            const std::string &value = next();
            if (value == "kernel")
                compiler_options->backend = Backend::kKernel;
            else if (value == "jit")
                compiler_options->backend = Backend::kSourceJit;
            else
                fatal("--backend must be kernel or jit (got \"", value,
                      "\")");
        } else if (arg == "--jit-cache-dir" &&
                   compiler_options != nullptr) {
            compiler_options->jit.cacheDir = next();
        } else if (arg == "--jit-cache-max-bytes" &&
                   compiler_options != nullptr) {
            compiler_options->jit.cacheMaxBytes = std::stoll(next());
        } else if (arg == "--verify-each" &&
                   compiler_options != nullptr) {
            compiler_options->verifyEach = true;
        } else if (arg == "--dump-ir" && dump_ir != nullptr) {
            *dump_ir = true;
        } else {
            fatal("unknown flag '", arg, "'");
        }
    }
    // Validate at parse time so an out-of-range knob fails before any
    // model loading or compilation work, with the structured
    // hir.schedule.* diagnostics in the error text.
    schedule.validate();
    return schedule;
}

int
commandStats(const std::string &path)
{
    model::Forest forest = model::loadForest(path);
    model::ForestStats stats = model::computeForestStats(forest);
    std::printf("model: %s\n", path.c_str());
    std::printf("  features:        %d\n", stats.numFeatures);
    std::printf("  trees:           %lld\n",
                static_cast<long long>(stats.numTrees));
    std::printf("  max depth:       %d\n", stats.maxDepth);
    std::printf("  total nodes:     %lld\n",
                static_cast<long long>(stats.totalNodes));
    std::printf("  total leaves:    %lld\n",
                static_cast<long long>(stats.totalLeaves));
    std::printf("  avg leaf depth:  %.2f\n", stats.averageLeafDepth);
    std::printf("  leaf-biased:     %lld (alpha=0.075, beta=0.9)\n",
                static_cast<long long>(stats.leafBiasedTrees));
    std::printf("  objective:       %s\n",
                model::objectiveName(forest.objective()));
    return 0;
}

int
commandSynth(const std::string &name, const std::string &out_path,
             int64_t trees)
{
    data::SyntheticModelSpec spec = data::benchmarkSpecByName(name);
    if (trees > 0)
        spec.numTrees = trees;
    model::Forest forest = data::synthesizeForest(spec);
    model::saveForest(forest, out_path);
    std::printf("wrote %s: %lld trees, %d features, max depth %d\n",
                out_path.c_str(),
                static_cast<long long>(forest.numTrees()),
                forest.numFeatures(), forest.maxDepth());
    return 0;
}

int
commandCompile(const std::string &path,
               const std::vector<std::string> &flags)
{
    bool dump_ir = false;
    CompilerOptions options;
    hir::Schedule schedule = parseSchedule(flags, &dump_ir, &options);
    model::Forest forest = model::loadForest(path);

    options.recordIrDumps = dump_ir;
    codegen::JitCacheStats before = codegen::jitCacheStats();
    Timer timer;
    Session session = compile(forest, schedule, options);
    std::printf("compiled in %.3fs [backend: %s] under schedule: %s\n",
                timer.elapsedSeconds(),
                backendName(session.backend()),
                schedule.toString().c_str());
    if (session.backend() == Backend::kSourceJit) {
        codegen::JitCacheStats after = codegen::jitCacheStats();
        if (after.diskHits > before.diskHits)
            std::printf("jit: disk cache hit (no compiler invoked)\n");
        else if (after.diskStores > before.diskStores)
            std::printf("jit: compiled in %.3fs, stored to disk "
                        "cache\n",
                        session.artifacts().jitCompileSeconds);
        else
            std::printf("jit: compiled in %.3fs\n",
                        session.artifacts().jitCompileSeconds);
    }
    std::printf("%s\n", session.artifacts().lirSummary.c_str());
    for (const auto &trace : session.artifacts().passTraces) {
        std::printf("  %-22s %8.3f ms\n", trace.name.c_str(),
                    trace.seconds * 1e3);
    }
    if (dump_ir) {
        std::printf("\n%s\n%s", session.artifacts().hirDump.c_str(),
                    session.artifacts().mirDump.c_str());
    }
    return 0;
}

int
commandPredict(const std::string &model_path,
               const std::string &input_path,
               const std::string &output_path,
               const std::vector<std::string> &flags)
{
    CompilerOptions options;
    hir::Schedule schedule = parseSchedule(flags, nullptr, &options);
    model::Forest forest = model::loadForest(model_path);
    data::Dataset input =
        data::loadCsv(input_path, /*last_column_is_label=*/false);
    fatalIf(input.numFeatures() != forest.numFeatures(),
            "input has ", input.numFeatures(),
            " features but the model expects ", forest.numFeatures());

    Session session = compile(forest, schedule, options);
    int32_t num_classes = session.numClasses();
    std::vector<float> predictions(
        static_cast<size_t>(input.numRows()) *
        static_cast<size_t>(num_classes));
    session.predict(input.rows(), input.numRows(), predictions.data());

    if (output_path.empty()) {
        for (int64_t r = 0; r < input.numRows(); ++r) {
            for (int32_t c = 0; c < num_classes; ++c)
                std::printf(c == 0 ? "%.6g" : ",%.6g",
                            predictions[r * num_classes + c]);
            std::printf("\n");
        }
    } else {
        data::Dataset out(num_classes);
        for (int64_t r = 0; r < input.numRows(); ++r)
            out.appendRow(&predictions[r * num_classes]);
        data::saveCsv(out, output_path);
        std::printf("wrote %lld predictions to %s\n",
                    static_cast<long long>(input.numRows()),
                    output_path.c_str());
    }
    return 0;
}

int
commandBench(const std::string &path, int64_t batch,
             const std::vector<std::string> &flags)
{
    bool resident = false;
    std::vector<std::string> schedule_flags;
    for (const std::string &arg : flags) {
        if (arg == "--resident")
            resident = true;
        else
            schedule_flags.push_back(arg);
    }
    CompilerOptions options;
    hir::Schedule schedule =
        parseSchedule(schedule_flags, nullptr, &options);
    model::Forest forest = model::loadForest(path);
    Session session = compile(forest, schedule, options);

    // A synthetic uniform batch sized to the model.
    data::SyntheticModelSpec spec;
    spec.name = "cli-bench";
    spec.numFeatures = forest.numFeatures();
    spec.numTrees = 1;
    spec.maxDepth = 1;
    data::Dataset rows = data::generateFeatures(spec, batch);
    std::vector<float> predictions(
        static_cast<size_t>(batch) *
        static_cast<size_t>(session.numClasses()));

    treebeard::Dataset bound;
    double bind_seconds = 0.0;
    if (resident) {
        Timer bind_timer;
        bound = session.bindDataset(rows.rows(), batch);
        bind_seconds = bind_timer.elapsedSeconds();
    }
    auto run_once = [&]() {
        if (resident)
            session.predictDataset(bound, predictions.data());
        else
            session.predict(rows.rows(), batch, predictions.data());
    };
    run_once(); // warm-up
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
        Timer timer;
        run_once();
        best = std::min(best, timer.elapsedSeconds());
    }
    std::printf("%s [backend: %s]%s\n", schedule.toString().c_str(),
                backendName(session.backend()),
                resident ? " [resident dataset]" : "");
    if (resident) {
        std::printf("bind: %.3f ms (quantized image: %s)\n",
                    bind_seconds * 1e3,
                    bound.hasQuantizedImage() ? "yes" : "no");
    }
    std::printf("batch %lld: %.3f ms total, %.3f us/row\n",
                static_cast<long long>(batch), best * 1e3,
                best * 1e6 / static_cast<double>(batch));
    return 0;
}

/**
 * Static verification without execution: load the model and schedule,
 * run the full compilation pipeline with after-every-pass
 * verification, and print every diagnostic collected along the way.
 * Loading failures are folded into the same report, so a corrupt
 * model file yields its structured model.* diagnostics rather than a
 * bare error message.
 */
int
commandVerify(const std::string &model_path,
              const std::string &schedule_path,
              const std::vector<std::string> &flags)
{
    bool json_report = false;
    std::vector<std::string> schedule_flags;
    for (const std::string &arg : flags) {
        if (arg == "--json")
            json_report = true;
        else
            schedule_flags.push_back(arg);
    }

    analysis::DiagnosticEngine report;
    std::optional<model::Forest> forest;
    try {
        forest = model::loadForest(model_path);
    } catch (const analysis::VerificationError &error) {
        for (const analysis::Diagnostic &d : error.diagnostics())
            report.add(d);
    }

    CompilerOptions options;
    std::optional<hir::Schedule> schedule;
    try {
        if (!schedule_path.empty()) {
            schedule = hir::scheduleFromJsonString(
                readFileToString(schedule_path));
        } else {
            schedule = parseSchedule(schedule_flags, nullptr, &options);
            schedule->validate();
        }
    } catch (const analysis::VerificationError &error) {
        for (const analysis::Diagnostic &d : error.diagnostics())
            report.add(d);
    }

    if (forest.has_value() && schedule.has_value()) {
        options.verifyEach = true;
        try {
            Session session = compile(*forest, *schedule, options);
            for (const analysis::Diagnostic &d :
                 session.artifacts().diagnostics)
                report.add(d);
        } catch (const analysis::VerificationError &error) {
            for (const analysis::Diagnostic &d : error.diagnostics())
                report.add(d);
        }
    }

    if (json_report) {
        std::printf("%s\n", report.toJson().dumpPretty().c_str());
    } else if (report.empty()) {
        std::printf("ok: %s verifies cleanly under schedule: %s\n",
                    model_path.c_str(),
                    schedule.has_value()
                        ? schedule->toString().c_str()
                        : "(invalid)");
    } else {
        std::printf("%s", report.toString().c_str());
        std::printf("%lld error(s), %lld warning(s)\n",
                    static_cast<long long>(report.errorCount()),
                    static_cast<long long>(report.warningCount()));
    }
    return report.hasErrors() ? 1 : 0;
}

/**
 * The closed-loop load driver behind `treebeard serve`: client
 * threads issue requests back-to-back against the in-process Server
 * and the driver reports request-latency percentiles, throughput and
 * the batching counters. Closed-loop means offered load scales with
 * --clients: each client has exactly one request outstanding, the
 * standard service-benchmark shape for finding the batching knee.
 */
int
commandServe(const std::string &model_path,
             const std::vector<std::string> &flags)
{
    int64_t clients = 8;
    int64_t requests_per_client = 200;
    int64_t rows_per_request = 1;
    std::string listen_spec;
    std::string connect_spec;
    bool send_shutdown = false;
    serve::ServerOptions server_options;
    std::vector<std::string> schedule_flags;
    for (size_t i = 0; i < flags.size(); ++i) {
        const std::string &arg = flags[i];
        auto next = [&]() -> const std::string & {
            fatalIf(i + 1 >= flags.size(), "flag ", arg,
                    " needs a value");
            return flags[++i];
        };
        if (arg == "--clients")
            clients = std::stoll(next());
        else if (arg == "--requests")
            requests_per_client = std::stoll(next());
        else if (arg == "--rows")
            rows_per_request = std::stoll(next());
        else if (arg == "--listen")
            listen_spec = next();
        else if (arg == "--connect")
            connect_spec = next();
        else if (arg == "--shutdown")
            send_shutdown = true;
        else if (arg == "--max-batch-rows")
            server_options.batcher.maxBatchRows = std::stoll(next());
        else if (arg == "--max-delay-us")
            server_options.batcher.maxQueueDelayMicros =
                std::stoll(next());
        else if (arg == "--max-queued-rows")
            server_options.batcher.maxQueuedRows = std::stoll(next());
        else if (arg == "--no-batching")
            server_options.batcher.enabled = false;
        else
            schedule_flags.push_back(arg);
    }
    fatalIf(clients < 1, "--clients must be >= 1");
    fatalIf(requests_per_client < 1, "--requests must be >= 1");
    fatalIf(rows_per_request < 1, "--rows must be >= 1");
    fatalIf(!listen_spec.empty() && !connect_spec.empty(),
            "--listen and --connect are mutually exclusive");
    fatalIf(send_shutdown && connect_spec.empty(),
            "--shutdown only applies with --connect");

    CompilerOptions compiler_options;
    hir::Schedule schedule =
        parseSchedule(schedule_flags, nullptr, &compiler_options);
    server_options.registry.compiler = compiler_options;
    server_options.registry.defaultSchedule = schedule;

    model::Forest forest = model::loadForest(model_path);

    if (!listen_spec.empty()) {
        // Server mode: expose the model over the TCP wire protocol
        // and block until a SHUTDOWN frame arrives. The lock-order
        // validator runs for the whole serving lifetime so the exit
        // status doubles as a concurrency check in CI.
        std::string host;
        uint16_t port = 0;
        serve::splitHostPort(listen_spec, &host, &port);
        setLockChecking(true);
        serve::Server server(server_options);
        Timer load_timer;
        serve::ModelHandle handle = server.loadModel(forest);
        std::printf("serving %s as %s [backend: %s, %s]\n",
                    model_path.c_str(), handle.c_str(),
                    backendName(compiler_options.backend),
                    server_options.batcher.enabled
                        ? "dynamic batching"
                        : "unbatched dispatch");
        std::printf("model loaded in %.3f s under schedule: %s\n",
                    load_timer.elapsedSeconds(),
                    schedule.toString().c_str());
        serve::TransportOptions transport;
        transport.host = host;
        transport.port = port;
        serve::WireServer wire_server(server, transport);
        std::printf("listening on %s:%u\n", host.c_str(),
                    static_cast<unsigned>(wire_server.port()));
        std::fflush(stdout);
        wire_server.waitUntilStopRequested();
        wire_server.stop();
        serve::TransportStats wire_stats = wire_server.stats();
        server.shutdown();
        long long violations =
            static_cast<long long>(lockViolationCount());
        std::printf("served %lld frames on %lld connections "
                    "(%lld protocol errors, %lld disconnects)\n",
                    static_cast<long long>(wire_stats.framesServed),
                    static_cast<long long>(
                        wire_stats.connectionsAccepted),
                    static_cast<long long>(wire_stats.protocolErrors),
                    static_cast<long long>(wire_stats.disconnects));
        std::printf("shutdown: clean (%lld lock violations)\n",
                    violations);
        return violations == 0 ? 0 : 1;
    }

    if (!connect_spec.empty()) {
        // Driver mode: the same closed-loop load, but over the wire
        // against a remote listener, one Client per thread. Output is
        // a single JSON document so scripts consume it directly.
        std::string host;
        uint16_t port = 0;
        serve::splitHostPort(connect_spec, &host, &port);
        serve::Client setup(host, port);
        serve::ModelHandle handle = setup.loadModel(forest, schedule);
        const int32_t features = forest.numFeatures();

        data::SyntheticModelSpec spec;
        spec.name = "cli-serve";
        spec.numFeatures = features;
        spec.numTrees = 1;
        spec.maxDepth = 1;
        const int64_t pool_rows = 256;
        fatalIf(rows_per_request > pool_rows, "--rows must be <= ",
                pool_rows);
        std::vector<data::Dataset> pools;
        for (int64_t c = 0; c < clients; ++c) {
            pools.push_back(data::generateFeatures(
                spec, pool_rows, /*seed_offset=*/1000 + c));
        }

        std::vector<std::vector<double>> latencies(
            static_cast<size_t>(clients));
        std::atomic<int64_t> rejected{0};
        Timer wall;
        std::vector<std::thread> threads;
        for (int64_t c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                serve::Client client(host, port);
                std::vector<double> &lat =
                    latencies[static_cast<size_t>(c)];
                lat.reserve(static_cast<size_t>(requests_per_client));
                const float *pool =
                    pools[static_cast<size_t>(c)].rows();
                for (int64_t r = 0; r < requests_per_client; ++r) {
                    int64_t start =
                        (r * rows_per_request) %
                        (pool_rows - rows_per_request + 1);
                    const float *rows = pool + start * features;
                    Timer timer;
                    try {
                        client.predict(handle, rows,
                                       rows_per_request, features);
                    } catch (const Error &error) {
                        if (error.code() == serve::kErrQueueFull) {
                            rejected.fetch_add(1);
                            continue;
                        }
                        throw;
                    }
                    lat.push_back(timer.elapsedMicros());
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
        double wall_seconds = wall.elapsedSeconds();

        std::vector<double> all;
        for (const std::vector<double> &lat : latencies)
            all.insert(all.end(), lat.begin(), lat.end());
        fatalIf(all.empty(), "every request was rejected; raise "
                "--max-queued-rows or lower --clients");
        std::sort(all.begin(), all.end());
        auto percentile = [&](double p) {
            size_t index = static_cast<size_t>(
                p * static_cast<double>(all.size() - 1));
            return all[index];
        };
        int64_t completed = static_cast<int64_t>(all.size());

        if (send_shutdown)
            setup.shutdownServer();

        JsonValue::Object doc;
        doc["handle"] = handle;
        doc["clients"] = clients;
        doc["requests_per_client"] = requests_per_client;
        doc["rows_per_request"] = rows_per_request;
        doc["completed"] = completed;
        doc["rejected"] = rejected.load();
        doc["p50_us"] = percentile(0.50);
        doc["p95_us"] = percentile(0.95);
        doc["p99_us"] = percentile(0.99);
        doc["rows_per_sec"] =
            static_cast<double>(completed * rows_per_request) /
            wall_seconds;
        doc["wall_seconds"] = wall_seconds;
        std::printf("%s\n", JsonValue(std::move(doc)).dump().c_str());
        return 0;
    }

    serve::Server server(server_options);
    Timer load_timer;
    serve::ModelHandle handle = server.loadModel(forest);
    std::printf("serving %s as %s [backend: %s, %s]\n",
                model_path.c_str(), handle.c_str(),
                backendName(compiler_options.backend),
                server_options.batcher.enabled
                    ? "dynamic batching"
                    : "unbatched dispatch");
    std::printf("model loaded in %.3f s under schedule: %s\n",
                load_timer.elapsedSeconds(),
                schedule.toString().c_str());

    // Per-client request pools drawn from the model's input
    // distribution; each client cycles its own rows.
    data::SyntheticModelSpec spec;
    spec.name = "cli-serve";
    spec.numFeatures = forest.numFeatures();
    spec.numTrees = 1;
    spec.maxDepth = 1;
    const int64_t pool_rows = 256;
    std::vector<data::Dataset> pools;
    for (int64_t c = 0; c < clients; ++c) {
        pools.push_back(data::generateFeatures(
            spec, pool_rows, /*seed_offset=*/1000 + c));
    }

    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    std::atomic<int64_t> rejected{0};
    Timer wall;
    std::vector<std::thread> threads;
    for (int64_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<double> &lat =
                latencies[static_cast<size_t>(c)];
            lat.reserve(static_cast<size_t>(requests_per_client));
            const float *pool = pools[static_cast<size_t>(c)].rows();
            for (int64_t r = 0; r < requests_per_client; ++r) {
                int64_t start =
                    (r * rows_per_request) % (pool_rows -
                                              rows_per_request + 1);
                const float *rows =
                    pool + start * forest.numFeatures();
                Timer timer;
                try {
                    server.predict(handle, rows, rows_per_request);
                } catch (const Error &error) {
                    if (error.code() == serve::kErrQueueFull) {
                        rejected.fetch_add(1);
                        continue;
                    }
                    throw;
                }
                lat.push_back(timer.elapsedMicros());
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    double wall_seconds = wall.elapsedSeconds();

    std::vector<double> all;
    for (const std::vector<double> &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    fatalIf(all.empty(), "every request was rejected; raise "
            "--max-queued-rows or lower --clients");
    std::sort(all.begin(), all.end());
    auto percentile = [&](double p) {
        size_t index = static_cast<size_t>(
            p * static_cast<double>(all.size() - 1));
        return all[index];
    };
    int64_t completed = static_cast<int64_t>(all.size());
    double rows_per_sec = static_cast<double>(
                              completed * rows_per_request) /
                          wall_seconds;

    serve::BatcherStats batching = server.batcherStats(handle);
    std::printf("\nclosed-loop load: %lld clients x %lld requests x "
                "%lld row(s)\n",
                static_cast<long long>(clients),
                static_cast<long long>(requests_per_client),
                static_cast<long long>(rows_per_request));
    std::printf("  completed:  %lld (%lld rejected by admission)\n",
                static_cast<long long>(completed),
                static_cast<long long>(rejected.load()));
    std::printf("  latency:    p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
                percentile(0.50), percentile(0.95), percentile(0.99));
    std::printf("  throughput: %.0f rows/sec (%.3f s wall)\n",
                rows_per_sec, wall_seconds);
    std::printf("  batching:   %lld batches, %.1f rows/batch avg, "
                "%lld max, %lld coalesced, %lld size flushes, "
                "%lld deadline flushes\n",
                static_cast<long long>(batching.batchesExecuted),
                batching.averageBatchRows(),
                static_cast<long long>(batching.largestBatchRows),
                static_cast<long long>(batching.coalescedBatches),
                static_cast<long long>(batching.sizeFlushes),
                static_cast<long long>(batching.deadlineFlushes));
    server.shutdown();
    return 0;
}

int
commandTune(const std::string &path, int64_t sample_rows,
            const std::vector<std::string> &flags)
{
    tuner::TunerOptions options;
    options.repetitions = 2;
    std::string db_path;
    for (size_t i = 0; i < flags.size(); ++i) {
        const std::string &arg = flags[i];
        auto next = [&]() -> const std::string & {
            fatalIf(i + 1 >= flags.size(), "flag ", arg,
                    " needs a value");
            return flags[++i];
        };
        if (arg == "--backend") {
            const std::string &value = next();
            if (value == "kernel")
                options.backends = {Backend::kKernel};
            else if (value == "jit")
                options.backends = {Backend::kSourceJit};
            else if (value == "both")
                options.backends = {Backend::kKernel,
                                    Backend::kSourceJit};
            else
                fatal("--backend must be kernel, jit or both "
                      "(got \"", value, "\")");
        } else if (arg == "--jit-cache-dir") {
            options.jitCacheDir = next();
        } else if (arg == "--jit-cache-max-bytes") {
            options.jitCacheMaxBytes = std::stoll(next());
        } else if (arg == "--db") {
            db_path = next();
        } else {
            fatal("unknown flag '", arg, "'");
        }
    }

    model::Forest forest = model::loadForest(path);
    data::SyntheticModelSpec spec;
    spec.name = "cli-tune";
    spec.numFeatures = forest.numFeatures();
    spec.numTrees = 1;
    spec.maxDepth = 1;
    data::Dataset sample = data::generateFeatures(spec, sample_rows);

    std::printf("exploring %zu configurations x %zu backends on %lld "
                "sample rows\n",
                tuner::enumerateSchedules(options).size(),
                options.backends.size(),
                static_cast<long long>(sample_rows));
    tuner::TunerResult result = tuner::exploreSchedules(
        forest, sample.rows(), sample_rows, options);
    std::printf("best: %s [backend: %s] (%.3f us/row)\n",
                result.best.schedule.toString().c_str(),
                backendName(result.best.backend),
                result.best.seconds * 1e6 /
                    static_cast<double>(sample_rows));
    if (!db_path.empty()) {
        tuner::appendTuningRecord(db_path, forest, result);
        std::printf("appended tuning record to %s\n",
                    db_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    try {
        if (command == "stats" && args.size() == 1)
            return commandStats(args[0]);
        if (command == "synth" && (args.size() == 2 || args.size() == 3))
            return commandSynth(args[0], args[1],
                                args.size() == 3 ? std::stoll(args[2])
                                                 : 0);
        if (command == "compile" && !args.empty()) {
            return commandCompile(
                args[0], {args.begin() + 1, args.end()});
        }
        if (command == "predict" && args.size() >= 2) {
            std::string output;
            std::vector<std::string> flags(args.begin() + 2,
                                           args.end());
            if (!flags.empty() && flags[0].rfind("--", 0) != 0) {
                output = flags[0];
                flags.erase(flags.begin());
            }
            return commandPredict(args[0], args[1], output, flags);
        }
        if (command == "bench" && !args.empty()) {
            int64_t batch = 1024;
            std::vector<std::string> flags(args.begin() + 1,
                                           args.end());
            if (!flags.empty() && flags[0].rfind("--", 0) != 0) {
                batch = std::stoll(flags[0]);
                flags.erase(flags.begin());
            }
            return commandBench(args[0], batch, flags);
        }
        if (command == "verify" && !args.empty()) {
            std::string schedule_path;
            std::vector<std::string> flags(args.begin() + 1,
                                           args.end());
            if (!flags.empty() && flags[0].rfind("--", 0) != 0) {
                schedule_path = flags[0];
                flags.erase(flags.begin());
            }
            return commandVerify(args[0], schedule_path, flags);
        }
        if (command == "serve" && !args.empty()) {
            return commandServe(args[0],
                                {args.begin() + 1, args.end()});
        }
        if (command == "tune" && !args.empty()) {
            int64_t sample = 512;
            std::vector<std::string> flags(args.begin() + 1,
                                           args.end());
            if (!flags.empty() && flags[0].rfind("--", 0) != 0) {
                sample = std::stoll(flags[0]);
                flags.erase(flags.begin());
            }
            return commandTune(args[0], sample, flags);
        }
    } catch (const Error &error) {
        std::fprintf(stderr, "treebeard: %s\n", error.what());
        return 1;
    }
    usage();
}
