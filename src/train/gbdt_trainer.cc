#include "train/gbdt_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace treebeard::train {

namespace {

/** Gradient/hessian pair accumulated per histogram bin and per node. */
struct GradientStats
{
    double gradient = 0.0;
    double hessian = 0.0;

    void
    add(double g, double h)
    {
        gradient += g;
        hessian += h;
    }

    GradientStats
    operator-(const GradientStats &other) const
    {
        return {gradient - other.gradient, hessian - other.hessian};
    }
};

/** Leaf weight for accumulated statistics with L2 regularization. */
double
leafWeight(const GradientStats &stats, double lambda)
{
    return -stats.gradient / (stats.hessian + lambda);
}

/** Structural gain score of a node's statistics. */
double
scoreOf(const GradientStats &stats, double lambda)
{
    return stats.gradient * stats.gradient / (stats.hessian + lambda);
}

/** Per-feature quantile bin boundaries. */
class FeatureBinner
{
  public:
    FeatureBinner(const data::Dataset &dataset, int32_t num_bins)
    {
        int32_t num_features = dataset.numFeatures();
        int64_t num_rows = dataset.numRows();
        boundaries_.resize(static_cast<size_t>(num_features));

        std::vector<float> column(static_cast<size_t>(num_rows));
        for (int32_t f = 0; f < num_features; ++f) {
            for (int64_t r = 0; r < num_rows; ++r)
                column[static_cast<size_t>(r)] = dataset.row(r)[f];
            std::sort(column.begin(), column.end());

            // Quantile boundaries; duplicates collapse (constant or
            // discrete features end up with fewer bins).
            std::vector<float> &bounds =
                boundaries_[static_cast<size_t>(f)];
            for (int32_t b = 1; b < num_bins; ++b) {
                size_t index = static_cast<size_t>(
                    static_cast<double>(b) * num_rows / num_bins);
                index = std::min(index, static_cast<size_t>(num_rows - 1));
                float boundary = column[index];
                if (bounds.empty() || boundary > bounds.back())
                    bounds.push_back(boundary);
            }
        }

        // Precompute the bin index of every (row, feature) cell.
        binned_.resize(static_cast<size_t>(num_rows) * num_features);
        for (int64_t r = 0; r < num_rows; ++r) {
            const float *row = dataset.row(r);
            for (int32_t f = 0; f < num_features; ++f) {
                binned_[static_cast<size_t>(r) * num_features + f] =
                    binOf(f, row[f]);
            }
        }
        numFeatures_ = num_features;
    }

    /** Bin index of @p value for feature @p f: count of boundaries <= value. */
    int32_t
    binOf(int32_t f, float value) const
    {
        const std::vector<float> &bounds = boundaries_[static_cast<size_t>(f)];
        // Rows with value < boundary go left when splitting at that
        // boundary, matching the `x < threshold` node predicate.
        auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
        return static_cast<int32_t>(it - bounds.begin());
    }

    /** Number of bins for feature @p f. */
    int32_t
    numBins(int32_t f) const
    {
        return static_cast<int32_t>(
                   boundaries_[static_cast<size_t>(f)].size()) + 1;
    }

    /** Split threshold corresponding to "bin <= b goes left". */
    float
    thresholdAfterBin(int32_t f, int32_t b) const
    {
        return boundaries_[static_cast<size_t>(f)][static_cast<size_t>(b)];
    }

    int32_t
    cachedBin(int64_t row, int32_t f) const
    {
        return binned_[static_cast<size_t>(row) * numFeatures_ + f];
    }

  private:
    std::vector<std::vector<float>> boundaries_;
    std::vector<int32_t> binned_;
    int32_t numFeatures_ = 0;
};

/** A node in the tree being grown level by level. */
struct BuildNode
{
    GradientStats stats;
    int32_t depth = 0;
    // Split decision (valid once chosen).
    bool isLeaf = true;
    int32_t splitFeature = -1;
    int32_t splitBin = -1;
    float splitThreshold = 0.0f;
    int32_t leftChild = -1;
    int32_t rightChild = -1;
    double rowCount = 0.0;
};

struct SplitChoice
{
    double gain = -std::numeric_limits<double>::infinity();
    int32_t feature = -1;
    int32_t bin = -1;
    GradientStats left;
    GradientStats right;
};

/**
 * Grow one regression tree on the given gradient/hessian statistics
 * (level-wise histogram splitting). @p node_of_row is scratch storage
 * of num_rows entries. Shared by the single-output and multiclass
 * boosting loops.
 */
model::DecisionTree
growBoostedTree(const TrainingConfig &config, const FeatureBinner &binner,
                const std::vector<double> &gradients,
                const std::vector<double> &hessians, int64_t num_rows,
                int32_t num_features, std::vector<int32_t> &node_of_row)
{
    // Grow one tree level by level.
    std::vector<BuildNode> nodes(1);
    std::fill(node_of_row.begin(), node_of_row.end(), 0);
    for (int64_t r = 0; r < num_rows; ++r) {
        nodes[0].stats.add(gradients[static_cast<size_t>(r)],
                           hessians[static_cast<size_t>(r)]);
        nodes[0].rowCount += 1.0;
    }

    std::vector<int32_t> frontier{0};
    for (int32_t depth = 0;
         depth < config.maxDepth && !frontier.empty(); ++depth) {
        // Histograms for every frontier node x feature x bin.
        // Flat layout: frontier-slot major, then feature, then bin.
        std::vector<int32_t> slot_of_node(nodes.size(), -1);
        for (size_t slot = 0; slot < frontier.size(); ++slot)
            slot_of_node[static_cast<size_t>(frontier[slot])] =
                static_cast<int32_t>(slot);

        std::vector<int32_t> feature_offsets(
            static_cast<size_t>(num_features) + 1, 0);
        for (int32_t f = 0; f < num_features; ++f) {
            feature_offsets[static_cast<size_t>(f) + 1] =
                feature_offsets[static_cast<size_t>(f)] +
                binner.numBins(f);
        }
        int32_t bins_per_slot =
            feature_offsets[static_cast<size_t>(num_features)];
        std::vector<GradientStats> histograms(
            frontier.size() * static_cast<size_t>(bins_per_slot));

        for (int64_t r = 0; r < num_rows; ++r) {
            int32_t node = node_of_row[static_cast<size_t>(r)];
            int32_t slot = slot_of_node[static_cast<size_t>(node)];
            if (slot < 0)
                continue;
            GradientStats *slot_hist =
                histograms.data() +
                static_cast<size_t>(slot) * bins_per_slot;
            double g = gradients[static_cast<size_t>(r)];
            double h = hessians[static_cast<size_t>(r)];
            for (int32_t f = 0; f < num_features; ++f) {
                int32_t bin = binner.cachedBin(r, f);
                slot_hist[feature_offsets[static_cast<size_t>(f)] + bin]
                    .add(g, h);
            }
        }

        // Choose the best split for each frontier node.
        std::vector<int32_t> next_frontier;
        for (size_t slot = 0; slot < frontier.size(); ++slot) {
            int32_t node_index = frontier[slot];
            BuildNode &node = nodes[static_cast<size_t>(node_index)];
            const GradientStats *slot_hist =
                histograms.data() + slot * bins_per_slot;

            SplitChoice best;
            double parent_score = scoreOf(node.stats, config.lambda);
            for (int32_t f = 0; f < num_features; ++f) {
                GradientStats left;
                int32_t bins = binner.numBins(f);
                for (int32_t b = 0; b + 1 < bins; ++b) {
                    left.add(
                        slot_hist[feature_offsets[static_cast<size_t>(f)]
                                  + b].gradient,
                        slot_hist[feature_offsets[static_cast<size_t>(f)]
                                  + b].hessian);
                    GradientStats right = node.stats - left;
                    if (left.hessian < config.minChildWeight ||
                        right.hessian < config.minChildWeight) {
                        continue;
                    }
                    double gain = scoreOf(left, config.lambda) +
                                  scoreOf(right, config.lambda) -
                                  parent_score;
                    if (gain > best.gain) {
                        best.gain = gain;
                        best.feature = f;
                        best.bin = b;
                        best.left = left;
                        best.right = right;
                    }
                }
            }

            if (best.feature < 0 || best.gain <= config.minSplitGain)
                continue; // stays a leaf

            node.isLeaf = false;
            node.splitFeature = best.feature;
            node.splitBin = best.bin;
            node.splitThreshold =
                binner.thresholdAfterBin(best.feature, best.bin);
            node.leftChild = static_cast<int32_t>(nodes.size());
            node.rightChild = static_cast<int32_t>(nodes.size() + 1);

            BuildNode left_child;
            left_child.stats = best.left;
            left_child.depth = node.depth + 1;
            BuildNode right_child;
            right_child.stats = best.right;
            right_child.depth = node.depth + 1;
            nodes.push_back(left_child);
            nodes.push_back(right_child);
            next_frontier.push_back(node.leftChild);
            next_frontier.push_back(node.rightChild);
        }

        if (next_frontier.empty())
            break;

        // Re-partition rows to their new nodes.
        for (int64_t r = 0; r < num_rows; ++r) {
            int32_t node_index = node_of_row[static_cast<size_t>(r)];
            const BuildNode &node =
                nodes[static_cast<size_t>(node_index)];
            if (node.isLeaf)
                continue;
            int32_t bin = binner.cachedBin(r, node.splitFeature);
            int32_t child = bin <= node.splitBin ? node.leftChild
                                                 : node.rightChild;
            node_of_row[static_cast<size_t>(r)] = child;
            nodes[static_cast<size_t>(child)].rowCount += 1.0;
        }
        frontier = std::move(next_frontier);
    }

    // Materialize the grown tree as a model::DecisionTree
    // (children first, then parents, via reverse iteration).
    model::DecisionTree tree;
    std::vector<model::NodeIndex> materialized(nodes.size());
    for (size_t i = nodes.size(); i-- > 0;) {
        const BuildNode &node = nodes[i];
        if (node.isLeaf) {
            double weight =
                leafWeight(node.stats, config.lambda) *
                config.learningRate;
            materialized[i] = tree.addLeaf(
                static_cast<float>(weight), node.rowCount);
        } else {
            materialized[i] = tree.addInternal(
                node.splitFeature, node.splitThreshold,
                materialized[static_cast<size_t>(node.leftChild)],
                materialized[static_cast<size_t>(node.rightChild)],
                node.rowCount);
        }
    }
    tree.setRoot(materialized[0]);

    return tree;
}

/**
 * Multiclass softmax boosting: each round grows one tree per class on
 * that class's softmax gradients (XGBoost multi:softprob layout: tree
 * t feeds class t % numClasses). Labels must be integer class ids.
 */
model::Forest
trainMulticlassImpl(const TrainingConfig &config,
                    const data::Dataset &dataset,
                    const FeatureBinner &binner,
                    std::vector<TrainingRound> *history)
{
    int32_t classes = config.numClasses;
    fatalIf(classes < 2,
            "multiclass training needs numClasses >= 2 (got ", classes,
            ")");
    int64_t num_rows = dataset.numRows();
    int32_t num_features = dataset.numFeatures();

    std::vector<int32_t> labels(static_cast<size_t>(num_rows));
    for (int64_t r = 0; r < num_rows; ++r) {
        float label = dataset.label(r);
        int32_t class_id = static_cast<int32_t>(label);
        fatalIf(class_id < 0 || class_id >= classes ||
                    static_cast<float>(class_id) != label,
                "row ", r, " label ", label,
                " is not an integer class id in [0, ", classes, ")");
        labels[static_cast<size_t>(r)] = class_id;
    }

    model::Forest forest(num_features,
                         model::Objective::kMulticlassSoftmax, 0.0f);
    forest.setNumClasses(classes);
    history->clear();

    std::vector<double> margins(
        static_cast<size_t>(num_rows) * classes, 0.0);
    std::vector<double> probabilities(
        static_cast<size_t>(num_rows) * classes, 0.0);
    std::vector<double> gradients(static_cast<size_t>(num_rows));
    std::vector<double> hessians(static_cast<size_t>(num_rows));
    std::vector<int32_t> node_of_row(static_cast<size_t>(num_rows));

    for (int64_t round = 0; round < config.numTrees; ++round) {
        // Softmax probabilities and the multiclass log loss.
        double loss = 0.0;
        for (int64_t r = 0; r < num_rows; ++r) {
            double *row_margins =
                margins.data() + static_cast<size_t>(r) * classes;
            double *row_probabilities =
                probabilities.data() + static_cast<size_t>(r) * classes;
            double max_margin = row_margins[0];
            for (int32_t k = 1; k < classes; ++k)
                max_margin = std::max(max_margin, row_margins[k]);
            double sum = 0.0;
            for (int32_t k = 0; k < classes; ++k) {
                row_probabilities[k] =
                    std::exp(row_margins[k] - max_margin);
                sum += row_probabilities[k];
            }
            for (int32_t k = 0; k < classes; ++k)
                row_probabilities[k] /= sum;
            double p_true = std::clamp(
                row_probabilities[labels[static_cast<size_t>(r)]],
                1e-12, 1.0);
            loss -= std::log(p_true);
        }
        history->push_back({round, loss / static_cast<double>(num_rows)});

        // One tree per class on that class's gradients.
        for (int32_t k = 0; k < classes; ++k) {
            for (int64_t r = 0; r < num_rows; ++r) {
                double p = probabilities[static_cast<size_t>(r) *
                                             classes +
                                         k];
                double y =
                    labels[static_cast<size_t>(r)] == k ? 1.0 : 0.0;
                gradients[static_cast<size_t>(r)] = p - y;
                hessians[static_cast<size_t>(r)] =
                    std::max(p * (1.0 - p), 1e-12);
            }
            model::DecisionTree tree = growBoostedTree(
                config, binner, gradients, hessians, num_rows,
                num_features, node_of_row);
            for (int64_t r = 0; r < num_rows; ++r) {
                margins[static_cast<size_t>(r) * classes + k] +=
                    tree.predict(dataset.row(r));
            }
            forest.addTree(std::move(tree));
        }
    }

    forest.validate();
    return forest;
}

} // namespace

GbdtTrainer::GbdtTrainer(TrainingConfig config) : config_(config)
{
    fatalIf(config_.numTrees <= 0, "numTrees must be positive");
    fatalIf(config_.maxDepth <= 0, "maxDepth must be positive");
    fatalIf(config_.numBins < 2, "numBins must be at least 2");
    fatalIf(config_.learningRate <= 0.0, "learningRate must be positive");
}

model::Forest
GbdtTrainer::train(const data::Dataset &dataset)
{
    fatalIf(!dataset.hasLabels(), "training requires labels");
    int64_t num_rows = dataset.numRows();
    int32_t num_features = dataset.numFeatures();
    fatalIf(num_rows == 0, "training requires at least one row");

    FeatureBinner binner(dataset, config_.numBins);

    // Base score: mean label for regression; prior log-odds margin for
    // logistic (applied through the sigmoid at prediction time).
    float base_score = 0.0f;
    {
        double label_sum = 0.0;
        for (int64_t r = 0; r < num_rows; ++r)
            label_sum += dataset.label(r);
        double mean = label_sum / static_cast<double>(num_rows);
        if (config_.objective == model::Objective::kRegression) {
            base_score = static_cast<float>(mean);
        } else {
            double clamped = std::clamp(mean, 1e-6, 1.0 - 1e-6);
            base_score =
                static_cast<float>(std::log(clamped / (1.0 - clamped)));
        }
    }

    if (config_.objective == model::Objective::kMulticlassSoftmax)
        return trainMulticlassImpl(config_, dataset, binner, &history_);

    model::Forest forest(num_features, config_.objective, base_score);
    history_.clear();

    std::vector<double> margins(static_cast<size_t>(num_rows), base_score);
    std::vector<double> gradients(static_cast<size_t>(num_rows));
    std::vector<double> hessians(static_cast<size_t>(num_rows));
    std::vector<int32_t> node_of_row(static_cast<size_t>(num_rows));

    for (int64_t round = 0; round < config_.numTrees; ++round) {
        // Per-row gradient statistics for the current margins.
        double loss = 0.0;
        for (int64_t r = 0; r < num_rows; ++r) {
            double label = dataset.label(r);
            double margin = margins[static_cast<size_t>(r)];
            if (config_.objective == model::Objective::kRegression) {
                double residual = margin - label;
                gradients[static_cast<size_t>(r)] = residual;
                hessians[static_cast<size_t>(r)] = 1.0;
                loss += residual * residual;
            } else {
                double probability = 1.0 / (1.0 + std::exp(-margin));
                gradients[static_cast<size_t>(r)] = probability - label;
                hessians[static_cast<size_t>(r)] =
                    std::max(probability * (1.0 - probability), 1e-12);
                double p = std::clamp(probability, 1e-12, 1.0 - 1e-12);
                loss -= label * std::log(p) + (1.0 - label) * std::log(1 - p);
            }
        }
        loss /= static_cast<double>(num_rows);
        history_.push_back({round, loss});

        model::DecisionTree tree = growBoostedTree(
            config_, binner, gradients, hessians, num_rows,
            num_features, node_of_row);

        // Update margins with the new tree's predictions.
        for (int64_t r = 0; r < num_rows; ++r)
            margins[static_cast<size_t>(r)] += tree.predict(dataset.row(r));

        forest.addTree(std::move(tree));
    }

    forest.validate();
    return forest;
}

double
meanSquaredError(const std::vector<float> &predictions,
                 const std::vector<float> &labels)
{
    fatalIf(predictions.size() != labels.size(),
            "prediction/label size mismatch");
    fatalIf(predictions.empty(), "empty prediction vector");
    double sum = 0.0;
    for (size_t i = 0; i < predictions.size(); ++i) {
        double diff = predictions[i] - labels[i];
        sum += diff * diff;
    }
    return sum / static_cast<double>(predictions.size());
}

double
logLoss(const std::vector<float> &probabilities,
        const std::vector<float> &labels)
{
    fatalIf(probabilities.size() != labels.size(),
            "probability/label size mismatch");
    fatalIf(probabilities.empty(), "empty probability vector");
    double sum = 0.0;
    for (size_t i = 0; i < probabilities.size(); ++i) {
        double p = std::clamp(static_cast<double>(probabilities[i]),
                              1e-12, 1.0 - 1e-12);
        sum -= labels[i] * std::log(p) +
               (1.0 - labels[i]) * std::log(1.0 - p);
    }
    return sum / static_cast<double>(probabilities.size());
}

} // namespace treebeard::train
