/**
 * @file
 * A histogram-based gradient-boosted decision tree trainer.
 *
 * The paper trains its benchmark models with XGBoost; this trainer is
 * the in-repo substitute. It implements the standard second-order
 * boosting formulation (gradient/hessian statistics, gain-based split
 * selection with L2 regularization) over quantized feature histograms,
 * the same algorithm family as XGBoost's `hist` tree method. Trained
 * trees carry leaf hit counts, which probability-based tiling
 * (Section III-C) consumes.
 */
#ifndef TREEBEARD_TRAIN_GBDT_TRAINER_H
#define TREEBEARD_TRAIN_GBDT_TRAINER_H

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "model/forest.h"

namespace treebeard::train {

/** Hyper-parameters for GbdtTrainer. */
struct TrainingConfig
{
    /** Number of boosting rounds (trees). */
    int64_t numTrees = 100;
    /** Maximum tree depth. */
    int32_t maxDepth = 6;
    /** Shrinkage applied to every leaf value. */
    double learningRate = 0.1;
    /** L2 regularization on leaf weights (XGBoost lambda). */
    double lambda = 1.0;
    /** Minimum loss reduction required to split (XGBoost gamma). */
    double minSplitGain = 0.0;
    /** Minimum hessian mass on each side of a split. */
    double minChildWeight = 1.0;
    /** Number of histogram bins per feature. */
    int32_t numBins = 64;
    /** Output transform / loss. */
    model::Objective objective = model::Objective::kRegression;
    /**
     * Output classes for kMulticlassSoftmax (labels must be integers
     * in [0, numClasses)). Each boosting round then grows one tree
     * per class, so the model ends with numTrees * numClasses trees.
     */
    int32_t numClasses = 1;
};

/** Per-round training progress, for loss-curve tests and examples. */
struct TrainingRound
{
    int64_t treeIndex;
    double trainingLoss;
};

/**
 * Gradient-boosted tree trainer.
 *
 * Usage:
 *   GbdtTrainer trainer(config);
 *   model::Forest forest = trainer.train(dataset);
 */
class GbdtTrainer
{
  public:
    explicit GbdtTrainer(TrainingConfig config);

    /**
     * Train on @p dataset (must have labels).
     * @return the boosted ensemble, validated, with hit counts set.
     */
    model::Forest train(const data::Dataset &dataset);

    /** Per-round training losses from the last train() call. */
    const std::vector<TrainingRound> &history() const { return history_; }

  private:
    TrainingConfig config_;
    std::vector<TrainingRound> history_;
};

/** Mean squared error between predictions and labels. */
double meanSquaredError(const std::vector<float> &predictions,
                        const std::vector<float> &labels);

/** Binary log-loss between predicted probabilities and 0/1 labels. */
double logLoss(const std::vector<float> &probabilities,
               const std::vector<float> &labels);

} // namespace treebeard::train

#endif // TREEBEARD_TRAIN_GBDT_TRAINER_H
