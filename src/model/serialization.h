/**
 * @file
 * Model (de)serialization: the native Treebeard JSON format and an
 * importer for the XGBoost JSON model dump format (the paper's input
 * models are XGBoost-trained).
 */
#ifndef TREEBEARD_MODEL_SERIALIZATION_H
#define TREEBEARD_MODEL_SERIALIZATION_H

#include <string>

#include "common/json.h"
#include "model/forest.h"

namespace treebeard::model {

/** Serialize @p forest to the native JSON document. */
JsonValue forestToJson(const Forest &forest);

/** Parse a native-format JSON document into a Forest; validates it. */
Forest forestFromJson(const JsonValue &document);

/** Save @p forest to @p path in the native format. */
void saveForest(const Forest &forest, const std::string &path);

/** Load a native-format model file. */
Forest loadForest(const std::string &path);

/**
 * Import a model from the XGBoost JSON dump format
 * (learner.gradient_booster.model.trees[*] with split_indices /
 * split_conditions / left_children / right_children / base_weights and
 * optional sum_hessian leaf statistics).
 * Supports reg:squarederror and binary:logistic objectives.
 */
Forest importXgboostJson(const JsonValue &document);

/** Load and import an XGBoost JSON model file. */
Forest loadXgboostModel(const std::string &path);

} // namespace treebeard::model

#endif // TREEBEARD_MODEL_SERIALIZATION_H
