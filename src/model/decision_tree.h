/**
 * @file
 * A single binary decision tree: construction API, reference traversal
 * and structural queries. This is the object the high-level IR wraps;
 * tiling and reordering operate on collections of these.
 */
#ifndef TREEBEARD_MODEL_DECISION_TREE_H
#define TREEBEARD_MODEL_DECISION_TREE_H

#include <cstdint>
#include <vector>

#include "model/node.h"

namespace treebeard::model {

/**
 * A binary decision tree τ = (V, E, r).
 *
 * Nodes live in a contiguous vector and refer to each other by index.
 * The tree is built bottom-up (children before parents) or top-down with
 * explicit child assignment; validate() checks the result is a proper
 * binary tree rooted at root().
 */
class DecisionTree
{
  public:
    DecisionTree() = default;

    /** Append a leaf carrying @p value; returns its index. */
    NodeIndex addLeaf(float value, double hit_count = 0.0);

    /**
     * Append an internal node splitting on @p feature_index at
     * @p threshold with the given children; returns its index.
     */
    NodeIndex addInternal(int32_t feature_index, float threshold,
                          NodeIndex left, NodeIndex right,
                          double hit_count = 0.0);

    /** Set the root node index. */
    void setRoot(NodeIndex root);

    NodeIndex root() const { return root_; }
    int64_t numNodes() const { return static_cast<int64_t>(nodes_.size()); }
    bool empty() const { return nodes_.empty(); }

    const Node &node(NodeIndex index) const;
    Node &mutableNode(NodeIndex index);
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Indices of all leaves, in node-vector order. */
    std::vector<NodeIndex> leafIndices() const;
    int64_t numLeaves() const;

    /** Depth of @p index below the root (root depth is 0). */
    int32_t depth(NodeIndex index) const;

    /** Maximum leaf depth (a single-leaf tree has depth 0). */
    int32_t maxDepth() const;

    /** Parent of each node (kInvalidNode for the root). */
    std::vector<NodeIndex> parentArray() const;

    /**
     * Walk the tree for @p row (dense feature vector) and return the
     * reached leaf's value. This is the reference semantics all compiled
     * variants must match bit-exactly.
     */
    float predict(const float *row) const;

    /** As predict(), but returns the reached leaf's node index. */
    NodeIndex predictLeaf(const float *row) const;

    /**
     * Probability of reaching each leaf, derived from hit counts.
     *
     * Guarantee: when no hit counts were recorded (all hitCount fields
     * are <= 0), the result is the deterministic uniform distribution
     * 1/numLeaves for every leaf — never NaN, never zeros — so
     * downstream consumers (probability tiling, hot-path selection)
     * can rely on a well-formed distribution without re-checking the
     * statistics. Hot-path selection additionally detects this case
     * and switches to its depth-based fallback, reported as
     * hir.hotpath.no-stats.
     *
     * @return pairs are implicit: result[i] corresponds to
     *         leafIndices()[i]; entries sum to 1 for non-empty trees.
     */
    std::vector<double> leafProbabilities() const;

    /**
     * Fill hitCount for internal nodes by summing descendants' leaf
     * hits (footnote 6 in the paper).
     */
    void accumulateInternalHitCounts();

    /**
     * Check structural invariants: root set, all indices in range,
     * internal nodes have exactly two children, every node except the
     * root has exactly one parent, all nodes reachable from the root,
     * feature indices within [0, num_features).
     * fatal() with a diagnostic on the first violation.
     */
    void validate(int32_t num_features) const;

  private:
    std::vector<Node> nodes_;
    NodeIndex root_ = kInvalidNode;
};

} // namespace treebeard::model

#endif // TREEBEARD_MODEL_DECISION_TREE_H
