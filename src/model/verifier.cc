#include "model/verifier.h"

#include <cmath>
#include <string>
#include <vector>

namespace treebeard::model {

using analysis::DiagnosticEngine;
using analysis::IrLevel;

void
verifyTree(const DecisionTree &tree, int32_t num_features,
           int64_t tree_id, DiagnosticEngine &diag)
{
    if (tree.empty()) {
        diag.error(IrLevel::kModel, "model.tree.empty",
                   "tree has no nodes")
            .atTree(tree_id);
        return;
    }
    NodeIndex root = tree.root();
    if (root < 0 || root >= tree.numNodes()) {
        diag.error(IrLevel::kModel, "model.root.range",
                   "root index " + std::to_string(root) +
                       " out of range [0, " +
                       std::to_string(tree.numNodes()) + ")")
            .atTree(tree_id);
        return;
    }

    bool links_intact = true;
    std::vector<int32_t> in_degree(
        static_cast<size_t>(tree.numNodes()), 0);
    for (NodeIndex i = 0; i < tree.numNodes(); ++i) {
        const Node &n = tree.node(i);
        if (n.isLeaf()) {
            if (n.left != kInvalidNode || n.right != kInvalidNode) {
                diag.error(IrLevel::kModel, "model.leaf.children",
                           "leaf node " + std::to_string(i) +
                               " has children")
                    .atTree(tree_id)
                    .atSlot(i);
                links_intact = false;
            }
            if (!std::isfinite(n.threshold)) {
                diag.error(IrLevel::kModel, "model.leaf.non-finite",
                           "leaf node " + std::to_string(i) +
                               " carries a non-finite value")
                    .atTree(tree_id)
                    .atSlot(i);
            }
            continue;
        }
        if (n.featureIndex < 0) {
            diag.error(IrLevel::kModel, "model.feature.negative",
                       "internal node " + std::to_string(i) +
                           " has negative feature index " +
                           std::to_string(n.featureIndex))
                .atTree(tree_id)
                .atSlot(i);
        } else if (n.featureIndex >= num_features) {
            diag.error(IrLevel::kModel, "model.feature.out-of-range",
                       "node " + std::to_string(i) +
                           " references feature " +
                           std::to_string(n.featureIndex) +
                           " but the model has only " +
                           std::to_string(num_features) + " features")
                .atTree(tree_id)
                .atSlot(i);
        }
        if (!std::isfinite(n.threshold)) {
            diag.error(IrLevel::kModel, "model.threshold.non-finite",
                       "internal node " + std::to_string(i) +
                           " has a non-finite threshold")
                .atTree(tree_id)
                .atSlot(i);
        }
        if (n.left == kInvalidNode || n.right == kInvalidNode) {
            diag.error(IrLevel::kModel, "model.child.missing",
                       "internal node " + std::to_string(i) +
                           " is missing a child")
                .atTree(tree_id)
                .atSlot(i);
            links_intact = false;
            continue;
        }
        if (n.left < 0 || n.left >= tree.numNodes() || n.right < 0 ||
            n.right >= tree.numNodes()) {
            diag.error(IrLevel::kModel, "model.child.out-of-range",
                       "node " + std::to_string(i) +
                           " has a child index out of range [0, " +
                           std::to_string(tree.numNodes()) + ")")
                .atTree(tree_id)
                .atSlot(i);
            links_intact = false;
            continue;
        }
        if (n.left == i || n.right == i) {
            diag.error(IrLevel::kModel, "model.child.self",
                       "node " + std::to_string(i) +
                           " is its own child")
                .atTree(tree_id)
                .atSlot(i);
            links_intact = false;
            continue;
        }
        ++in_degree[static_cast<size_t>(n.left)];
        ++in_degree[static_cast<size_t>(n.right)];
    }

    // Topology checks (single parent, reachability) only make sense
    // when every link landed in range.
    if (!links_intact)
        return;

    if (in_degree[static_cast<size_t>(root)] != 0) {
        diag.error(IrLevel::kModel, "model.root.parent",
                   "root node has a parent")
            .atTree(tree_id)
            .atSlot(root);
    }
    for (NodeIndex i = 0; i < tree.numNodes(); ++i) {
        if (i == root)
            continue;
        if (in_degree[static_cast<size_t>(i)] == 0) {
            diag.error(IrLevel::kModel, "model.node.unreachable",
                       "node " + std::to_string(i) +
                           " is unreachable (no parent)")
                .atTree(tree_id)
                .atSlot(i);
        } else if (in_degree[static_cast<size_t>(i)] > 1) {
            diag.error(IrLevel::kModel, "model.node.shared",
                       "node " + std::to_string(i) +
                           " has multiple parents")
                .atTree(tree_id)
                .atSlot(i);
        }
    }
}

void
verifyForest(const Forest &forest, DiagnosticEngine &diag)
{
    if (forest.numFeatures() <= 0)
        diag.error(IrLevel::kModel, "model.features.none",
                   "forest has no features");
    if (forest.numTrees() == 0)
        diag.error(IrLevel::kModel, "model.trees.none",
                   "forest has no trees");
    if (forest.numClasses() > 1 &&
        forest.objective() != Objective::kMulticlassSoftmax) {
        diag.error(IrLevel::kModel, "model.objective.classes",
                   "multi-class forests require the "
                   "multiclass_softmax objective");
    }
    if (forest.objective() == Objective::kMulticlassSoftmax &&
        forest.numClasses() < 2) {
        diag.error(IrLevel::kModel, "model.objective.classes",
                   "the multiclass_softmax objective needs "
                   "numClasses >= 2");
    }
    if (!std::isfinite(forest.baseScore()))
        diag.error(IrLevel::kModel, "model.threshold.non-finite",
                   "forest base score is non-finite");
    for (int64_t i = 0; i < forest.numTrees(); ++i)
        verifyTree(forest.tree(i), forest.numFeatures(), i, diag);
}

} // namespace treebeard::model
