/**
 * @file
 * A decision-tree ensemble ("forest"): the object Treebeard compiles.
 * The forest's predict() is the reference semantics of the generated
 * predictForest function.
 */
#ifndef TREEBEARD_MODEL_FOREST_H
#define TREEBEARD_MODEL_FOREST_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/decision_tree.h"

namespace treebeard::model {

/** Post-aggregation transform applied to the summed tree outputs. */
enum class Objective {
    /** Raw sum of tree outputs plus the base score. */
    kRegression,
    /** Sigmoid of the sum (XGBoost binary:logistic). */
    kBinaryLogistic,
    /**
     * Softmax over per-class margins (XGBoost multi:softprob). Trees
     * are assigned to classes round-robin: tree t contributes to
     * class t % numClasses.
     */
    kMulticlassSoftmax,
};

/** Parse/print helpers for Objective. */
const char *objectiveName(Objective objective);
Objective objectiveFromName(const std::string &name);

/** Apply @p objective 's output transform to a raw margin. */
float applyObjective(Objective objective, float margin);

/**
 * A gradient-boosted / random-forest style ensemble.
 *
 * Prediction for a row is
 *   transform(baseScore + sum_t tree_t(row))
 * where transform is determined by the objective.
 */
class Forest
{
  public:
    Forest() = default;
    Forest(int32_t num_features, Objective objective = Objective::kRegression,
           float base_score = 0.0f)
        : numFeatures_(num_features), objective_(objective),
          baseScore_(base_score)
    {}

    int32_t numFeatures() const { return numFeatures_; }
    void setNumFeatures(int32_t value) { numFeatures_ = value; }

    Objective objective() const { return objective_; }
    void setObjective(Objective value) { objective_ = value; }

    float baseScore() const { return baseScore_; }
    void setBaseScore(float value) { baseScore_ = value; }

    /** Output classes; 1 for regression/binary models. */
    int32_t numClasses() const { return numClasses_; }
    void setNumClasses(int32_t value);

    /** Class that tree @p tree_index contributes to (round-robin). */
    int32_t
    treeClass(int64_t tree_index) const
    {
        return static_cast<int32_t>(tree_index % numClasses_);
    }

    int64_t numTrees() const { return static_cast<int64_t>(trees_.size()); }
    const DecisionTree &tree(int64_t index) const;
    DecisionTree &mutableTree(int64_t index);
    const std::vector<DecisionTree> &trees() const { return trees_; }

    /** Append a tree (moved in); returns its index. */
    int64_t addTree(DecisionTree tree);

    /** Total node count across all trees. */
    int64_t totalNodes() const;

    /** Total leaf count across all trees. */
    int64_t totalLeaves() const;

    /** Maximum tree depth across the ensemble. */
    int32_t maxDepth() const;

    /** Reference prediction for one dense row of numFeatures() floats. */
    float predict(const float *row) const;

    /** Raw margin (no objective transform) for one row. */
    float predictMargin(const float *row) const;

    /**
     * Reference batch prediction.
     * @param rows row-major batch, num_rows x numFeatures().
     * @param num_rows batch size.
     * @param predictions output array of num_rows * numClasses()
     *        entries (one per row for single-output models, one
     *        probability per class per row for multiclass).
     */
    void predictBatch(const float *rows, int64_t num_rows,
                      float *predictions) const;

    /**
     * Reference multiclass prediction for one row: per-class softmax
     * probabilities into @p out (numClasses() entries).
     */
    void predictMulticlass(const float *row, float *out) const;

    /** Validate every tree against this forest's feature count. */
    void validate() const;

  private:
    std::vector<DecisionTree> trees_;
    int32_t numFeatures_ = 0;
    Objective objective_ = Objective::kRegression;
    float baseScore_ = 0.0f;
    int32_t numClasses_ = 1;
};

/**
 * In-place softmax over @p count margins (numerically stabilized).
 */
void softmaxInPlace(float *values, int32_t count);

} // namespace treebeard::model

#endif // TREEBEARD_MODEL_FOREST_H
