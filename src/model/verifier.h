/**
 * @file
 * Model-level structural and value-range verification with structured
 * diagnostics. This is the diagnostic-engine counterpart of
 * Forest::validate(): instead of throwing on the first violation, it
 * reports every problem it finds (out-of-range child indices,
 * non-finite thresholds, negative feature indices, orphaned or shared
 * nodes, objective/class mismatches) into a DiagnosticEngine.
 *
 * Lives in the model library (not src/analysis) so deserialization can
 * run it at load time; analysis::verifyForest delegates here.
 */
#ifndef TREEBEARD_MODEL_VERIFIER_H
#define TREEBEARD_MODEL_VERIFIER_H

#include "analysis/diagnostics.h"
#include "model/forest.h"

namespace treebeard::model {

/**
 * Verify one tree; diagnostics are located at tree @p tree_id.
 * Reports but never throws.
 */
void verifyTree(const DecisionTree &tree, int32_t num_features,
                int64_t tree_id, analysis::DiagnosticEngine &diag);

/** Verify @p forest (all trees + forest-level consistency). */
void verifyForest(const Forest &forest,
                  analysis::DiagnosticEngine &diag);

} // namespace treebeard::model

#endif // TREEBEARD_MODEL_VERIFIER_H
