#include "model/serialization.h"

#include <string>

#include "common/logging.h"

namespace treebeard::model {

namespace {

constexpr int kFormatVersion = 1;

JsonValue
treeToJson(const DecisionTree &tree)
{
    JsonValue::Array thresholds, features, lefts, rights, hits,
        default_lefts;
    for (const Node &node : tree.nodes()) {
        thresholds.emplace_back(static_cast<double>(node.threshold));
        features.emplace_back(static_cast<int64_t>(node.featureIndex));
        lefts.emplace_back(static_cast<int64_t>(node.left));
        rights.emplace_back(static_cast<int64_t>(node.right));
        hits.emplace_back(node.hitCount);
        default_lefts.emplace_back(node.defaultLeft);
    }
    JsonValue::Object object;
    object["root"] = JsonValue(static_cast<int64_t>(tree.root()));
    object["threshold"] = JsonValue(std::move(thresholds));
    object["feature"] = JsonValue(std::move(features));
    object["left"] = JsonValue(std::move(lefts));
    object["right"] = JsonValue(std::move(rights));
    object["hit_count"] = JsonValue(std::move(hits));
    object["default_left"] = JsonValue(std::move(default_lefts));
    return JsonValue(std::move(object));
}

DecisionTree
treeFromJson(const JsonValue &value)
{
    const auto &thresholds = value.at("threshold").asArray();
    const auto &features = value.at("feature").asArray();
    const auto &lefts = value.at("left").asArray();
    const auto &rights = value.at("right").asArray();
    const auto &hits = value.at("hit_count").asArray();
    size_t count = thresholds.size();
    fatalIf(features.size() != count || lefts.size() != count ||
                rights.size() != count || hits.size() != count,
            "tree arrays have inconsistent lengths");

    JsonValue absent;
    const JsonValue &default_lefts = value.getOr("default_left", absent);

    DecisionTree tree;
    for (size_t i = 0; i < count; ++i) {
        int32_t feature = static_cast<int32_t>(features[i].asInt());
        if (feature == kLeafFeature) {
            tree.addLeaf(static_cast<float>(thresholds[i].asNumber()),
                         hits[i].asNumber());
        } else {
            NodeIndex index = tree.addInternal(
                feature, static_cast<float>(thresholds[i].asNumber()),
                static_cast<NodeIndex>(lefts[i].asInt()),
                static_cast<NodeIndex>(rights[i].asInt()),
                hits[i].asNumber());
            if (default_lefts.isArray()) {
                tree.mutableNode(index).defaultLeft =
                    default_lefts.asArray()[i].asBoolean();
            }
        }
    }
    tree.setRoot(static_cast<NodeIndex>(value.at("root").asInt()));
    return tree;
}

} // namespace

JsonValue
forestToJson(const Forest &forest)
{
    JsonValue::Object object;
    object["format"] = JsonValue("treebeard");
    object["version"] = JsonValue(static_cast<int64_t>(kFormatVersion));
    object["num_features"] =
        JsonValue(static_cast<int64_t>(forest.numFeatures()));
    object["objective"] = JsonValue(objectiveName(forest.objective()));
    object["base_score"] = JsonValue(static_cast<double>(forest.baseScore()));
    object["num_classes"] =
        JsonValue(static_cast<int64_t>(forest.numClasses()));
    JsonValue::Array trees;
    for (const DecisionTree &tree : forest.trees())
        trees.push_back(treeToJson(tree));
    object["trees"] = JsonValue(std::move(trees));
    return JsonValue(std::move(object));
}

Forest
forestFromJson(const JsonValue &document)
{
    fatalIf(!document.isObject(), "model document must be a JSON object");
    fatalIf(document.at("format").asString() != "treebeard",
            "not a treebeard model file");
    int64_t version = document.at("version").asInt();
    fatalIf(version != kFormatVersion,
            "unsupported model format version ", version);

    Forest forest(static_cast<int32_t>(document.at("num_features").asInt()),
                  objectiveFromName(document.at("objective").asString()),
                  static_cast<float>(document.at("base_score").asNumber()));
    JsonValue one(static_cast<int64_t>(1));
    forest.setNumClasses(
        static_cast<int32_t>(document.getOr("num_classes", one).asInt()));
    for (const JsonValue &tree : document.at("trees").asArray())
        forest.addTree(treeFromJson(tree));
    forest.validate();
    return forest;
}

void
saveForest(const Forest &forest, const std::string &path)
{
    writeStringToFile(path, forestToJson(forest).dump());
}

Forest
loadForest(const std::string &path)
{
    return forestFromJson(JsonValue::parse(readFileToString(path)));
}

Forest
importXgboostJson(const JsonValue &document)
{
    const JsonValue &learner = document.at("learner");
    const JsonValue &model =
        learner.at("gradient_booster").at("model");

    int32_t num_features = 0;
    if (learner.contains("learner_model_param")) {
        const JsonValue &params = learner.at("learner_model_param");
        if (params.contains("num_feature")) {
            const JsonValue &value = params.at("num_feature");
            // XGBoost stores numbers as strings in this section.
            num_features = value.isString()
                               ? std::stoi(value.asString())
                               : static_cast<int32_t>(value.asInt());
        }
    }

    float base_score = 0.0f;
    Objective objective = Objective::kRegression;
    if (learner.contains("learner_model_param")) {
        const JsonValue &params = learner.at("learner_model_param");
        if (params.contains("base_score")) {
            const JsonValue &value = params.at("base_score");
            base_score = value.isString()
                             ? std::stof(value.asString())
                             : static_cast<float>(value.asNumber());
        }
    }
    if (learner.contains("objective")) {
        const JsonValue &objective_value = learner.at("objective");
        if (objective_value.contains("name")) {
            const std::string &name = objective_value.at("name").asString();
            if (name == "binary:logistic")
                objective = Objective::kBinaryLogistic;
        }
    }

    Forest forest(num_features, objective, base_score);
    for (const JsonValue &tree_json : model.at("trees").asArray()) {
        const auto &split_indices = tree_json.at("split_indices").asArray();
        const auto &split_conditions =
            tree_json.at("split_conditions").asArray();
        const auto &left_children = tree_json.at("left_children").asArray();
        const auto &right_children = tree_json.at("right_children").asArray();
        const auto &base_weights = tree_json.at("base_weights").asArray();
        JsonValue empty;
        const JsonValue &hessians = tree_json.getOr("sum_hessian", empty);
        const JsonValue &default_lefts =
            tree_json.getOr("default_left", empty);

        size_t count = split_indices.size();
        fatalIf(split_conditions.size() != count ||
                    left_children.size() != count ||
                    right_children.size() != count,
                "XGBoost tree arrays have inconsistent lengths");

        DecisionTree tree;
        for (size_t i = 0; i < count; ++i) {
            NodeIndex left =
                static_cast<NodeIndex>(left_children[i].asInt());
            NodeIndex right =
                static_cast<NodeIndex>(right_children[i].asInt());
            double hits = hessians.isArray() && i < hessians.asArray().size()
                              ? hessians.asArray()[i].asNumber()
                              : 0.0;
            if (left == kInvalidNode) {
                // XGBoost leaves store the value in base_weights.
                tree.addLeaf(
                    static_cast<float>(base_weights[i].asNumber()), hits);
            } else {
                int32_t feature =
                    static_cast<int32_t>(split_indices[i].asInt());
                fatalIf(feature < 0, "invalid split index in XGBoost model");
                num_features =
                    std::max(num_features, feature + 1);
                NodeIndex index = tree.addInternal(
                    feature,
                    static_cast<float>(split_conditions[i].asNumber()),
                    left, right, hits);
                if (default_lefts.isArray() &&
                    i < default_lefts.asArray().size()) {
                    const JsonValue &flag = default_lefts.asArray()[i];
                    tree.mutableNode(index).defaultLeft =
                        flag.isBoolean() ? flag.asBoolean()
                                         : flag.asInt() != 0;
                }
            }
        }
        tree.setRoot(0);
        forest.addTree(std::move(tree));
    }
    forest.setNumFeatures(std::max(forest.numFeatures(), num_features));
    forest.validate();
    return forest;
}

Forest
loadXgboostModel(const std::string &path)
{
    return importXgboostJson(JsonValue::parse(readFileToString(path)));
}

} // namespace treebeard::model
