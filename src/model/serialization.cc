#include "model/serialization.h"

#include <string>

#include "analysis/diagnostics.h"
#include "common/logging.h"
#include "model/verifier.h"

namespace treebeard::model {

namespace {

constexpr int kFormatVersion = 1;

JsonValue
treeToJson(const DecisionTree &tree)
{
    JsonValue::Array thresholds, features, lefts, rights, hits,
        default_lefts;
    for (const Node &node : tree.nodes()) {
        thresholds.emplace_back(static_cast<double>(node.threshold));
        features.emplace_back(static_cast<int64_t>(node.featureIndex));
        lefts.emplace_back(static_cast<int64_t>(node.left));
        rights.emplace_back(static_cast<int64_t>(node.right));
        hits.emplace_back(node.hitCount);
        default_lefts.emplace_back(node.defaultLeft);
    }
    JsonValue::Object object;
    object["root"] = JsonValue(static_cast<int64_t>(tree.root()));
    object["threshold"] = JsonValue(std::move(thresholds));
    object["feature"] = JsonValue(std::move(features));
    object["left"] = JsonValue(std::move(lefts));
    object["right"] = JsonValue(std::move(rights));
    object["hit_count"] = JsonValue(std::move(hits));
    object["default_left"] = JsonValue(std::move(default_lefts));
    return JsonValue(std::move(object));
}

/**
 * Deserialize one tree, substituting placeholder leaves for nodes the
 * strict builder API would reject (negative feature index, bad root)
 * so that loading keeps going and @p diag accumulates every defect in
 * the file instead of stopping at the first one. The substitutions are
 * reported into @p diag; verifyForest() later covers everything a
 * placeholder cannot hide (bad children, non-finite values, topology).
 */
DecisionTree
treeFromJson(const JsonValue &value, int64_t tree_id,
             analysis::DiagnosticEngine &diag)
{
    using analysis::IrLevel;
    const auto &thresholds = value.at("threshold").asArray();
    const auto &features = value.at("feature").asArray();
    const auto &lefts = value.at("left").asArray();
    const auto &rights = value.at("right").asArray();
    const auto &hits = value.at("hit_count").asArray();
    size_t count = thresholds.size();
    fatalIf(features.size() != count || lefts.size() != count ||
                rights.size() != count || hits.size() != count,
            "tree arrays have inconsistent lengths");

    JsonValue absent;
    const JsonValue &default_lefts = value.getOr("default_left", absent);
    fatalIf(default_lefts.isArray() &&
                default_lefts.asArray().size() != count,
            "default_left array length does not match the tree");

    DecisionTree tree;
    for (size_t i = 0; i < count; ++i) {
        int32_t feature = static_cast<int32_t>(features[i].asInt());
        if (feature == kLeafFeature) {
            tree.addLeaf(static_cast<float>(thresholds[i].asNumber()),
                         hits[i].asNumber());
        } else if (feature < 0) {
            diag.error(IrLevel::kModel, "model.feature.negative",
                       "internal node has negative feature index " +
                           std::to_string(feature))
                .atTree(tree_id)
                .atSlot(static_cast<int32_t>(i));
            tree.addLeaf(0.0f, hits[i].asNumber());
        } else {
            NodeIndex index = tree.addInternal(
                feature, static_cast<float>(thresholds[i].asNumber()),
                static_cast<NodeIndex>(lefts[i].asInt()),
                static_cast<NodeIndex>(rights[i].asInt()),
                hits[i].asNumber());
            if (default_lefts.isArray()) {
                tree.mutableNode(index).defaultLeft =
                    default_lefts.asArray()[i].asBoolean();
            }
        }
    }
    NodeIndex root = static_cast<NodeIndex>(value.at("root").asInt());
    if (root < 0 || root >= tree.numNodes()) {
        diag.error(IrLevel::kModel, "model.root.range",
                   "root index " + std::to_string(root) +
                       " out of range for " +
                       std::to_string(tree.numNodes()) + " nodes")
            .atTree(tree_id);
        if (tree.numNodes() > 0)
            tree.setRoot(0);
    } else {
        tree.setRoot(root);
    }
    return tree;
}

} // namespace

JsonValue
forestToJson(const Forest &forest)
{
    JsonValue::Object object;
    object["format"] = JsonValue("treebeard");
    object["version"] = JsonValue(static_cast<int64_t>(kFormatVersion));
    object["num_features"] =
        JsonValue(static_cast<int64_t>(forest.numFeatures()));
    object["objective"] = JsonValue(objectiveName(forest.objective()));
    object["base_score"] = JsonValue(static_cast<double>(forest.baseScore()));
    object["num_classes"] =
        JsonValue(static_cast<int64_t>(forest.numClasses()));
    JsonValue::Array trees;
    for (const DecisionTree &tree : forest.trees())
        trees.push_back(treeToJson(tree));
    object["trees"] = JsonValue(std::move(trees));
    return JsonValue(std::move(object));
}

Forest
forestFromJson(const JsonValue &document)
{
    fatalIf(!document.isObject(), "model document must be a JSON object");
    fatalIf(document.at("format").asString() != "treebeard",
            "not a treebeard model file");
    int64_t version = document.at("version").asInt();
    fatalIf(version != kFormatVersion,
            "unsupported model format version ", version);

    Forest forest(static_cast<int32_t>(document.at("num_features").asInt()),
                  objectiveFromName(document.at("objective").asString()),
                  static_cast<float>(document.at("base_score").asNumber()));
    JsonValue one(static_cast<int64_t>(1));
    forest.setNumClasses(
        static_cast<int32_t>(document.getOr("num_classes", one).asInt()));
    analysis::DiagnosticEngine diag;
    diag.setPass("model-load");
    int64_t tree_id = 0;
    for (const JsonValue &tree : document.at("trees").asArray())
        forest.addTree(treeFromJson(tree, tree_id++, diag));
    verifyForest(forest, diag);
    diag.throwIfErrors();
    return forest;
}

void
saveForest(const Forest &forest, const std::string &path)
{
    writeStringToFile(path, forestToJson(forest).dump());
}

Forest
loadForest(const std::string &path)
{
    return forestFromJson(JsonValue::parse(readFileToString(path)));
}

Forest
importXgboostJson(const JsonValue &document)
{
    const JsonValue &learner = document.at("learner");
    const JsonValue &model =
        learner.at("gradient_booster").at("model");

    int32_t num_features = 0;
    if (learner.contains("learner_model_param")) {
        const JsonValue &params = learner.at("learner_model_param");
        if (params.contains("num_feature")) {
            const JsonValue &value = params.at("num_feature");
            // XGBoost stores numbers as strings in this section.
            num_features = value.isString()
                               ? std::stoi(value.asString())
                               : static_cast<int32_t>(value.asInt());
        }
    }

    float base_score = 0.0f;
    Objective objective = Objective::kRegression;
    if (learner.contains("learner_model_param")) {
        const JsonValue &params = learner.at("learner_model_param");
        if (params.contains("base_score")) {
            const JsonValue &value = params.at("base_score");
            base_score = value.isString()
                             ? std::stof(value.asString())
                             : static_cast<float>(value.asNumber());
        }
    }
    if (learner.contains("objective")) {
        const JsonValue &objective_value = learner.at("objective");
        if (objective_value.contains("name")) {
            const std::string &name = objective_value.at("name").asString();
            if (name == "binary:logistic")
                objective = Objective::kBinaryLogistic;
        }
    }

    Forest forest(num_features, objective, base_score);
    analysis::DiagnosticEngine diag;
    diag.setPass("model-load");
    int64_t tree_id = 0;
    for (const JsonValue &tree_json : model.at("trees").asArray()) {
        const auto &split_indices = tree_json.at("split_indices").asArray();
        const auto &split_conditions =
            tree_json.at("split_conditions").asArray();
        const auto &left_children = tree_json.at("left_children").asArray();
        const auto &right_children = tree_json.at("right_children").asArray();
        const auto &base_weights = tree_json.at("base_weights").asArray();
        JsonValue empty;
        const JsonValue &hessians = tree_json.getOr("sum_hessian", empty);
        const JsonValue &default_lefts =
            tree_json.getOr("default_left", empty);

        size_t count = split_indices.size();
        fatalIf(split_conditions.size() != count ||
                    left_children.size() != count ||
                    right_children.size() != count,
                "XGBoost tree arrays have inconsistent lengths");

        DecisionTree tree;
        for (size_t i = 0; i < count; ++i) {
            NodeIndex left =
                static_cast<NodeIndex>(left_children[i].asInt());
            NodeIndex right =
                static_cast<NodeIndex>(right_children[i].asInt());
            double hits = hessians.isArray() && i < hessians.asArray().size()
                              ? hessians.asArray()[i].asNumber()
                              : 0.0;
            if (left == kInvalidNode) {
                // XGBoost leaves store the value in base_weights.
                tree.addLeaf(
                    static_cast<float>(base_weights[i].asNumber()), hits);
            } else if (split_indices[i].asInt() < 0) {
                diag.error(analysis::IrLevel::kModel,
                           "model.feature.negative",
                           "internal node has negative split index " +
                               std::to_string(split_indices[i].asInt()))
                    .atTree(tree_id)
                    .atSlot(static_cast<int32_t>(i));
                tree.addLeaf(0.0f, hits);
            } else {
                int32_t feature =
                    static_cast<int32_t>(split_indices[i].asInt());
                num_features =
                    std::max(num_features, feature + 1);
                NodeIndex index = tree.addInternal(
                    feature,
                    static_cast<float>(split_conditions[i].asNumber()),
                    left, right, hits);
                if (default_lefts.isArray() &&
                    i < default_lefts.asArray().size()) {
                    const JsonValue &flag = default_lefts.asArray()[i];
                    tree.mutableNode(index).defaultLeft =
                        flag.isBoolean() ? flag.asBoolean()
                                         : flag.asInt() != 0;
                }
            }
        }
        if (tree.numNodes() > 0) {
            tree.setRoot(0);
        } else {
            diag.error(analysis::IrLevel::kModel, "model.tree.empty",
                       "XGBoost tree has no nodes")
                .atTree(tree_id);
        }
        forest.addTree(std::move(tree));
        ++tree_id;
    }
    forest.setNumFeatures(std::max(forest.numFeatures(), num_features));
    verifyForest(forest, diag);
    diag.throwIfErrors();
    return forest;
}

Forest
loadXgboostModel(const std::string &path)
{
    return importXgboostJson(JsonValue::parse(readFileToString(path)));
}

} // namespace treebeard::model
