/**
 * @file
 * Statistical profiles of trained models (Section III-B2 / Figure 3 of
 * the paper): leaf-coverage curves and the leaf-bias predicate that
 * gates probability-based tiling.
 */
#ifndef TREEBEARD_MODEL_MODEL_STATS_H
#define TREEBEARD_MODEL_MODEL_STATS_H

#include <cstdint>
#include <vector>

#include "model/forest.h"

namespace treebeard::model {

/**
 * For one tree: the minimum number of (most probable) leaves needed to
 * cover a fraction @p coverage of training hits.
 */
int64_t minLeavesForCoverage(const DecisionTree &tree, double coverage);

/**
 * The leaf-bias predicate of Section III-C: true when a fraction
 * <= @p alpha of the tree's leaves covers >= @p beta of training hits.
 * Trees passing this test are tiled with probability-based tiling.
 */
bool isLeafBiased(const DecisionTree &tree, double alpha, double beta);

/** Count of leaf-biased trees in @p forest (last column of Table I). */
int64_t countLeafBiasedTrees(const Forest &forest, double alpha, double beta);

/**
 * One point of a Figure 3 curve: with fraction @p leafFraction of
 * leaves, fraction @p treeFraction of trees cover the target share of
 * training hits.
 */
struct CoveragePoint
{
    double leafFraction;
    double treeFraction;
};

/**
 * Compute one Figure 3 curve for @p forest: for the data-coverage
 * target @p coverage (e.g. 0.9), return the cumulative distribution of
 * "fraction of leaves needed" over trees, sampled at each tree's value.
 * Points are sorted by leafFraction ascending.
 */
std::vector<CoveragePoint> leafCoverageCurve(const Forest &forest,
                                             double coverage);

/** Aggregate structural statistics for Table I style reporting. */
struct ForestStats
{
    int32_t numFeatures = 0;
    int64_t numTrees = 0;
    int32_t maxDepth = 0;
    int64_t totalNodes = 0;
    int64_t totalLeaves = 0;
    int64_t leafBiasedTrees = 0;
    double averageLeafDepth = 0.0;
};

/** Collect ForestStats with the given leaf-bias parameters. */
ForestStats computeForestStats(const Forest &forest, double alpha = 0.075,
                               double beta = 0.9);

} // namespace treebeard::model

#endif // TREEBEARD_MODEL_MODEL_STATS_H
