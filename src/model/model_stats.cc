#include "model/model_stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace treebeard::model {

int64_t
minLeavesForCoverage(const DecisionTree &tree, double coverage)
{
    std::vector<double> probabilities = tree.leafProbabilities();
    std::sort(probabilities.begin(), probabilities.end(),
              std::greater<double>());
    double cumulative = 0.0;
    for (size_t i = 0; i < probabilities.size(); ++i) {
        cumulative += probabilities[i];
        if (cumulative >= coverage - 1e-12)
            return static_cast<int64_t>(i + 1);
    }
    return static_cast<int64_t>(probabilities.size());
}

bool
isLeafBiased(const DecisionTree &tree, double alpha, double beta)
{
    int64_t num_leaves = tree.numLeaves();
    if (num_leaves <= 1)
        return false;
    int64_t needed = minLeavesForCoverage(tree, beta);
    return static_cast<double>(needed) <=
           alpha * static_cast<double>(num_leaves);
}

int64_t
countLeafBiasedTrees(const Forest &forest, double alpha, double beta)
{
    int64_t count = 0;
    for (const DecisionTree &tree : forest.trees())
        count += isLeafBiased(tree, alpha, beta) ? 1 : 0;
    return count;
}

std::vector<CoveragePoint>
leafCoverageCurve(const Forest &forest, double coverage)
{
    fatalIf(forest.numTrees() == 0, "coverage curve of an empty forest");
    std::vector<double> fractions;
    fractions.reserve(static_cast<size_t>(forest.numTrees()));
    for (const DecisionTree &tree : forest.trees()) {
        int64_t needed = minLeavesForCoverage(tree, coverage);
        int64_t leaves = std::max<int64_t>(tree.numLeaves(), 1);
        fractions.push_back(static_cast<double>(needed) /
                            static_cast<double>(leaves));
    }
    std::sort(fractions.begin(), fractions.end());

    std::vector<CoveragePoint> curve;
    curve.reserve(fractions.size());
    double tree_count = static_cast<double>(fractions.size());
    for (size_t i = 0; i < fractions.size(); ++i) {
        // y: fraction of trees that need at most x (fraction of leaves).
        curve.push_back({fractions[i],
                         static_cast<double>(i + 1) / tree_count});
    }
    return curve;
}

ForestStats
computeForestStats(const Forest &forest, double alpha, double beta)
{
    ForestStats stats;
    stats.numFeatures = forest.numFeatures();
    stats.numTrees = forest.numTrees();
    stats.maxDepth = forest.maxDepth();
    stats.totalNodes = forest.totalNodes();
    stats.totalLeaves = forest.totalLeaves();
    stats.leafBiasedTrees = countLeafBiasedTrees(forest, alpha, beta);

    double depth_sum = 0.0;
    int64_t leaf_count = 0;
    for (const DecisionTree &tree : forest.trees()) {
        // Average leaf depth weighted uniformly across all leaves.
        std::vector<std::pair<NodeIndex, int32_t>> stack{{tree.root(), 0}};
        while (!stack.empty()) {
            auto [index, depth] = stack.back();
            stack.pop_back();
            const Node &node = tree.node(index);
            if (node.isLeaf()) {
                depth_sum += depth;
                ++leaf_count;
                continue;
            }
            stack.push_back({node.left, depth + 1});
            stack.push_back({node.right, depth + 1});
        }
    }
    stats.averageLeafDepth = leaf_count > 0 ? depth_sum / leaf_count : 0.0;
    return stats;
}

} // namespace treebeard::model
