#include "model/forest.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace treebeard::model {

const char *
objectiveName(Objective objective)
{
    switch (objective) {
      case Objective::kRegression: return "regression";
      case Objective::kBinaryLogistic: return "binary_logistic";
      case Objective::kMulticlassSoftmax: return "multiclass_softmax";
    }
    panic("unknown objective");
}

Objective
objectiveFromName(const std::string &name)
{
    if (name == "regression")
        return Objective::kRegression;
    if (name == "binary_logistic")
        return Objective::kBinaryLogistic;
    if (name == "multiclass_softmax")
        return Objective::kMulticlassSoftmax;
    fatal("unknown objective '", name, "'");
}

float
applyObjective(Objective objective, float margin)
{
    switch (objective) {
      case Objective::kRegression:
        return margin;
      case Objective::kBinaryLogistic:
        return 1.0f / (1.0f + std::exp(-margin));
      case Objective::kMulticlassSoftmax:
        panic("multiclass margins need softmaxInPlace, not "
              "applyObjective");
    }
    panic("unknown objective");
}

void
softmaxInPlace(float *values, int32_t count)
{
    float max_margin = values[0];
    for (int32_t k = 1; k < count; ++k)
        max_margin = std::max(max_margin, values[k]);
    float sum = 0.0f;
    for (int32_t k = 0; k < count; ++k) {
        values[k] = std::exp(values[k] - max_margin);
        sum += values[k];
    }
    for (int32_t k = 0; k < count; ++k)
        values[k] /= sum;
}

const DecisionTree &
Forest::tree(int64_t index) const
{
    panicIf(index < 0 || index >= numTrees(), "tree index out of range");
    return trees_[static_cast<size_t>(index)];
}

DecisionTree &
Forest::mutableTree(int64_t index)
{
    panicIf(index < 0 || index >= numTrees(), "tree index out of range");
    return trees_[static_cast<size_t>(index)];
}

int64_t
Forest::addTree(DecisionTree tree)
{
    trees_.push_back(std::move(tree));
    return numTrees() - 1;
}

int64_t
Forest::totalNodes() const
{
    int64_t count = 0;
    for (const DecisionTree &tree : trees_)
        count += tree.numNodes();
    return count;
}

int64_t
Forest::totalLeaves() const
{
    int64_t count = 0;
    for (const DecisionTree &tree : trees_)
        count += tree.numLeaves();
    return count;
}

int32_t
Forest::maxDepth() const
{
    int32_t depth = 0;
    for (const DecisionTree &tree : trees_)
        depth = std::max(depth, tree.maxDepth());
    return depth;
}

float
Forest::predictMargin(const float *row) const
{
    float sum = baseScore_;
    for (const DecisionTree &tree : trees_)
        sum += tree.predict(row);
    return sum;
}

float
Forest::predict(const float *row) const
{
    return applyObjective(objective_, predictMargin(row));
}

void
Forest::setNumClasses(int32_t value)
{
    fatalIf(value < 1, "numClasses must be at least 1");
    numClasses_ = value;
}

void
Forest::predictMulticlass(const float *row, float *out) const
{
    for (int32_t k = 0; k < numClasses_; ++k)
        out[k] = baseScore_;
    for (int64_t t = 0; t < numTrees(); ++t)
        out[treeClass(t)] += trees_[static_cast<size_t>(t)].predict(row);
    if (objective_ == Objective::kMulticlassSoftmax)
        softmaxInPlace(out, numClasses_);
}

void
Forest::predictBatch(const float *rows, int64_t num_rows,
                     float *predictions) const
{
    if (numClasses_ > 1) {
        for (int64_t i = 0; i < num_rows; ++i) {
            predictMulticlass(rows + i * numFeatures_,
                              predictions + i * numClasses_);
        }
        return;
    }
    for (int64_t i = 0; i < num_rows; ++i)
        predictions[i] = predict(rows + i * numFeatures_);
}

void
Forest::validate() const
{
    fatalIf(numFeatures_ <= 0, "forest has no features");
    fatalIf(trees_.empty(), "forest has no trees");
    fatalIf(numClasses_ > 1 &&
                objective_ != Objective::kMulticlassSoftmax,
            "multi-class forests require the multiclass_softmax "
            "objective");
    fatalIf(objective_ == Objective::kMulticlassSoftmax &&
                numClasses_ < 2,
            "the multiclass_softmax objective needs numClasses >= 2");
    for (int64_t i = 0; i < numTrees(); ++i) {
        try {
            trees_[static_cast<size_t>(i)].validate(numFeatures_);
        } catch (const Error &error) {
            fatal("tree ", i, ": ", error.what());
        }
    }
}

} // namespace treebeard::model
