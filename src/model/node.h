/**
 * @file
 * The node record shared by all decision-tree representations at the
 * model level (paper notation, Section III-A: threshold(n),
 * featureIndex(n), left(n), right(n)).
 */
#ifndef TREEBEARD_MODEL_NODE_H
#define TREEBEARD_MODEL_NODE_H

#include <cstdint>

namespace treebeard::model {

/** Index of a node within its tree's node vector. */
using NodeIndex = int32_t;

/** Sentinel for "no such node" (missing child, unset parent). */
constexpr NodeIndex kInvalidNode = -1;

/** Feature-index sentinel marking a leaf node. */
constexpr int32_t kLeafFeature = -1;

/**
 * One decision-tree node.
 *
 * Internal nodes route an input row left when
 * row[featureIndex] < threshold and right otherwise; missing (NaN)
 * feature values follow @ref defaultLeft. Leaves carry the tree's
 * prediction in @ref threshold and have featureIndex == -1.
 */
struct Node
{
    /** Split threshold for internal nodes; prediction value for leaves. */
    float threshold = 0.0f;

    /** Feature compared at this node, or kLeafFeature for leaves. */
    int32_t featureIndex = kLeafFeature;

    /** Children; kInvalidNode for leaves. */
    NodeIndex left = kInvalidNode;
    NodeIndex right = kInvalidNode;

    /**
     * Direction taken when the feature value is missing (NaN):
     * true routes left, false routes right (XGBoost default_left).
     */
    bool defaultLeft = false;

    /**
     * Number of training rows that reached this node. Collected during
     * training (or synthesis) and consumed by probability-based tiling
     * (Section III-C). Zero when unknown.
     */
    double hitCount = 0.0;

    /** True when this node is a leaf. */
    bool isLeaf() const { return featureIndex == kLeafFeature; }
};

} // namespace treebeard::model

#endif // TREEBEARD_MODEL_NODE_H
