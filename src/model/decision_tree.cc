#include "model/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace treebeard::model {

NodeIndex
DecisionTree::addLeaf(float value, double hit_count)
{
    Node node;
    node.threshold = value;
    node.featureIndex = kLeafFeature;
    node.hitCount = hit_count;
    nodes_.push_back(node);
    return static_cast<NodeIndex>(nodes_.size() - 1);
}

NodeIndex
DecisionTree::addInternal(int32_t feature_index, float threshold,
                          NodeIndex left, NodeIndex right, double hit_count)
{
    fatalIf(feature_index < 0, "internal node needs a feature index >= 0");
    Node node;
    node.threshold = threshold;
    node.featureIndex = feature_index;
    node.left = left;
    node.right = right;
    node.hitCount = hit_count;
    nodes_.push_back(node);
    return static_cast<NodeIndex>(nodes_.size() - 1);
}

void
DecisionTree::setRoot(NodeIndex root)
{
    fatalIf(root < 0 || root >= numNodes(), "root index out of range");
    root_ = root;
}

const Node &
DecisionTree::node(NodeIndex index) const
{
    panicIf(index < 0 || index >= numNodes(), "node index out of range");
    return nodes_[static_cast<size_t>(index)];
}

Node &
DecisionTree::mutableNode(NodeIndex index)
{
    panicIf(index < 0 || index >= numNodes(), "node index out of range");
    return nodes_[static_cast<size_t>(index)];
}

std::vector<NodeIndex>
DecisionTree::leafIndices() const
{
    std::vector<NodeIndex> leaves;
    for (NodeIndex i = 0; i < numNodes(); ++i) {
        if (nodes_[static_cast<size_t>(i)].isLeaf())
            leaves.push_back(i);
    }
    return leaves;
}

int64_t
DecisionTree::numLeaves() const
{
    int64_t count = 0;
    for (const Node &n : nodes_)
        count += n.isLeaf() ? 1 : 0;
    return count;
}

int32_t
DecisionTree::depth(NodeIndex index) const
{
    std::vector<NodeIndex> parents = parentArray();
    int32_t d = 0;
    NodeIndex current = index;
    while (parents[static_cast<size_t>(current)] != kInvalidNode) {
        current = parents[static_cast<size_t>(current)];
        ++d;
    }
    return d;
}

int32_t
DecisionTree::maxDepth() const
{
    if (empty())
        return 0;
    // Iterative depth-first walk carrying depth.
    int32_t max_depth = 0;
    std::vector<std::pair<NodeIndex, int32_t>> stack{{root_, 0}};
    while (!stack.empty()) {
        auto [index, d] = stack.back();
        stack.pop_back();
        const Node &n = node(index);
        if (n.isLeaf()) {
            max_depth = std::max(max_depth, d);
            continue;
        }
        stack.push_back({n.left, d + 1});
        stack.push_back({n.right, d + 1});
    }
    return max_depth;
}

std::vector<NodeIndex>
DecisionTree::parentArray() const
{
    std::vector<NodeIndex> parents(nodes_.size(), kInvalidNode);
    for (NodeIndex i = 0; i < numNodes(); ++i) {
        const Node &n = nodes_[static_cast<size_t>(i)];
        if (n.isLeaf())
            continue;
        if (n.left != kInvalidNode)
            parents[static_cast<size_t>(n.left)] = i;
        if (n.right != kInvalidNode)
            parents[static_cast<size_t>(n.right)] = i;
    }
    return parents;
}

float
DecisionTree::predict(const float *row) const
{
    return node(predictLeaf(row)).threshold;
}

NodeIndex
DecisionTree::predictLeaf(const float *row) const
{
    panicIf(root_ == kInvalidNode, "predict on tree without a root");
    NodeIndex current = root_;
    while (true) {
        const Node &n = node(current);
        if (n.isLeaf())
            return current;
        float value = row[n.featureIndex];
        bool go_left =
            std::isnan(value) ? n.defaultLeft : value < n.threshold;
        current = go_left ? n.left : n.right;
    }
}

std::vector<double>
DecisionTree::leafProbabilities() const
{
    std::vector<NodeIndex> leaves = leafIndices();
    std::vector<double> probabilities(leaves.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < leaves.size(); ++i) {
        double hits = node(leaves[i]).hitCount;
        probabilities[i] = hits;
        total += hits;
    }
    if (total <= 0.0) {
        // No statistics recorded: assume a uniform distribution.
        double uniform = leaves.empty() ? 0.0 : 1.0 / leaves.size();
        std::fill(probabilities.begin(), probabilities.end(), uniform);
        return probabilities;
    }
    for (double &p : probabilities)
        p /= total;
    return probabilities;
}

void
DecisionTree::accumulateInternalHitCounts()
{
    if (empty())
        return;
    // Post-order accumulation: children are finalized before parents.
    std::vector<std::pair<NodeIndex, bool>> stack{{root_, false}};
    while (!stack.empty()) {
        auto [index, expanded] = stack.back();
        stack.pop_back();
        Node &n = mutableNode(index);
        if (n.isLeaf())
            continue;
        if (!expanded) {
            stack.push_back({index, true});
            stack.push_back({n.left, false});
            stack.push_back({n.right, false});
        } else {
            n.hitCount = node(n.left).hitCount + node(n.right).hitCount;
        }
    }
}

void
DecisionTree::validate(int32_t num_features) const
{
    fatalIf(empty(), "tree has no nodes");
    fatalIf(root_ == kInvalidNode, "tree has no root");

    std::vector<int> in_degree(nodes_.size(), 0);
    for (NodeIndex i = 0; i < numNodes(); ++i) {
        const Node &n = nodes_[static_cast<size_t>(i)];
        if (n.isLeaf()) {
            fatalIf(n.left != kInvalidNode || n.right != kInvalidNode,
                    "leaf node ", i, " has children");
            continue;
        }
        fatalIf(n.featureIndex >= num_features,
                "node ", i, " references feature ", n.featureIndex,
                " but the model has only ", num_features, " features");
        fatalIf(n.left == kInvalidNode || n.right == kInvalidNode,
                "internal node ", i, " is missing a child");
        fatalIf(n.left < 0 || n.left >= numNodes() || n.right < 0 ||
                    n.right >= numNodes(),
                "node ", i, " has a child index out of range");
        fatalIf(n.left == i || n.right == i, "node ", i, " is its own child");
        ++in_degree[static_cast<size_t>(n.left)];
        ++in_degree[static_cast<size_t>(n.right)];
    }

    fatalIf(in_degree[static_cast<size_t>(root_)] != 0,
            "root node has a parent");
    for (NodeIndex i = 0; i < numNodes(); ++i) {
        if (i == root_)
            continue;
        fatalIf(in_degree[static_cast<size_t>(i)] == 0,
                "node ", i, " is unreachable (no parent)");
        fatalIf(in_degree[static_cast<size_t>(i)] > 1,
                "node ", i, " has multiple parents");
    }

    // Reachability (also catches cycles, since every non-root node has
    // exactly one parent and node count is finite).
    std::vector<bool> visited(nodes_.size(), false);
    std::vector<NodeIndex> stack{root_};
    int64_t reached = 0;
    while (!stack.empty()) {
        NodeIndex index = stack.back();
        stack.pop_back();
        fatalIf(visited[static_cast<size_t>(index)],
                "cycle detected at node ", index);
        visited[static_cast<size_t>(index)] = true;
        ++reached;
        const Node &n = node(index);
        if (!n.isLeaf()) {
            stack.push_back(n.left);
            stack.push_back(n.right);
        }
    }
    fatalIf(reached != numNodes(),
            "tree has ", numNodes() - reached, " unreachable nodes");
}

} // namespace treebeard::model
