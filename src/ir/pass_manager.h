/**
 * @file
 * A light-weight pass manager: named passes over an arbitrary payload
 * with per-pass timing and optional after-each-pass IR dumps. Plays
 * the role MLIR's PassManager plays in the original system: it makes
 * the compilation pipeline inspectable and instrumentable.
 */
#ifndef TREEBEARD_IR_PASS_MANAGER_H
#define TREEBEARD_IR_PASS_MANAGER_H

#include <functional>
#include <string>
#include <vector>

namespace treebeard::ir {

/** Timing/trace record for one executed pass. */
struct PassTrace
{
    std::string name;
    double seconds = 0.0;
    /** IR dump captured after the pass (when dumping is enabled). */
    std::string dumpAfter;
};

/**
 * Runs a sequence of named passes over a payload of type T.
 *
 * @tparam T the IR/payload type the passes mutate.
 */
template <typename T>
class PassManager
{
  public:
    using Pass = std::function<void(T &)>;
    using Dumper = std::function<std::string(const T &)>;
    /**
     * Hook invoked after every pass with that pass's trace and the
     * payload it produced. Exceptions propagate out of run(), so an
     * instrumentation-based verifier aborts the pipeline at the first
     * failing pass (MLIR's verify-after-every-pass discipline).
     */
    using Instrumentation = std::function<void(const PassTrace &, T &)>;

    /** Register a pass; passes run in registration order. */
    void
    addPass(std::string name, Pass pass)
    {
        passes_.push_back({std::move(name), std::move(pass)});
    }

    /**
     * Capture an IR dump after every pass using @p dumper (for tests
     * and --emit-ir style debugging).
     */
    void enableDumps(Dumper dumper) { dumper_ = std::move(dumper); }

    /** Run @p hook after each pass (see Instrumentation). */
    void
    setInstrumentation(Instrumentation hook)
    {
        instrumentation_ = std::move(hook);
    }

    /** Run all passes on @p payload, recording traces. */
    void run(T &payload);

    const std::vector<PassTrace> &traces() const { return traces_; }

    /** Total seconds across all executed passes. */
    double
    totalSeconds() const
    {
        double total = 0.0;
        for (const PassTrace &trace : traces_)
            total += trace.seconds;
        return total;
    }

  private:
    struct NamedPass
    {
        std::string name;
        Pass pass;
    };

    std::vector<NamedPass> passes_;
    Dumper dumper_;
    Instrumentation instrumentation_;
    std::vector<PassTrace> traces_;
};

} // namespace treebeard::ir

#include "ir/pass_manager_impl.h"

#endif // TREEBEARD_IR_PASS_MANAGER_H
