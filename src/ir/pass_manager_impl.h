/**
 * @file
 * Template implementation of PassManager (kept out of the main header
 * for readability; this file is logically a source file).
 */
#ifndef TREEBEARD_IR_PASS_MANAGER_IMPL_H
#define TREEBEARD_IR_PASS_MANAGER_IMPL_H

#include "common/timer.h"

namespace treebeard::ir {

template <typename T>
void
PassManager<T>::run(T &payload)
{
    traces_.clear();
    traces_.reserve(passes_.size());
    for (const NamedPass &named : passes_) {
        Timer timer;
        named.pass(payload);
        PassTrace trace;
        trace.name = named.name;
        trace.seconds = timer.elapsedSeconds();
        if (dumper_)
            trace.dumpAfter = dumper_(payload);
        traces_.push_back(std::move(trace));
        if (instrumentation_)
            instrumentation_(traces_.back(), payload);
    }
}

} // namespace treebeard::ir

#endif // TREEBEARD_IR_PASS_MANAGER_IMPL_H
