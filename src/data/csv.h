/**
 * @file
 * CSV import/export for datasets. The last column may be treated as the
 * label, matching the format of the public datasets the paper uses.
 */
#ifndef TREEBEARD_DATA_CSV_H
#define TREEBEARD_DATA_CSV_H

#include <string>

#include "data/dataset.h"

namespace treebeard::data {

/**
 * Load a CSV file of floats.
 * @param path file to read.
 * @param last_column_is_label when true the final column becomes the
 *        dataset's labels.
 * @param has_header when true the first line is skipped.
 */
Dataset loadCsv(const std::string &path, bool last_column_is_label,
                bool has_header = false);

/** Write @p dataset (labels appended as the last column when present). */
void saveCsv(const Dataset &dataset, const std::string &path);

} // namespace treebeard::data

#endif // TREEBEARD_DATA_CSV_H
