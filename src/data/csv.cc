#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "common/string_utils.h"

namespace treebeard::data {

Dataset
loadCsv(const std::string &path, bool last_column_is_label, bool has_header)
{
    std::ifstream stream(path);
    fatalIf(!stream, "cannot open CSV file '", path, "'");

    std::string line;
    int64_t line_number = 0;
    int32_t num_columns = -1;
    std::vector<float> values;
    std::vector<float> labels;

    while (std::getline(stream, line)) {
        ++line_number;
        if (has_header && line_number == 1)
            continue;
        std::string trimmed = trimString(line);
        if (trimmed.empty())
            continue;
        std::vector<std::string> cells = splitString(trimmed, ',');
        if (num_columns < 0) {
            num_columns = static_cast<int32_t>(cells.size());
            fatalIf(last_column_is_label && num_columns < 2,
                    "CSV with labels needs at least two columns");
        }
        fatalIf(static_cast<int32_t>(cells.size()) != num_columns,
                "CSV line ", line_number, " has ", cells.size(),
                " columns, expected ", num_columns);
        size_t feature_columns = last_column_is_label
                                     ? cells.size() - 1
                                     : cells.size();
        for (size_t i = 0; i < cells.size(); ++i) {
            float value;
            try {
                value = std::stof(trimString(cells[i]));
            } catch (const std::exception &) {
                fatal("CSV line ", line_number, ", column ", i + 1,
                      ": '", cells[i], "' is not a number");
            }
            if (i < feature_columns)
                values.push_back(value);
            else
                labels.push_back(value);
        }
    }
    fatalIf(num_columns < 0, "CSV file '", path, "' has no data rows");

    int32_t num_features =
        last_column_is_label ? num_columns - 1 : num_columns;
    Dataset dataset(num_features, std::move(values));
    if (last_column_is_label)
        dataset.setLabels(std::move(labels));
    return dataset;
}

void
saveCsv(const Dataset &dataset, const std::string &path)
{
    std::ostringstream out;
    for (int64_t r = 0; r < dataset.numRows(); ++r) {
        const float *row = dataset.row(r);
        for (int32_t c = 0; c < dataset.numFeatures(); ++c) {
            if (c > 0)
                out << ',';
            out << row[c];
        }
        if (dataset.hasLabels())
            out << ',' << dataset.label(r);
        out << '\n';
    }
    writeStringToFile(path, out.str());
}

} // namespace treebeard::data
