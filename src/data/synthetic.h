/**
 * @file
 * Synthetic dataset and model generation.
 *
 * The paper evaluates on eight public datasets with XGBoost-trained
 * models (Table I). Neither the datasets nor XGBoost are available in
 * this environment, so this module synthesizes (a) feature
 * distributions and (b) tree ensembles that match each benchmark's
 * structural parameters (#features, #trees, max depth) and reproduce
 * its leaf-bias profile by construction: skewed feature/threshold
 * distributions make a few root-to-leaf paths dominate, exactly the
 * property probability-based tiling exploits (Section III-B2).
 *
 * Leaf hit counts are collected by routing a synthetic "training" set
 * through the generated trees, mirroring the paper's "leaf
 * probabilities are collected during training".
 */
#ifndef TREEBEARD_DATA_SYNTHETIC_H
#define TREEBEARD_DATA_SYNTHETIC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "model/forest.h"

namespace treebeard::data {

/** Feature value distribution for a synthetic benchmark. */
enum class FeatureDistribution {
    /** i.i.d. uniform in [0, 1). */
    kUniform,
    /** Beta(2, 5)-skewed values in [0, 1): mass concentrated low. */
    kSkewed,
    /** Sparse one-hot style: mostly 0, occasionally 1. */
    kBinarySparse,
};

/**
 * Threshold placement policy for synthetic trees: controls how evenly
 * a node's split divides the incoming distribution and therefore how
 * leaf-biased the resulting trees are.
 */
enum class ThresholdDistribution {
    /** Thresholds near the feature median: balanced walks, no bias. */
    kBalanced,
    /** Thresholds uniform in the feature range: mild bias. */
    kMild,
    /** Thresholds pushed to distribution edges: strong bias. */
    kSkewed,
};

/** Complete specification of one synthetic benchmark. */
struct SyntheticModelSpec
{
    std::string name;
    int32_t numFeatures = 0;
    int64_t numTrees = 0;
    int32_t maxDepth = 0;
    FeatureDistribution featureDistribution = FeatureDistribution::kUniform;
    ThresholdDistribution thresholdDistribution =
        ThresholdDistribution::kBalanced;
    /** Probability of splitting a node below the always-split depth. */
    double splitProbability = 0.9;
    /** Depth up to which nodes always split (keeps trees non-trivial). */
    int32_t alwaysSplitDepth = 3;
    /** Rows routed through the forest to collect leaf hit counts. */
    int64_t trainingRows = 4000;
    /** For kBinarySparse features: probability a feature is 1. */
    double binaryOneProbability = 0.08;
    uint64_t seed = 0x7eebea8d;
};

/** Generate @p num_rows of features per @p spec 's distribution. */
Dataset generateFeatures(const SyntheticModelSpec &spec, int64_t num_rows,
                         uint64_t seed_offset = 0);

/**
 * Synthesize a forest per @p spec and collect leaf hit counts from a
 * freshly generated training set. The result validates and is ready
 * for compilation (including probability-based tiling).
 */
model::Forest synthesizeForest(const SyntheticModelSpec &spec);

/**
 * The eight Table I benchmarks with structural parameters copied from
 * the paper and distribution knobs chosen to reproduce each one's
 * leaf-bias profile.
 */
std::vector<SyntheticModelSpec> standardBenchmarkSuite();

/** Look up a standard benchmark by name; fatal() when unknown. */
SyntheticModelSpec benchmarkSpecByName(const std::string &name);

/**
 * A scaled-down copy of @p spec (fewer trees / training rows) for use
 * in unit tests and quick examples.
 */
SyntheticModelSpec scaledDown(const SyntheticModelSpec &spec,
                              int64_t max_trees, int64_t training_rows);

} // namespace treebeard::data

#endif // TREEBEARD_DATA_SYNTHETIC_H
