#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace treebeard::data {

namespace {

/** Draw one feature value per the spec's distribution. */
float
sampleFeature(const SyntheticModelSpec &spec, Rng &rng)
{
    switch (spec.featureDistribution) {
      case FeatureDistribution::kUniform:
        return rng.uniformFloat(0.0f, 1.0f);
      case FeatureDistribution::kSkewed:
        return static_cast<float>(rng.beta(2.0, 5.0));
      case FeatureDistribution::kBinarySparse:
        return rng.bernoulli(spec.binaryOneProbability) ? 1.0f : 0.0f;
    }
    panic("unknown feature distribution");
}

/** Draw a split threshold per the spec's policy. */
float
sampleThreshold(const SyntheticModelSpec &spec, Rng &rng)
{
    if (spec.featureDistribution == FeatureDistribution::kBinarySparse) {
        // One-hot style features only make sense with a 0/1 separator.
        return 0.5f;
    }
    switch (spec.thresholdDistribution) {
      case ThresholdDistribution::kBalanced: {
        // Near the median of a uniform feature: ~50/50 branch split.
        double t = 0.5 + rng.gaussian(0.0, 0.04);
        return static_cast<float>(std::clamp(t, 0.15, 0.85));
      }
      case ThresholdDistribution::kMild:
        return rng.uniformFloat(0.2f, 0.8f);
      case ThresholdDistribution::kSkewed: {
        // Push thresholds towards the edges so one branch dominates.
        double edge = rng.beta(0.4, 0.4);
        return static_cast<float>(std::clamp(edge, 0.02, 0.98));
      }
    }
    panic("unknown threshold distribution");
}

/** Recursively grow one synthetic tree. Returns the subtree root. */
model::NodeIndex
growTree(model::DecisionTree &tree, const SyntheticModelSpec &spec,
         Rng &rng, int32_t depth)
{
    bool must_split = depth < spec.alwaysSplitDepth;
    bool can_split = depth < spec.maxDepth;
    bool split = can_split &&
                 (must_split || rng.bernoulli(spec.splitProbability));
    if (!split) {
        float value = static_cast<float>(rng.gaussian(0.0, 0.1));
        return tree.addLeaf(value);
    }
    int32_t feature =
        static_cast<int32_t>(rng.uniformInt(0, spec.numFeatures - 1));
    float threshold = sampleThreshold(spec, rng);
    model::NodeIndex left = growTree(tree, spec, rng, depth + 1);
    model::NodeIndex right = growTree(tree, spec, rng, depth + 1);
    return tree.addInternal(feature, threshold, left, right);
}

} // namespace

Dataset
generateFeatures(const SyntheticModelSpec &spec, int64_t num_rows,
                 uint64_t seed_offset)
{
    fatalIf(spec.numFeatures <= 0, "spec has no features");
    Rng rng(spec.seed + 0x9e3779b9 * (seed_offset + 1));
    Dataset dataset(spec.numFeatures);
    std::vector<float> row(static_cast<size_t>(spec.numFeatures));
    for (int64_t r = 0; r < num_rows; ++r) {
        for (int32_t c = 0; c < spec.numFeatures; ++c)
            row[static_cast<size_t>(c)] = sampleFeature(spec, rng);
        dataset.appendRow(row.data());
    }
    return dataset;
}

model::Forest
synthesizeForest(const SyntheticModelSpec &spec)
{
    fatalIf(spec.numTrees <= 0, "spec has no trees");
    fatalIf(spec.maxDepth <= 0, "spec needs a positive max depth");

    Rng rng(spec.seed);
    model::Forest forest(spec.numFeatures, model::Objective::kRegression,
                         0.5f);
    for (int64_t t = 0; t < spec.numTrees; ++t) {
        model::DecisionTree tree;
        model::NodeIndex root = growTree(tree, spec, rng, 0);
        tree.setRoot(root);
        forest.addTree(std::move(tree));
    }

    // "Training": route a synthetic training set through every tree to
    // collect leaf hit counts (the statistics probability-based tiling
    // consumes).
    if (spec.trainingRows > 0) {
        Dataset training = generateFeatures(spec, spec.trainingRows,
                                            /*seed_offset=*/1);
        for (int64_t t = 0; t < forest.numTrees(); ++t) {
            model::DecisionTree &tree = forest.mutableTree(t);
            for (int64_t r = 0; r < training.numRows(); ++r) {
                model::NodeIndex leaf = tree.predictLeaf(training.row(r));
                tree.mutableNode(leaf).hitCount += 1.0;
            }
            tree.accumulateInternalHitCounts();
        }
    }

    forest.validate();
    return forest;
}

std::vector<SyntheticModelSpec>
standardBenchmarkSuite()
{
    // Structural parameters (#features, #trees, max depth) follow
    // Table I of the paper. Distribution knobs are chosen so that the
    // measured leaf-bias profile reproduces the paper's last column:
    // airline-ohe nearly all leaf-biased, epsilon/letter/year none.
    std::vector<SyntheticModelSpec> suite;

    SyntheticModelSpec abalone;
    abalone.name = "abalone";
    abalone.numFeatures = 8;
    abalone.numTrees = 1000;
    abalone.maxDepth = 7;
    abalone.featureDistribution = FeatureDistribution::kSkewed;
    abalone.thresholdDistribution = ThresholdDistribution::kMild;
    abalone.seed = 101;
    suite.push_back(abalone);

    SyntheticModelSpec airline;
    airline.name = "airline";
    airline.numFeatures = 13;
    airline.numTrees = 100;
    airline.maxDepth = 9;
    airline.featureDistribution = FeatureDistribution::kUniform;
    airline.thresholdDistribution = ThresholdDistribution::kMild;
    airline.seed = 102;
    suite.push_back(airline);

    SyntheticModelSpec airline_ohe;
    airline_ohe.name = "airline-ohe";
    airline_ohe.numFeatures = 692;
    airline_ohe.numTrees = 1000;
    airline_ohe.maxDepth = 9;
    airline_ohe.featureDistribution = FeatureDistribution::kBinarySparse;
    airline_ohe.binaryOneProbability = 0.05;
    airline_ohe.seed = 103;
    suite.push_back(airline_ohe);

    SyntheticModelSpec covtype;
    covtype.name = "covtype";
    covtype.numFeatures = 54;
    covtype.numTrees = 800;
    covtype.maxDepth = 9;
    covtype.featureDistribution = FeatureDistribution::kSkewed;
    covtype.thresholdDistribution = ThresholdDistribution::kMild;
    covtype.seed = 104;
    suite.push_back(covtype);

    SyntheticModelSpec epsilon;
    epsilon.name = "epsilon";
    epsilon.numFeatures = 2000;
    epsilon.numTrees = 100;
    epsilon.maxDepth = 9;
    epsilon.featureDistribution = FeatureDistribution::kUniform;
    epsilon.thresholdDistribution = ThresholdDistribution::kBalanced;
    epsilon.seed = 105;
    suite.push_back(epsilon);

    SyntheticModelSpec letter;
    letter.name = "letter";
    letter.numFeatures = 16;
    letter.numTrees = 2600;
    letter.maxDepth = 7;
    letter.featureDistribution = FeatureDistribution::kUniform;
    letter.thresholdDistribution = ThresholdDistribution::kBalanced;
    letter.seed = 106;
    suite.push_back(letter);

    SyntheticModelSpec higgs;
    higgs.name = "higgs";
    higgs.numFeatures = 28;
    higgs.numTrees = 100;
    higgs.maxDepth = 9;
    higgs.featureDistribution = FeatureDistribution::kUniform;
    higgs.thresholdDistribution = ThresholdDistribution::kMild;
    higgs.seed = 107;
    suite.push_back(higgs);

    SyntheticModelSpec year;
    year.name = "year";
    year.numFeatures = 90;
    year.numTrees = 100;
    year.maxDepth = 9;
    year.featureDistribution = FeatureDistribution::kUniform;
    year.thresholdDistribution = ThresholdDistribution::kBalanced;
    year.seed = 108;
    suite.push_back(year);

    return suite;
}

SyntheticModelSpec
benchmarkSpecByName(const std::string &name)
{
    for (const SyntheticModelSpec &spec : standardBenchmarkSuite()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown benchmark '", name, "'");
}

SyntheticModelSpec
scaledDown(const SyntheticModelSpec &spec, int64_t max_trees,
           int64_t training_rows)
{
    SyntheticModelSpec scaled = spec;
    scaled.numTrees = std::min(scaled.numTrees, max_trees);
    scaled.trainingRows = training_rows;
    return scaled;
}

} // namespace treebeard::data
