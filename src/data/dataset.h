/**
 * @file
 * A dense row-major dataset: the batch input to predictForest and the
 * training input to the GBDT trainer substrate.
 */
#ifndef TREEBEARD_DATA_DATASET_H
#define TREEBEARD_DATA_DATASET_H

#include <cstdint>
#include <vector>

namespace treebeard::data {

/**
 * A dense feature matrix with optional labels.
 *
 * Rows are stored contiguously (row-major), matching the layout the
 * generated predictForest function expects.
 */
class Dataset
{
  public:
    Dataset() = default;

    /** Create an empty dataset with @p num_features columns. */
    explicit Dataset(int32_t num_features) : numFeatures_(num_features) {}

    /** Create from an existing buffer (moved in). */
    Dataset(int32_t num_features, std::vector<float> values);

    int32_t numFeatures() const { return numFeatures_; }
    int64_t numRows() const;
    bool hasLabels() const { return !labels_.empty(); }

    /** Pointer to the start of row @p index. */
    const float *row(int64_t index) const;

    /** Pointer to the full row-major buffer. */
    const float *rows() const { return values_.data(); }

    float label(int64_t index) const;
    const std::vector<float> &labels() const { return labels_; }

    /** Append one row; @p row must have numFeatures() entries. */
    void appendRow(const float *row);
    void appendRow(const std::vector<float> &row);

    /** Attach labels; size must equal numRows(). */
    void setLabels(std::vector<float> labels);

    /** Keep only rows [begin, end); used to carve train/test splits. */
    Dataset slice(int64_t begin, int64_t end) const;

  private:
    int32_t numFeatures_ = 0;
    std::vector<float> values_;
    std::vector<float> labels_;
};

} // namespace treebeard::data

#endif // TREEBEARD_DATA_DATASET_H
