#include "data/dataset.h"

#include "common/logging.h"

namespace treebeard::data {

Dataset::Dataset(int32_t num_features, std::vector<float> values)
    : numFeatures_(num_features), values_(std::move(values))
{
    fatalIf(num_features <= 0, "dataset needs at least one feature");
    fatalIf(values_.size() % static_cast<size_t>(num_features) != 0,
            "dataset buffer size is not a multiple of the feature count");
}

int64_t
Dataset::numRows() const
{
    if (numFeatures_ == 0)
        return 0;
    return static_cast<int64_t>(values_.size()) / numFeatures_;
}

const float *
Dataset::row(int64_t index) const
{
    panicIf(index < 0 || index >= numRows(), "row index out of range");
    return values_.data() + index * numFeatures_;
}

float
Dataset::label(int64_t index) const
{
    panicIf(index < 0 || index >= static_cast<int64_t>(labels_.size()),
            "label index out of range");
    return labels_[static_cast<size_t>(index)];
}

void
Dataset::appendRow(const float *row)
{
    values_.insert(values_.end(), row, row + numFeatures_);
}

void
Dataset::appendRow(const std::vector<float> &row)
{
    fatalIf(static_cast<int32_t>(row.size()) != numFeatures_,
            "row has ", row.size(), " values, expected ", numFeatures_);
    appendRow(row.data());
}

void
Dataset::setLabels(std::vector<float> labels)
{
    fatalIf(static_cast<int64_t>(labels.size()) != numRows(),
            "label count ", labels.size(), " does not match row count ",
            numRows());
    labels_ = std::move(labels);
}

Dataset
Dataset::slice(int64_t begin, int64_t end) const
{
    fatalIf(begin < 0 || end > numRows() || begin > end,
            "invalid slice range");
    Dataset out(numFeatures_);
    out.values_.assign(values_.begin() + begin * numFeatures_,
                       values_.begin() + end * numFeatures_);
    if (hasLabels()) {
        out.labels_.assign(labels_.begin() + begin, labels_.begin() + end);
    }
    return out;
}

} // namespace treebeard::data
