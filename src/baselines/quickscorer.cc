#include "baselines/quickscorer.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace treebeard::baselines {

namespace {

/** In-order leaf numbering and per-node leaf ranges. */
struct LeafRanges
{
    /** leafBit[node] = in-order ordinal for leaves, -1 otherwise. */
    std::vector<int32_t> leafBit;
    /** [first, last] leaf ordinal under each node. */
    std::vector<std::pair<int32_t, int32_t>> range;
    int32_t numLeaves = 0;
};

LeafRanges
computeLeafRanges(const model::DecisionTree &tree)
{
    LeafRanges ranges;
    ranges.leafBit.assign(static_cast<size_t>(tree.numNodes()), -1);
    ranges.range.assign(static_cast<size_t>(tree.numNodes()), {0, 0});

    auto visit = [&](auto &&self, model::NodeIndex index) -> void {
        const model::Node &node = tree.node(index);
        if (node.isLeaf()) {
            int32_t bit = ranges.numLeaves++;
            ranges.leafBit[static_cast<size_t>(index)] = bit;
            ranges.range[static_cast<size_t>(index)] = {bit, bit};
            return;
        }
        self(self, node.left);
        self(self, node.right);
        ranges.range[static_cast<size_t>(index)] = {
            ranges.range[static_cast<size_t>(node.left)].first,
            ranges.range[static_cast<size_t>(node.right)].second};
    };
    visit(visit, tree.root());
    return ranges;
}

} // namespace

QuickScorer::QuickScorer(const model::Forest &forest,
                         int32_t num_threads)
    : numFeatures_(forest.numFeatures()), numTrees_(forest.numTrees()),
      baseScore_(forest.baseScore()), objective_(forest.objective())
{
    forest.validate();
    conditionsByFeature_.resize(static_cast<size_t>(numFeatures_));

    for (int64_t t = 0; t < numTrees_; ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        LeafRanges ranges = computeLeafRanges(tree);
        int32_t words = std::max(1, (ranges.numLeaves + 63) / 64);
        treeWords_.push_back(words);
        treeWordOffset_.push_back(totalWords_);
        totalWords_ += words;

        // Leaf values in bit order.
        treeLeafOffset_.push_back(
            static_cast<int64_t>(leafValues_.size()));
        leafValues_.resize(leafValues_.size() +
                           static_cast<size_t>(ranges.numLeaves));
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            int32_t bit = ranges.leafBit[static_cast<size_t>(i)];
            if (bit >= 0) {
                leafValues_[static_cast<size_t>(
                    treeLeafOffset_.back() + bit)] =
                    tree.node(i).threshold;
            }
        }

        // One mask per internal node: zeros over its left subtree's
        // leaves (those become unreachable when x[f] < t is false).
        for (model::NodeIndex i = 0; i < tree.numNodes(); ++i) {
            const model::Node &node = tree.node(i);
            if (node.isLeaf())
                continue;
            int32_t mask_offset = static_cast<int32_t>(masks_.size());
            masks_.resize(masks_.size() + static_cast<size_t>(words),
                          ~uint64_t{0});
            auto [first, last] =
                ranges.range[static_cast<size_t>(node.left)];
            for (int32_t bit = first; bit <= last; ++bit) {
                masks_[static_cast<size_t>(mask_offset + bit / 64)] &=
                    ~(uint64_t{1} << (bit % 64));
            }
            conditionsByFeature_[static_cast<size_t>(
                                     node.featureIndex)]
                .push_back({node.threshold, static_cast<int32_t>(t),
                            mask_offset});
        }
    }

    // Ascending threshold order enables the early exit per feature.
    for (std::vector<Condition> &bucket : conditionsByFeature_) {
        std::sort(bucket.begin(), bucket.end(),
                  [](const Condition &a, const Condition &b) {
                      return a.threshold < b.threshold;
                  });
    }

    if (num_threads > 1) {
        pool_ = std::make_unique<ThreadPool>(
            static_cast<unsigned>(num_threads));
    }
}

void
QuickScorer::predictRange(const float *rows, int64_t begin, int64_t end,
                          float *predictions) const
{
    std::vector<uint64_t> bits(static_cast<size_t>(totalWords_));
    for (int64_t r = begin; r < end; ++r) {
        const float *row = rows + r * numFeatures_;
        // All leaves start reachable.
        std::fill(bits.begin(), bits.end(), ~uint64_t{0});

        for (int32_t f = 0; f < numFeatures_; ++f) {
            float x = row[f];
            const std::vector<Condition> &bucket =
                conditionsByFeature_[static_cast<size_t>(f)];
            for (const Condition &condition : bucket) {
                // Predicate x < t holds for everything beyond this
                // point of the sorted bucket: stop.
                if (x < condition.threshold)
                    break;
                uint64_t *tree_bits =
                    bits.data() +
                    treeWordOffset_[static_cast<size_t>(
                        condition.tree)];
                const uint64_t *mask =
                    masks_.data() + condition.maskOffset;
                int32_t words =
                    treeWords_[static_cast<size_t>(condition.tree)];
                for (int32_t w = 0; w < words; ++w)
                    tree_bits[w] &= mask[w];
            }
        }

        // Each tree's exit leaf is its lowest surviving bit.
        float margin = baseScore_;
        for (int64_t t = 0; t < numTrees_; ++t) {
            const uint64_t *tree_bits =
                bits.data() + treeWordOffset_[static_cast<size_t>(t)];
            int32_t words = treeWords_[static_cast<size_t>(t)];
            for (int32_t w = 0; w < words; ++w) {
                if (tree_bits[w] != 0) {
                    int32_t bit =
                        w * 64 + __builtin_ctzll(tree_bits[w]);
                    margin += leafValues_[static_cast<size_t>(
                        treeLeafOffset_[static_cast<size_t>(t)] +
                        bit)];
                    break;
                }
            }
        }
        predictions[r] = model::applyObjective(objective_, margin);
    }
}

void
QuickScorer::predict(const float *rows, int64_t num_rows,
                     float *predictions) const
{
    if (num_rows <= 0)
        return;
    if (!pool_) {
        predictRange(rows, 0, num_rows, predictions);
        return;
    }
    pool_->parallelFor(0, num_rows, [&](int64_t begin, int64_t end) {
        predictRange(rows, begin, end, predictions);
    });
}

int64_t
QuickScorer::footprintBytes() const
{
    int64_t bytes = 0;
    bytes += static_cast<int64_t>(masks_.size()) * 8;
    bytes += static_cast<int64_t>(leafValues_.size()) * 4;
    for (const std::vector<Condition> &bucket : conditionsByFeature_)
        bytes += static_cast<int64_t>(bucket.size()) *
                 sizeof(Condition);
    return bytes;
}

} // namespace treebeard::baselines
