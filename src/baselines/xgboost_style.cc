#include "baselines/xgboost_style.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace treebeard::baselines {

XgBoostStyle::XgBoostStyle(const model::Forest &forest,
                           XgBoostVersion version, int32_t num_threads,
                           int32_t row_block)
    : numTrees_(forest.numTrees()), numFeatures_(forest.numFeatures()),
      baseScore_(forest.baseScore()), objective_(forest.objective()),
      version_(version), rowBlock_(row_block)
{
    fatalIf(row_block < 1, "row block must be positive");
    forest.validate();

    // Flatten every tree into the compact array, preserving node
    // indices (they are already contiguous per tree).
    for (int64_t t = 0; t < numTrees_; ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        int64_t base = static_cast<int64_t>(nodes_.size());
        treeOffsets_.push_back(base + tree.root());
        for (const model::Node &node : tree.nodes()) {
            CompactNode compact;
            compact.value = node.threshold;
            compact.featureIndex = node.featureIndex;
            compact.left = node.isLeaf()
                               ? -1
                               : static_cast<int32_t>(base + node.left);
            compact.right = node.isLeaf()
                                ? -1
                                : static_cast<int32_t>(base + node.right);
            compact.defaultLeft = node.defaultLeft;
            nodes_.push_back(compact);
        }
    }

    if (num_threads > 1) {
        pool_ = std::make_unique<ThreadPool>(
            static_cast<unsigned>(num_threads));
    }
}

float
XgBoostStyle::walkTree(int64_t tree, const float *row) const
{
    const CompactNode *nodes = nodes_.data();
    int64_t index = treeOffsets_[static_cast<size_t>(tree)];
    while (nodes[index].featureIndex >= 0) {
        const CompactNode &node = nodes[index];
        float value = row[node.featureIndex];
        bool go_left = std::isnan(value) ? node.defaultLeft
                                         : value < node.value;
        index = go_left ? node.left : node.right;
    }
    return nodes[index].value;
}

void
XgBoostStyle::predictRange(const float *rows, int64_t begin, int64_t end,
                           float *predictions) const
{
    if (version_ == XgBoostVersion::kV09) {
        // One row at a time: all trees for a row before the next row.
        for (int64_t r = begin; r < end; ++r) {
            const float *row = rows + r * numFeatures_;
            float margin = baseScore_;
            for (int64_t t = 0; t < numTrees_; ++t)
                margin += walkTree(t, row);
            predictions[r] = model::applyObjective(objective_, margin);
        }
        return;
    }

    // One tree at a time over blocks of rows (the PR #6127 structure):
    // better temporal locality on tree nodes.
    std::vector<float> accumulators(static_cast<size_t>(rowBlock_));
    for (int64_t block = begin; block < end; block += rowBlock_) {
        int64_t block_end = std::min<int64_t>(block + rowBlock_, end);
        int64_t block_size = block_end - block;
        std::fill_n(accumulators.begin(),
                    static_cast<size_t>(block_size), baseScore_);
        for (int64_t t = 0; t < numTrees_; ++t) {
            for (int64_t r = 0; r < block_size; ++r) {
                accumulators[static_cast<size_t>(r)] +=
                    walkTree(t, rows + (block + r) * numFeatures_);
            }
        }
        for (int64_t r = 0; r < block_size; ++r) {
            predictions[block + r] = model::applyObjective(
                objective_, accumulators[static_cast<size_t>(r)]);
        }
    }
}

void
XgBoostStyle::predict(const float *rows, int64_t num_rows,
                      float *predictions) const
{
    if (num_rows <= 0)
        return;
    if (!pool_) {
        predictRange(rows, 0, num_rows, predictions);
        return;
    }
    pool_->parallelFor(0, num_rows, [&](int64_t begin, int64_t end) {
        predictRange(rows, begin, end, predictions);
    });
}

int64_t
XgBoostStyle::footprintBytes() const
{
    return static_cast<int64_t>(nodes_.size()) * sizeof(CompactNode);
}

} // namespace treebeard::baselines
