#include "baselines/hummingbird_style.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/gemm.h"
#include "common/logging.h"

namespace treebeard::baselines {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/** Safety cap for the GEMM strategy's quadratic C matrix. */
constexpr int64_t kMaxGemmCElements = int64_t{1} << 26;

} // namespace

HummingbirdStyle::HummingbirdStyle(const model::Forest &forest,
                                   const HummingbirdOptions &options)
    : numFeatures_(forest.numFeatures()), numTrees_(forest.numTrees()),
      baseScore_(forest.baseScore()), objective_(forest.objective()),
      rowBlock_(options.rowBlock)
{
    forest.validate();
    fatalIf(rowBlock_ < 1, "row block must be positive");

    strategy_ = options.strategy;
    if (strategy_ == HummingbirdStrategy::kAuto) {
        // Hummingbird's depth heuristic: GEMM pays off only for very
        // shallow trees; deeper ensembles use PerfectTreeTraversal.
        strategy_ = forest.maxDepth() <= 3
                        ? HummingbirdStrategy::kGemm
                        : HummingbirdStrategy::kPerfectTreeTraversal;
    }

    if (strategy_ == HummingbirdStrategy::kGemm)
        buildGemm(forest);
    else
        buildPtt(forest);

    if (options.numThreads > 1) {
        pool_ = std::make_unique<ThreadPool>(
            static_cast<unsigned>(options.numThreads));
    }
}

void
HummingbirdStyle::buildPtt(const model::Forest &forest)
{
    depth_ = std::max(forest.maxDepth(), 1);
    fatalIf(depth_ > 20, "PTT cannot pad trees of depth ", depth_);
    int64_t internal_per_tree = (int64_t{1} << depth_) - 1;
    int64_t leaves_per_tree = int64_t{1} << depth_;

    pttFeatures_.assign(
        static_cast<size_t>(numTrees_ * internal_per_tree), 0);
    pttThresholds_.assign(
        static_cast<size_t>(numTrees_ * internal_per_tree), kInf);
    pttLeaves_.assign(static_cast<size_t>(numTrees_ * leaves_per_tree),
                      0.0f);

    for (int64_t t = 0; t < numTrees_; ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        int32_t *features =
            pttFeatures_.data() + t * internal_per_tree;
        float *thresholds =
            pttThresholds_.data() + t * internal_per_tree;
        float *leaves = pttLeaves_.data() + t * leaves_per_tree;

        // Place each node at its perfect-tree slot; leaves reached
        // before full depth replicate their value across the padded
        // subtree (dummy +inf predicates always route left).
        auto fill = [&](auto &&self, int64_t slot, int32_t depth,
                        model::NodeIndex index) -> void {
            const model::Node &node = tree.node(index);
            if (depth == depth_) {
                leaves[slot - internal_per_tree] = node.threshold;
                return;
            }
            if (node.isLeaf()) {
                features[slot] = 0;
                thresholds[slot] = kInf;
                self(self, 2 * slot + 1, depth + 1, index);
                self(self, 2 * slot + 2, depth + 1, index);
                return;
            }
            features[slot] = node.featureIndex;
            thresholds[slot] = node.threshold;
            self(self, 2 * slot + 1, depth + 1, node.left);
            self(self, 2 * slot + 2, depth + 1, node.right);
        };
        fill(fill, 0, 0, tree.root());
    }
}

void
HummingbirdStyle::predictRangePtt(const float *rows, int64_t begin,
                                  int64_t end, float *predictions) const
{
    int64_t internal_per_tree = (int64_t{1} << depth_) - 1;
    int64_t leaves_per_tree = int64_t{1} << depth_;

    std::vector<int32_t> indices;
    for (int64_t block = begin; block < end; block += rowBlock_) {
        int64_t block_end = std::min<int64_t>(block + rowBlock_, end);
        int64_t block_size = block_end - block;

        // The (rows x trees) index tensor, advanced one level per
        // step across the whole block — the tensor-op structure of
        // Hummingbird's PTT (gather, compare, index update).
        indices.assign(
            static_cast<size_t>(block_size * numTrees_), 0);
        for (int32_t d = 0; d < depth_; ++d) {
            for (int64_t r = 0; r < block_size; ++r) {
                const float *row = rows + (block + r) * numFeatures_;
                int32_t *row_indices =
                    indices.data() + r * numTrees_;
                for (int64_t t = 0; t < numTrees_; ++t) {
                    int64_t node_base = t * internal_per_tree;
                    int32_t i = row_indices[t];
                    bool cond =
                        row[pttFeatures_[static_cast<size_t>(
                            node_base + i)]] <
                        pttThresholds_[static_cast<size_t>(node_base +
                                                           i)];
                    row_indices[t] = 2 * i + (cond ? 1 : 2);
                }
            }
        }

        for (int64_t r = 0; r < block_size; ++r) {
            const int32_t *row_indices = indices.data() + r * numTrees_;
            float margin = baseScore_;
            for (int64_t t = 0; t < numTrees_; ++t) {
                int64_t leaf = row_indices[t] - internal_per_tree;
                margin += pttLeaves_[static_cast<size_t>(
                    t * leaves_per_tree + leaf)];
            }
            predictions[block + r] =
                model::applyObjective(objective_, margin);
        }
    }
}

void
HummingbirdStyle::buildGemm(const model::Forest &forest)
{
    // Assign global columns to internal nodes and leaves.
    totalInternal_ = forest.totalNodes() - forest.totalLeaves();
    totalLeaves_ = forest.totalLeaves();
    fatalIf(totalInternal_ * totalLeaves_ > kMaxGemmCElements,
            "model too large for the GEMM strategy (C matrix would "
            "hold ",
            totalInternal_ * totalLeaves_, " elements)");

    gemmA_.assign(
        static_cast<size_t>(numFeatures_) * totalInternal_, 0.0f);
    gemmB_.assign(static_cast<size_t>(totalInternal_), 0.0f);
    gemmC_.assign(static_cast<size_t>(totalInternal_) * totalLeaves_,
                  0.0f);
    gemmD_.assign(static_cast<size_t>(totalLeaves_), 0.0f);
    gemmE_.assign(static_cast<size_t>(totalLeaves_), 0.0f);

    int64_t internal_cursor = 0;
    int64_t leaf_cursor = 0;
    for (int64_t t = 0; t < numTrees_; ++t) {
        const model::DecisionTree &tree = forest.tree(t);
        leafOffsets_.push_back(leaf_cursor);

        // Depth-first assignment carrying the (ancestor, direction)
        // path so each leaf's C column and D entry can be filled.
        std::vector<std::pair<int64_t, bool>> path; // (col, went_left)
        auto assign = [&](auto &&self, model::NodeIndex index) -> void {
            const model::Node &node = tree.node(index);
            if (node.isLeaf()) {
                int64_t leaf_col = leaf_cursor++;
                int64_t left_edges = 0;
                for (const auto &[ancestor_col, went_left] : path) {
                    gemmC_[static_cast<size_t>(ancestor_col) *
                               totalLeaves_ +
                           leaf_col] = went_left ? 1.0f : -1.0f;
                    left_edges += went_left ? 1 : 0;
                }
                gemmD_[static_cast<size_t>(leaf_col)] =
                    static_cast<float>(left_edges);
                gemmE_[static_cast<size_t>(leaf_col)] = node.threshold;
                return;
            }
            int64_t col = internal_cursor++;
            gemmA_[static_cast<size_t>(node.featureIndex) *
                       totalInternal_ +
                   col] = 1.0f;
            gemmB_[static_cast<size_t>(col)] = node.threshold;
            path.push_back({col, true});
            self(self, node.left);
            path.back().second = false;
            self(self, node.right);
            path.pop_back();
        };
        assign(assign, tree.root());
    }
    leafOffsets_.push_back(leaf_cursor);
    panicIf(internal_cursor != totalInternal_ ||
                leaf_cursor != totalLeaves_,
            "GEMM tensor assignment mismatch");
}

void
HummingbirdStyle::predictRangeGemm(const float *rows, int64_t begin,
                                   int64_t end,
                                   float *predictions) const
{
    std::vector<float> xa;
    std::vector<float> t_matrix;
    std::vector<float> s_matrix;
    for (int64_t block = begin; block < end; block += rowBlock_) {
        int64_t block_end = std::min<int64_t>(block + rowBlock_, end);
        int64_t bs = block_end - block;

        // XA = X * A  (gathers each node's feature value).
        xa.assign(static_cast<size_t>(bs * totalInternal_), 0.0f);
        sgemm(rows + block * numFeatures_, gemmA_.data(), xa.data(), bs,
              numFeatures_, totalInternal_);

        // T = (XA < B) as 0/1.
        t_matrix.assign(static_cast<size_t>(bs * totalInternal_), 0.0f);
        for (int64_t r = 0; r < bs; ++r) {
            for (int64_t j = 0; j < totalInternal_; ++j) {
                t_matrix[static_cast<size_t>(r * totalInternal_ + j)] =
                    xa[static_cast<size_t>(r * totalInternal_ + j)] <
                            gemmB_[static_cast<size_t>(j)]
                        ? 1.0f
                        : 0.0f;
            }
        }

        // S = T * C  (path-condition counts per leaf).
        s_matrix.assign(static_cast<size_t>(bs * totalLeaves_), 0.0f);
        sgemm(t_matrix.data(), gemmC_.data(), s_matrix.data(), bs,
              totalInternal_, totalLeaves_);

        // Select the leaf with S == D per tree; dot with E.
        for (int64_t r = 0; r < bs; ++r) {
            const float *s_row = s_matrix.data() + r * totalLeaves_;
            float margin = baseScore_;
            for (int64_t t = 0; t < numTrees_; ++t) {
                for (int64_t l = leafOffsets_[static_cast<size_t>(t)];
                     l < leafOffsets_[static_cast<size_t>(t + 1)];
                     ++l) {
                    if (s_row[l] ==
                        gemmD_[static_cast<size_t>(l)]) {
                        margin += gemmE_[static_cast<size_t>(l)];
                        break;
                    }
                }
            }
            predictions[block + r] =
                model::applyObjective(objective_, margin);
        }
    }
}

void
HummingbirdStyle::predict(const float *rows, int64_t num_rows,
                          float *predictions) const
{
    if (num_rows <= 0)
        return;
    auto range = [&](int64_t begin, int64_t end) {
        if (strategy_ == HummingbirdStrategy::kGemm)
            predictRangeGemm(rows, begin, end, predictions);
        else
            predictRangePtt(rows, begin, end, predictions);
    };
    if (!pool_) {
        range(0, num_rows);
        return;
    }
    pool_->parallelFor(0, num_rows, range);
}

int64_t
HummingbirdStyle::footprintBytes() const
{
    int64_t bytes = 0;
    bytes += static_cast<int64_t>(pttFeatures_.size()) * 4;
    bytes += static_cast<int64_t>(pttThresholds_.size()) * 4;
    bytes += static_cast<int64_t>(pttLeaves_.size()) * 4;
    bytes += static_cast<int64_t>(gemmA_.size() + gemmB_.size() +
                                  gemmC_.size() + gemmD_.size() +
                                  gemmE_.size()) *
             4;
    return bytes;
}

} // namespace treebeard::baselines
