#include "baselines/gemm.h"

#include <algorithm>
#include <cstring>

namespace treebeard::baselines {

namespace {

constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 256;

} // namespace

void
sgemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
      int64_t n)
{
    std::memset(c, 0, sizeof(float) * static_cast<size_t>(m) * n);
    for (int64_t i0 = 0; i0 < m; i0 += kBlockM) {
        int64_t i1 = std::min(i0 + kBlockM, m);
        for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
            int64_t p1 = std::min(p0 + kBlockK, k);
            for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
                int64_t j1 = std::min(j0 + kBlockN, n);
                for (int64_t i = i0; i < i1; ++i) {
                    for (int64_t p = p0; p < p1; ++p) {
                        float a_ip = a[i * k + p];
                        if (a_ip == 0.0f)
                            continue; // A is sparse 0/1 in practice
                        const float *b_row = b + p * n;
                        float *c_row = c + i * n;
                        for (int64_t j = j0; j < j1; ++j)
                            c_row[j] += a_ip * b_row[j];
                    }
                }
            }
        }
    }
}

} // namespace treebeard::baselines
