/**
 * @file
 * QuickScorer (Lucchese et al., SIGIR'15 — reference [37] of the
 * paper): a bit-vector-based tree-ensemble scorer. The paper's
 * related-work section notes QuickScorer "is extremely fast for
 * smaller models, [but] does not scale well to larger models" and
 * that it "can easily be integrated into TREEBEARD as another
 * traversal strategy" — this implementation provides that strategy
 * and lets the benches demonstrate the crossover.
 *
 * Algorithm: every tree keeps one bit per leaf. Every internal node
 * carries a mask with zeros over the leaves of its left subtree: if
 * the node's predicate x[f] < t is FALSE the walk must go right, so
 * those leaves become unreachable. Evaluation visits conditions
 * feature-by-feature in ascending threshold order (early exit once
 * thresholds exceed the feature value), ANDs the masks of all false
 * conditions, and reads each tree's exit leaf as the lowest surviving
 * bit. Trees with more than 64 leaves use multi-word masks.
 */
#ifndef TREEBEARD_BASELINES_QUICKSCORER_H
#define TREEBEARD_BASELINES_QUICKSCORER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "model/forest.h"

namespace treebeard::baselines {

/**
 * Bit-vector ensemble scorer.
 */
class QuickScorer
{
  public:
    explicit QuickScorer(const model::Forest &forest,
                         int32_t num_threads = 1);

    /** Batch predict (row-major input, one prediction per row). */
    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    int32_t numFeatures() const { return numFeatures_; }

    /** Bytes of masks + thresholds + leaf values. */
    int64_t footprintBytes() const;

    /** Total bit-vector words per row evaluation (the scaling cost). */
    int64_t bitvectorWords() const { return totalWords_; }

  private:
    /** One (threshold, tree, mask) condition, bucketed by feature. */
    struct Condition
    {
        float threshold;
        int32_t tree;
        int32_t maskOffset; // into masks_, maskWords_[tree] words
    };

    void predictRange(const float *rows, int64_t begin, int64_t end,
                      float *predictions) const;

    int32_t numFeatures_ = 0;
    int64_t numTrees_ = 0;
    float baseScore_ = 0.0f;
    model::Objective objective_ = model::Objective::kRegression;

    /** Conditions per feature, ascending threshold. */
    std::vector<std::vector<Condition>> conditionsByFeature_;
    /** All node masks, variable words per tree. */
    std::vector<uint64_t> masks_;
    /** Words in each tree's bit vector. */
    std::vector<int32_t> treeWords_;
    /** Offset of each tree's bit vector in a per-row scratch array. */
    std::vector<int64_t> treeWordOffset_;
    int64_t totalWords_ = 0;
    /** Leaf values per tree, in leaf-bit order (left-to-right). */
    std::vector<float> leafValues_;
    std::vector<int64_t> treeLeafOffset_;

    std::unique_ptr<ThreadPool> pool_;
};

} // namespace treebeard::baselines

#endif // TREEBEARD_BASELINES_QUICKSCORER_H
