/**
 * @file
 * A Treelite-style inference baseline: expand every tree of the model
 * into nested if-else statements, compile the generated C++ with the
 * system compiler and run the native code. This is exactly Treelite's
 * compilation strategy ("it aggressively expands all trees in the
 * model into if-else statements", Section I) and exhibits the same
 * microarchitectural character the paper measures in Section VI-E:
 * front-end pressure from huge instruction footprints and
 * data-dependent branches.
 */
#ifndef TREEBEARD_BASELINES_TREELITE_STYLE_H
#define TREEBEARD_BASELINES_TREELITE_STYLE_H

#include <cstdint>
#include <memory>
#include <string>

#include "codegen/system_jit.h"
#include "common/thread_pool.h"
#include "model/forest.h"

namespace treebeard::baselines {

/** Options for the Treelite-style compiler. */
struct TreeliteOptions
{
    /** Optimization level for the generated code. */
    std::string optLevel = "-O1";
    /** Worker threads for batch prediction. */
    int32_t numThreads = 1;
    /**
     * Split the generated trees across this many translation units'
     * worth of functions in one file section; kept for generated-code
     * readability on very large models.
     */
    int64_t treesPerSection = 200;
};

/**
 * If-else codegen baseline.
 */
class TreeliteStyle
{
  public:
    /**
     * Generate, compile and load inference code for @p forest.
     * @throws Error when the system compiler is unavailable or fails.
     */
    TreeliteStyle(const model::Forest &forest,
                  const TreeliteOptions &options = {});

    /** Batch predict through the compiled if-else code. */
    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    /** Seconds the external compiler took. */
    double compileSeconds() const { return module_->compileSeconds(); }

    /** Characters of generated C++ (a code-size proxy). */
    int64_t generatedSourceBytes() const { return sourceBytes_; }

    /** Generate the C++ source without compiling (for tests/dumps). */
    static std::string generateSource(const model::Forest &forest,
                                      const TreeliteOptions &options = {});

  private:
    using PredictRangeFn = void (*)(const float *, int64_t, int64_t,
                                    float *);

    std::unique_ptr<codegen::JitModule> module_;
    PredictRangeFn predictRange_ = nullptr;
    std::unique_ptr<ThreadPool> pool_;
    int32_t numFeatures_ = 0;
    int64_t sourceBytes_ = 0;
};

} // namespace treebeard::baselines

#endif // TREEBEARD_BASELINES_TREELITE_STYLE_H
