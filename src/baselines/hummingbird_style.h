/**
 * @file
 * A Hummingbird-style inference baseline: tree inference lowered onto
 * tensor operations (Nakandala et al., OSDI'20 — reference [11] of the
 * paper).
 *
 * Hummingbird picks among tensor translation strategies by tree depth:
 *
 *  - GEMM: for shallow trees, node predicates and leaf selection
 *    become dense matrix products (X*A < B, then path-count matching
 *    through C/D and a final product with the leaf-value matrix E);
 *  - PerfectTreeTraversal (PTT): trees are padded to perfect binary
 *    trees of the ensemble's max depth; walks advance index tensors
 *    level-synchronously with gather ops, every walk running to full
 *    depth with no early exit.
 *
 * The paper's benchmark models are depth 7-9, where Hummingbird uses
 * PTT; both strategies are implemented here over plain buffers (and a
 * blocked sgemm substrate), preserving the cost structure the paper
 * measures: no model-specific specialization, full-depth walks, and
 * padded-tree memory bloat.
 */
#ifndef TREEBEARD_BASELINES_HUMMINGBIRD_STYLE_H
#define TREEBEARD_BASELINES_HUMMINGBIRD_STYLE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "model/forest.h"

namespace treebeard::baselines {

/** Tensor translation strategy. */
enum class HummingbirdStrategy {
    /** Pick by depth like Hummingbird: GEMM for depth <= 3, else PTT. */
    kAuto,
    kGemm,
    kPerfectTreeTraversal,
};

/** Options for the Hummingbird-style predictor. */
struct HummingbirdOptions
{
    HummingbirdStrategy strategy = HummingbirdStrategy::kAuto;
    int32_t numThreads = 1;
    /** Rows per tensor-op block (the batch tensor's leading dim). */
    int32_t rowBlock = 256;
};

/**
 * Tensor-lowered predictor.
 */
class HummingbirdStyle
{
  public:
    HummingbirdStyle(const model::Forest &forest,
                     const HummingbirdOptions &options = {});

    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    /** The strategy actually chosen. */
    HummingbirdStrategy strategy() const { return strategy_; }

    /** Model tensor bytes (shows PTT's padded-tree bloat). */
    int64_t footprintBytes() const;

  private:
    void buildPtt(const model::Forest &forest);
    void buildGemm(const model::Forest &forest);
    void predictRangePtt(const float *rows, int64_t begin, int64_t end,
                         float *predictions) const;
    void predictRangeGemm(const float *rows, int64_t begin, int64_t end,
                          float *predictions) const;

    HummingbirdStrategy strategy_ = HummingbirdStrategy::kAuto;
    int32_t numFeatures_ = 0;
    int64_t numTrees_ = 0;
    float baseScore_ = 0.0f;
    model::Objective objective_ = model::Objective::kRegression;
    int32_t rowBlock_ = 256;
    std::unique_ptr<ThreadPool> pool_;

    // PTT tensors: per tree, a perfect binary tree of depth `depth_`.
    // features/thresholds: [numTrees][2^depth - 1]; leaves:
    // [numTrees][2^depth].
    int32_t depth_ = 0;
    std::vector<int32_t> pttFeatures_;
    std::vector<float> pttThresholds_;
    std::vector<float> pttLeaves_;

    // GEMM tensors (Hummingbird's A, B, C, D, E).
    int64_t totalInternal_ = 0;
    int64_t totalLeaves_ = 0;
    std::vector<float> gemmA_;       // [features x totalInternal]
    std::vector<float> gemmB_;       // [totalInternal]
    std::vector<float> gemmC_;       // [totalInternal x totalLeaves]
    std::vector<float> gemmD_;       // [totalLeaves]
    std::vector<float> gemmE_;       // [totalLeaves]
    std::vector<int64_t> leafOffsets_; // per-tree [begin, end) in leaves
};

} // namespace treebeard::baselines

#endif // TREEBEARD_BASELINES_HUMMINGBIRD_STYLE_H
