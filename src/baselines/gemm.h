/**
 * @file
 * A small dense single-precision GEMM substrate used by the
 * Hummingbird-style baseline's GEMM strategy. Implements
 * C = A (m x k, row-major) * B (k x n, row-major) with simple cache
 * blocking — a stand-in for the tensor-runtime matmul Hummingbird
 * lowers tree inference onto.
 */
#ifndef TREEBEARD_BASELINES_GEMM_H
#define TREEBEARD_BASELINES_GEMM_H

#include <cstdint>

namespace treebeard::baselines {

/**
 * C = A * B (all row-major, C overwritten).
 * @param m rows of A and C.
 * @param k columns of A / rows of B.
 * @param n columns of B and C.
 */
void sgemm(const float *a, const float *b, float *c, int64_t m,
           int64_t k, int64_t n);

} // namespace treebeard::baselines

#endif // TREEBEARD_BASELINES_GEMM_H
