/**
 * @file
 * An XGBoost-style inference baseline.
 *
 * Reproduces the inference structure of the XGBoost library over a
 * compact node-array representation with scalar binary-tree walks:
 *
 *  - kV09:  one-row-at-a-time loop order (all trees per row), the
 *           structure of XGBoost 0.9 — the Hummingbird paper's
 *           baseline;
 *  - kV15:  one-tree-at-a-time over blocks of rows, the loop
 *           interchange XGBoost adopted in PR #6127 that the paper
 *           credits for v1.5's speedup (Sections VI-C, VI-E).
 *
 * The paper compares against the installed XGBoost library; this class
 * is the in-repo substitute with the same algorithmic structure.
 */
#ifndef TREEBEARD_BASELINES_XGBOOST_STYLE_H
#define TREEBEARD_BASELINES_XGBOOST_STYLE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "model/forest.h"

namespace treebeard::baselines {

/** Loop-order generations of the XGBoost predictor. */
enum class XgBoostVersion {
    kV09,
    kV15,
};

/**
 * Scalar node-array predictor.
 */
class XgBoostStyle
{
  public:
    /**
     * Build the predictor.
     * @param forest the model (copied into the compact layout).
     * @param version loop-order generation to emulate.
     * @param num_threads worker threads for batch prediction.
     * @param row_block rows per block in the kV15 tree-major loop.
     */
    XgBoostStyle(const model::Forest &forest, XgBoostVersion version,
                 int32_t num_threads = 1, int32_t row_block = 64);

    /** Batch predict (row-major input, one prediction per row). */
    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    int32_t numFeatures() const { return numFeatures_; }

    /** Model bytes of the compact node-array representation. */
    int64_t footprintBytes() const;

  private:
    /** Compact node record (XGBoost-like). */
    struct CompactNode
    {
        float value;          // threshold, or leaf value
        int32_t featureIndex; // -1 for leaves
        int32_t left;
        int32_t right;
        // Missing-value direction (XGBoost packs this into the child
        // index sign; kept as a plain field here).
        bool defaultLeft;
    };

    float walkTree(int64_t tree, const float *row) const;
    void predictRange(const float *rows, int64_t begin, int64_t end,
                      float *predictions) const;

    std::vector<CompactNode> nodes_;
    std::vector<int64_t> treeOffsets_; // root index per tree
    int64_t numTrees_ = 0;
    int32_t numFeatures_ = 0;
    float baseScore_ = 0.0f;
    model::Objective objective_ = model::Objective::kRegression;
    XgBoostVersion version_;
    int32_t rowBlock_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace treebeard::baselines

#endif // TREEBEARD_BASELINES_XGBOOST_STYLE_H
