/**
 * @file
 * The TCP front door of the serving layer: a WireServer accepts
 * length-prefixed binary frames (serve/wire.h) on a listening socket
 * and dispatches them to an in-process serve::Server.
 *
 * The transport is deliberately a thin shim: every frame maps onto
 * exactly one Server call (loadModel / predict / evictModel / stats /
 * shutdown), so the in-process exactness tests stay authoritative —
 * the wire adds framing and a status byte, never semantics. Response
 * statuses map 1:1 from the stable serve.queue.* / serve.registry.*
 * error codes, making admission control and eviction observable on
 * the wire.
 *
 * Threading model: one dedicated acceptor thread plus per-connection
 * handlers running as detached tasks on an owned ThreadPool (the
 * existing work-queue pool; one connection occupies one worker for
 * its lifetime). Connections past TransportOptions::maxConnections
 * are closed immediately at accept — a clean close the client sees as
 * serve.wire.connection-closed — so a slow client can never queue
 * invisible work behind a busy handler slot.
 *
 * Fault containment (exercised by tests/transport_test.cpp): a
 * truncated frame or a mid-frame disconnect is a clean close; a bad
 * magic/version closes after an error frame (the stream cannot be
 * re-synchronized); an unknown opcode or a malformed payload fails
 * only that frame; an oversized declared length is rejected without
 * reading the payload; torn byte-at-a-time writes assemble normally.
 * The server never crashes, hangs or leaks on any of these.
 *
 * Thread safety: all public members may be called concurrently.
 * stop() is idempotent and joins everything; a SHUTDOWN frame
 * requests stop from inside a handler (waiters in
 * waitUntilStopRequested() wake; an external thread still calls
 * stop() to join). The one new mutex follows the serving layer's
 * every-mutex-is-a-leaf discipline (docs/CONCURRENCY.md).
 */
#ifndef TREEBEARD_SERVE_TRANSPORT_H
#define TREEBEARD_SERVE_TRANSPORT_H

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "common/checked_mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace treebeard::serve {

/** Listener configuration. */
struct TransportOptions
{
    /** Numeric IPv4 address to bind ("127.0.0.1" for loopback). */
    std::string host = "127.0.0.1";
    /** Port to bind; 0 picks an ephemeral port (see port()). */
    uint16_t port = 0;
    /**
     * Concurrent-connection cap = handler slots on the I/O pool.
     * Connections past it are closed at accept instead of queued, so
     * an idle client cannot invisibly starve later arrivals.
     */
    int maxConnections = 32;
    /** Reject frames declaring a payload longer than this. */
    int64_t maxFramePayloadBytes = wire::kDefaultMaxFramePayloadBytes;
    /** listen(2) backlog. */
    int backlog = 64;
};

/** Cumulative transport counters (snapshot under the server's lock). */
struct TransportStats
{
    /** Connections handed to a handler. */
    int64_t connectionsAccepted = 0;
    /** Connections closed at accept by the maxConnections cap. */
    int64_t connectionsRejected = 0;
    /** Response frames written (including error responses). */
    int64_t framesServed = 0;
    /**
     * Frames rejected at the envelope: bad magic/version, unknown
     * opcode, oversized declared length, malformed payload layout.
     */
    int64_t protocolErrors = 0;
    /**
     * Connections torn down mid-frame (truncated header or payload,
     * a reset, or a failed response write) — a clean close at a
     * frame boundary is normal client behavior and is not counted.
     */
    int64_t disconnects = 0;
};

/**
 * Parse "host:port" (e.g. "127.0.0.1:8123"); throws Error on a
 * malformed spec or out-of-range port. Port 0 is allowed (ephemeral).
 */
void splitHostPort(const std::string &spec, std::string *host,
                   uint16_t *port);

class WireServer
{
  public:
    /**
     * Bind, listen and start accepting immediately. @p server must
     * outlive this object. Throws Error when the socket cannot be
     * bound (address in use, bad host).
     */
    explicit WireServer(Server &server, TransportOptions options = {});

    WireServer(const WireServer &) = delete;
    WireServer &operator=(const WireServer &) = delete;

    /** stop()s. */
    ~WireServer();

    /** The actual bound port (resolves an ephemeral request). */
    uint16_t port() const { return port_; }

    const std::string &host() const { return options_.host; }

    /**
     * Stop accepting, wake every connection blocked in a read (their
     * in-flight responses still go out), wait for handlers to drain
     * and join the acceptor. Idempotent; safe from any thread except
     * a connection handler (a SHUTDOWN frame uses requestStop()
     * internally instead, precisely because a handler cannot join
     * itself).
     */
    void stop();

    /** True once stop() or a SHUTDOWN frame began teardown. */
    bool stopRequested() const;

    /** Block until stopRequested() (e.g. a SHUTDOWN frame arrived). */
    void waitUntilStopRequested();

    TransportStats stats() const;

  private:
    void acceptorLoop();
    /** Serve one connection until EOF/error/stop; closes @p fd. */
    void handleConnection(int fd);
    /**
     * Dispatch one decoded request to server_, returning the
     * response frame. Sets @p request_stop on SHUTDOWN.
     */
    std::string dispatch(const wire::FrameHeader &header,
                         const std::string &payload,
                         bool *request_stop, bool *protocol_error);
    /** Begin teardown without joining (callable from a handler). */
    void requestStop();
    void unregisterConnection(int fd, bool disconnected);

    /** Immutable after construction; readable without the lock. */
    TransportOptions options_;
    Server &server_;
    uint16_t port_ = 0;
    int listenFd_ = -1;
    /**
     * Handler slots; sized at maxConnections (min 2 so detached
     * tasks always have a background worker).
     */
    std::unique_ptr<ThreadPool> ioPool_;
    std::thread acceptor_;

    /**
     * Guards the live-connection set, stop flag and counters. A leaf
     * in the acquisition order: nothing else — no batcher, registry,
     * server or pool mutex — is acquired while it is held (the
     * ::shutdown(2) calls made under it are syscalls, not locks).
     */
    mutable Mutex mutex_{"serve.WireServer.mutex"};
    CondVar stopCv_;
    std::set<int> liveConnections_ GUARDED_BY(mutex_);
    bool stopRequested_ GUARDED_BY(mutex_) = false;
    TransportStats stats_ GUARDED_BY(mutex_);
};

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_TRANSPORT_H
