/**
 * @file
 * Counter structs exported by the serving layer. All counters are
 * cumulative since construction; the owning component snapshots them
 * under its own lock, so a returned struct is internally consistent.
 */
#ifndef TREEBEARD_SERVE_STATS_H
#define TREEBEARD_SERVE_STATS_H

#include <cstdint>

namespace treebeard::serve {

/** Model-lifecycle counters of one ModelRegistry. */
struct RegistryStats
{
    /** load() calls (hits + compiles). */
    int64_t loads = 0;
    /** load() calls served by an already-resident session. */
    int64_t hits = 0;
    /** load() calls that ran the compiler pipeline. */
    int64_t compiles = 0;
    /** Sessions evicted by the maxResidentModels LRU cap or evict(). */
    int64_t evictions = 0;
};

/** Request/batch counters of one DynamicBatcher. */
struct BatcherStats
{
    /** Requests admitted into the queue (or executed inline). */
    int64_t requestsAdmitted = 0;
    /** Requests rejected by admission control (serve.queue.full). */
    int64_t requestsRejected = 0;
    /** Admitted requests of exactly one row. */
    int64_t singleRowRequests = 0;
    /** predict() executions (each covers >= 1 coalesced requests). */
    int64_t batchesExecuted = 0;
    /** Rows across all executed batches. */
    int64_t rowsExecuted = 0;
    /** Batches containing more than one coalesced request. */
    int64_t coalescedBatches = 0;
    /** Largest batch (rows) executed so far. */
    int64_t largestBatchRows = 0;
    /** Flushes triggered by reaching the batch-size target. */
    int64_t sizeFlushes = 0;
    /** Flushes triggered by the max-queue-delay deadline. */
    int64_t deadlineFlushes = 0;

    /** Mean rows per executed batch (0 when nothing ran yet). */
    double
    averageBatchRows() const
    {
        return batchesExecuted == 0
                   ? 0.0
                   : static_cast<double>(rowsExecuted) /
                         static_cast<double>(batchesExecuted);
    }

    void
    add(const BatcherStats &other)
    {
        requestsAdmitted += other.requestsAdmitted;
        requestsRejected += other.requestsRejected;
        singleRowRequests += other.singleRowRequests;
        batchesExecuted += other.batchesExecuted;
        rowsExecuted += other.rowsExecuted;
        coalescedBatches += other.coalescedBatches;
        largestBatchRows =
            largestBatchRows > other.largestBatchRows
                ? largestBatchRows
                : other.largestBatchRows;
        sizeFlushes += other.sizeFlushes;
        deadlineFlushes += other.deadlineFlushes;
    }
};

/** Server-wide aggregate: registry plus every tenant's batcher. */
struct ServerStats
{
    RegistryStats registry;
    BatcherStats batching;
    /** Models currently resident (sessions in the registry). */
    int64_t residentModels = 0;
};

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_STATS_H
