#include "serve/batcher.h"

#include <algorithm>
#include <utility>

namespace treebeard::serve {

DynamicBatcher::DynamicBatcher(std::shared_ptr<const Session> session,
                               const hir::Schedule &schedule,
                               BatcherOptions options)
    : session_(std::move(session)), options_(std::move(options))
{
    panicIf(session_ == nullptr, "DynamicBatcher: null session");
    fatalIf(options_.maxBatchRows <= 0,
            "DynamicBatcher: maxBatchRows must be positive (got ",
            options_.maxBatchRows, ")");
    fatalIf(options_.maxQueueDelayMicros < 0,
            "DynamicBatcher: negative maxQueueDelayMicros");
    // Align the size-flush target to the schedule's parallel row
    // chunks: a flush at a chunk multiple hands every worker full
    // chunks instead of a ragged tail.
    batchRowTarget_ = options_.maxBatchRows;
    int64_t chunk = schedule.rowChunkRows;
    if (chunk > 0 && batchRowTarget_ % chunk != 0)
        batchRowTarget_ += chunk - batchRowTarget_ % chunk;
    if (options_.enabled)
        flusher_ = std::thread([this] { flusherLoop(); });
}

DynamicBatcher::~DynamicBatcher()
{
    shutdown();
}

std::future<std::vector<float>>
DynamicBatcher::submit(const float *rows, int64_t num_rows)
{
    if (num_rows < 0 || (rows == nullptr && num_rows > 0)) {
        fatalCoded(kErrBadRequest, "bad predict request: ", num_rows,
                   " rows with ",
                   rows == nullptr ? "null" : "non-null",
                   " row pointer");
    }
    if (num_rows == 0) {
        // Nothing to compute; resolve immediately without queueing.
        std::promise<std::vector<float>> promise;
        promise.set_value({});
        return promise.get_future();
    }

    if (!options_.enabled) {
        // Unbatched dispatch: same interface, caller's thread, no
        // queue delay — the baseline the serving bench sweeps against.
        {
            MutexLock lock(mutex_);
            if (shuttingDown_) {
                fatalCoded(kErrQueueShutdown,
                           "predict request after batcher shutdown");
            }
            stats_.requestsAdmitted += 1;
            if (num_rows == 1)
                stats_.singleRowRequests += 1;
        }
        std::vector<float> predictions(
            static_cast<size_t>(num_rows) * session_->numClasses());
        std::promise<std::vector<float>> promise;
        try {
            session_->predict(rows, num_rows, predictions.data());
            promise.set_value(std::move(predictions));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
        {
            MutexLock lock(mutex_);
            stats_.batchesExecuted += 1;
            stats_.rowsExecuted += num_rows;
            stats_.largestBatchRows =
                std::max(stats_.largestBatchRows, num_rows);
        }
        return promise.get_future();
    }

    Request request;
    request.numRows = num_rows;
    request.rows.assign(rows,
                        rows + static_cast<size_t>(num_rows) *
                                   session_->numFeatures());
    request.deadline =
        Clock::now() +
        std::chrono::microseconds(options_.maxQueueDelayMicros);
    std::future<std::vector<float>> future =
        request.promise.get_future();

    {
        MutexLock lock(mutex_);
        if (shuttingDown_) {
            fatalCoded(kErrQueueShutdown,
                       "predict request after batcher shutdown");
        }
        if (options_.maxQueuedRows > 0 &&
            queuedRows_ + num_rows > options_.maxQueuedRows) {
            stats_.requestsRejected += 1;
            fatalCoded(kErrQueueFull, "admission control: ", num_rows,
                       " rows would push the queue past ",
                       options_.maxQueuedRows,
                       " queued rows (currently ", queuedRows_,
                       "); retry after the queue drains");
        }
        stats_.requestsAdmitted += 1;
        if (num_rows == 1)
            stats_.singleRowRequests += 1;
        queuedRows_ += num_rows;
        queue_.push_back(std::move(request));
    }
    wakeFlusher_.notifyOne();
    return future;
}

std::vector<DynamicBatcher::Request>
DynamicBatcher::popBatchLocked()
{
    std::vector<Request> batch;
    int64_t batch_rows = 0;
    // Whole requests only: a request is never split across batches,
    // and the first request always ships even when it alone exceeds
    // the target.
    while (!queue_.empty()) {
        int64_t next = queue_.front().numRows;
        if (!batch.empty() && batch_rows + next > batchRowTarget_)
            break;
        batch_rows += next;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (batch_rows >= batchRowTarget_)
            break;
    }
    queuedRows_ -= batch_rows;
    return batch;
}

void
DynamicBatcher::executeBatch(std::vector<Request> batch)
{
    if (batch.empty())
        return;
    int64_t batch_rows = 0;
    for (const Request &request : batch)
        batch_rows += request.numRows;

    int32_t num_features = session_->numFeatures();
    int32_t num_classes = session_->numClasses();
    std::vector<float> rows(static_cast<size_t>(batch_rows) *
                            num_features);
    size_t offset = 0;
    for (const Request &request : batch) {
        std::copy(request.rows.begin(), request.rows.end(),
                  rows.begin() + offset);
        offset += request.rows.size();
    }

    std::vector<float> predictions(static_cast<size_t>(batch_rows) *
                                   num_classes);
    try {
        session_->predict(rows.data(), batch_rows, predictions.data());
    } catch (...) {
        // One failing batch fails each of its requests; the batcher
        // itself stays serviceable.
        for (Request &request : batch)
            request.promise.set_exception(std::current_exception());
        return;
    }

    // Count the batch *before* fulfilling its promises: a client
    // that has seen its future resolve must also see the counters
    // include that batch (the lock-discipline pass caught stats()
    // racing ahead of this update when it ran after set_value).
    {
        MutexLock lock(mutex_);
        stats_.batchesExecuted += 1;
        stats_.rowsExecuted += batch_rows;
        stats_.largestBatchRows =
            std::max(stats_.largestBatchRows, batch_rows);
        if (batch.size() > 1)
            stats_.coalescedBatches += 1;
    }

    size_t cursor = 0;
    for (Request &request : batch) {
        size_t count =
            static_cast<size_t>(request.numRows) * num_classes;
        request.promise.set_value(std::vector<float>(
            predictions.begin() + cursor,
            predictions.begin() + cursor + count));
        cursor += count;
    }
}

void
DynamicBatcher::flusherLoop()
{
    MutexLock lock(mutex_);
    while (true) {
        if (queue_.empty()) {
            if (shuttingDown_)
                return;
            wakeFlusher_.wait(lock);
            continue;
        }
        bool size_ready = queuedRows_ >= batchRowTarget_;
        if (!size_ready && !shuttingDown_) {
            // Wait out the oldest request's deadline; a size trigger
            // or shutdown notifies earlier, and the re-check at the
            // top of the loop absorbs spurious wakeups.
            Clock::time_point deadline = queue_.front().deadline;
            if (Clock::now() < deadline) {
                wakeFlusher_.waitUntil(lock, deadline);
                continue;
            }
        }
        if (size_ready)
            stats_.sizeFlushes += 1;
        else
            stats_.deadlineFlushes += 1;
        std::vector<Request> batch = popBatchLocked();
        lock.unlock();
        // predict() runs outside the lock so new requests keep
        // enqueueing (and admission keeps rejecting) during a batch.
        executeBatch(std::move(batch));
        lock.lock();
    }
}

void
DynamicBatcher::shutdown()
{
    // Claim the flusher thread under the lock so concurrent shutdown
    // callers (say, the destructor racing an explicit shutdown from
    // another thread) never both join the same std::thread.
    std::thread to_join;
    {
        MutexLock lock(mutex_);
        shuttingDown_ = true;
        to_join = std::move(flusher_);
    }
    wakeFlusher_.notifyAll();
    if (to_join.joinable())
        to_join.join(); // the flusher drains the queue before exiting
}

int64_t
DynamicBatcher::queuedRows() const
{
    MutexLock lock(mutex_);
    return queuedRows_;
}

BatcherStats
DynamicBatcher::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

} // namespace treebeard::serve
