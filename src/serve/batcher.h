/**
 * @file
 * Dynamic request batching for one served model.
 *
 * A DynamicBatcher turns many small predict requests — the
 * single-row lookups that dominate online serving traffic — into the
 * large batches the compiled walkers are fast at. Requests enqueue
 * with a copy of their rows and receive a future; a dedicated flusher
 * thread coalesces queued requests into one contiguous batch, runs
 * Session::predict once, and slices the prediction buffer back into
 * the per-request futures. Because every coalesced batch is a single
 * predict() over row-independent walks, responses are bit-identical
 * to calling Session::predict directly on each request's rows (the
 * serving exactness tests assert this across both backends).
 *
 * Two triggers flush the queue, whichever fires first:
 *  - size: queued rows reached the batch target. The target is
 *    BatcherOptions::maxBatchRows rounded up to a multiple of the
 *    schedule's rowChunkRows, so a flushed batch always fills the
 *    parallel row loop's chunks instead of leaving a ragged tail.
 *  - deadline: the oldest queued request has waited
 *    maxQueueDelayMicros. This bounds the latency cost a lone
 *    request pays for batching under light load.
 *
 * Admission control: maxQueuedRows caps the rows waiting in the
 * queue; submits past the cap fail fast with serve.queue.full rather
 * than letting the queue (and every queued request's latency) grow
 * without bound.
 *
 * With batching disabled (BatcherOptions::enabled = false) submit()
 * executes on the calling thread — the unbatched dispatch baseline
 * the serving bench compares against, behind the same interface.
 */
#ifndef TREEBEARD_SERVE_BATCHER_H
#define TREEBEARD_SERVE_BATCHER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"
#include "common/thread_annotations.h"
#include "serve/serve_errors.h"
#include "serve/stats.h"
#include "treebeard/compiler.h"

namespace treebeard::serve {

/** Batching policy knobs (see file header for semantics). */
struct BatcherOptions
{
    /**
     * Rows that trigger a size flush. The effective target rounds up
     * to a multiple of the session schedule's rowChunkRows (when
     * set), aligning flushed batches to the parallel row loop.
     */
    int64_t maxBatchRows = 256;
    /** Longest a queued request waits before a deadline flush. */
    int64_t maxQueueDelayMicros = 1000;
    /** Admission cap on queued rows (0 = unbounded). */
    int64_t maxQueuedRows = 1 << 16;
    /** False = no queue/thread; submit() predicts inline. */
    bool enabled = true;
};

class DynamicBatcher
{
  public:
    /**
     * @param session the shared compiled model this batcher feeds.
     * @param schedule the schedule @p session was compiled under
     *        (supplies rowChunkRows for batch alignment).
     */
    DynamicBatcher(std::shared_ptr<const Session> session,
                   const hir::Schedule &schedule,
                   BatcherOptions options = {});

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /** Drains the queue, then joins the flusher. */
    ~DynamicBatcher();

    /**
     * Enqueue @p num_rows rows (copied; the caller's buffer is free
     * immediately) and return a future for the predictions
     * (num_rows * numClasses() floats, request row order).
     * @throws Error kErrQueueFull when admission control rejects,
     *         kErrQueueShutdown after shutdown() began,
     *         kErrBadRequest on a negative count or null rows.
     */
    std::future<std::vector<float>> submit(const float *rows,
                                           int64_t num_rows);

    /**
     * Stop admitting, flush everything still queued, join the
     * flusher thread. Idempotent; runs automatically on destruction.
     */
    void shutdown();

    /** Rows currently waiting (diagnostics; racy by nature). */
    int64_t queuedRows() const;

    BatcherStats stats() const;

    /** The size-flush target after rowChunkRows alignment. */
    int64_t batchRowTarget() const { return batchRowTarget_; }

    const Session &session() const { return *session_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Request
    {
        std::vector<float> rows;
        int64_t numRows = 0;
        std::promise<std::vector<float>> promise;
        Clock::time_point deadline;
    };

    void flusherLoop();
    /** Pop one batch worth of requests. */
    std::vector<Request> popBatchLocked() REQUIRES(mutex_);
    /**
     * Predict one batch and fulfill its promises. Takes the lock
     * only for the final stats update — the predict itself runs
     * unlocked so submits keep flowing during a batch.
     */
    void executeBatch(std::vector<Request> batch) EXCLUDES(mutex_);

    /** Immutable after construction; readable without the lock. */
    std::shared_ptr<const Session> session_;
    BatcherOptions options_;
    int64_t batchRowTarget_ = 0;

    /**
     * Guards the queue, its counters and the flusher handle. A leaf
     * in the acquisition order: executeBatch drops it before
     * predict(), so it never nests over the thread pool's locks.
     */
    mutable Mutex mutex_{"serve.DynamicBatcher.mutex"};
    CondVar wakeFlusher_;
    std::deque<Request> queue_ GUARDED_BY(mutex_);
    int64_t queuedRows_ GUARDED_BY(mutex_) = 0;
    bool shuttingDown_ GUARDED_BY(mutex_) = false;
    BatcherStats stats_ GUARDED_BY(mutex_);
    /** Claimed (moved out) under the lock by the first shutdown(). */
    std::thread flusher_ GUARDED_BY(mutex_);
};

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_BATCHER_H
