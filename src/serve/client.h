/**
 * @file
 * A blocking C++ client for the serving layer's TCP wire protocol
 * (serve/wire.h). One Client owns one connection; the closed-loop
 * driver and the transport tests hold one per thread.
 *
 * Every failure surfaces as a treebeard::Error carrying the same
 * stable code an in-process caller would see: a non-kOk response
 * status maps back through wire::errorCodeForStatus (so a rejected
 * admission is serve.queue.full on both sides of the socket), and a
 * connection that drops mid-frame throws serve.wire.connection-closed.
 *
 * Not thread-safe: requests and responses interleave on one byte
 * stream, so callers wanting concurrency open one Client per thread.
 */
#ifndef TREEBEARD_SERVE_CLIENT_H
#define TREEBEARD_SERVE_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/forest.h"
#include "serve/model_registry.h"
#include "serve/wire.h"

namespace treebeard::hir {
class Schedule;
}

namespace treebeard::serve {

class Client
{
  public:
    /**
     * Connect to a WireServer at @p host (numeric IPv4) : @p port.
     * Throws Error when the connection is refused.
     */
    Client(const std::string &host, uint16_t port);

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Closes the connection. */
    ~Client();

    /** LOAD under the server registry's default schedule. */
    ModelHandle loadModel(const model::Forest &forest);

    /** LOAD with a tenant-tuned schedule. */
    ModelHandle loadModel(const model::Forest &forest,
                          const hir::Schedule &schedule);

    /**
     * PREDICT @p num_rows rows of @p num_features features; returns
     * the predictions in request order, bit-identical to an
     * in-process Server::predict of the same rows.
     */
    std::vector<float> predict(const ModelHandle &handle,
                               const float *rows, int64_t num_rows,
                               int32_t num_features);

    /** EVICT; true when the model was resident. */
    bool evict(const ModelHandle &handle);

    /** STATS; the server's counters as a JSON document. */
    std::string stats();

    /**
     * SHUTDOWN: ask the listener to stop accepting and tear down.
     * The connection is unusable afterwards.
     */
    void shutdownServer();

  private:
    /**
     * Write one request frame, read the response, and return its
     * payload. Throws a coded Error on a non-kOk status or a
     * connection failure.
     */
    std::string roundTrip(wire::Opcode opcode,
                          const std::string &payload);

    int fd_ = -1;
};

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_CLIENT_H
