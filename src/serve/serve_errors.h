/**
 * @file
 * Stable diagnostic codes for the serving layer.
 *
 * Serving failures follow the same machine-readable code scheme the
 * compiler's verifier established ("<level>.<subject>.<violation>"):
 * every recoverable serving Error carries one of the codes below in
 * Error::code(), so clients branch on codes instead of message
 * strings. Codes are API — tests assert on them; never rename one.
 *
 * Two families exist:
 *  - serve.registry.*  model lifecycle failures (unknown or evicted
 *    handles, lookups racing eviction).
 *  - serve.queue.*     request admission and queueing failures
 *    (admission-control rejections, submits after shutdown,
 *    malformed request payloads).
 */
#ifndef TREEBEARD_SERVE_SERVE_ERRORS_H
#define TREEBEARD_SERVE_SERVE_ERRORS_H

namespace treebeard::serve {

/** Lookup of a handle the registry never issued or already evicted. */
inline constexpr const char *kErrUnknownModel =
    "serve.registry.unknown-model";

/**
 * A request was rejected by admission control: accepting it would
 * push the model's queued rows past BatcherOptions::maxQueuedRows.
 * Back off and retry; already-queued work is unaffected.
 */
inline constexpr const char *kErrQueueFull = "serve.queue.full";

/** A submit after Server::shutdown() / batcher teardown began. */
inline constexpr const char *kErrQueueShutdown =
    "serve.queue.shutdown";

/**
 * A malformed request payload: a negative row count, a null row
 * pointer with rows promised, or a row buffer whose length is not a
 * multiple of the model's feature count.
 */
inline constexpr const char *kErrBadRequest =
    "serve.queue.bad-request";

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_SERVE_ERRORS_H
