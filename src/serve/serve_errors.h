/**
 * @file
 * Stable diagnostic codes for the serving layer.
 *
 * Serving failures follow the same machine-readable code scheme the
 * compiler's verifier established ("<level>.<subject>.<violation>"):
 * every recoverable serving Error carries one of the codes below in
 * Error::code(), so clients branch on codes instead of message
 * strings. Codes are API — tests assert on them; never rename one.
 *
 * Three families exist:
 *  - serve.registry.*  model lifecycle failures (unknown or evicted
 *    handles, lookups racing eviction).
 *  - serve.queue.*     request admission and queueing failures
 *    (admission-control rejections, submits after shutdown,
 *    malformed request payloads).
 *  - serve.wire.*      TCP transport failures (malformed frames,
 *    oversized declared lengths, connections closed mid-frame).
 *    Each wire code maps 1:1 onto a response status byte
 *    (serve/wire.h), so a remote client sees exactly the code an
 *    in-process caller would.
 */
#ifndef TREEBEARD_SERVE_SERVE_ERRORS_H
#define TREEBEARD_SERVE_SERVE_ERRORS_H

namespace treebeard::serve {

/** Lookup of a handle the registry never issued or already evicted. */
inline constexpr const char *kErrUnknownModel =
    "serve.registry.unknown-model";

/**
 * A request was rejected by admission control: accepting it would
 * push the model's queued rows past BatcherOptions::maxQueuedRows.
 * Back off and retry; already-queued work is unaffected.
 */
inline constexpr const char *kErrQueueFull = "serve.queue.full";

/** A submit after Server::shutdown() / batcher teardown began. */
inline constexpr const char *kErrQueueShutdown =
    "serve.queue.shutdown";

/**
 * A malformed request payload: a negative row count, a null row
 * pointer with rows promised, or a row buffer whose length is not a
 * multiple of the model's feature count.
 */
inline constexpr const char *kErrBadRequest =
    "serve.queue.bad-request";

/**
 * A frame whose header cannot be trusted: wrong magic, an unsupported
 * protocol version, or an opcode the server does not know. Bad
 * magic/version closes the connection (the byte stream cannot be
 * re-synchronized); an unknown opcode with a sane header only fails
 * the one frame.
 */
inline constexpr const char *kErrWireBadFrame = "serve.wire.bad-frame";

/**
 * A frame header declaring a payload longer than the transport's
 * maxFramePayloadBytes. The server rejects without reading the
 * payload and closes the connection.
 */
inline constexpr const char *kErrWireFrameTooLarge =
    "serve.wire.frame-too-large";

/**
 * The peer closed the connection before a complete frame arrived
 * (client-side: the server went away mid-request; server-side the
 * condition is a clean close, not an error).
 */
inline constexpr const char *kErrWireClosed =
    "serve.wire.connection-closed";

/**
 * A server-side failure with no stable serving code of its own
 * (e.g. an unexpected exception while compiling a LOAD payload).
 * The response's message payload carries the underlying error text.
 */
inline constexpr const char *kErrWireInternal = "serve.wire.internal";

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_SERVE_ERRORS_H
