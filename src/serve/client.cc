#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "hir/schedule.h"
#include "model/serialization.h"
#include "serve/serve_errors.h"

namespace treebeard::serve {

namespace {

/** Read exactly @p size bytes; false on EOF/error mid-read. */
bool
readFully(int fd, void *buffer, size_t size)
{
    size_t done = 0;
    while (done < size) {
        ssize_t got = ::recv(fd, static_cast<char *>(buffer) + done,
                             size - done, 0);
        if (got > 0) {
            done += static_cast<size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeFully(int fd, const std::string &data)
{
    size_t done = 0;
    while (done < data.size()) {
        ssize_t sent = ::send(fd, data.data() + done,
                              data.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(sent);
    }
    return true;
}

} // namespace

Client::Client(const std::string &host, uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd_ < 0, "socket(): ", std::strerror(errno));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        fatal("Client: \"", host, "\" is not a numeric IPv4 address");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&address),
                  sizeof(address)) != 0) {
        int error = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("connect(", host, ":", port,
              "): ", std::strerror(error));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
Client::roundTrip(wire::Opcode opcode, const std::string &payload)
{
    fatalIf(fd_ < 0, "Client: connection already closed");
    if (!writeFully(fd_, wire::encodeFrame(opcode, wire::Status::kOk,
                                           payload)))
        fatalCoded(kErrWireClosed,
                   "connection closed while writing request");

    unsigned char header_bytes[wire::kFrameHeaderBytes];
    if (!readFully(fd_, header_bytes, sizeof(header_bytes)))
        fatalCoded(kErrWireClosed,
                   "connection closed before a response arrived");

    wire::FrameHeader header;
    if (wire::decodeFrameHeader(header_bytes, &header) !=
        wire::HeaderParse::kOk)
        fatalCoded(kErrWireBadFrame,
                   "response frame has a bad magic or version");

    std::string response(header.payloadBytes, '\0');
    if (header.payloadBytes > 0 &&
        !readFully(fd_, response.data(), response.size()))
        fatalCoded(kErrWireClosed,
                   "connection closed mid-response");

    if (header.status != wire::Status::kOk) {
        // The payload of an error frame is the server's message; the
        // status byte carries the stable code.
        fatalCoded(wire::errorCodeForStatus(header.status),
                   response.empty() ? "request failed"
                                    : response.c_str());
    }
    return response;
}

ModelHandle
Client::loadModel(const model::Forest &forest)
{
    return roundTrip(
        wire::Opcode::kLoad,
        wire::encodeLoadPayload(model::forestToJson(forest).dump(),
                                ""));
}

ModelHandle
Client::loadModel(const model::Forest &forest,
                  const hir::Schedule &schedule)
{
    return roundTrip(
        wire::Opcode::kLoad,
        wire::encodeLoadPayload(model::forestToJson(forest).dump(),
                                hir::scheduleToJsonString(schedule)));
}

std::vector<float>
Client::predict(const ModelHandle &handle, const float *rows,
                int64_t num_rows, int32_t num_features)
{
    std::string response = roundTrip(
        wire::Opcode::kPredict,
        wire::encodePredictPayload(handle, rows, num_rows,
                                   num_features));
    std::vector<float> predictions;
    if (!wire::decodeFloatPayload(response, &predictions))
        fatalCoded(kErrWireBadFrame,
                   "PREDICT response payload is not a float array");
    return predictions;
}

bool
Client::evict(const ModelHandle &handle)
{
    std::string response = roundTrip(wire::Opcode::kEvict, handle);
    return !response.empty() && response[0] == '\1';
}

std::string
Client::stats()
{
    return roundTrip(wire::Opcode::kStats, "");
}

void
Client::shutdownServer()
{
    roundTrip(wire::Opcode::kShutdown, "");
}

} // namespace treebeard::serve
