/**
 * @file
 * The multi-tenant serving front-end: a ModelRegistry of shared
 * compiled Sessions, one DynamicBatcher per resident model, and an
 * admission-controlled predict API many client threads call
 * concurrently.
 *
 * A tenant loads its model once (loadModel hashes content, so
 * re-loading is free and two tenants serving the same model share one
 * Session and one batcher) and then predicts by handle. Requests from
 * all tenants of one model coalesce in that model's batcher;
 * different models batch independently and execute concurrently —
 * heavyweight parallel sessions additionally fan out over the
 * existing ThreadPool inside predict, exactly as they do outside the
 * serving layer.
 *
 * Every failure path throws treebeard::Error carrying a stable
 * serve.registry.* / serve.queue.* code (serve_errors.h), so clients
 * implement retry/reroute policies on Error::code().
 *
 * Thread safety: all public members may be called concurrently.
 * shutdown() drains every queue; predictions still in flight complete
 * and later submits fail with serve.queue.shutdown.
 */
#ifndef TREEBEARD_SERVE_SERVER_H
#define TREEBEARD_SERVE_SERVER_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/checked_mutex.h"
#include "common/thread_annotations.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_errors.h"
#include "serve/stats.h"

namespace treebeard::serve {

/** Server configuration: registry policy plus per-model batching. */
struct ServerOptions
{
    RegistryOptions registry;
    /** Applied to every model's batcher at load time. */
    BatcherOptions batcher;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Drains and joins every batcher. */
    ~Server();

    /**
     * Make @p forest servable under @p schedule (a tenant's tuned
     * schedule) and return its routing handle. Content-hash
     * deduplicated: a model already resident — loaded by any tenant —
     * reuses its Session and batcher without recompiling, and with a
     * JIT disk cache configured even a cold load of previously-seen
     * content skips the system compiler.
     */
    ModelHandle loadModel(const model::Forest &forest,
                          const hir::Schedule &schedule);

    /** loadModel under the registry's default schedule. */
    ModelHandle loadModel(const model::Forest &forest);

    /**
     * Submit @p num_rows rows for @p handle; returns a future of
     * num_rows * numClasses(handle) predictions in request order.
     * Rows are copied; the caller's buffer is free on return.
     * @throws Error with serve.registry.unknown-model on a stale
     * handle, serve.queue.full / serve.queue.shutdown /
     * serve.queue.bad-request from admission. A request of zero (or
     * negative) rows is a bad request here, not a no-op: an empty
     * predict has no answer to wait for, so admitting it would only
     * manufacture a hollow future.
     */
    std::future<std::vector<float>> predictAsync(
        const ModelHandle &handle, const float *rows,
        int64_t num_rows);

    /**
     * Synchronous convenience around predictAsync: blocks for the
     * batch this request lands in and returns (or rethrows) its
     * outcome.
     */
    std::vector<float> predict(const ModelHandle &handle,
                               const float *rows, int64_t num_rows);

    /**
     * As predict(), validating that @p rows holds whole rows for the
     * model (size divisible by its feature count; throws
     * serve.queue.bad-request otherwise).
     */
    std::vector<float> predict(const ModelHandle &handle,
                               const std::vector<float> &rows);

    /**
     * Evict @p handle: tear down its batcher (draining queued work),
     * then drop the registry entry. False when not resident.
     */
    bool evictModel(const ModelHandle &handle);

    /** Stop admitting requests and drain every model's queue. */
    void shutdown();

    int32_t numFeatures(const ModelHandle &handle);
    int32_t numClasses(const ModelHandle &handle);

    /** Per-model batcher counters (throws on an unknown handle). */
    BatcherStats batcherStats(const ModelHandle &handle) const;

    /** Registry + aggregated batching counters. */
    ServerStats stats() const;

    ModelRegistry &registry() { return registry_; }
    const ModelRegistry &registry() const { return registry_; }

  private:
    /** The batcher serving @p handle; throws kErrUnknownModel. */
    std::shared_ptr<DynamicBatcher> batcher(
        const ModelHandle &handle) const EXCLUDES(mutex_);

    /** Immutable after construction; readable without the lock. */
    ServerOptions options_;
    /** Locks itself; never touched under mutex_ (see below). */
    ModelRegistry registry_;
    /**
     * Guards the batcher map and the retired counters. Discipline:
     * nothing else — not the registry's mutex, not any batcher's —
     * is acquired while this is held; registry queries and batcher
     * stats()/shutdown() calls happen before taking it or after
     * releasing it. That keeps every serving mutex a leaf and the
     * acquisition-order graph cycle-free by construction.
     */
    mutable Mutex mutex_{"serve.Server.mutex"};
    /**
     * One batcher per resident model. shared_ptr so predictAsync can
     * release the server lock before submitting — a long batch on
     * one model must not block requests routed to another.
     */
    std::map<ModelHandle, std::shared_ptr<DynamicBatcher>> batchers_
        GUARDED_BY(mutex_);
    /** Counters of already-evicted batchers, folded into stats(). */
    BatcherStats retiredBatching_ GUARDED_BY(mutex_);
    bool shuttingDown_ GUARDED_BY(mutex_) = false;
};

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_SERVER_H
