/**
 * @file
 * The Treebeard serving wire format: a length-prefixed binary framing
 * shared by the TCP transport (serve/transport.h), the client helper
 * (serve/client.h) and the protocol tests.
 *
 * Every message — request or response — is one frame:
 *
 *      offset  size  field
 *           0     4  magic      'T' 'B' 'W' '1'
 *           4     1  version    kWireVersion (1)
 *           5     1  opcode     Opcode (LOAD/PREDICT/EVICT/STATS/
 *                               SHUTDOWN); responses echo the request
 *           6     1  status     Status; always kOk in requests
 *           7     1  reserved   must be 0 on send, ignored on receive
 *           8     4  length     payload bytes (u32, little-endian)
 *          12     n  payload    opcode-specific (below)
 *
 * All multi-byte integers are little-endian; floats travel as the
 * little-endian bytes of their IEEE-754 bit pattern. Payloads:
 *
 *   LOAD request:   u32 forest-JSON length, forest JSON, u32
 *                   schedule-JSON length, schedule JSON (length 0 =
 *                   serve under the registry's default schedule)
 *   LOAD response:  the model handle ("tb-<16 hex>") as raw bytes
 *   PREDICT req:    u32 handle length, handle, u32 row count, then
 *                   rows as f32s (the server derives the feature
 *                   count from the payload size and rejects ragged
 *                   buffers with serve.queue.bad-request)
 *   PREDICT resp:   predictions as f32s (rows x numClasses)
 *   EVICT request:  the handle as raw bytes
 *   EVICT response: 1 byte: 1 = was resident, 0 = was not
 *   STATS request:  empty
 *   STATS response: a JSON document (registry + batching + transport
 *                   counters)
 *   SHUTDOWN req:   empty; the server acknowledges with kOk, then
 *                   stops accepting connections
 *   error response: human-readable error text as raw bytes (any
 *                   opcode, status != kOk)
 *
 * The status byte maps 1:1 onto the stable serving error codes
 * (serve_errors.h): a remote client rethrows exactly the coded Error
 * an in-process Server caller would have seen. Codes and statuses are
 * API — tests assert on them; never renumber a Status.
 */
#ifndef TREEBEARD_SERVE_WIRE_H
#define TREEBEARD_SERVE_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

namespace treebeard::serve::wire {

/** Frame magic: the first four payload-framing bytes on the wire. */
inline constexpr unsigned char kMagic[4] = {'T', 'B', 'W', '1'};

/** Protocol version this build speaks. */
inline constexpr uint8_t kWireVersion = 1;

/** Fixed frame-header size in bytes. */
inline constexpr size_t kFrameHeaderBytes = 12;

/** Default cap on a frame's declared payload length (64 MiB). */
inline constexpr int64_t kDefaultMaxFramePayloadBytes = 64ll << 20;

/** Request/response kinds. Values are wire API; never renumber. */
enum class Opcode : uint8_t
{
    kLoad = 1,
    kPredict = 2,
    kEvict = 3,
    kStats = 4,
    kShutdown = 5,
};

/** True when @p opcode is one this build dispatches. */
bool isKnownOpcode(uint8_t opcode);

/**
 * Response status byte. Values are wire API; never renumber. Every
 * non-kOk status corresponds to one stable error code (see
 * errorCodeForStatus / statusForErrorCode).
 */
enum class Status : uint8_t
{
    kOk = 0,
    /** serve.registry.unknown-model */
    kUnknownModel = 1,
    /** serve.queue.full */
    kQueueFull = 2,
    /** serve.queue.shutdown */
    kShutdown = 3,
    /** serve.queue.bad-request */
    kBadRequest = 4,
    /** serve.wire.bad-frame */
    kBadFrame = 5,
    /** serve.wire.frame-too-large */
    kFrameTooLarge = 6,
    /** serve.wire.internal */
    kInternal = 7,
};

/** The stable error code for @p status ("" for kOk or unknown). */
const char *errorCodeForStatus(Status status);

/**
 * The status byte for a coded serving Error. Codes outside the
 * serve.* taxonomy (a compile failure's hir.* code, an uncoded
 * Error) map to @p fallback, whose message payload carries the text.
 */
Status statusForErrorCode(const std::string &code,
                          Status fallback = Status::kInternal);

/** Decoded header fields of one frame. */
struct FrameHeader
{
    uint8_t opcode = 0;
    Status status = Status::kOk;
    uint32_t payloadBytes = 0;
};

/** decodeFrameHeader outcome. */
enum class HeaderParse
{
    kOk,
    /** Magic mismatch: the stream cannot be re-synchronized. */
    kBadMagic,
    /** Version this build does not speak. */
    kBadVersion,
};

/**
 * Parse @p bytes (exactly kFrameHeaderBytes of them) into @p header.
 * Opcode validity and the payload-length cap are the caller's checks:
 * both leave the framing intact, so the connection can survive them.
 */
HeaderParse decodeFrameHeader(const unsigned char *bytes,
                              FrameHeader *header);

/** Encode a complete frame (header + payload) ready to send. */
std::string encodeFrame(Opcode opcode, Status status,
                        const std::string &payload);

// --- little-endian scalar helpers (shared by payload codecs/tests) --

void appendU32(std::string *out, uint32_t value);
void appendF32(std::string *out, float value);

/**
 * Read a u32 at @p *cursor, advancing it. False when fewer than four
 * bytes remain.
 */
bool readU32(const std::string &payload, size_t *cursor,
             uint32_t *value);

/**
 * Read @p count bytes at @p *cursor into @p out, advancing it. False
 * when the payload is too short.
 */
bool readBytes(const std::string &payload, size_t *cursor,
               size_t count, std::string *out);

// --- payload codecs ------------------------------------------------

/** Build a LOAD payload (empty @p schedule_json = default schedule). */
std::string encodeLoadPayload(const std::string &forest_json,
                              const std::string &schedule_json);

/** Parse a LOAD payload; false on a malformed layout. */
bool decodeLoadPayload(const std::string &payload,
                       std::string *forest_json,
                       std::string *schedule_json);

/** Build a PREDICT payload from @p num_rows rows of @p num_features. */
std::string encodePredictPayload(const std::string &handle,
                                 const float *rows, int64_t num_rows,
                                 int32_t num_features);

/**
 * Parse a PREDICT payload; false on a malformed layout (short
 * buffer, or trailing bytes that are not a whole number of floats).
 * Whether the floats divide into @p num_rows rows of the model's
 * feature count is the server's semantic check, not the codec's.
 */
bool decodePredictPayload(const std::string &payload,
                          std::string *handle, uint32_t *num_rows,
                          std::vector<float> *values);

/** Encode @p values as the raw-f32 PREDICT response payload. */
std::string encodeFloatPayload(const std::vector<float> &values);

/** Parse a raw-f32 payload; false when not a whole number of floats. */
bool decodeFloatPayload(const std::string &payload,
                        std::vector<float> *values);

} // namespace treebeard::serve::wire

#endif // TREEBEARD_SERVE_WIRE_H
