/**
 * @file
 * A multi-tenant registry of compiled models keyed by content hash.
 *
 * The registry is the serving layer's answer to "a model seen once
 * never recompiles": load() hashes the forest together with its
 * schedule and the compilation backend, and an identical (model,
 * schedule, backend) triple — whether loaded again by the same tenant
 * or a different one — reuses the resident Session instead of running
 * the compiler. When the source-JIT backend is configured with a disk
 * cache (RegistryOptions::compiler.jit.cacheDir), even a model that
 * was evicted, or one first seen by an earlier process, skips the
 * system compiler on its next load: the registry recompilation is
 * served by the JIT disk cache's dlopen fast path.
 *
 * Sessions are handed out as shared_ptr<const Session>, so eviction
 * never invalidates in-flight predictions: the evicted session dies
 * when the last caller drops it. A bounded registry
 * (RegistryOptions::maxResidentModels) evicts least-recently-used
 * entries on insertion, which is what a serving fleet with thousands
 * of cold tenants wants.
 *
 * Thread safety: all members may be called concurrently. Compilation
 * runs outside the registry lock — concurrent load()s of *different*
 * models compile in parallel, while concurrent load()s of the *same*
 * model share one compilation (the second waits for the first).
 */
#ifndef TREEBEARD_SERVE_MODEL_REGISTRY_H
#define TREEBEARD_SERVE_MODEL_REGISTRY_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/checked_mutex.h"
#include "common/thread_annotations.h"
#include "hir/schedule.h"
#include "model/forest.h"
#include "serve/serve_errors.h"
#include "serve/stats.h"
#include "treebeard/compiler.h"

namespace treebeard::serve {

/**
 * A registry entry's identity: "tb-" + 16 hex digits of the FNV-1a
 * hash over (serialized forest, schedule JSON, backend name). Equal
 * content yields equal handles across processes, so handles are
 * stable routing keys for clients.
 */
using ModelHandle = std::string;

/** Registry configuration. */
struct RegistryOptions
{
    /**
     * Resident-session cap (0 = unbounded). Inserting past the cap
     * evicts least-recently-used entries first; sessions still held
     * by callers stay alive until released.
     */
    int64_t maxResidentModels = 0;
    /**
     * Compiler driver options every load() compiles under: the
     * backend, and for the source JIT the persistent disk cache that
     * makes evict-then-reload skip the system compiler.
     */
    CompilerOptions compiler;
    /**
     * The schedule used by load(forest) when the tenant supplies no
     * tuned schedule of its own.
     */
    hir::Schedule defaultSchedule;
};

class ModelRegistry
{
  public:
    explicit ModelRegistry(RegistryOptions options = {});

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Ensure @p forest compiled under @p schedule is resident and
     * return its handle. Reuses the resident session when the content
     * hash matches; otherwise compiles (outside the registry lock)
     * and inserts, evicting LRU entries past maxResidentModels.
     * @throws Error / analysis::VerificationError as compile() does;
     * a failed compilation leaves the registry unchanged.
     */
    ModelHandle load(const model::Forest &forest,
                     const hir::Schedule &schedule);

    /** load() under RegistryOptions::defaultSchedule. */
    ModelHandle load(const model::Forest &forest);

    /**
     * The resident session for @p handle (refreshes its LRU age).
     * @throws Error with code kErrUnknownModel when the handle was
     * never issued or its entry has been evicted.
     */
    std::shared_ptr<const Session> session(const ModelHandle &handle);

    /** The schedule @p handle was compiled under (throws like session). */
    hir::Schedule schedule(const ModelHandle &handle) const;

    /** True when @p handle is resident right now. */
    bool contains(const ModelHandle &handle) const;

    /** Evict @p handle; false when it was not resident. */
    bool evict(const ModelHandle &handle);

    /** Resident handles, most recently used first (diagnostics). */
    std::vector<ModelHandle> residentHandles() const;

    int64_t residentModels() const;

    RegistryStats stats() const;

    const RegistryOptions &options() const { return options_; }

    /**
     * The content-hash handle @p forest/@p schedule would get under
     * this registry's backend, without loading anything. Exposed so
     * clients can pre-compute routing keys.
     */
    ModelHandle handleFor(const model::Forest &forest,
                          const hir::Schedule &schedule) const;

  private:
    struct Entry
    {
        /**
         * The compiled session, shared through a future so loaders
         * of the same handle wait on one compilation instead of
         * duplicating it.
         */
        std::shared_future<std::shared_ptr<const Session>> session;
        hir::Schedule schedule;
        /** LRU age: the registry clock at the last touch. */
        uint64_t lastUse = 0;
    };

    /** Evict LRU entries past the cap. */
    void enforceCapLocked() REQUIRES(mutex_);

    /** Immutable after construction; readable without the lock. */
    RegistryOptions options_;
    /**
     * Guards the resident map and its counters. A leaf in the
     * acquisition order: nothing else is ever acquired under it —
     * compilation (the JIT cache, tile-shape tables, the thread
     * pool) runs strictly outside this lock.
     */
    mutable Mutex mutex_{"serve.ModelRegistry.mutex"};
    std::map<ModelHandle, Entry> models_ GUARDED_BY(mutex_);
    uint64_t clock_ GUARDED_BY(mutex_) = 0;
    RegistryStats stats_ GUARDED_BY(mutex_);
};

} // namespace treebeard::serve

#endif // TREEBEARD_SERVE_MODEL_REGISTRY_H
