#include "serve/server.h"

#include <set>
#include <utility>

namespace treebeard::serve {

Server::Server(ServerOptions options)
    : options_(std::move(options)), registry_(options_.registry)
{}

Server::~Server()
{
    shutdown();
}

ModelHandle
Server::loadModel(const model::Forest &forest,
                  const hir::Schedule &schedule)
{
    {
        MutexLock lock(mutex_);
        if (shuttingDown_) {
            fatalCoded(kErrQueueShutdown,
                       "loadModel after server shutdown");
        }
    }
    // Registry load first (compiles outside any server lock), then
    // attach a batcher if this content is newly resident.
    ModelHandle handle = registry_.load(forest, schedule);
    std::shared_ptr<const Session> session = registry_.session(handle);
    // The registry's LRU cap may have evicted other models to make
    // room; retire their batchers so a stale handle fails with
    // serve.registry.unknown-model instead of serving a session the
    // registry already dropped. Residency is snapshotted *before*
    // taking the server lock — the lock discipline forbids acquiring
    // the registry's mutex under it (see the mutex_ declaration).
    std::vector<ModelHandle> resident_list =
        registry_.residentHandles();
    std::set<ModelHandle> resident(resident_list.begin(),
                                   resident_list.end());
    std::vector<std::shared_ptr<DynamicBatcher>> stale;
    {
        MutexLock lock(mutex_);
        if (batchers_.count(handle) == 0) {
            batchers_.emplace(
                handle, std::make_shared<DynamicBatcher>(
                            std::move(session), schedule,
                            options_.batcher));
        }
        for (auto it = batchers_.begin(); it != batchers_.end();) {
            if (it->first != handle &&
                resident.count(it->first) == 0) {
                stale.push_back(std::move(it->second));
                it = batchers_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const std::shared_ptr<DynamicBatcher> &batcher : stale) {
        batcher->shutdown(); // drains outside the server lock
        // Snapshot under the batcher's own lock only, then fold in
        // under the server lock — never both at once.
        BatcherStats stats = batcher->stats();
        MutexLock lock(mutex_);
        retiredBatching_.add(stats);
    }
    return handle;
}

ModelHandle
Server::loadModel(const model::Forest &forest)
{
    return loadModel(forest, options_.registry.defaultSchedule);
}

std::shared_ptr<DynamicBatcher>
Server::batcher(const ModelHandle &handle) const
{
    MutexLock lock(mutex_);
    auto it = batchers_.find(handle);
    if (it == batchers_.end()) {
        fatalCoded(kErrUnknownModel, "model handle ", handle,
                   " is not being served (never loaded, or evicted)");
    }
    return it->second;
}

std::future<std::vector<float>>
Server::predictAsync(const ModelHandle &handle, const float *rows,
                     int64_t num_rows)
{
    {
        MutexLock lock(mutex_);
        if (shuttingDown_) {
            fatalCoded(kErrQueueShutdown,
                       "predict request after server shutdown");
        }
    }
    // A zero-row request carries no work for the batcher to answer
    // and would otherwise resolve as a silent empty future; reject it
    // at the API boundary like every other malformed request.
    if (num_rows <= 0) {
        fatalCoded(kErrBadRequest,
                   "predict requires at least one row (got ",
                   num_rows, ")");
    }
    // The batcher is captured by shared_ptr, so a concurrent
    // evictModel cannot free it out from under this submit; the
    // submit then either lands in the draining queue or fails with
    // serve.queue.shutdown.
    return batcher(handle)->submit(rows, num_rows);
}

std::vector<float>
Server::predict(const ModelHandle &handle, const float *rows,
                int64_t num_rows)
{
    return predictAsync(handle, rows, num_rows).get();
}

std::vector<float>
Server::predict(const ModelHandle &handle,
                const std::vector<float> &rows)
{
    int32_t features = numFeatures(handle);
    if (features <= 0 || rows.size() % features != 0) {
        fatalCoded(kErrBadRequest, "row buffer of ", rows.size(),
                   " floats is not a whole number of ", features,
                   "-feature rows");
    }
    return predict(handle, rows.data(),
                   static_cast<int64_t>(rows.size()) / features);
}

bool
Server::evictModel(const ModelHandle &handle)
{
    std::shared_ptr<DynamicBatcher> victim;
    {
        MutexLock lock(mutex_);
        auto it = batchers_.find(handle);
        if (it != batchers_.end()) {
            victim = std::move(it->second);
            batchers_.erase(it);
        }
    }
    bool was_resident = registry_.evict(handle);
    if (victim != nullptr) {
        // Outside the server lock: draining may run queued batches,
        // and stats() takes the batcher's own lock.
        victim->shutdown();
        BatcherStats stats = victim->stats();
        MutexLock lock(mutex_);
        retiredBatching_.add(stats);
        was_resident = true;
    }
    return was_resident;
}

void
Server::shutdown()
{
    std::map<ModelHandle, std::shared_ptr<DynamicBatcher>> batchers;
    {
        MutexLock lock(mutex_);
        if (shuttingDown_)
            return;
        shuttingDown_ = true;
        batchers.swap(batchers_);
    }
    for (auto &[handle, batcher] : batchers) {
        batcher->shutdown();
        BatcherStats stats = batcher->stats();
        MutexLock lock(mutex_);
        retiredBatching_.add(stats);
    }
}

int32_t
Server::numFeatures(const ModelHandle &handle)
{
    return batcher(handle)->session().numFeatures();
}

int32_t
Server::numClasses(const ModelHandle &handle)
{
    return batcher(handle)->session().numClasses();
}

BatcherStats
Server::batcherStats(const ModelHandle &handle) const
{
    return batcher(handle)->stats();
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.registry = registry_.stats();
    stats.residentModels = registry_.residentModels();
    // Snapshot the live batchers under the server lock, then query
    // each one's counters under its own lock only — the per-batcher
    // locks must never nest inside the server's.
    std::vector<std::shared_ptr<DynamicBatcher>> live;
    {
        MutexLock lock(mutex_);
        stats.batching = retiredBatching_;
        live.reserve(batchers_.size());
        for (const auto &[handle, batcher] : batchers_)
            live.push_back(batcher);
    }
    for (const std::shared_ptr<DynamicBatcher> &batcher : live)
        stats.batching.add(batcher->stats());
    return stats;
}

} // namespace treebeard::serve
