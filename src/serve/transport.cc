#include "serve/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "hir/schedule.h"
#include "model/serialization.h"

namespace treebeard::serve {

namespace {

/**
 * Read exactly @p size bytes, riding out EINTR and torn
 * byte-at-a-time sends. Returns the bytes read: less than @p size
 * means EOF or a connection error mid-frame.
 */
size_t
readFully(int fd, void *buffer, size_t size)
{
    size_t done = 0;
    while (done < size) {
        ssize_t got = ::recv(fd, static_cast<char *>(buffer) + done,
                             size - done, 0);
        if (got > 0) {
            done += static_cast<size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        break; // EOF (0) or error: the frame will never complete
    }
    return done;
}

/** Write all of @p data; false on a broken/closed connection. */
bool
writeFully(int fd, const std::string &data)
{
    size_t done = 0;
    while (done < data.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-predict must
        // surface as EPIPE here, not as a process-killing SIGPIPE.
        ssize_t sent = ::send(fd, data.data() + done,
                              data.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(sent);
    }
    return true;
}

std::string
errorFrame(uint8_t opcode, wire::Status status,
           const std::string &message)
{
    return wire::encodeFrame(static_cast<wire::Opcode>(opcode),
                             status, message);
}

JsonValue::Object
transportStatsToJson(const TransportStats &stats)
{
    JsonValue::Object object;
    object["connections_accepted"] = stats.connectionsAccepted;
    object["connections_rejected"] = stats.connectionsRejected;
    object["frames_served"] = stats.framesServed;
    object["protocol_errors"] = stats.protocolErrors;
    object["disconnects"] = stats.disconnects;
    return object;
}

} // namespace

void
splitHostPort(const std::string &spec, std::string *host,
              uint16_t *port)
{
    size_t colon = spec.rfind(':');
    fatalIf(colon == std::string::npos || colon == 0 ||
                colon + 1 == spec.size(),
            "expected HOST:PORT (e.g. 127.0.0.1:8123), got \"", spec,
            "\"");
    *host = spec.substr(0, colon);
    const std::string digits = spec.substr(colon + 1);
    char *end = nullptr;
    long value = std::strtol(digits.c_str(), &end, 10);
    fatalIf(end == digits.c_str() || *end != '\0' || value < 0 ||
                value > 65535,
            "port must be an integer in [0, 65535], got \"", digits,
            "\"");
    *port = static_cast<uint16_t>(value);
}

WireServer::WireServer(Server &server, TransportOptions options)
    : options_(std::move(options)), server_(server)
{
    fatalIf(options_.maxConnections < 1,
            "WireServer: maxConnections must be >= 1 (got ",
            options_.maxConnections, ")");
    fatalIf(options_.maxFramePayloadBytes <= 0,
            "WireServer: maxFramePayloadBytes must be positive");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listenFd_ < 0, "socket(): ", std::strerror(errno));

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(),
                    &address.sin_addr) != 1) {
        ::close(listenFd_);
        fatal("WireServer: \"", options_.host,
              "\" is not a numeric IPv4 address");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&address),
               sizeof(address)) != 0) {
        int error = errno;
        ::close(listenFd_);
        fatal("bind(", options_.host, ":", options_.port,
              "): ", std::strerror(error));
    }
    if (::listen(listenFd_, options_.backlog) != 0) {
        int error = errno;
        ::close(listenFd_);
        fatal("listen(): ", std::strerror(error));
    }

    sockaddr_in bound{};
    socklen_t bound_size = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &bound_size) == 0) {
        port_ = ntohs(bound.sin_port);
    }

    ioPool_ = std::make_unique<ThreadPool>(static_cast<unsigned>(
        std::max(2, options_.maxConnections)));
    acceptor_ = std::thread([this] { acceptorLoop(); });
}

WireServer::~WireServer()
{
    stop();
}

void
WireServer::acceptorLoop()
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) {
                MutexLock lock(mutex_);
                if (stopRequested_)
                    return;
                continue;
            }
            // requestStop()'s ::shutdown of the listener lands here
            // (EINVAL on Linux), as do unrecoverable socket errors.
            return;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        bool reject = false;
        {
            MutexLock lock(mutex_);
            if (stopRequested_ ||
                static_cast<int>(liveConnections_.size()) >=
                    options_.maxConnections) {
                stats_.connectionsRejected += 1;
                reject = true;
            } else {
                liveConnections_.insert(fd);
                stats_.connectionsAccepted += 1;
            }
        }
        if (reject) {
            // Immediate clean close: the client sees EOF
            // (serve.wire.connection-closed) instead of queueing
            // invisibly behind a busy handler slot.
            ::close(fd);
            continue;
        }
        // Enqueued outside our mutex; each live connection occupies
        // at most one pool worker, and registration capped the live
        // set at the worker count, so the task runs promptly.
        ioPool_->enqueueDetached([this, fd] { handleConnection(fd); });
    }
}

void
WireServer::handleConnection(int fd)
{
    bool disconnected = false;
    while (true) {
        unsigned char header_bytes[wire::kFrameHeaderBytes];
        size_t got = readFully(fd, header_bytes, sizeof(header_bytes));
        if (got != sizeof(header_bytes)) {
            // EOF exactly at a frame boundary is a normal client
            // close; a partial header is a truncated frame.
            disconnected = got != 0;
            break;
        }

        wire::FrameHeader header;
        wire::HeaderParse parse =
            wire::decodeFrameHeader(header_bytes, &header);
        if (parse != wire::HeaderParse::kOk) {
            // The stream cannot be re-synchronized after a framing
            // failure: answer with a status the client can map to a
            // stable code, then close.
            std::string response = errorFrame(
                header_bytes[5], wire::Status::kBadFrame,
                parse == wire::HeaderParse::kBadMagic
                    ? "bad frame magic"
                    : "unsupported wire protocol version");
            bool written = writeFully(fd, response);
            MutexLock lock(mutex_);
            stats_.protocolErrors += 1;
            if (written)
                stats_.framesServed += 1;
            break;
        }
        if (static_cast<int64_t>(header.payloadBytes) >
            options_.maxFramePayloadBytes) {
            // Rejected before reading a byte of it; a declared
            // length is a promise, not a license to allocate.
            std::string response = errorFrame(
                header.opcode, wire::Status::kFrameTooLarge,
                detail::concatToString(
                    "declared payload of ", header.payloadBytes,
                    " bytes exceeds the frame cap of ",
                    options_.maxFramePayloadBytes));
            bool written = writeFully(fd, response);
            MutexLock lock(mutex_);
            stats_.protocolErrors += 1;
            if (written)
                stats_.framesServed += 1;
            break;
        }

        std::string payload(header.payloadBytes, '\0');
        if (header.payloadBytes > 0 &&
            readFully(fd, payload.data(), payload.size()) !=
                payload.size()) {
            disconnected = true;
            break;
        }

        std::string response;
        bool request_stop = false;
        bool protocol_error = false;
        if (!wire::isKnownOpcode(header.opcode)) {
            // The envelope is intact, so only this frame fails; the
            // connection survives (fuzzed opcodes must not cost the
            // client its connection).
            response = errorFrame(
                header.opcode, wire::Status::kBadFrame,
                detail::concatToString("unknown opcode ",
                                       int(header.opcode)));
            protocol_error = true;
        } else {
            response = dispatch(header, payload, &request_stop,
                                &protocol_error);
        }

        bool written = writeFully(fd, response);
        {
            MutexLock lock(mutex_);
            if (protocol_error)
                stats_.protocolErrors += 1;
            if (written)
                stats_.framesServed += 1;
        }
        if (!written) {
            disconnected = true;
            break;
        }
        if (request_stop) {
            requestStop();
            break;
        }
    }
    ::close(fd);
    unregisterConnection(fd, disconnected);
}

std::string
WireServer::dispatch(const wire::FrameHeader &header,
                     const std::string &payload, bool *request_stop,
                     bool *protocol_error)
{
    wire::Opcode opcode = static_cast<wire::Opcode>(header.opcode);
    try {
        switch (opcode) {
        case wire::Opcode::kLoad: {
            std::string forest_json, schedule_json;
            if (!wire::decodeLoadPayload(payload, &forest_json,
                                         &schedule_json)) {
                *protocol_error = true;
                fatalCoded(kErrBadRequest,
                           "malformed LOAD payload layout");
            }
            model::Forest forest = model::forestFromJson(
                JsonValue::parse(forest_json));
            ModelHandle handle =
                schedule_json.empty()
                    ? server_.loadModel(forest)
                    : server_.loadModel(
                          forest, hir::scheduleFromJsonString(
                                      schedule_json));
            return wire::encodeFrame(opcode, wire::Status::kOk,
                                     handle);
        }
        case wire::Opcode::kPredict: {
            std::string handle;
            uint32_t num_rows = 0;
            std::vector<float> values;
            if (!wire::decodePredictPayload(payload, &handle,
                                            &num_rows, &values)) {
                *protocol_error = true;
                fatalCoded(kErrBadRequest,
                           "malformed PREDICT payload layout");
            }
            int32_t features = server_.numFeatures(handle);
            if (static_cast<uint64_t>(num_rows) *
                    static_cast<uint64_t>(features) !=
                values.size()) {
                fatalCoded(kErrBadRequest, "PREDICT payload carries ",
                           values.size(), " floats, not the ",
                           num_rows, " x ", features,
                           " the declared row count requires");
            }
            std::vector<float> predictions = server_.predict(
                handle, values.data(),
                static_cast<int64_t>(num_rows));
            return wire::encodeFrame(
                opcode, wire::Status::kOk,
                wire::encodeFloatPayload(predictions));
        }
        case wire::Opcode::kEvict: {
            bool was_resident = server_.evictModel(payload);
            return wire::encodeFrame(
                opcode, wire::Status::kOk,
                std::string(1, was_resident ? '\1' : '\0'));
        }
        case wire::Opcode::kStats: {
            ServerStats server_stats = server_.stats();
            JsonValue::Object registry;
            registry["loads"] = server_stats.registry.loads;
            registry["hits"] = server_stats.registry.hits;
            registry["compiles"] = server_stats.registry.compiles;
            registry["evictions"] = server_stats.registry.evictions;
            JsonValue::Object batching;
            batching["requests_admitted"] =
                server_stats.batching.requestsAdmitted;
            batching["requests_rejected"] =
                server_stats.batching.requestsRejected;
            batching["batches_executed"] =
                server_stats.batching.batchesExecuted;
            batching["rows_executed"] =
                server_stats.batching.rowsExecuted;
            batching["coalesced_batches"] =
                server_stats.batching.coalescedBatches;
            batching["largest_batch_rows"] =
                server_stats.batching.largestBatchRows;
            batching["size_flushes"] =
                server_stats.batching.sizeFlushes;
            batching["deadline_flushes"] =
                server_stats.batching.deadlineFlushes;
            JsonValue::Object document;
            document["registry"] = JsonValue(std::move(registry));
            document["batching"] = JsonValue(std::move(batching));
            document["resident_models"] =
                server_stats.residentModels;
            document["transport"] =
                JsonValue(transportStatsToJson(stats()));
            return wire::encodeFrame(
                opcode, wire::Status::kOk,
                JsonValue(std::move(document)).dump());
        }
        case wire::Opcode::kShutdown:
            // Tearing down the listener is the most destructive
            // request on the wire; demand a strictly well-formed
            // (empty-payload) frame so stray bytes that happen to
            // decode as SHUTDOWN cannot take the server down.
            if (!payload.empty()) {
                *protocol_error = true;
                fatalCoded(kErrBadRequest,
                           "SHUTDOWN takes no payload (got ",
                           payload.size(), " bytes)");
            }
            *request_stop = true;
            return wire::encodeFrame(opcode, wire::Status::kOk, "");
        }
        panic("unreachable wire opcode ", int(header.opcode));
    } catch (const Error &error) {
        // Coded serving errors map onto their status byte; anything
        // uncoded from a LOAD (a malformed model/schedule document)
        // is the client's payload and reads as a bad request, while
        // an uncoded PREDICT/EVICT failure is the server's problem.
        wire::Status fallback = opcode == wire::Opcode::kLoad
                                    ? wire::Status::kBadRequest
                                    : wire::Status::kInternal;
        return errorFrame(header.opcode,
                          wire::statusForErrorCode(error.code(),
                                                   fallback),
                          error.what());
    } catch (const std::exception &error) {
        return errorFrame(header.opcode, wire::Status::kInternal,
                          error.what());
    }
}

void
WireServer::requestStop()
{
    {
        MutexLock lock(mutex_);
        if (stopRequested_)
            return;
        stopRequested_ = true;
        // Wake the acceptor out of accept(2)...
        if (listenFd_ >= 0)
            ::shutdown(listenFd_, SHUT_RDWR);
        // ...and every handler out of its blocking read. SHUT_RD
        // only: a handler mid-dispatch still writes its response —
        // in-flight requests complete, new reads see EOF.
        for (int fd : liveConnections_)
            ::shutdown(fd, SHUT_RD);
    }
    stopCv_.notifyAll();
}

void
WireServer::stop()
{
    requestStop();
    // Claim the acceptor under the lock so concurrent stop() callers
    // never both join the same std::thread.
    std::thread acceptor;
    {
        MutexLock lock(mutex_);
        acceptor = std::move(acceptor_);
    }
    if (acceptor.joinable())
        acceptor.join();
    {
        MutexLock lock(mutex_);
        while (!liveConnections_.empty())
            stopCv_.wait(lock);
    }
    // Claimed the same way; the destructor joins the pool's workers
    // after the (already drained) handlers return.
    std::unique_ptr<ThreadPool> pool;
    int listen_fd = -1;
    {
        MutexLock lock(mutex_);
        pool = std::move(ioPool_);
        listen_fd = listenFd_;
        listenFd_ = -1;
    }
    pool.reset();
    if (listen_fd >= 0)
        ::close(listen_fd);
}

bool
WireServer::stopRequested() const
{
    MutexLock lock(mutex_);
    return stopRequested_;
}

void
WireServer::waitUntilStopRequested()
{
    MutexLock lock(mutex_);
    while (!stopRequested_)
        stopCv_.wait(lock);
}

TransportStats
WireServer::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
WireServer::unregisterConnection(int fd, bool disconnected)
{
    {
        MutexLock lock(mutex_);
        liveConnections_.erase(fd);
        if (disconnected)
            stats_.disconnects += 1;
    }
    stopCv_.notifyAll();
}

} // namespace treebeard::serve
