#include "serve/wire.h"

#include <cstring>

#include "serve/serve_errors.h"

namespace treebeard::serve::wire {

bool
isKnownOpcode(uint8_t opcode)
{
    return opcode >= static_cast<uint8_t>(Opcode::kLoad) &&
           opcode <= static_cast<uint8_t>(Opcode::kShutdown);
}

const char *
errorCodeForStatus(Status status)
{
    switch (status) {
    case Status::kOk:
        return "";
    case Status::kUnknownModel:
        return kErrUnknownModel;
    case Status::kQueueFull:
        return kErrQueueFull;
    case Status::kShutdown:
        return kErrQueueShutdown;
    case Status::kBadRequest:
        return kErrBadRequest;
    case Status::kBadFrame:
        return kErrWireBadFrame;
    case Status::kFrameTooLarge:
        return kErrWireFrameTooLarge;
    case Status::kInternal:
        return kErrWireInternal;
    }
    return "";
}

Status
statusForErrorCode(const std::string &code, Status fallback)
{
    if (code == kErrUnknownModel)
        return Status::kUnknownModel;
    if (code == kErrQueueFull)
        return Status::kQueueFull;
    if (code == kErrQueueShutdown)
        return Status::kShutdown;
    if (code == kErrBadRequest)
        return Status::kBadRequest;
    if (code == kErrWireBadFrame)
        return Status::kBadFrame;
    if (code == kErrWireFrameTooLarge)
        return Status::kFrameTooLarge;
    if (code == kErrWireInternal)
        return Status::kInternal;
    return fallback;
}

HeaderParse
decodeFrameHeader(const unsigned char *bytes, FrameHeader *header)
{
    if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0)
        return HeaderParse::kBadMagic;
    if (bytes[4] != kWireVersion)
        return HeaderParse::kBadVersion;
    header->opcode = bytes[5];
    header->status = static_cast<Status>(bytes[6]);
    // bytes[7] is reserved: ignored on receive.
    header->payloadBytes = static_cast<uint32_t>(bytes[8]) |
                           static_cast<uint32_t>(bytes[9]) << 8 |
                           static_cast<uint32_t>(bytes[10]) << 16 |
                           static_cast<uint32_t>(bytes[11]) << 24;
    return HeaderParse::kOk;
}

std::string
encodeFrame(Opcode opcode, Status status, const std::string &payload)
{
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    frame.append(reinterpret_cast<const char *>(kMagic),
                 sizeof(kMagic));
    frame.push_back(static_cast<char>(kWireVersion));
    frame.push_back(static_cast<char>(opcode));
    frame.push_back(static_cast<char>(status));
    frame.push_back(0); // reserved
    appendU32(&frame, static_cast<uint32_t>(payload.size()));
    frame.append(payload);
    return frame;
}

void
appendU32(std::string *out, uint32_t value)
{
    out->push_back(static_cast<char>(value & 0xff));
    out->push_back(static_cast<char>(value >> 8 & 0xff));
    out->push_back(static_cast<char>(value >> 16 & 0xff));
    out->push_back(static_cast<char>(value >> 24 & 0xff));
}

void
appendF32(std::string *out, float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    appendU32(out, bits);
}

bool
readU32(const std::string &payload, size_t *cursor, uint32_t *value)
{
    if (*cursor > payload.size() || payload.size() - *cursor < 4)
        return false;
    const unsigned char *bytes =
        reinterpret_cast<const unsigned char *>(payload.data()) +
        *cursor;
    *value = static_cast<uint32_t>(bytes[0]) |
             static_cast<uint32_t>(bytes[1]) << 8 |
             static_cast<uint32_t>(bytes[2]) << 16 |
             static_cast<uint32_t>(bytes[3]) << 24;
    *cursor += 4;
    return true;
}

bool
readBytes(const std::string &payload, size_t *cursor, size_t count,
          std::string *out)
{
    if (*cursor > payload.size() ||
        payload.size() - *cursor < count)
        return false;
    out->assign(payload, *cursor, count);
    *cursor += count;
    return true;
}

std::string
encodeLoadPayload(const std::string &forest_json,
                  const std::string &schedule_json)
{
    std::string payload;
    payload.reserve(8 + forest_json.size() + schedule_json.size());
    appendU32(&payload, static_cast<uint32_t>(forest_json.size()));
    payload.append(forest_json);
    appendU32(&payload, static_cast<uint32_t>(schedule_json.size()));
    payload.append(schedule_json);
    return payload;
}

bool
decodeLoadPayload(const std::string &payload,
                  std::string *forest_json,
                  std::string *schedule_json)
{
    size_t cursor = 0;
    uint32_t length = 0;
    if (!readU32(payload, &cursor, &length) ||
        !readBytes(payload, &cursor, length, forest_json))
        return false;
    if (!readU32(payload, &cursor, &length) ||
        !readBytes(payload, &cursor, length, schedule_json))
        return false;
    return cursor == payload.size();
}

std::string
encodePredictPayload(const std::string &handle, const float *rows,
                     int64_t num_rows, int32_t num_features)
{
    std::string payload;
    size_t floats = static_cast<size_t>(num_rows) *
                    static_cast<size_t>(num_features);
    payload.reserve(8 + handle.size() + 4 * floats);
    appendU32(&payload, static_cast<uint32_t>(handle.size()));
    payload.append(handle);
    appendU32(&payload, static_cast<uint32_t>(num_rows));
    for (size_t i = 0; i < floats; ++i)
        appendF32(&payload, rows[i]);
    return payload;
}

bool
decodePredictPayload(const std::string &payload, std::string *handle,
                     uint32_t *num_rows, std::vector<float> *values)
{
    size_t cursor = 0;
    uint32_t handle_length = 0;
    if (!readU32(payload, &cursor, &handle_length) ||
        !readBytes(payload, &cursor, handle_length, handle))
        return false;
    if (!readU32(payload, &cursor, num_rows))
        return false;
    std::string rest(payload, cursor);
    return decodeFloatPayload(rest, values);
}

std::string
encodeFloatPayload(const std::vector<float> &values)
{
    std::string payload;
    payload.reserve(4 * values.size());
    for (float value : values)
        appendF32(&payload, value);
    return payload;
}

bool
decodeFloatPayload(const std::string &payload,
                   std::vector<float> *values)
{
    if (payload.size() % 4 != 0)
        return false;
    values->resize(payload.size() / 4);
    for (size_t i = 0; i < values->size(); ++i) {
        uint32_t bits;
        size_t cursor = 4 * i;
        readU32(payload, &cursor, &bits);
        std::memcpy(&(*values)[i], &bits, sizeof(float));
    }
    return true;
}

} // namespace treebeard::serve::wire
