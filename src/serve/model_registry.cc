#include "serve/model_registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "model/serialization.h"

namespace treebeard::serve {

namespace {

/** FNV-1a 64-bit, matching the JIT disk cache's key hashing. */
uint64_t
fnv1aHash(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options))
{}

ModelHandle
ModelRegistry::handleFor(const model::Forest &forest,
                         const hir::Schedule &schedule) const
{
    // The handle must change whenever the compiled artifact would:
    // model content, every schedule knob, and the lowering backend.
    // Serialized forms are canonical for all three.
    std::string key = model::forestToJson(forest).dump();
    key += '\n';
    key += hir::scheduleToJsonString(schedule);
    key += '\n';
    key += backendName(options_.compiler.backend);
    char handle[24];
    std::snprintf(handle, sizeof(handle), "tb-%016llx",
                  static_cast<unsigned long long>(fnv1aHash(key)));
    return handle;
}

ModelHandle
ModelRegistry::load(const model::Forest &forest,
                    const hir::Schedule &schedule)
{
    ModelHandle handle = handleFor(forest, schedule);

    std::shared_future<std::shared_ptr<const Session>> compilation;
    std::promise<std::shared_ptr<const Session>> promise;
    {
        MutexLock lock(mutex_);
        stats_.loads += 1;
        auto it = models_.find(handle);
        if (it != models_.end()) {
            stats_.hits += 1;
            it->second.lastUse = ++clock_;
            compilation = it->second.session;
        } else {
            // Publish the pending entry before compiling so a second
            // loader of the same content waits on this compilation
            // instead of starting its own.
            stats_.compiles += 1;
            Entry entry;
            entry.session = promise.get_future().share();
            entry.schedule = schedule;
            entry.lastUse = ++clock_;
            models_.emplace(handle, std::move(entry));
            enforceCapLocked();
        }
    }

    if (compilation.valid()) {
        compilation.get(); // rethrows a failed shared compilation
        return handle;
    }

    // Compile outside the lock: loads of different models proceed in
    // parallel, and session()/contains() never block on the compiler.
    try {
        auto session = std::make_shared<const Session>(
            compile(forest, schedule, options_.compiler));
        promise.set_value(std::move(session));
    } catch (...) {
        promise.set_exception(std::current_exception());
        MutexLock lock(mutex_);
        models_.erase(handle);
        throw;
    }
    return handle;
}

ModelHandle
ModelRegistry::load(const model::Forest &forest)
{
    return load(forest, options_.defaultSchedule);
}

std::shared_ptr<const Session>
ModelRegistry::session(const ModelHandle &handle)
{
    std::shared_future<std::shared_ptr<const Session>> compilation;
    {
        MutexLock lock(mutex_);
        auto it = models_.find(handle);
        if (it == models_.end()) {
            fatalCoded(kErrUnknownModel, "model handle ", handle,
                       " is not resident (never loaded, or evicted; "
                       "re-load the model to obtain a session)");
        }
        it->second.lastUse = ++clock_;
        compilation = it->second.session;
    }
    return compilation.get();
}

hir::Schedule
ModelRegistry::schedule(const ModelHandle &handle) const
{
    MutexLock lock(mutex_);
    auto it = models_.find(handle);
    if (it == models_.end()) {
        fatalCoded(kErrUnknownModel, "model handle ", handle,
                   " is not resident");
    }
    return it->second.schedule;
}

bool
ModelRegistry::contains(const ModelHandle &handle) const
{
    MutexLock lock(mutex_);
    return models_.count(handle) > 0;
}

bool
ModelRegistry::evict(const ModelHandle &handle)
{
    MutexLock lock(mutex_);
    auto it = models_.find(handle);
    if (it == models_.end())
        return false;
    models_.erase(it);
    stats_.evictions += 1;
    return true;
}

void
ModelRegistry::enforceCapLocked()
{
    if (options_.maxResidentModels <= 0)
        return;
    while (static_cast<int64_t>(models_.size()) >
           options_.maxResidentModels) {
        auto victim = models_.begin();
        for (auto it = models_.begin(); it != models_.end(); ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        // In-flight users keep the session alive via their shared_ptr;
        // eviction only drops the registry's reference.
        models_.erase(victim);
        stats_.evictions += 1;
    }
}

std::vector<ModelHandle>
ModelRegistry::residentHandles() const
{
    MutexLock lock(mutex_);
    std::vector<std::pair<uint64_t, ModelHandle>> aged;
    aged.reserve(models_.size());
    for (const auto &[handle, entry] : models_)
        aged.emplace_back(entry.lastUse, handle);
    std::sort(aged.begin(), aged.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    std::vector<ModelHandle> handles;
    handles.reserve(aged.size());
    for (auto &[age, handle] : aged)
        handles.push_back(std::move(handle));
    return handles;
}

int64_t
ModelRegistry::residentModels() const
{
    MutexLock lock(mutex_);
    return static_cast<int64_t>(models_.size());
}

RegistryStats
ModelRegistry::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

} // namespace treebeard::serve
