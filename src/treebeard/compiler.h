/**
 * @file
 * The public Treebeard API: one compiler, interchangeable lowering
 * targets.
 *
 * Typical use:
 *
 *   model::Forest forest = model::loadForest("model.json");
 *   hir::Schedule schedule;            // or tuner::autoTune(...)
 *   schedule.tileSize = 8;
 *   treebeard::Session session = treebeard::compile(forest, schedule);
 *   session.predict(rows, num_rows, predictions);
 *
 * compile() runs the full pipeline of the paper (Figure 1): HIR
 * construction -> tiling -> tree reordering/padding -> MIR lowering ->
 * walk interleaving/peeling/unrolling/parallelization -> LIR buffer
 * materialization -> backend lowering, and returns a runnable Session.
 * IR dumps from every stage are retained for inspection.
 *
 * The final lowering step is selected by CompilerOptions::backend:
 *
 *  - Backend::kKernel (default): bind the LIR buffers to the
 *    pre-built specialized walker kernels (template-instantiated per
 *    tile size / layout / interleave, AVX2 tile evaluation).
 *  - Backend::kSourceJit: emit a specialized C++ translation unit,
 *    compile it with the system compiler and dlopen the result — the
 *    repo's analogue of the original system's LLVM JIT. Set
 *    CompilerOptions::jit.cacheDir to persist compiled objects across
 *    processes so repeated runs on one model skip the compiler.
 *
 * Both backends produce bit-identical predictions; the Session
 * interface (predict / numFeatures / numClasses / artifacts) is
 * backend-agnostic. Only predictInstrumented is kernel-specific:
 * query supportsInstrumentation() before using it, or catch the
 * Error whose code() is kErrInstrumentationUnsupported.
 *
 * Serving layers build on this API through src/serve: a content-hash
 * keyed ModelRegistry of shared Sessions fronted by a dynamic batcher
 * (see docs/SERVING.md).
 */
#ifndef TREEBEARD_TREEBEARD_COMPILER_H
#define TREEBEARD_TREEBEARD_COMPILER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "codegen/cpp_emitter.h"
#include "common/thread_pool.h"
#include "hir/schedule.h"
#include "ir/pass_manager.h"
#include "model/forest.h"
#include "runtime/plan.h"

namespace treebeard {

/** The lowering target a Session executes on. */
enum class Backend {
    /** Pre-built specialized walker kernels (runtime::ExecutablePlan). */
    kKernel,
    /** Emitted C++ compiled by the system compiler and dlopen'd. */
    kSourceJit,
};

/** Human-readable backend name ("kernel" / "jit"). */
const char *backendName(Backend backend);

/**
 * Stable code carried by the Error thrown when predictInstrumented is
 * called on a session whose backend has no event counters (currently
 * the source JIT). Follows the verifier's "<subject>.<violation>"
 * taxonomy so clients branch on Error::code(), never on message text.
 */
inline constexpr const char *kErrInstrumentationUnsupported =
    "session.instrumentation.unsupported";

/** Options controlling the compilation driver itself. */
struct CompilerOptions
{
    /** Capture textual IR dumps after every pass (costs memory). */
    bool recordIrDumps = false;
    /** Validate tilings and IR invariants after each stage. */
    bool verifyPasses = true;
    /**
     * Run every level's verifier (model, schedule, HIR, MIR, LIR —
     * including the static LIR buffer-safety analysis) after *every*
     * pass, via PassManager instrumentation. Stricter and slower than
     * verifyPasses (which verifies at a few fixed points); intended
     * for debugging, CI, and `treebeard_cli verify`. Verification is
     * compile-time only — Session::predict is unaffected. Failures
     * throw analysis::VerificationError naming the pass that broke
     * the IR; non-error diagnostics are retained in
     * CompilationArtifacts::diagnostics.
     */
    bool verifyEach = false;
    /** The lowering target (see Backend). */
    Backend backend = Backend::kKernel;
    /**
     * Source-JIT backend only: system-compiler options, including the
     * persistent on-disk compile cache (jit.cacheDir). Ignored by the
     * kernel backend.
     */
    codegen::JitOptions jit;
};

/** IR and timing artifacts captured during compilation. */
struct CompilationArtifacts
{
    /** Per-pass name/seconds/dump traces, pipeline order. */
    std::vector<ir::PassTrace> passTraces;
    /** Final HIR dump (when recordIrDumps). */
    std::string hirDump;
    /** MIR dump after all MIR passes (when recordIrDumps). */
    std::string mirDump;
    /** LIR buffer summary (always available). */
    std::string lirSummary;
    /**
     * Non-error diagnostics collected by the after-each-pass
     * verifiers (empty unless CompilerOptions::verifyEach; a clean
     * compile stays empty).
     */
    std::vector<analysis::Diagnostic> diagnostics;
    double totalSeconds = 0.0;
    /** The backend this compilation lowered to. */
    Backend backend = Backend::kKernel;
    /** Source-JIT backend: the emitted translation unit. */
    std::string generatedSource;
    /** Source-JIT backend: seconds in the system compiler (0 = cached). */
    double jitCompileSeconds = 0.0;
};

/**
 * A row matrix bound to one Session for repeated prediction
 * (Session::bindDataset). Binding pays any per-batch input transform
 * once: for i16 packed plans the session pre-quantizes the int32 row
 * image here and predictDataset() then runs with zero quantization
 * work per call. The dataset does not own the row storage — the
 * caller keeps @p rows alive and unchanged while the dataset is in
 * use — and is only valid with the session that bound it; rebinding
 * (Session::rebindDataset) invalidates and rebuilds the cached image
 * in place. A bound Dataset is immutable, so any number of threads
 * may predictDataset() it concurrently; rebinding concurrently with
 * predictions on the same Dataset is a data race.
 */
class Dataset
{
  public:
    Dataset() = default;

    const float *rows() const { return rows_; }
    int64_t numRows() const { return numRows_; }
    int32_t numFeatures() const { return numFeatures_; }
    /** True when the binding session cached a pre-quantized image. */
    bool hasQuantizedImage() const { return !qimage_.empty(); }

  private:
    friend class Session;

    const float *rows_ = nullptr;
    int64_t numRows_ = 0;
    int32_t numFeatures_ = 0;
    /** i16 packed plans: the int32 row image quantized at bind time. */
    std::vector<int32_t> qimage_;
    /** Identity of the binding session (predictDataset guard). */
    std::shared_ptr<const void> boundTo_;
};

/**
 * A compiled model behind one backend-agnostic interface: either a
 * kernel-runtime plan or a source-JIT module, plus the compilation
 * artifacts. Sessions are movable (not copyable); predict() and
 * predictDataset() are const and safe to call concurrently from many
 * threads on one session (both backends, threaded schedules included).
 */
class Session
{
  public:
    /** Wrap a kernel-runtime plan (Backend::kKernel). */
    Session(runtime::ExecutablePlan plan, CompilationArtifacts artifacts);

    /** Wrap a source-JIT module (Backend::kSourceJit). */
    Session(std::unique_ptr<codegen::JitCompiledSession> jit,
            CompilationArtifacts artifacts, int32_t num_threads);

    Session(Session &&) = default;
    Session &operator=(Session &&) = default;

    /**
     * The generated predictForest function: compute predictions for a
     * row-major batch of @p num_rows rows. @p predictions receives
     * num_rows * numClasses() values (single-output models write one
     * value per row; multiclass models write per-class probabilities).
     */
    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    /**
     * True when this session's backend can run predictInstrumented
     * (the kernel runtime carries software event counters; the source
     * JIT's generated code does not). Query this instead of probing
     * with a throwing call.
     */
    bool supportsInstrumentation() const { return plan_.has_value(); }

    /**
     * Instrumented prediction collecting software event counters.
     * Only available when supportsInstrumentation().
     * @throws Error with code kErrInstrumentationUnsupported on a
     * backend without counters (currently the source JIT).
     */
    void predictInstrumented(const float *rows, int64_t num_rows,
                             float *predictions,
                             runtime::WalkCounters *counters) const;

    /**
     * Bind a resident row matrix (@p num_rows rows of numFeatures()
     * floats, borrowed, kept alive by the caller) to this session,
     * paying any per-batch input transform once: i16 packed plans
     * quantize the full int32 row image at bind time. The returned
     * Dataset is only valid with this session.
     */
    Dataset bindDataset(const float *rows, int64_t num_rows) const;

    /**
     * Point @p dataset at a new row matrix: invalidates the cached
     * image, then rebuilds it in place (reusing its storage). Not
     * thread-safe against concurrent predictDataset() on the same
     * Dataset.
     */
    void rebindDataset(Dataset &dataset, const float *rows,
                       int64_t num_rows) const;

    /**
     * As predict() over the dataset's rows, but consuming the cached
     * bind-time image: on i16 packed plans no row quantization runs
     * per call (runtime::rowQuantizationStats() proves it). Exactly
     * bit-identical to predict() on the same rows.
     * @param predictions numRows() * numClasses() outputs.
     * @throws Error when @p dataset is not bound to this session.
     */
    void predictDataset(const Dataset &dataset,
                        float *predictions) const;

    Backend backend() const
    {
        return plan_ ? Backend::kKernel : Backend::kSourceJit;
    }

    int32_t numFeatures() const;
    int32_t numClasses() const;

    /** The kernel-runtime plan; panics on a source-JIT session. */
    const runtime::ExecutablePlan &plan() const;

    /** The source-JIT module; panics on a kernel session. */
    const codegen::JitCompiledSession &jit() const;

    const CompilationArtifacts &artifacts() const { return artifacts_; }

  private:
    std::optional<runtime::ExecutablePlan> plan_;
    std::unique_ptr<codegen::JitCompiledSession> jit_;
    /** Worker-id fan-out pool for the source-JIT backend's emitted
     * row loop (numThreads > 1). */
    std::unique_ptr<ThreadPool> pool_;
    /** Stable identity token Datasets bind to (survives moves). */
    std::shared_ptr<const void> identity_ = std::make_shared<int>(0);
    CompilationArtifacts artifacts_;
};

/**
 * Compile @p forest under @p schedule for options.backend. The single
 * compilation entry point of the public API (the pre-Session legacy
 * aliases were removed when the serving layer finalized the surface).
 * @throws Error on invalid models or schedules, or when the source
 * backend's system compiler fails.
 */
Session compile(const model::Forest &forest, const hir::Schedule &schedule,
                const CompilerOptions &options = {});

} // namespace treebeard

#endif // TREEBEARD_TREEBEARD_COMPILER_H
