/**
 * @file
 * The public Treebeard API.
 *
 * Typical use:
 *
 *   model::Forest forest = model::loadForest("model.json");
 *   hir::Schedule schedule;            // or tuner::autoTune(...)
 *   schedule.tileSize = 8;
 *   treebeard::InferenceSession session =
 *       treebeard::compileForest(forest, schedule);
 *   session.predict(rows, num_rows, predictions);
 *
 * compileForest runs the full pipeline of the paper (Figure 1):
 * HIR construction -> tiling -> tree reordering/padding -> MIR
 * lowering -> walk interleaving/peeling/unrolling/parallelization ->
 * LIR buffer materialization -> kernel selection, and returns a
 * runnable session. IR dumps from every stage are retained for
 * inspection.
 */
#ifndef TREEBEARD_TREEBEARD_COMPILER_H
#define TREEBEARD_TREEBEARD_COMPILER_H

#include <memory>
#include <string>
#include <vector>

#include "hir/schedule.h"
#include "ir/pass_manager.h"
#include "model/forest.h"
#include "runtime/plan.h"

namespace treebeard {

/** Options controlling the compilation driver itself. */
struct CompilerOptions
{
    /** Capture textual IR dumps after every pass (costs memory). */
    bool recordIrDumps = false;
    /** Validate tilings and IR invariants after each stage. */
    bool verifyPasses = true;
};

/** IR and timing artifacts captured during compilation. */
struct CompilationArtifacts
{
    /** Per-pass name/seconds/dump traces, pipeline order. */
    std::vector<ir::PassTrace> passTraces;
    /** Final HIR dump (when recordIrDumps). */
    std::string hirDump;
    /** MIR dump after all MIR passes (when recordIrDumps). */
    std::string mirDump;
    /** LIR buffer summary (always available). */
    std::string lirSummary;
    double totalSeconds = 0.0;
};

/**
 * A compiled model: owns the executable plan and the artifacts.
 * Sessions are immovable-by-copy but movable; predict() is
 * thread-compatible (const).
 */
class InferenceSession
{
  public:
    InferenceSession(runtime::ExecutablePlan plan,
                     CompilationArtifacts artifacts);

    /**
     * The generated predictForest function: compute predictions for a
     * row-major batch of @p num_rows rows. @p predictions receives
     * num_rows * numClasses() values (single-output models write one
     * value per row; multiclass models write per-class probabilities).
     */
    void
    predict(const float *rows, int64_t num_rows, float *predictions) const
    {
        plan_.run(rows, num_rows, predictions);
    }

    /** Instrumented prediction collecting software event counters. */
    void
    predictInstrumented(const float *rows, int64_t num_rows,
                        float *predictions,
                        runtime::WalkCounters *counters) const
    {
        plan_.runInstrumented(rows, num_rows, predictions, counters);
    }

    int32_t numFeatures() const { return plan_.numFeatures(); }
    int32_t numClasses() const { return plan_.numClasses(); }
    const runtime::ExecutablePlan &plan() const { return plan_; }
    const CompilationArtifacts &artifacts() const { return artifacts_; }

  private:
    runtime::ExecutablePlan plan_;
    CompilationArtifacts artifacts_;
};

/**
 * Compile @p forest under @p schedule.
 * @throws Error on invalid models or schedules.
 */
InferenceSession compileForest(const model::Forest &forest,
                               const hir::Schedule &schedule,
                               const CompilerOptions &options = {});

} // namespace treebeard

#endif // TREEBEARD_TREEBEARD_COMPILER_H
