#include "treebeard/compiler.h"

#include "analysis/verifier.h"
#include "common/logging.h"
#include "common/timer.h"
#include "lir/hot_path_builder.h"
#include "lir/layout_builder.h"
#include "mir/lowering.h"
#include "mir/passes.h"

namespace treebeard {

namespace {

/** Mutable pipeline state threaded through the pass manager. */
struct PipelineState
{
    std::unique_ptr<hir::HirModule> hir;
    mir::MirFunction mir;
    lir::ForestBuffers buffers;
    bool mirLowered = false;
    bool lirBuilt = false;
};

/**
 * Verify every IR level that exists at this point of the pipeline,
 * attributing failures to @p pass. Used both by the fixed verify
 * passes (verifyPasses) and the after-each-pass instrumentation
 * (verifyEach).
 */
void
verifyPipelineState(const PipelineState &state, const std::string &pass,
                    analysis::DiagnosticEngine &diag)
{
    diag.setPass(pass);
    analysis::verifyForest(state.hir->forest(), diag);
    analysis::verifySchedule(state.hir->schedule(), diag);
    if (state.hir->isTiled())
        analysis::verifyHir(*state.hir, diag);
    if (state.mirLowered) {
        analysis::verifyMir(
            state.mir,
            static_cast<int64_t>(state.hir->groups().size()), diag);
    }
    if (state.lirBuilt)
        analysis::verifyLir(state.buffers, diag);
}

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
    case Backend::kKernel:
        return "kernel";
    case Backend::kSourceJit:
        return "jit";
    }
    panic("unknown backend");
}

Session::Session(runtime::ExecutablePlan plan,
                 CompilationArtifacts artifacts)
    : plan_(std::move(plan)), artifacts_(std::move(artifacts))
{}

Session::Session(std::unique_ptr<codegen::JitCompiledSession> jit,
                 CompilationArtifacts artifacts, int32_t num_threads)
    : jit_(std::move(jit)), artifacts_(std::move(artifacts))
{
    panicIf(jit_ == nullptr, "null JIT session");
    if (num_threads > 1)
        pool_ = std::make_unique<ThreadPool>(
            static_cast<unsigned>(num_threads));
}

void
Session::predict(const float *rows, int64_t num_rows,
                 float *predictions) const
{
    // Zero-row batches are complete before any work: return before
    // pool dispatch or backend entry so no counters move and worker
    // threads never wake for an empty range.
    if (num_rows <= 0)
        return;
    if (plan_) {
        plan_->run(rows, num_rows, predictions);
        return;
    }
    if (pool_ == nullptr) {
        jit_->predict(rows, num_rows, predictions);
        return;
    }
    // The parallel row loop is emitted into the generated translation
    // unit (treebeard_predict_worker); the runtime only fans worker
    // ids out over the pool instead of partitioning rows up here.
    int32_t workers = static_cast<int32_t>(pool_->numThreads());
    pool_->runOnAllWorkers([&](unsigned worker) {
        jit_->predictWorker(static_cast<int32_t>(worker), workers,
                            rows, num_rows, predictions);
    });
}

Dataset
Session::bindDataset(const float *rows, int64_t num_rows) const
{
    Dataset dataset;
    rebindDataset(dataset, rows, num_rows);
    return dataset;
}

void
Session::rebindDataset(Dataset &dataset, const float *rows,
                       int64_t num_rows) const
{
    fatalIf(num_rows < 0, "bindDataset: negative row count ", num_rows);
    fatalIf(rows == nullptr && num_rows > 0,
            "bindDataset: null rows with ", num_rows, " rows");
    // Invalidate before touching the image so a failure part-way
    // cannot leave a stale-but-bound dataset behind.
    dataset.boundTo_.reset();
    dataset.rows_ = rows;
    dataset.numRows_ = num_rows;
    dataset.numFeatures_ = numFeatures();
    const lir::ForestBuffers &fb =
        plan_ ? plan_->buffers() : jit_->buffers();
    if (fb.layout == lir::LayoutKind::kPackedQuantized &&
        num_rows > 0) {
        // The quantize-once pass: predictDataset then consumes this
        // image with no per-call quantization on either backend (the
        // emitted source inlines the identical quantizer, so the
        // kernel-built image is bit-exact for the JIT too).
        dataset.qimage_.resize(static_cast<size_t>(num_rows) *
                               fb.numFeatures);
        runtime::quantizeRowsInto(fb, rows, num_rows,
                                  dataset.qimage_.data());
        runtime::noteDatasetQuantization(num_rows);
    } else {
        dataset.qimage_.clear();
    }
    dataset.boundTo_ = identity_;
}

void
Session::predictDataset(const Dataset &dataset,
                        float *predictions) const
{
    fatalIf(dataset.boundTo_ == nullptr ||
                dataset.boundTo_.get() != identity_.get(),
            "predictDataset: dataset is not bound to this session "
            "(use bindDataset/rebindDataset first)");
    int64_t num_rows = dataset.numRows_;
    if (num_rows <= 0)
        return;
    const int32_t *qrows =
        dataset.qimage_.empty() ? nullptr : dataset.qimage_.data();
    if (plan_) {
        plan_->runResident(dataset.rows_, qrows, num_rows,
                           predictions);
        return;
    }
    if (qrows != nullptr && jit_->hasResidentEntry()) {
        if (pool_ == nullptr) {
            jit_->predictResident(qrows, num_rows, predictions);
            return;
        }
        int32_t workers = static_cast<int32_t>(pool_->numThreads());
        pool_->runOnAllWorkers([&](unsigned worker) {
            jit_->predictResidentWorker(static_cast<int32_t>(worker),
                                        workers, qrows, num_rows,
                                        predictions);
        });
        return;
    }
    // Plans without a cached input transform (f32 layouts) take the
    // ordinary path; binding cost nothing, so this is still exact.
    predict(dataset.rows_, num_rows, predictions);
}

void
Session::predictInstrumented(const float *rows, int64_t num_rows,
                             float *predictions,
                             runtime::WalkCounters *counters) const
{
    if (!supportsInstrumentation()) {
        fatalCoded(kErrInstrumentationUnsupported,
                   "predictInstrumented requires a backend with event "
                   "counters (have: ", backendName(backend()),
                   "); check Session::supportsInstrumentation() or "
                   "recompile with CompilerOptions::backend = "
                   "Backend::kKernel");
    }
    plan_->runInstrumented(rows, num_rows, predictions, counters);
}

int32_t
Session::numFeatures() const
{
    return plan_ ? plan_->buffers().numFeatures : jit_->numFeatures();
}

int32_t
Session::numClasses() const
{
    return plan_ ? plan_->buffers().numClasses : jit_->numClasses();
}

const runtime::ExecutablePlan &
Session::plan() const
{
    panicIf(!plan_, "plan() on a source-JIT session");
    return *plan_;
}

const codegen::JitCompiledSession &
Session::jit() const
{
    panicIf(jit_ == nullptr, "jit() on a kernel session");
    return *jit_;
}

Session
compile(const model::Forest &forest, const hir::Schedule &schedule,
        const CompilerOptions &options)
{
    // Pre-compile verification: reject bad models/schedules with the
    // full diagnostic report instead of the first fatal().
    {
        analysis::DiagnosticEngine diag;
        diag.setPass("pre-compile");
        analysis::verifySchedule(schedule, diag);
        analysis::verifyForest(forest, diag);
        diag.throwIfErrors();
    }
    Timer total_timer;

    PipelineState state;
    state.hir = std::make_unique<hir::HirModule>(forest, schedule);

    // With verifyEach, the instrumentation hook below already verifies
    // after every pass; the fixed verify passes would be redundant.
    bool fixed_verify_passes =
        options.verifyPasses && !options.verifyEach;

    ir::PassManager<PipelineState> pm;
    pm.addPass("hir-tiling", [](PipelineState &s) {
        s.hir->runTilingPass();
    });
    if (fixed_verify_passes) {
        pm.addPass("hir-verify-tiling", [](PipelineState &s) {
            analysis::DiagnosticEngine diag;
            verifyPipelineState(s, "hir-verify-tiling", diag);
            diag.throwIfErrors();
        });
    }
    pm.addPass("hir-reorder-trees", [](PipelineState &s) {
        s.hir->runReorderPass();
    });
    if (fixed_verify_passes) {
        pm.addPass("hir-verify-reorder", [](PipelineState &s) {
            analysis::DiagnosticEngine diag;
            verifyPipelineState(s, "hir-verify-reorder", diag);
            diag.throwIfErrors();
        });
    }
    pm.addPass("lower-to-mir", [](PipelineState &s) {
        s.mir = mir::lowerToMir(*s.hir);
        s.mirLowered = true;
    });
    pm.addPass("mir-peel-unroll", [](PipelineState &s) {
        mir::applyWalkPeelingAndUnrolling(s.mir, *s.hir);
    });
    pm.addPass("mir-interleave", [](PipelineState &s) {
        mir::applyWalkInterleaving(
            s.mir, s.mir.schedule.interleaveFactor);
    });
    pm.addPass("mir-parallelize", [](PipelineState &s) {
        mir::applyParallelization(s.mir, s.mir.schedule.numThreads);
    });
    if (fixed_verify_passes) {
        pm.addPass("mir-verify", [](PipelineState &s) {
            analysis::DiagnosticEngine diag;
            verifyPipelineState(s, "mir-verify", diag);
            diag.throwIfErrors();
        });
    }
    pm.addPass("lower-to-lir", [](PipelineState &s) {
        s.buffers = lir::buildForestBuffers(*s.hir);
        s.lirBuilt = true;
    });
    // Hot-path lowering rides behind the layout (it needs the built
    // tile indices); its notes (e.g. hir.hotpath.no-stats) surface in
    // the artifacts alongside the per-pass verifier findings.
    analysis::DiagnosticEngine hot_path_diags;
    hot_path_diags.setPass("lir-hot-path");
    pm.addPass("lir-hot-path", [&hot_path_diags](PipelineState &s) {
        lir::buildHotPaths(*s.hir, s.buffers, &hot_path_diags);
    });

    analysis::DiagnosticEngine each_pass_diags;
    if (options.verifyEach) {
        pm.setInstrumentation([&each_pass_diags](
                                  const ir::PassTrace &trace,
                                  PipelineState &s) {
            analysis::DiagnosticEngine diag;
            verifyPipelineState(s, trace.name, diag);
            diag.throwIfErrors();
            // Errors threw above; keep notes/warnings for the report.
            for (const analysis::Diagnostic &d : diag.diagnostics())
                each_pass_diags.add(d);
        });
    }

    if (options.recordIrDumps) {
        pm.enableDumps([](const PipelineState &s) {
            std::string dump = s.hir->dump();
            if (s.mirLowered)
                dump += s.mir.print();
            return dump;
        });
    }

    pm.run(state);

    CompilationArtifacts artifacts;
    artifacts.passTraces = pm.traces();
    artifacts.lirSummary = state.buffers.summary();
    artifacts.backend = options.backend;
    artifacts.diagnostics = each_pass_diags.diagnostics();
    for (const analysis::Diagnostic &d : hot_path_diags.diagnostics())
        artifacts.diagnostics.push_back(d);
    if (options.recordIrDumps) {
        artifacts.hirDump = state.hir->dump();
        artifacts.mirDump = state.mir.print();
    }

    if (options.backend == Backend::kSourceJit) {
        auto jit = std::make_unique<codegen::JitCompiledSession>(
            std::move(state.buffers), state.hir->groups(), schedule,
            options.jit);
        artifacts.generatedSource = jit->source();
        artifacts.jitCompileSeconds = jit->compileSeconds();
        artifacts.totalSeconds = total_timer.elapsedSeconds();
        return Session(std::move(jit), std::move(artifacts),
                       schedule.numThreads);
    }

    runtime::ExecutablePlan plan(std::move(state.buffers),
                                 std::move(state.mir),
                                 state.hir->groups());
    artifacts.totalSeconds = total_timer.elapsedSeconds();
    return Session(std::move(plan), std::move(artifacts));
}

} // namespace treebeard
