#include "treebeard/compiler.h"

#include "common/timer.h"
#include "lir/layout_builder.h"
#include "mir/lowering.h"
#include "mir/passes.h"

namespace treebeard {

namespace {

/** Mutable pipeline state threaded through the pass manager. */
struct PipelineState
{
    std::unique_ptr<hir::HirModule> hir;
    mir::MirFunction mir;
    lir::ForestBuffers buffers;
    bool mirLowered = false;
};

} // namespace

InferenceSession::InferenceSession(runtime::ExecutablePlan plan,
                                   CompilationArtifacts artifacts)
    : plan_(std::move(plan)), artifacts_(std::move(artifacts))
{}

InferenceSession
compileForest(const model::Forest &forest, const hir::Schedule &schedule,
              const CompilerOptions &options)
{
    schedule.validate();
    Timer total_timer;

    PipelineState state;
    state.hir = std::make_unique<hir::HirModule>(forest, schedule);

    ir::PassManager<PipelineState> pm;
    pm.addPass("hir-tiling", [](PipelineState &s) {
        s.hir->runTilingPass();
    });
    if (options.verifyPasses) {
        pm.addPass("hir-verify-tiling", [](PipelineState &s) {
            s.hir->validateTiling();
        });
    }
    pm.addPass("hir-reorder-trees", [](PipelineState &s) {
        s.hir->runReorderPass();
    });
    if (options.verifyPasses) {
        pm.addPass("hir-verify-reorder", [](PipelineState &s) {
            s.hir->validateTiling();
        });
    }
    pm.addPass("lower-to-mir", [](PipelineState &s) {
        s.mir = mir::lowerToMir(*s.hir);
        s.mirLowered = true;
    });
    pm.addPass("mir-peel-unroll", [](PipelineState &s) {
        mir::applyWalkPeelingAndUnrolling(s.mir, *s.hir);
    });
    pm.addPass("mir-interleave", [](PipelineState &s) {
        mir::applyWalkInterleaving(
            s.mir, s.mir.schedule.interleaveFactor);
    });
    pm.addPass("mir-parallelize", [](PipelineState &s) {
        mir::applyParallelization(s.mir, s.mir.schedule.numThreads);
    });
    if (options.verifyPasses) {
        pm.addPass("mir-verify", [](PipelineState &s) {
            s.mir.verify();
        });
    }
    pm.addPass("lower-to-lir", [](PipelineState &s) {
        s.buffers = lir::buildForestBuffers(*s.hir);
    });

    if (options.recordIrDumps) {
        pm.enableDumps([](const PipelineState &s) {
            std::string dump = s.hir->dump();
            if (s.mirLowered)
                dump += s.mir.print();
            return dump;
        });
    }

    pm.run(state);

    CompilationArtifacts artifacts;
    artifacts.passTraces = pm.traces();
    artifacts.lirSummary = state.buffers.summary();
    if (options.recordIrDumps) {
        artifacts.hirDump = state.hir->dump();
        artifacts.mirDump = state.mir.print();
    }

    runtime::ExecutablePlan plan(std::move(state.buffers),
                                 std::move(state.mir),
                                 state.hir->groups());
    artifacts.totalSeconds = total_timer.elapsedSeconds();
    return InferenceSession(std::move(plan), std::move(artifacts));
}

} // namespace treebeard
