/**
 * @file
 * The low-level IR's explicit memory representation of a compiled
 * forest (Section V-B): flattened tile buffers in either the
 * array-based or the sparse layout, plus the shape LUT, ready for the
 * runtime kernels (or the C++ source emitter) to consume.
 *
 * Conventions shared by both layouts:
 *  - Trees are stored in HIR execution order: buffer tree index ==
 *    position in HirModule::treeOrder().
 *  - Every tile occupies tileSize slots in `thresholds` and
 *    `featureIndices` (tiles with fewer nodes pad the remaining slots
 *    with +inf thresholds / feature 0, which are harmless don't-care
 *    lanes for the LUT).
 *  - Dummy (padding/hop) tiles use +inf thresholds and the
 *    left-leaning chain shape, so every walk through them exits at
 *    child 0 deterministically.
 *
 * Array layout:
 *  - Each tree is an implicit (tileSize+1)-ary array: the c-th child
 *    of local tile n lives at local index (tileSize+1)*n + c + 1.
 *  - Leaf tiles occupy full tile slots with shapeId == kLeafTileMarker
 *    and the leaf value in their first threshold slot.
 *
 * Sparse layout:
 *  - `childBase[tile] >= 0`: global index of the tile's first child;
 *    children are contiguous.
 *  - `childBase[tile] < 0`: all children are leaves; the child values
 *    live at leaves[-(childBase+1) + c].
 *  - Mixed leaf/non-leaf children are eliminated with "hop" tiles.
 *
 * Packed layout:
 *  - Same topology and childBase/leaves semantics as the sparse
 *    layout, but the per-tile SoA arrays are fused into one
 *    fixed-stride AoS record per tile (see packed* helpers below), so
 *    a tile evaluation touches a single cache line instead of ~5.
 *  - Feature indices are narrowed to int16; models with >= 32768
 *    features cannot use this layout (the builder falls back).
 *
 * Packed-quantized layout:
 *  - Same topology as the packed layout, but thresholds are narrowed
 *    to int16 under a per-feature affine scale (see QuantizationInfo)
 *    and feature indices to uint8, halving the tile-size-8 record to
 *    32 bytes — two tiles per 64-byte cache line. +inf (dummy/padding)
 *    thresholds map to the kQuantizedNaN sentinel; finite thresholds
 *    clamp to <= kQuantizedNaN - 1 so the sentinel stays unambiguous.
 *    Models with >= 256 features fall back to the f32 packed layout.
 */
#ifndef TREEBEARD_LIR_FOREST_BUFFERS_H
#define TREEBEARD_LIR_FOREST_BUFFERS_H

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "lir/tile_shape.h"
#include "model/forest.h"

namespace treebeard::lir {

/** Shape-id marker for leaf tiles in the array layout. */
constexpr int16_t kLeafTileMarker = -1;

/** Shape-id marker for never-visited array slots. */
constexpr int16_t kUnusedTileMarker = -2;

/** Layout discriminator (mirrors hir::MemoryLayout + precision). */
enum class LayoutKind {
    kArray,
    kSparse,
    kPacked,
    kPackedQuantized,
};

const char *layoutKindName(LayoutKind kind);

/** True for both AoS record layouts (f32 packed and int16 packed). */
constexpr bool
isPackedKind(LayoutKind kind)
{
    return kind == LayoutKind::kPacked ||
           kind == LayoutKind::kPackedQuantized;
}

// ---------------------------------------------------------------------
// Packed tile records.
//
// One tile is a single fixed-stride record:
//
//   offset 0:                 float   thresholds[NT]
//   packedFeaturesOffset:     int16_t featureIndices[NT]
//   packedShapeOffset:        int16_t shapeId
//   packedDefaultLeftOffset:  uint8_t defaultLeft
//   packedChildBaseOffset:    int32_t childBase   (4-byte aligned)
//
// The stride is the next power of two covering the record (16/32/64
// bytes for NT in [1,8]), so records never straddle a cache line and
// the NT=8 record is exactly one 64-byte line. Indexing is
// record = packedData() + tile * stride; the kernels instantiate the
// offsets as compile-time constants per NT.
// ---------------------------------------------------------------------

/** Exclusive upper bound on feature indices in the packed layout. */
constexpr int32_t kPackedMaxFeatures = 32768;

constexpr int32_t
packedFeaturesOffset(int32_t tile_size)
{
    return tile_size * 4;
}

constexpr int32_t
packedShapeOffset(int32_t tile_size)
{
    return tile_size * 6;
}

constexpr int32_t
packedDefaultLeftOffset(int32_t tile_size)
{
    return tile_size * 6 + 2;
}

constexpr int32_t
packedChildBaseOffset(int32_t tile_size)
{
    // First 4-byte-aligned offset past the default-left byte.
    return (tile_size * 6 + 3 + 3) & ~3;
}

/** Bytes per packed tile record (a power of two in [16, 64]). */
constexpr int32_t
packedTileStride(int32_t tile_size)
{
    int32_t raw = packedChildBaseOffset(tile_size) + 4;
    int32_t stride = 16;
    while (stride < raw)
        stride *= 2;
    return stride;
}

/** 64-byte-aligned backing unit for the packed record buffer. */
struct alignas(64) PackedLine
{
    unsigned char bytes[64];
};

// ---------------------------------------------------------------------
// Quantized packed tile records.
//
// One tile is a single fixed-stride record:
//
//   offset 0:                  int16_t thresholds[NT]  (quantized)
//   packedqFeaturesOffset:     uint8_t featureIndices[NT]
//   packedqShapeOffset:        int16_t shapeId         (2-byte aligned)
//   packedqDefaultLeftOffset:  uint8_t defaultLeft
//   packedqChildBaseOffset:    int32_t childBase       (4-byte aligned)
//
// The stride is the next power of two covering the record: 16 bytes
// for NT in [1,2] and 32 bytes for NT in [3,8], so the tile-size-8
// record is exactly half a cache line and two records never straddle
// a line. Thresholds hold quantizeValue(threshold) under the model's
// per-feature affine scale; +inf (dummy/padding) slots hold
// kQuantizedNaN, which every finite quantized row value compares
// strictly below (finite values clamp to kQuantizedNaN - 1), so dummy
// tiles route every walk to child 0 exactly like their f32 +inf form.
// ---------------------------------------------------------------------

/** Exclusive upper bound on feature indices (uint8 storage). */
constexpr int32_t kPackedQuantizedMaxFeatures = 256;

/**
 * Sentinel for +inf thresholds and NaN row values in the int16
 * domain (INT16_MAX). Finite quantized values clamp to at most
 * kQuantizedNaN - 1, so `q == kQuantizedNaN` means "missing" and
 * `q(x) < q(t)` is false for every NaN lane — exactly the f32
 * comparison semantics (NaN routes by defaultLeft).
 */
constexpr int16_t kQuantizedNaN = 32767;

constexpr int32_t
packedqFeaturesOffset(int32_t tile_size)
{
    return tile_size * 2;
}

constexpr int32_t
packedqShapeOffset(int32_t tile_size)
{
    // First 2-byte-aligned offset past the feature bytes.
    return (tile_size * 3 + 1) & ~1;
}

constexpr int32_t
packedqDefaultLeftOffset(int32_t tile_size)
{
    return packedqShapeOffset(tile_size) + 2;
}

constexpr int32_t
packedqChildBaseOffset(int32_t tile_size)
{
    // First 4-byte-aligned offset past the default-left byte.
    return (packedqDefaultLeftOffset(tile_size) + 1 + 3) & ~3;
}

/** Bytes per quantized packed tile record (16 or 32). */
constexpr int32_t
packedqTileStride(int32_t tile_size)
{
    int32_t raw = packedqChildBaseOffset(tile_size) + 4;
    int32_t stride = 16;
    while (stride < raw)
        stride *= 2;
    return stride;
}

static_assert(packedqTileStride(8) == 32,
              "tile-size-8 quantized record must be exactly 32 bytes");

/**
 * Per-model quantization metadata for the packed-quantized layout:
 * the per-feature affine maps (q = round((x - offset) * scale)) and
 * the worst-case error budgets the layout builder computed from them.
 */
struct QuantizationInfo
{
    /** Per-feature scale (always finite and > 0). */
    std::vector<float> scale;
    /** Per-feature offset (always finite). */
    std::vector<float> offset;

    /**
     * Per-feature threshold resolution 1/scale: the quantized compare
     * behaves exactly like an f32 compare against an effective
     * threshold t' with t - stepBudget[f] <= t' <= t.
     */
    std::vector<float> stepBudget;

    /** Max stepBudget over features that appear in any record. */
    float maxThresholdError = 0.0f;

    /**
     * Worst-case |quantized - f32| prediction drift: the sum over
     * trees of (max leaf - min leaf), i.e. the margin change if every
     * tree flipped to its farthest leaf. Loose but always sound.
     */
    float predictionErrorBudget = 0.0f;

    /**
     * Quantize one row value for feature @p feature. NaN maps to
     * kQuantizedNaN; finite values clamp into
     * [INT16_MIN, kQuantizedNaN - 1]. The source-JIT emitter inlines
     * this exact expression so both backends round identically.
     */
    int16_t quantizeValue(float value, int32_t feature) const
    {
        if (value != value) // NaN
            return kQuantizedNaN;
        float scaled = (value - offset[static_cast<size_t>(feature)]) *
                       scale[static_cast<size_t>(feature)];
        if (scaled >= 32766.0f)
            return 32766;
        if (scaled <= -32768.0f)
            return -32768;
        return static_cast<int16_t>(std::lrintf(scaled));
    }
};

/**
 * One comparison of a tree's lowered hot path. Thresholds and feature
 * indices are copied out of the model (the emitters bake them in as
 * immediates); the packed-quantized layout additionally carries the
 * pre-quantized threshold so the hot compare runs in the int16 domain
 * with the same rounding as the tile records. Child references follow
 * hir::HotPathProgram: r >= 0 names the next hot node (always > the
 * current index), r < 0 names outcome -(r + 1).
 */
struct HotPathNode
{
    float threshold = 0.0f;
    /** quantizeValue(threshold, feature); packed-quantized only. */
    int16_t qthreshold = 0;
    int32_t feature = 0;
    /** Missing (NaN) values route left when nonzero. */
    uint8_t defaultLeft = 0;
    int32_t left = 0;
    int32_t right = 0;
};

/** One hot-path outcome: a resolved leaf or a cold-walk entry tile. */
struct HotPathOutcome
{
    /** Leaf prediction when coldEntryTile < 0. */
    float leafValue = 0.0f;
    /**
     * Global tile index the tiled walk resumes from, or -1 when the
     * hot path resolved a leaf in-region.
     */
    int64_t coldEntryTile = -1;
    /** Reach probability mass (verifier accounting; sums to 1). */
    double probability = 0.0;
};

/**
 * One tree's lowered hot path (empty nodes + outcomes = no hot region;
 * that tree uses the plain tiled walk).
 */
struct TreeHotPath
{
    std::vector<HotPathNode> nodes;
    std::vector<HotPathOutcome> outcomes;
    /** Probability mass resolved in-region. */
    double hotCoverage = 0.0;
    /** Selection ran without hit statistics (depth-based region). */
    bool depthFallback = false;

    bool empty() const { return nodes.empty() && outcomes.empty(); }
};

/** Walk-shape metadata for one tree, copied from its HIR tree group. */
struct TreeWalkInfo
{
    /** Exact walk depth when the tree's walk is fully unrolled. */
    int32_t unrolledDepth = 0;
    bool unrolled = false;
    /** Checked-free prefix length for generic walks. */
    int32_t peelDepth = 0;
};

/**
 * The complete compiled-model memory image.
 */
struct ForestBuffers
{
    LayoutKind layout = LayoutKind::kSparse;
    int32_t tileSize = 0;
    int64_t numTrees = 0;
    int32_t numFeatures = 0;
    float baseScore = 0.0f;
    model::Objective objective = model::Objective::kRegression;
    /** Output classes (1 for single-output models). */
    int32_t numClasses = 1;
    /** Class each tree feeds, by buffer (execution-order) index. */
    std::vector<int32_t> treeClass;

    /** Shape table (LUT) for tileSize; owned by the process cache. */
    const TileShapeTable *shapes = nullptr;

    /** Global tile index of each tree's root: treeFirstTile[pos]. */
    std::vector<int64_t> treeFirstTile;
    /** One-past-the-end global tile index per tree. */
    std::vector<int64_t> treeTileEnd;

    /** Per-tile node data; tile t's slots at [t*tileSize, (t+1)*tileSize). */
    std::vector<float> thresholds;
    std::vector<int32_t> featureIndices;
    /** Per-tile shape id (or array-layout markers). */
    std::vector<int16_t> shapeIds;

    /**
     * Per-tile default-direction bits: bit s is 1 when slot s routes
     * left on a missing (NaN) feature value. Dummy/padded slots are 1
     * so NaN walks keep following the deterministic child-0 path.
     */
    std::vector<uint8_t> defaultLeft;

    /**
     * True when any model node carries a default-left direction; the
     * runtime then selects the missing-value-aware kernels. Models
     * without default directions use the plain predicate (NaN routes
     * right, which is exactly defaultLeft == false everywhere).
     */
    bool hasDefaultLeft = false;

    /** Sparse layout only: per-tile child base (see file comment). */
    std::vector<int32_t> childBase;
    /** Sparse/packed layouts: leaf value pool. */
    std::vector<float> leaves;

    /**
     * Packed layout only: the AoS record buffer (tile t's record at
     * byte offset t * packedStride) and its per-tile stride. The SoA
     * vectors above are empty in this layout; all per-tile data lives
     * here (leaves/treeFirstTile/walkInfo are unchanged).
     */
    std::vector<PackedLine> packed;
    int32_t packedStride = 0;
    int64_t packedTileCount = 0;

    /** Packed-quantized layout only: the affine maps + error budgets. */
    QuantizationInfo quantization;

    /** Per-tree walk metadata (unroll/peel), by buffer tree index. */
    std::vector<TreeWalkInfo> walkInfo;

    /**
     * Per-position hot paths (Schedule::hotPathCoverage > 0 only;
     * empty vector = hot-path lowering off). Built after the layout by
     * lir::buildHotPaths; both backends consult it through the same
     * structure so the bit-exactness invariant is preserved at the
     * hot/cold boundary.
     */
    std::vector<TreeHotPath> hotPaths;

    /**
     * Build-time scaffolding for hot-path lowering: per position, the
     * global tile index of every HIR tile id (-1 for tiles the layout
     * never materializes, i.e. leaf tiles folded into childBase).
     * Recorded by the layout builders only when the schedule requests
     * a hot path, consumed and cleared by buildHotPaths.
     */
    std::vector<std::vector<int64_t>> tileGlobalIndex;

    int64_t numTiles() const
    {
        return isPackedKind(layout)
                   ? packedTileCount
                   : static_cast<int64_t>(shapeIds.size());
    }

    const unsigned char *packedData() const
    {
        return reinterpret_cast<const unsigned char *>(packed.data());
    }

    unsigned char *packedData()
    {
        return reinterpret_cast<unsigned char *>(packed.data());
    }

    const unsigned char *packedTileRecord(int64_t tile) const
    {
        return packedData() + tile * packedStride;
    }

    /**
     * Layout-agnostic view of one tile's fields, resolved with
     * runtime offsets. For reference/instrumented paths and the
     * layout builders — the hot kernels use compile-time offsets.
     */
    struct TileFields
    {
        const float *thresholds = nullptr;
        /** Packed-quantized layout: int16-quantized thresholds. */
        const int16_t *qthresholds = nullptr;
        const int32_t *features32 = nullptr; // array/sparse layouts
        const int16_t *features16 = nullptr; // packed layout
        const uint8_t *features8 = nullptr;  // packed-quantized layout
        int16_t shapeId = 0;
        uint8_t defaultLeft = 0;
        /** Sparse/packed only; 0 in the array layout. */
        int32_t childBase = 0;

        int32_t feature(int32_t slot) const
        {
            if (features32 != nullptr)
                return features32[slot];
            if (features16 != nullptr)
                return static_cast<int32_t>(features16[slot]);
            return static_cast<int32_t>(features8[slot]);
        }
    };

    TileFields tileFields(int64_t tile) const;

    /** Model bytes (excluding the shared LUT). */
    int64_t footprintBytes() const;

    /** LUT bytes for this tile size. */
    int64_t lutBytes() const;

    /** Human-readable summary for IR dumps. */
    std::string summary() const;
};

/**
 * Bytes of a plain scalar (tile size 1, node-array) representation of
 * @p forest: the baseline for the memory-bloat comparison the paper
 * reports in Section V-B.
 */
int64_t scalarRepresentationBytes(const model::Forest &forest);

} // namespace treebeard::lir

#endif // TREEBEARD_LIR_FOREST_BUFFERS_H
