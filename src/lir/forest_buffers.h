/**
 * @file
 * The low-level IR's explicit memory representation of a compiled
 * forest (Section V-B): flattened tile buffers in either the
 * array-based or the sparse layout, plus the shape LUT, ready for the
 * runtime kernels (or the C++ source emitter) to consume.
 *
 * Conventions shared by both layouts:
 *  - Trees are stored in HIR execution order: buffer tree index ==
 *    position in HirModule::treeOrder().
 *  - Every tile occupies tileSize slots in `thresholds` and
 *    `featureIndices` (tiles with fewer nodes pad the remaining slots
 *    with +inf thresholds / feature 0, which are harmless don't-care
 *    lanes for the LUT).
 *  - Dummy (padding/hop) tiles use +inf thresholds and the
 *    left-leaning chain shape, so every walk through them exits at
 *    child 0 deterministically.
 *
 * Array layout:
 *  - Each tree is an implicit (tileSize+1)-ary array: the c-th child
 *    of local tile n lives at local index (tileSize+1)*n + c + 1.
 *  - Leaf tiles occupy full tile slots with shapeId == kLeafTileMarker
 *    and the leaf value in their first threshold slot.
 *
 * Sparse layout:
 *  - `childBase[tile] >= 0`: global index of the tile's first child;
 *    children are contiguous.
 *  - `childBase[tile] < 0`: all children are leaves; the child values
 *    live at leaves[-(childBase+1) + c].
 *  - Mixed leaf/non-leaf children are eliminated with "hop" tiles.
 */
#ifndef TREEBEARD_LIR_FOREST_BUFFERS_H
#define TREEBEARD_LIR_FOREST_BUFFERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "lir/tile_shape.h"
#include "model/forest.h"

namespace treebeard::lir {

/** Shape-id marker for leaf tiles in the array layout. */
constexpr int16_t kLeafTileMarker = -1;

/** Shape-id marker for never-visited array slots. */
constexpr int16_t kUnusedTileMarker = -2;

/** Layout discriminator (mirrors hir::MemoryLayout). */
enum class LayoutKind {
    kArray,
    kSparse,
};

const char *layoutKindName(LayoutKind kind);

/** Walk-shape metadata for one tree, copied from its HIR tree group. */
struct TreeWalkInfo
{
    /** Exact walk depth when the tree's walk is fully unrolled. */
    int32_t unrolledDepth = 0;
    bool unrolled = false;
    /** Checked-free prefix length for generic walks. */
    int32_t peelDepth = 0;
};

/**
 * The complete compiled-model memory image.
 */
struct ForestBuffers
{
    LayoutKind layout = LayoutKind::kSparse;
    int32_t tileSize = 0;
    int64_t numTrees = 0;
    int32_t numFeatures = 0;
    float baseScore = 0.0f;
    model::Objective objective = model::Objective::kRegression;
    /** Output classes (1 for single-output models). */
    int32_t numClasses = 1;
    /** Class each tree feeds, by buffer (execution-order) index. */
    std::vector<int32_t> treeClass;

    /** Shape table (LUT) for tileSize; owned by the process cache. */
    const TileShapeTable *shapes = nullptr;

    /** Global tile index of each tree's root: treeFirstTile[pos]. */
    std::vector<int64_t> treeFirstTile;
    /** One-past-the-end global tile index per tree. */
    std::vector<int64_t> treeTileEnd;

    /** Per-tile node data; tile t's slots at [t*tileSize, (t+1)*tileSize). */
    std::vector<float> thresholds;
    std::vector<int32_t> featureIndices;
    /** Per-tile shape id (or array-layout markers). */
    std::vector<int16_t> shapeIds;

    /**
     * Per-tile default-direction bits: bit s is 1 when slot s routes
     * left on a missing (NaN) feature value. Dummy/padded slots are 1
     * so NaN walks keep following the deterministic child-0 path.
     */
    std::vector<uint8_t> defaultLeft;

    /**
     * True when any model node carries a default-left direction; the
     * runtime then selects the missing-value-aware kernels. Models
     * without default directions use the plain predicate (NaN routes
     * right, which is exactly defaultLeft == false everywhere).
     */
    bool hasDefaultLeft = false;

    /** Sparse layout only: per-tile child base (see file comment). */
    std::vector<int32_t> childBase;
    /** Sparse layout only: leaf value pool. */
    std::vector<float> leaves;

    /** Per-tree walk metadata (unroll/peel), by buffer tree index. */
    std::vector<TreeWalkInfo> walkInfo;

    int64_t numTiles() const
    {
        return static_cast<int64_t>(shapeIds.size());
    }

    /** Model bytes (excluding the shared LUT). */
    int64_t footprintBytes() const;

    /** LUT bytes for this tile size. */
    int64_t lutBytes() const;

    /** Human-readable summary for IR dumps. */
    std::string summary() const;
};

/**
 * Bytes of a plain scalar (tile size 1, node-array) representation of
 * @p forest: the baseline for the memory-bloat comparison the paper
 * reports in Section V-B.
 */
int64_t scalarRepresentationBytes(const model::Forest &forest);

} // namespace treebeard::lir

#endif // TREEBEARD_LIR_FOREST_BUFFERS_H
