#include "lir/tile_shape.h"

#include <array>
#include <memory>
#include <queue>

#include "common/checked_mutex.h"
#include "common/logging.h"

namespace treebeard::lir {

namespace {

/** Structural form used during enumeration. */
struct StructNode
{
    std::unique_ptr<StructNode> left;
    std::unique_ptr<StructNode> right;
};

using StructTree = std::unique_ptr<StructNode>;

/** Deep copy for reuse of enumerated subtrees. */
StructTree
cloneTree(const StructTree &tree)
{
    if (!tree)
        return nullptr;
    auto copy = std::make_unique<StructNode>();
    copy->left = cloneTree(tree->left);
    copy->right = cloneTree(tree->right);
    return copy;
}

/** All binary trees with exactly @p num_nodes nodes. */
std::vector<StructTree>
enumerateTrees(int32_t num_nodes)
{
    std::vector<StructTree> result;
    if (num_nodes == 0) {
        result.push_back(nullptr);
        return result;
    }
    for (int32_t left_nodes = 0; left_nodes < num_nodes; ++left_nodes) {
        std::vector<StructTree> lefts = enumerateTrees(left_nodes);
        std::vector<StructTree> rights =
            enumerateTrees(num_nodes - 1 - left_nodes);
        for (const StructTree &left : lefts) {
            for (const StructTree &right : rights) {
                auto root = std::make_unique<StructNode>();
                root->left = cloneTree(left);
                root->right = cloneTree(right);
                result.push_back(std::move(root));
            }
        }
    }
    return result;
}

/** Convert a structural tree to level-order slot links. */
TileShape
toLevelOrderShape(const StructTree &tree)
{
    TileShape shape;
    // BFS assigning slots in visit order.
    std::queue<const StructNode *> queue;
    std::vector<const StructNode *> order;
    queue.push(tree.get());
    while (!queue.empty()) {
        const StructNode *node = queue.front();
        queue.pop();
        order.push_back(node);
        if (node->left)
            queue.push(node->left.get());
        if (node->right)
            queue.push(node->right.get());
    }

    std::map<const StructNode *, int32_t> slot_of;
    for (size_t i = 0; i < order.size(); ++i)
        slot_of[order[i]] = static_cast<int32_t>(i);

    shape.left.resize(order.size(), kExit);
    shape.right.resize(order.size(), kExit);
    for (size_t i = 0; i < order.size(); ++i) {
        if (order[i]->left)
            shape.left[i] = slot_of[order[i]->left.get()];
        if (order[i]->right)
            shape.right[i] = slot_of[order[i]->right.get()];
    }
    return shape;
}

/** Preorder serialization from slot links starting at @p slot. */
void
serializeFrom(const std::vector<int32_t> &left,
              const std::vector<int32_t> &right, int32_t slot,
              std::string &out)
{
    if (slot == kExit) {
        out.push_back('0');
        return;
    }
    out.push_back('1');
    serializeFrom(left, right, left[static_cast<size_t>(slot)], out);
    serializeFrom(left, right, right[static_cast<size_t>(slot)], out);
}

/**
 * Exit-edge ordinals for a shape: exit_index[slot][side] where side 0
 * is the left edge and side 1 the right edge; -1 when the slot has an
 * in-tile child on that side. Exits are numbered left-to-right by
 * depth-first traversal (footnote 7 of the paper).
 */
std::vector<std::array<int32_t, 2>>
computeExitOrdinals(const TileShape &shape)
{
    std::vector<std::array<int32_t, 2>> exits(
        static_cast<size_t>(shape.numNodes()), {-1, -1});
    int32_t next = 0;
    // Recursive DFS via explicit lambda.
    auto visit = [&](auto &&self, int32_t slot) -> void {
        int32_t left = shape.left[static_cast<size_t>(slot)];
        if (left == kExit)
            exits[static_cast<size_t>(slot)][0] = next++;
        else
            self(self, left);
        int32_t right = shape.right[static_cast<size_t>(slot)];
        if (right == kExit)
            exits[static_cast<size_t>(slot)][1] = next++;
        else
            self(self, right);
    };
    visit(visit, 0);
    panicIf(next != shape.numChildren(),
            "exit enumeration produced wrong child count");
    return exits;
}

} // namespace

std::string
TileShape::serialize() const
{
    std::string out;
    if (numNodes() == 0)
        return "0";
    serializeFrom(left, right, 0, out);
    return out;
}

TileShapeTable::TileShapeTable(int32_t tile_size) : tileSize_(tile_size)
{
    fatalIf(tile_size < 1 || tile_size > kMaxTileSize,
            "tile size ", tile_size, " out of supported range [1, ",
            kMaxTileSize, "]");
    enumerateShapes();
    buildLut();
}

void
TileShapeTable::enumerateShapes()
{
    for (int32_t nodes = 1; nodes <= tileSize_; ++nodes) {
        for (const StructTree &tree : enumerateTrees(nodes)) {
            TileShape shape = toLevelOrderShape(tree);
            std::string key = shape.serialize();
            panicIf(shapeIdBySerialization_.count(key) > 0,
                    "duplicate shape during enumeration");
            shapeIdBySerialization_[key] =
                static_cast<int32_t>(shapes_.size());
            shapes_.push_back(std::move(shape));
        }
    }

    // Locate the full-size left chain used for padding tiles.
    TileShape chain;
    chain.left.resize(static_cast<size_t>(tileSize_), kExit);
    chain.right.resize(static_cast<size_t>(tileSize_), kExit);
    for (int32_t i = 0; i + 1 < tileSize_; ++i)
        chain.left[static_cast<size_t>(i)] = i + 1;
    leftChainShapeId_ = shapeIdBySerialization_.at(chain.serialize());
}

void
TileShapeTable::buildLut()
{
    exitOrdinals_.resize(static_cast<size_t>(numShapes()));
    for (int32_t s = 0; s < numShapes(); ++s) {
        const TileShape &shape = shapes_[static_cast<size_t>(s)];
        std::vector<std::array<int32_t, 2>> exits =
            computeExitOrdinals(shape);
        std::vector<int16_t> &flat =
            exitOrdinals_[static_cast<size_t>(s)];
        flat.resize(static_cast<size_t>(shape.numNodes()) * 2);
        for (int32_t slot = 0; slot < shape.numNodes(); ++slot) {
            flat[static_cast<size_t>(slot) * 2] = static_cast<int16_t>(
                exits[static_cast<size_t>(slot)][0]);
            flat[static_cast<size_t>(slot) * 2 + 1] =
                static_cast<int16_t>(
                    exits[static_cast<size_t>(slot)][1]);
        }
    }

    lutStride_ = 1 << tileSize_;
    lut_.resize(static_cast<size_t>(numShapes()) * lutStride_);
    for (int32_t s = 0; s < numShapes(); ++s) {
        for (int32_t outcome = 0; outcome < lutStride_; ++outcome) {
            int32_t child =
                walkShape(s, static_cast<uint32_t>(outcome));
            panicIf(child < 0 || child > tileSize_ + 1,
                    "LUT child index out of range");
            lut_[static_cast<size_t>(s) * lutStride_ + outcome] =
                static_cast<int8_t>(child);
        }
    }
}

const TileShape &
TileShapeTable::shape(int32_t shape_id) const
{
    panicIf(shape_id < 0 || shape_id >= numShapes(),
            "shape id out of range");
    return shapes_[static_cast<size_t>(shape_id)];
}

int32_t
TileShapeTable::shapeIdOf(const std::vector<int32_t> &left,
                          const std::vector<int32_t> &right) const
{
    fatalIf(left.size() != right.size(),
            "left/right child arrays differ in length");
    fatalIf(left.empty() ||
                static_cast<int32_t>(left.size()) > tileSize_,
            "shape lookup with invalid node count ", left.size());
    std::string key;
    serializeFrom(left, right, 0, key);
    auto it = shapeIdBySerialization_.find(key);
    fatalIf(it == shapeIdBySerialization_.end(),
            "not a valid tile shape (serialization ", key, ")");
    return it->second;
}

int32_t
TileShapeTable::walkShape(int32_t shape_id, uint32_t outcome_bits) const
{
    const TileShape &shape = this->shape(shape_id);
    std::vector<std::array<int32_t, 2>> exits = computeExitOrdinals(shape);

    int32_t slot = 0;
    while (true) {
        bool go_left = (outcome_bits >> slot) & 1u;
        int32_t next = go_left ? shape.left[static_cast<size_t>(slot)]
                               : shape.right[static_cast<size_t>(slot)];
        if (next == kExit)
            return exits[static_cast<size_t>(slot)][go_left ? 0 : 1];
        slot = next;
    }
}

const TileShapeTable &
TileShapeTable::get(int32_t tile_size)
{
    // A leaf in the acquisition order: table construction is pure
    // computation and acquires nothing else. Held briefly during
    // first-use memoization (compilation paths, any thread).
    static Mutex mutex{"lir.TileShapeTable.mutex"};
    static std::unique_ptr<TileShapeTable> tables[kMaxTileSize + 1];
    fatalIf(tile_size < 1 || tile_size > kMaxTileSize,
            "tile size ", tile_size, " out of supported range [1, ",
            kMaxTileSize, "]");
    MutexLock lock(mutex);
    if (!tables[tile_size]) {
        tables[tile_size] =
            std::unique_ptr<TileShapeTable>(new TileShapeTable(tile_size));
    }
    return *tables[tile_size];
}

int64_t
catalanNumber(int32_t n)
{
    panicIf(n < 0, "catalan of negative number");
    // C(n) = C(2n, n) / (n + 1), computed incrementally.
    int64_t result = 1;
    for (int32_t i = 0; i < n; ++i)
        result = result * 2 * (2 * i + 1) / (i + 2);
    return result;
}

} // namespace treebeard::lir
