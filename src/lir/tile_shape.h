/**
 * @file
 * Tile shape enumeration and the child-index lookup table (LUT) of
 * Section V-A of the paper.
 *
 * For a tile size n_t, every legal binary tree with 1..n_t nodes is a
 * *tile shape* (Catalan(k) shapes of k nodes; Figure 4 shows the five
 * shapes of size 3). Given the vector comparison outcome of a tile's
 * node predicates, the child tile to traverse next depends on the
 * tile's shape; the LUT
 *
 *     LUT : (shapeId, outcomeBits) -> childIndex
 *
 * encodes this mapping and is computed statically, once per tile size.
 *
 * Conventions:
 *  - Nodes of a shape are numbered in level order (breadth-first),
 *    root = slot 0. Tiles store their thresholds/feature indices in
 *    the same slot order, so SIMD lane i always evaluates slot i.
 *  - Outcome bit i (LSB = slot 0) is 1 when row[feature_i] < threshold_i,
 *    i.e. when the walk at node i moves to the *left* child.
 *  - Children (exit edges) of a tile are numbered left-to-right
 *    (footnote 7), via depth-first traversal order.
 *  - Bits of slots that a shape does not populate (shapes smaller than
 *    n_t) are don't-cares: the LUT returns the same child for all
 *    values of those bits.
 */
#ifndef TREEBEARD_LIR_TILE_SHAPE_H
#define TREEBEARD_LIR_TILE_SHAPE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treebeard::lir {

/** Maximum supported tile size (outcome bits must fit comfortably). */
constexpr int32_t kMaxTileSize = 8;

/** In-shape child link; kExit marks an exit edge to a child tile. */
constexpr int32_t kExit = -1;

/**
 * One enumerated tile shape: a binary tree over level-order slots.
 */
struct TileShape
{
    /** left[i] / right[i]: slot index of node i's child, or kExit. */
    std::vector<int32_t> left;
    std::vector<int32_t> right;

    int32_t numNodes() const { return static_cast<int32_t>(left.size()); }

    /** A tile with k nodes has k + 1 children (exit edges). */
    int32_t numChildren() const { return numNodes() + 1; }

    /**
     * Canonical serialization used for interning: a preorder string of
     * child-presence markers.
     */
    std::string serialize() const;
};

/**
 * The interned set of all tile shapes for one tile size, plus the LUT.
 *
 * Obtain instances through TileShapeTable::get(); tables are built once
 * per tile size and cached for the process lifetime.
 */
class TileShapeTable
{
  public:
    /** The (cached) table for @p tile_size in [1, kMaxTileSize]. */
    static const TileShapeTable &get(int32_t tile_size);

    int32_t tileSize() const { return tileSize_; }
    int32_t numShapes() const { return static_cast<int32_t>(shapes_.size()); }
    const TileShape &shape(int32_t shape_id) const;

    /**
     * Find the id of a shape given explicit child links (level-order
     * slot numbering, kExit for missing children).
     * fatal() when the shape is not a valid tile shape of this size.
     */
    int32_t shapeIdOf(const std::vector<int32_t> &left,
                      const std::vector<int32_t> &right) const;

    /**
     * Child (exit-edge) index selected by @p outcome_bits for
     * @p shape_id, per the conventions above. O(depth) reference
     * implementation used to build the LUT and in tests.
     */
    int32_t walkShape(int32_t shape_id, uint32_t outcome_bits) const;

    /** LUT lookup: the precomputed walkShape value. */
    int32_t
    child(int32_t shape_id, uint32_t outcome_bits) const
    {
        return lut_[static_cast<size_t>(shape_id) * lutStride_ +
                    outcome_bits];
    }

    /** Raw LUT buffer (row-major: shape id, then outcome). */
    const int8_t *lutData() const { return lut_.data(); }

    /** Entries per LUT row (= 2^tileSize). */
    int32_t lutStride() const { return lutStride_; }

    /**
     * The shape id of the left-leaning chain with tileSize() nodes.
     * Used for dummy padding tiles: an all-ones outcome exits at
     * child 0 deterministically.
     */
    int32_t leftChainShapeId() const { return leftChainShapeId_; }

    /**
     * Exit (child) ordinal of the edge leaving @p slot of @p shape_id
     * on @p side (0 = left, 1 = right); -1 when that edge stays inside
     * the shape. Precomputed; used by instrumented walks and the C++
     * source emitter.
     */
    int32_t
    exitOrdinal(int32_t shape_id, int32_t slot, int32_t side) const
    {
        return exitOrdinals_[static_cast<size_t>(shape_id)]
                            [static_cast<size_t>(slot) * 2 +
                             static_cast<size_t>(side)];
    }

  private:
    explicit TileShapeTable(int32_t tile_size);

    void enumerateShapes();
    void buildLut();

    int32_t tileSize_;
    std::vector<TileShape> shapes_;
    std::map<std::string, int32_t> shapeIdBySerialization_;
    std::vector<int8_t> lut_;
    /** Per shape: flattened (slot, side) -> exit ordinal (or -1). */
    std::vector<std::vector<int16_t>> exitOrdinals_;
    int32_t lutStride_ = 0;
    int32_t leftChainShapeId_ = -1;
};

/** Catalan number C(n) (number of binary tree shapes with n nodes). */
int64_t catalanNumber(int32_t n);

} // namespace treebeard::lir

#endif // TREEBEARD_LIR_TILE_SHAPE_H
