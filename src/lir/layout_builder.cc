#include "lir/layout_builder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace treebeard::lir {

namespace {

using hir::Tile;
using hir::TiledTree;
using hir::TileId;

constexpr float kInf = std::numeric_limits<float>::infinity();

/** Safety cap on total materialized tiles (array layout can bloat). */
constexpr int64_t kMaxTotalTiles = int64_t{1} << 28;

/**
 * Write the per-slot data of one internal (or dummy/hop) tile into the
 * global buffers at tile index @p global. Unpopulated slots get +inf
 * thresholds and feature 0: their comparison lanes are don't-cares.
 */
void
writeInternalTileSlots(ForestBuffers &fb, int64_t global,
                       const TiledTree &tiled, TileId id, bool is_hop)
{
    int32_t nt = fb.tileSize;
    float *thresholds = fb.thresholds.data() + global * nt;
    int32_t *features = fb.featureIndices.data() + global * nt;

    if (is_hop || tiled.tile(id).isDummy()) {
        for (int32_t s = 0; s < nt; ++s) {
            thresholds[s] = kInf;
            features[s] = 0;
        }
        fb.shapeIds[static_cast<size_t>(global)] =
            static_cast<int16_t>(fb.shapes->leftChainShapeId());
        // NaN features must still follow the deterministic child-0
        // path through dummy predicates: default every lane left.
        fb.defaultLeft[static_cast<size_t>(global)] = 0xFF;
        return;
    }

    const Tile &tile = tiled.tile(id);
    std::vector<int32_t> left, right;
    tiled.tileSlotLinks(id, left, right);
    fb.shapeIds[static_cast<size_t>(global)] =
        static_cast<int16_t>(fb.shapes->shapeIdOf(left, right));

    const model::DecisionTree &tree = tiled.baseTree();
    uint8_t default_bits = 0;
    for (int32_t s = 0; s < nt; ++s) {
        if (s < tile.numNodes()) {
            const model::Node &node =
                tree.node(tile.nodes[static_cast<size_t>(s)]);
            thresholds[s] = node.threshold;
            features[s] = node.featureIndex;
            if (node.defaultLeft)
                default_bits |= static_cast<uint8_t>(1u << s);
        } else {
            thresholds[s] = kInf;
            features[s] = 0;
            // Padded don't-care lanes: NaN behaves like the +inf
            // threshold (left), keeping the lane's bit a don't-care.
            default_bits |= static_cast<uint8_t>(1u << s);
        }
    }
    fb.defaultLeft[static_cast<size_t>(global)] = default_bits;
}

/** Common header fields shared by both layout builders. */
ForestBuffers
makeHeader(const hir::HirModule &module, LayoutKind layout)
{
    const hir::Schedule &schedule = module.schedule();
    static_assert(hir::kMaxScheduleTileSize == kMaxTileSize,
                  "schedule and LIR tile-size limits diverged");

    ForestBuffers fb;
    fb.layout = layout;
    fb.tileSize = schedule.tileSize;
    fb.numTrees = module.forest().numTrees();
    fb.numFeatures = module.forest().numFeatures();
    fb.baseScore = module.forest().baseScore();
    fb.objective = module.forest().objective();
    fb.numClasses = module.forest().numClasses();
    fb.shapes = &TileShapeTable::get(schedule.tileSize);

    for (const model::DecisionTree &tree : module.forest().trees()) {
        for (const model::Node &node : tree.nodes()) {
            if (!node.isLeaf() && node.defaultLeft) {
                fb.hasDefaultLeft = true;
                break;
            }
        }
        if (fb.hasDefaultLeft)
            break;
    }

    // Class assignment follows the ORIGINAL tree index (round-robin),
    // recorded per execution position since reordering permutes trees.
    fb.treeClass.resize(static_cast<size_t>(fb.numTrees));
    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        fb.treeClass[static_cast<size_t>(pos)] =
            module.forest().treeClass(
                module.treeOrder()[static_cast<size_t>(pos)]);
    }

    // Per-position walk metadata from the HIR groups.
    fb.walkInfo.resize(static_cast<size_t>(fb.numTrees));
    for (const hir::TreeGroup &group : module.groups()) {
        for (int64_t pos = group.beginPos; pos < group.endPos; ++pos) {
            TreeWalkInfo &info = fb.walkInfo[static_cast<size_t>(pos)];
            info.unrolled = group.unrolledWalk;
            info.unrolledDepth = group.walkDepth;
            info.peelDepth = group.peelDepth;
        }
    }
    return fb;
}

void
growTileStorage(ForestBuffers &fb, int64_t total_tiles)
{
    fatalIf(total_tiles > kMaxTotalTiles,
            "layout would materialize ", total_tiles,
            " tiles; model too large for this layout");
    fb.thresholds.resize(static_cast<size_t>(total_tiles) * fb.tileSize);
    fb.featureIndices.resize(static_cast<size_t>(total_tiles) *
                             fb.tileSize);
    fb.shapeIds.resize(static_cast<size_t>(total_tiles));
    fb.defaultLeft.resize(static_cast<size_t>(total_tiles));
}

} // namespace

ForestBuffers
buildArrayLayout(const hir::HirModule &module)
{
    fatalIf(!module.isTiled() || module.groups().empty(),
            "layout lowering requires the HIR passes");
    ForestBuffers fb = makeHeader(module, LayoutKind::kArray);
    int64_t arity = fb.tileSize + 1;

    // First pass: compute each tree's implicit array size.
    std::vector<int64_t> tree_sizes;
    int64_t total_tiles = 0;
    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        const TiledTree &tiled =
            module.tiledTree(module.treeOrder()[static_cast<size_t>(pos)]);
        int32_t depth = tiled.maxLeafDepth();
        int64_t size = 0;
        int64_t level_size = 1;
        for (int32_t d = 0; d <= depth; ++d) {
            size += level_size;
            level_size *= arity;
            fatalIf(size > kMaxTotalTiles,
                    "array layout for one tree exceeds the tile cap");
        }
        tree_sizes.push_back(size);
        total_tiles += size;
        fb.treeFirstTile.push_back(total_tiles - size);
        fb.treeTileEnd.push_back(total_tiles);
    }
    growTileStorage(fb, total_tiles);
    std::fill(fb.shapeIds.begin(), fb.shapeIds.end(), kUnusedTileMarker);

    bool record_tiles = module.schedule().hotPathCoverage > 0.0;

    // Second pass: place tiles at their implicit positions.
    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        const TiledTree &tiled =
            module.tiledTree(module.treeOrder()[static_cast<size_t>(pos)]);
        int64_t base = fb.treeFirstTile[static_cast<size_t>(pos)];
        std::vector<int64_t> tile_global;
        if (record_tiles)
            tile_global.assign(static_cast<size_t>(tiled.numTiles()),
                               -1);

        // BFS carrying each tile's local array index.
        std::queue<std::pair<TileId, int64_t>> queue;
        queue.push({tiled.rootTile(), 0});
        while (!queue.empty()) {
            auto [id, local] = queue.front();
            queue.pop();
            int64_t global = base + local;
            if (record_tiles)
                tile_global[static_cast<size_t>(id)] = global;
            panicIf(global >= fb.treeTileEnd[static_cast<size_t>(pos)],
                    "array layout index escaped its tree block");
            const Tile &tile = tiled.tile(id);
            if (tile.isLeafKind()) {
                fb.shapeIds[static_cast<size_t>(global)] =
                    kLeafTileMarker;
                fb.thresholds[static_cast<size_t>(global) * fb.tileSize] =
                    tile.leafValue;
                continue;
            }
            writeInternalTileSlots(fb, global, tiled, id,
                                   /*is_hop=*/false);
            for (size_t c = 0; c < tile.children.size(); ++c) {
                int64_t child_local =
                    arity * local + static_cast<int64_t>(c) + 1;
                queue.push({tile.children[c], child_local});
            }
        }
        if (record_tiles)
            fb.tileGlobalIndex.push_back(std::move(tile_global));
    }
    return fb;
}

ForestBuffers
buildSparseLayout(const hir::HirModule &module)
{
    fatalIf(!module.isTiled() || module.groups().empty(),
            "layout lowering requires the HIR passes");
    ForestBuffers fb = makeHeader(module, LayoutKind::kSparse);

    // Work items: real tiles, or synthetic hop tiles standing in for a
    // leaf that has non-leaf siblings (Section V-B2's "extra hop").
    struct Item
    {
        TileId id = hir::kNoTile; // kNoTile => hop
        float hopValue = 0.0f;
    };

    bool record_tiles = module.schedule().hotPathCoverage > 0.0;

    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        const TiledTree &tiled =
            module.tiledTree(module.treeOrder()[static_cast<size_t>(pos)]);
        int64_t base = fb.numTiles();
        fb.treeFirstTile.push_back(base);
        std::vector<int64_t> tile_global;
        if (record_tiles)
            tile_global.assign(static_cast<size_t>(tiled.numTiles()),
                               -1);

        std::vector<Item> items;
        const Tile &root = tiled.tile(tiled.rootTile());
        if (root.isLeafKind()) {
            // Single-leaf tree: represent it as one hop tile whose
            // children are all that leaf's value.
            items.push_back({hir::kNoTile, root.leafValue});
        } else {
            items.push_back({tiled.rootTile(), 0.0f});
        }

        // Process items in index order; children are appended to the
        // item list, so each tile's children are contiguous.
        for (size_t head = 0; head < items.size(); ++head) {
            Item item = items[head];
            int64_t global = base + static_cast<int64_t>(head);
            // Grow per-tile storage lazily.
            if (fb.numTiles() <= global) {
                growTileStorage(fb, global + 1);
                fb.childBase.resize(static_cast<size_t>(global + 1));
            }
            if (record_tiles && item.id != hir::kNoTile)
                tile_global[static_cast<size_t>(item.id)] = global;

            if (item.id == hir::kNoTile) {
                // Hop tile: dummy predicates route every walk to
                // child 0, so a single leaf value suffices.
                writeInternalTileSlots(fb, global, tiled, 0,
                                       /*is_hop=*/true);
                int64_t leaf_base =
                    static_cast<int64_t>(fb.leaves.size());
                fb.leaves.push_back(item.hopValue);
                fb.childBase[static_cast<size_t>(global)] =
                    static_cast<int32_t>(-(leaf_base + 1));
                continue;
            }

            const Tile &tile = tiled.tile(item.id);
            panicIf(tile.isLeafKind(),
                    "leaf tile reached the sparse item queue");
            writeInternalTileSlots(fb, global, tiled, item.id,
                                   /*is_hop=*/false);

            if (tile.kind == Tile::Kind::kDummyInternal) {
                // Padding tiles also route every walk to child 0;
                // only the continuation child is materialized (the
                // dummy-leaf fillers are unreachable).
                TileId continuation = tile.children.front();
                const Tile &next = tiled.tile(continuation);
                if (next.isLeafKind()) {
                    int64_t leaf_base =
                        static_cast<int64_t>(fb.leaves.size());
                    fb.leaves.push_back(next.leafValue);
                    fb.childBase[static_cast<size_t>(global)] =
                        static_cast<int32_t>(-(leaf_base + 1));
                } else {
                    int64_t first_child =
                        base + static_cast<int64_t>(items.size());
                    fb.childBase[static_cast<size_t>(global)] =
                        static_cast<int32_t>(first_child);
                    items.push_back({continuation, 0.0f});
                }
                continue;
            }

            bool all_leaves = true;
            for (TileId child : tile.children) {
                if (!tiled.tile(child).isLeafKind()) {
                    all_leaves = false;
                    break;
                }
            }

            if (all_leaves) {
                int64_t leaf_base =
                    static_cast<int64_t>(fb.leaves.size());
                for (TileId child : tile.children)
                    fb.leaves.push_back(tiled.tile(child).leafValue);
                fb.childBase[static_cast<size_t>(global)] =
                    static_cast<int32_t>(-(leaf_base + 1));
                continue;
            }

            // Mixed or internal children: all children become tiles;
            // leaf children become hops.
            int64_t first_child =
                base + static_cast<int64_t>(items.size());
            fatalIf(first_child >
                        std::numeric_limits<int32_t>::max(),
                    "sparse layout exceeds 32-bit tile indexing");
            fb.childBase[static_cast<size_t>(global)] =
                static_cast<int32_t>(first_child);
            for (TileId child : tile.children) {
                const Tile &child_tile = tiled.tile(child);
                if (child_tile.isLeafKind())
                    items.push_back({hir::kNoTile, child_tile.leafValue});
                else
                    items.push_back({child, 0.0f});
            }
        }
        if (record_tiles)
            fb.tileGlobalIndex.push_back(std::move(tile_global));
        fb.treeTileEnd.push_back(fb.numTiles());
    }

    // Safety tail: dummy tiles route every walk to child 0 — their
    // default-direction bits are all-left, so this holds for NaN
    // features too — and the tiles above never read their
    // unmaterialized siblings. As defense in depth against corrupted
    // buffers, append a block of self-terminating tiles and zero
    // leaves so any stray child index lands in valid storage (tile
    // indices only ever increase, so such a walk still terminates).
    {
        int64_t tail_begin = fb.numTiles();
        growTileStorage(fb, tail_begin + fb.tileSize + 1);
        fb.childBase.resize(static_cast<size_t>(fb.numTiles()));
        int64_t zero_base = static_cast<int64_t>(fb.leaves.size());
        for (int32_t c = 0; c <= fb.tileSize; ++c)
            fb.leaves.push_back(0.0f);
        for (int64_t tile = tail_begin; tile < fb.numTiles(); ++tile) {
            float *thresholds =
                fb.thresholds.data() + tile * fb.tileSize;
            int32_t *features =
                fb.featureIndices.data() + tile * fb.tileSize;
            for (int32_t s = 0; s < fb.tileSize; ++s) {
                thresholds[s] =
                    std::numeric_limits<float>::infinity();
                features[s] = 0;
            }
            fb.shapeIds[static_cast<size_t>(tile)] =
                static_cast<int16_t>(fb.shapes->leftChainShapeId());
            fb.defaultLeft[static_cast<size_t>(tile)] = 0xFF;
            fb.childBase[static_cast<size_t>(tile)] =
                static_cast<int32_t>(-(zero_base + 1));
        }
    }
    return fb;
}

ForestBuffers
buildPackedLayout(const hir::HirModule &module)
{
    fatalIf(module.forest().numFeatures() >= kPackedMaxFeatures,
            "packed layout narrows feature indices to int16; model has ",
            module.forest().numFeatures(), " features (limit ",
            kPackedMaxFeatures, ")");

    // Build the sparse topology first, then fuse the SoA arrays into
    // per-tile records. The repack is pure data movement, so the
    // packed layout is bit-identical to the sparse one by
    // construction; only the memory access pattern changes.
    ForestBuffers fb = buildSparseLayout(module);
    fb.layout = LayoutKind::kPacked;
    fb.packedStride = packedTileStride(fb.tileSize);
    int64_t tiles = static_cast<int64_t>(fb.shapeIds.size());
    fb.packedTileCount = tiles;
    int64_t total_bytes = tiles * fb.packedStride;
    fb.packed.assign(
        static_cast<size_t>((total_bytes + sizeof(PackedLine) - 1) /
                            sizeof(PackedLine)),
        PackedLine{});

    int32_t nt = fb.tileSize;
    for (int64_t tile = 0; tile < tiles; ++tile) {
        unsigned char *record =
            fb.packedData() + tile * fb.packedStride;
        std::memcpy(record, fb.thresholds.data() + tile * nt,
                    static_cast<size_t>(nt) * sizeof(float));
        int16_t features16[kMaxTileSize];
        const int32_t *features = fb.featureIndices.data() + tile * nt;
        for (int32_t s = 0; s < nt; ++s) {
            panicIf(features[s] >= kPackedMaxFeatures,
                    "feature index escaped the packed-layout gate");
            features16[s] = static_cast<int16_t>(features[s]);
        }
        std::memcpy(record + packedFeaturesOffset(nt), features16,
                    static_cast<size_t>(nt) * sizeof(int16_t));
        std::memcpy(record + packedShapeOffset(nt),
                    &fb.shapeIds[static_cast<size_t>(tile)],
                    sizeof(int16_t));
        record[packedDefaultLeftOffset(nt)] =
            fb.defaultLeft[static_cast<size_t>(tile)];
        std::memcpy(record + packedChildBaseOffset(nt),
                    &fb.childBase[static_cast<size_t>(tile)],
                    sizeof(int32_t));
    }

    // The SoA arrays are dead weight now; every consumer goes through
    // the records (or tileFields()).
    fb.thresholds.clear();
    fb.thresholds.shrink_to_fit();
    fb.featureIndices.clear();
    fb.featureIndices.shrink_to_fit();
    fb.shapeIds.clear();
    fb.shapeIds.shrink_to_fit();
    fb.defaultLeft.clear();
    fb.defaultLeft.shrink_to_fit();
    fb.childBase.clear();
    fb.childBase.shrink_to_fit();
    return fb;
}

namespace {

/**
 * Per-feature affine maps from the threshold ranges that actually
 * appear in @p fb 's (still-SoA) tile slots, plus the implied error
 * budgets. A feature's range [lo, hi] maps its midpoint to 0 and
 * spreads the span over ~65000 quantization steps, so every finite
 * threshold lands well inside [-32768, kQuantizedNaN - 1] and the
 * per-feature resolution is span/65000.
 */
QuantizationInfo
computeQuantization(const ForestBuffers &fb,
                    const model::Forest &forest)
{
    size_t nf = static_cast<size_t>(fb.numFeatures);
    std::vector<double> lo(nf, std::numeric_limits<double>::infinity());
    std::vector<double> hi(nf,
                           -std::numeric_limits<double>::infinity());
    for (size_t slot = 0; slot < fb.thresholds.size(); ++slot) {
        float threshold = fb.thresholds[slot];
        if (!std::isfinite(threshold))
            continue; // dummy/padding slot
        size_t feature = static_cast<size_t>(fb.featureIndices[slot]);
        lo[feature] = std::min(lo[feature],
                               static_cast<double>(threshold));
        hi[feature] = std::max(hi[feature],
                               static_cast<double>(threshold));
    }

    QuantizationInfo info;
    info.scale.resize(nf);
    info.offset.resize(nf);
    info.stepBudget.resize(nf);
    for (size_t f = 0; f < nf; ++f) {
        double scale = 1.0;
        double offset = 0.0;
        if (lo[f] <= hi[f]) {
            double span = hi[f] - lo[f];
            if (span < 1e-30) {
                // Single distinct threshold: map it to 0 exactly.
                offset = lo[f];
            } else {
                offset = (lo[f] + hi[f]) * 0.5;
                scale = 65000.0 / span;
            }
        }
        info.scale[f] = static_cast<float>(scale);
        info.offset[f] = static_cast<float>(offset);
        info.stepBudget[f] = static_cast<float>(1.0 / scale);
    }

    // maxThresholdError covers only features that appear in a record.
    for (size_t f = 0; f < nf; ++f) {
        if (lo[f] <= hi[f])
            info.maxThresholdError = std::max(info.maxThresholdError,
                                              info.stepBudget[f]);
    }

    // Worst-case prediction drift: every tree flips to its farthest
    // leaf. Loose, but sound for any input and any class.
    double budget = 0.0;
    for (const model::DecisionTree &tree : forest.trees()) {
        double leaf_lo = std::numeric_limits<double>::infinity();
        double leaf_hi = -std::numeric_limits<double>::infinity();
        for (const model::Node &node : tree.nodes()) {
            if (!node.isLeaf())
                continue;
            leaf_lo = std::min(leaf_lo,
                               static_cast<double>(node.threshold));
            leaf_hi = std::max(leaf_hi,
                               static_cast<double>(node.threshold));
        }
        if (leaf_lo <= leaf_hi)
            budget += leaf_hi - leaf_lo;
    }
    info.predictionErrorBudget = static_cast<float>(budget);
    return info;
}

} // namespace

ForestBuffers
buildPackedQuantizedLayout(const hir::HirModule &module)
{
    fatalIf(module.forest().numFeatures() >= kPackedQuantizedMaxFeatures,
            "quantized packed layout narrows feature indices to uint8; "
            "model has ",
            module.forest().numFeatures(), " features (limit ",
            kPackedQuantizedMaxFeatures, ")");

    // Build the sparse topology first (same plan as the f32 packed
    // layout), derive the affine maps from the materialized threshold
    // slots, then fuse + narrow into 32-byte records.
    ForestBuffers fb = buildSparseLayout(module);
    fb.quantization = computeQuantization(fb, module.forest());
    fb.layout = LayoutKind::kPackedQuantized;
    fb.packedStride = packedqTileStride(fb.tileSize);
    int64_t tiles = static_cast<int64_t>(fb.shapeIds.size());
    fb.packedTileCount = tiles;
    int64_t total_bytes = tiles * fb.packedStride;
    fb.packed.assign(
        static_cast<size_t>((total_bytes + sizeof(PackedLine) - 1) /
                            sizeof(PackedLine)),
        PackedLine{});

    int32_t nt = fb.tileSize;
    for (int64_t tile = 0; tile < tiles; ++tile) {
        unsigned char *record =
            fb.packedData() + tile * fb.packedStride;
        const float *thresholds = fb.thresholds.data() + tile * nt;
        const int32_t *features = fb.featureIndices.data() + tile * nt;
        int16_t qthresholds[kMaxTileSize];
        uint8_t features8[kMaxTileSize];
        for (int32_t s = 0; s < nt; ++s) {
            // +inf (dummy/padding) slots take the sentinel; finite
            // thresholds quantize with the same rounding the runtime
            // applies to row values, so the compare behaves like f32
            // against an effective threshold within stepBudget below
            // the original.
            qthresholds[s] =
                std::isinf(thresholds[s])
                    ? kQuantizedNaN
                    : fb.quantization.quantizeValue(thresholds[s],
                                                    features[s]);
            panicIf(features[s] >= kPackedQuantizedMaxFeatures,
                    "feature index escaped the quantized-layout gate");
            features8[s] = static_cast<uint8_t>(features[s]);
        }
        std::memcpy(record, qthresholds,
                    static_cast<size_t>(nt) * sizeof(int16_t));
        std::memcpy(record + packedqFeaturesOffset(nt), features8,
                    static_cast<size_t>(nt) * sizeof(uint8_t));
        std::memcpy(record + packedqShapeOffset(nt),
                    &fb.shapeIds[static_cast<size_t>(tile)],
                    sizeof(int16_t));
        record[packedqDefaultLeftOffset(nt)] =
            fb.defaultLeft[static_cast<size_t>(tile)];
        std::memcpy(record + packedqChildBaseOffset(nt),
                    &fb.childBase[static_cast<size_t>(tile)],
                    sizeof(int32_t));
    }

    fb.thresholds.clear();
    fb.thresholds.shrink_to_fit();
    fb.featureIndices.clear();
    fb.featureIndices.shrink_to_fit();
    fb.shapeIds.clear();
    fb.shapeIds.shrink_to_fit();
    fb.defaultLeft.clear();
    fb.defaultLeft.shrink_to_fit();
    fb.childBase.clear();
    fb.childBase.shrink_to_fit();
    return fb;
}

ForestBuffers
buildForestBuffers(const hir::HirModule &module)
{
    switch (module.schedule().layout) {
      case hir::MemoryLayout::kArray:
        return buildArrayLayout(module);
      case hir::MemoryLayout::kSparse:
        return buildSparseLayout(module);
      case hir::MemoryLayout::kPacked:
        if (module.forest().numFeatures() >= kPackedMaxFeatures) {
            warn("packed layout requires < ", kPackedMaxFeatures,
                 " features (model has ",
                 module.forest().numFeatures(),
                 "); falling back to the sparse layout");
            return buildSparseLayout(module);
        }
        if (module.schedule().packedPrecision ==
            hir::PackedPrecision::kI16) {
            if (module.forest().numFeatures() >=
                kPackedQuantizedMaxFeatures) {
                warn("quantized packed layout requires < ",
                     kPackedQuantizedMaxFeatures,
                     " features (model has ",
                     module.forest().numFeatures(),
                     "); falling back to f32 packed records");
                return buildPackedLayout(module);
            }
            return buildPackedQuantizedLayout(module);
        }
        return buildPackedLayout(module);
    }
    panic("unknown memory layout");
}

} // namespace treebeard::lir
