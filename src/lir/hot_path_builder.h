/**
 * @file
 * Hot-path lowering: maps each tree's flattened HIR hot region (see
 * hir/hot_path.h) onto the built layout — thresholds, feature indices
 * and default directions copied out as immediates, quantized-domain
 * thresholds for the packed-quantized layout, and exit edges resolved
 * to global tile indices the cold walkers can enter. Runs after the
 * layout builder (it consumes ForestBuffers::tileGlobalIndex) and
 * before either backend is constructed.
 */
#ifndef TREEBEARD_LIR_HOT_PATH_BUILDER_H
#define TREEBEARD_LIR_HOT_PATH_BUILDER_H

#include "hir/hir_module.h"
#include "lir/forest_buffers.h"

namespace treebeard::analysis {
class DiagnosticEngine;
} // namespace treebeard::analysis

namespace treebeard::lir {

/**
 * Populate @p fb.hotPaths from @p module when the schedule requests a
 * hot path (no-op otherwise). Trees whose selection degenerates to a
 * single cold exit at the root keep an empty hot path (the plain walk
 * is strictly better). When @p diag is non-null, trees selected
 * without hit statistics report a "hir.hotpath.no-stats" note.
 * Consumes and clears fb.tileGlobalIndex.
 */
void buildHotPaths(const hir::HirModule &module, ForestBuffers &fb,
                   analysis::DiagnosticEngine *diag = nullptr);

} // namespace treebeard::lir

#endif // TREEBEARD_LIR_HOT_PATH_BUILDER_H
