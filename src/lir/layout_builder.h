/**
 * @file
 * Lowering of tiled trees into explicit memory layouts: the MIR ->
 * LIR step that inserts model buffers (Section II: "Buffers to hold
 * model values are inserted into the generated code and all tree
 * operations ... are lowered to explicitly reference these buffers").
 */
#ifndef TREEBEARD_LIR_LAYOUT_BUILDER_H
#define TREEBEARD_LIR_LAYOUT_BUILDER_H

#include "hir/hir_module.h"
#include "lir/forest_buffers.h"

namespace treebeard::lir {

/**
 * Materialize @p module 's tiled forest in the layout requested by its
 * schedule. Requires the HIR passes to have run.
 */
ForestBuffers buildForestBuffers(const hir::HirModule &module);

/** Build the array-based representation (Section V-B1). */
ForestBuffers buildArrayLayout(const hir::HirModule &module);

/** Build the sparse representation (Section V-B2). */
ForestBuffers buildSparseLayout(const hir::HirModule &module);

/**
 * Build the cache-line-packed AoS representation: the sparse topology
 * with each tile's fields fused into one aligned fixed-stride record.
 * Requires numFeatures < kPackedMaxFeatures (feature indices narrow
 * to int16); buildForestBuffers falls back to the sparse layout for
 * wider models, this entry fatal()s.
 */
ForestBuffers buildPackedLayout(const hir::HirModule &module);

/**
 * Build the int16-quantized packed representation: the same AoS
 * record topology as buildPackedLayout, but thresholds are narrowed
 * to int16 under a per-feature affine scale computed from the model's
 * threshold ranges (metadata + worst-case error budgets recorded in
 * ForestBuffers::quantization) and feature indices to uint8, so the
 * tile-size-8 record is exactly 32 bytes — two tiles per cache line.
 * Requires numFeatures < kPackedQuantizedMaxFeatures;
 * buildForestBuffers falls back to the f32 packed layout for wider
 * models, this entry fatal()s.
 */
ForestBuffers buildPackedQuantizedLayout(const hir::HirModule &module);

} // namespace treebeard::lir

#endif // TREEBEARD_LIR_LAYOUT_BUILDER_H
