#include "lir/hot_path_builder.h"

#include <utility>

#include "analysis/diagnostics.h"
#include "common/logging.h"
#include "hir/hot_path.h"

namespace treebeard::lir {

void
buildHotPaths(const hir::HirModule &module, ForestBuffers &fb,
              analysis::DiagnosticEngine *diag)
{
    double coverage = module.schedule().hotPathCoverage;
    if (coverage <= 0.0) {
        fb.tileGlobalIndex.clear();
        return;
    }
    panicIf(fb.tileGlobalIndex.size() !=
                static_cast<size_t>(fb.numTrees),
            "hot-path lowering requires the layout's tile index map");

    bool quantized = fb.layout == LayoutKind::kPackedQuantized;
    fb.hotPaths.assign(static_cast<size_t>(fb.numTrees), TreeHotPath{});
    for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
        const hir::TiledTree &tiled = module.tiledTree(
            module.treeOrder()[static_cast<size_t>(pos)]);
        hir::HotPathProgram program =
            hir::buildHotPathProgram(tiled, coverage);
        if (program.empty())
            continue;
        if (program.depthFallback && diag != nullptr) {
            diag->report(analysis::Severity::kNote,
                         analysis::IrLevel::kHir, "hir.hotpath.no-stats",
                         "tree has no recorded hit statistics; hot-path "
                         "selection fell back to depth-based (uniform) "
                         "coverage")
                .atTree(pos);
        }
        // A region with no comparisons that immediately exits cold is
        // pure dispatch overhead over the plain walk: drop it.
        if (program.nodes.empty() && program.outcomes.size() == 1 &&
            !program.outcomes[0].isLeaf) {
            continue;
        }

        const std::vector<int64_t> &tile_global =
            fb.tileGlobalIndex[static_cast<size_t>(pos)];
        const model::DecisionTree &tree = tiled.baseTree();
        TreeHotPath &hot = fb.hotPaths[static_cast<size_t>(pos)];
        hot.hotCoverage = program.hotCoverage;
        hot.depthFallback = program.depthFallback;
        hot.nodes.reserve(program.nodes.size());
        for (const hir::HotPathProgram::Node &node : program.nodes) {
            const model::Node &base = tree.node(node.node);
            HotPathNode lowered;
            lowered.threshold = base.threshold;
            lowered.feature = base.featureIndex;
            lowered.defaultLeft = base.defaultLeft ? 1 : 0;
            lowered.left = node.left;
            lowered.right = node.right;
            if (quantized) {
                // The exact rounding the tile records use, so the hot
                // compare agrees with the cold walker at every node.
                lowered.qthreshold = fb.quantization.quantizeValue(
                    base.threshold, base.featureIndex);
            }
            hot.nodes.push_back(lowered);
        }
        hot.outcomes.reserve(program.outcomes.size());
        for (const hir::HotPathProgram::Outcome &outcome :
             program.outcomes) {
            HotPathOutcome lowered;
            lowered.probability = outcome.probability;
            if (outcome.isLeaf) {
                lowered.leafValue = outcome.leafValue;
                lowered.coldEntryTile = -1;
            } else {
                int64_t global = tile_global[static_cast<size_t>(
                    outcome.exitTile)];
                panicIf(global < 0,
                        "hot-path exit tile was never materialized");
                lowered.coldEntryTile = global;
            }
            hot.outcomes.push_back(lowered);
        }
    }
    // When no tree kept a region, drop the axis entirely so both
    // backends run their plain dispatch.
    bool any = false;
    for (const TreeHotPath &hot : fb.hotPaths) {
        if (!hot.empty()) {
            any = true;
            break;
        }
    }
    if (!any)
        fb.hotPaths.clear();
    fb.tileGlobalIndex.clear();
    fb.tileGlobalIndex.shrink_to_fit();
}

} // namespace treebeard::lir
