#include "lir/forest_buffers.h"

#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace treebeard::lir {

const char *
layoutKindName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::kArray: return "array";
      case LayoutKind::kSparse: return "sparse";
      case LayoutKind::kPacked: return "packed";
      case LayoutKind::kPackedQuantized: return "packed-i16";
    }
    panic("unknown layout kind");
}

int64_t
ForestBuffers::footprintBytes() const
{
    int64_t bytes = 0;
    bytes += static_cast<int64_t>(thresholds.size()) * sizeof(float);
    bytes += static_cast<int64_t>(featureIndices.size()) * sizeof(int32_t);
    bytes += static_cast<int64_t>(shapeIds.size()) * sizeof(int16_t);
    bytes += static_cast<int64_t>(defaultLeft.size()) * sizeof(uint8_t);
    bytes += static_cast<int64_t>(childBase.size()) * sizeof(int32_t);
    bytes += static_cast<int64_t>(leaves.size()) * sizeof(float);
    bytes += packedTileCount * packedStride;
    // Quantized layout: the per-feature affine maps travel with the
    // model image (the runtime needs them to quantize rows).
    bytes += static_cast<int64_t>(quantization.scale.size() +
                                  quantization.offset.size()) *
             static_cast<int64_t>(sizeof(float));
    return bytes;
}

ForestBuffers::TileFields
ForestBuffers::tileFields(int64_t tile) const
{
    TileFields fields;
    if (layout == LayoutKind::kPackedQuantized) {
        const unsigned char *record = packedTileRecord(tile);
        fields.qthresholds = reinterpret_cast<const int16_t *>(record);
        fields.features8 = record + packedqFeaturesOffset(tileSize);
        std::memcpy(&fields.shapeId,
                    record + packedqShapeOffset(tileSize),
                    sizeof(int16_t));
        fields.defaultLeft = record[packedqDefaultLeftOffset(tileSize)];
        std::memcpy(&fields.childBase,
                    record + packedqChildBaseOffset(tileSize),
                    sizeof(int32_t));
        return fields;
    }
    if (layout == LayoutKind::kPacked) {
        const unsigned char *record = packedTileRecord(tile);
        fields.thresholds = reinterpret_cast<const float *>(record);
        fields.features16 = reinterpret_cast<const int16_t *>(
            record + packedFeaturesOffset(tileSize));
        std::memcpy(&fields.shapeId, record + packedShapeOffset(tileSize),
                    sizeof(int16_t));
        fields.defaultLeft = record[packedDefaultLeftOffset(tileSize)];
        std::memcpy(&fields.childBase,
                    record + packedChildBaseOffset(tileSize),
                    sizeof(int32_t));
        return fields;
    }
    fields.thresholds = thresholds.data() + tile * tileSize;
    fields.features32 = featureIndices.data() + tile * tileSize;
    fields.shapeId = shapeIds[static_cast<size_t>(tile)];
    fields.defaultLeft = defaultLeft[static_cast<size_t>(tile)];
    if (layout == LayoutKind::kSparse)
        fields.childBase = childBase[static_cast<size_t>(tile)];
    return fields;
}

int64_t
ForestBuffers::lutBytes() const
{
    if (shapes == nullptr)
        return 0;
    return static_cast<int64_t>(shapes->numShapes()) *
           shapes->lutStride() * sizeof(int8_t);
}

std::string
ForestBuffers::summary() const
{
    std::ostringstream os;
    os << "lir.buffers { layout=" << layoutKindName(layout)
       << " tileSize=" << tileSize << " trees=" << numTrees
       << " tiles=" << numTiles() << " leaves=" << leaves.size();
    if (isPackedKind(layout))
        os << " stride=" << packedStride;
    if (layout == LayoutKind::kPackedQuantized)
        os << " qerr=" << quantization.maxThresholdError;
    os << " bytes=" << footprintBytes() << " lutBytes=" << lutBytes()
       << " }";
    return os.str();
}

int64_t
scalarRepresentationBytes(const model::Forest &forest)
{
    // A tile-size-1 sparse-equivalent node record: threshold (4) +
    // feature index (4) + shape id (2) + child base (4); leaves store
    // only their 4-byte value.
    int64_t internal_nodes = forest.totalNodes() - forest.totalLeaves();
    return internal_nodes * 14 + forest.totalLeaves() * 4;
}

} // namespace treebeard::lir
