#include "lir/forest_buffers.h"

#include <sstream>

#include "common/logging.h"

namespace treebeard::lir {

const char *
layoutKindName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::kArray: return "array";
      case LayoutKind::kSparse: return "sparse";
    }
    panic("unknown layout kind");
}

int64_t
ForestBuffers::footprintBytes() const
{
    int64_t bytes = 0;
    bytes += static_cast<int64_t>(thresholds.size()) * sizeof(float);
    bytes += static_cast<int64_t>(featureIndices.size()) * sizeof(int32_t);
    bytes += static_cast<int64_t>(shapeIds.size()) * sizeof(int16_t);
    bytes += static_cast<int64_t>(defaultLeft.size()) * sizeof(uint8_t);
    bytes += static_cast<int64_t>(childBase.size()) * sizeof(int32_t);
    bytes += static_cast<int64_t>(leaves.size()) * sizeof(float);
    return bytes;
}

int64_t
ForestBuffers::lutBytes() const
{
    if (shapes == nullptr)
        return 0;
    return static_cast<int64_t>(shapes->numShapes()) *
           shapes->lutStride() * sizeof(int8_t);
}

std::string
ForestBuffers::summary() const
{
    std::ostringstream os;
    os << "lir.buffers { layout=" << layoutKindName(layout)
       << " tileSize=" << tileSize << " trees=" << numTrees
       << " tiles=" << numTiles() << " leaves=" << leaves.size()
       << " bytes=" << footprintBytes() << " lutBytes=" << lutBytes()
       << " }";
    return os.str();
}

int64_t
scalarRepresentationBytes(const model::Forest &forest)
{
    // A tile-size-1 sparse-equivalent node record: threshold (4) +
    // feature index (4) + shape id (2) + child base (4); leaves store
    // only their 4-byte value.
    int64_t internal_nodes = forest.totalNodes() - forest.totalLeaves();
    return internal_nodes * 14 + forest.totalLeaves() * 4;
}

} // namespace treebeard::lir
