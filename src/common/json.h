/**
 * @file
 * A small self-contained JSON value type, recursive-descent parser and
 * serializer. Used by the model serialization code (native format and
 * the XGBoost-JSON importer). The library has no external dependencies,
 * so JSON support is provided here as a substrate.
 */
#ifndef TREEBEARD_COMMON_JSON_H
#define TREEBEARD_COMMON_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace treebeard {

/**
 * A dynamically typed JSON value.
 *
 * Numbers are stored as double (sufficient for model thresholds and
 * integer indices in the ranges this library uses). Object member order
 * is not preserved (std::map), which is fine for the formats we read
 * and write.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Boolean, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    /** Construct a null value. */
    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool value) : kind_(Kind::Boolean), boolean_(value) {}
    JsonValue(double value) : kind_(Kind::Number), number_(value) {}
    JsonValue(int value) : kind_(Kind::Number), number_(value) {}
    JsonValue(int64_t value)
        : kind_(Kind::Number), number_(static_cast<double>(value))
    {}
    JsonValue(const char *value) : kind_(Kind::String), string_(value) {}
    JsonValue(std::string value)
        : kind_(Kind::String), string_(std::move(value))
    {}
    JsonValue(Array value) : kind_(Kind::Array), array_(std::move(value)) {}
    JsonValue(Object value) : kind_(Kind::Object), object_(std::move(value)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBoolean() const { return kind_ == Kind::Boolean; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBoolean() const;
    double asNumber() const;
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Mutable array/object access for building documents. */
    Array &mutableArray();
    Object &mutableObject();

    /** Object member lookup; fatal() when the key is missing. */
    const JsonValue &at(const std::string &key) const;

    /** True when this is an object containing @p key. */
    bool contains(const std::string &key) const;

    /** Object member lookup returning @p fallback when absent. */
    const JsonValue &getOr(const std::string &key,
                           const JsonValue &fallback) const;

    /** Serialize to a compact JSON string. */
    std::string dump() const;

    /** Serialize with two-space indentation. */
    std::string dumpPretty() const;

    /**
     * Parse a JSON document.
     * @param text the complete document.
     * @return the parsed value; fatal() on malformed input.
     */
    static JsonValue parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Read an entire file into a string; fatal() when unreadable. */
std::string readFileToString(const std::string &path);

/** Write @p contents to @p path, replacing the file; fatal() on failure. */
void writeStringToFile(const std::string &path, const std::string &contents);

} // namespace treebeard

#endif // TREEBEARD_COMMON_JSON_H
