/**
 * @file
 * A fixed-size thread pool used to execute the `parallel.for` loops that
 * the mid-level IR's parallelization pass produces (Section IV-C of the
 * paper). The pool mirrors the role MLIR's OpenMP lowering plays in the
 * original system.
 */
#ifndef TREEBEARD_COMMON_THREAD_POOL_H
#define TREEBEARD_COMMON_THREAD_POOL_H

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"
#include "common/thread_annotations.h"

namespace treebeard {

/**
 * A work-queue thread pool with a blocking parallelFor primitive.
 *
 * parallelFor partitions [begin, end) into contiguous chunks, one per
 * worker, matching the paper's row-loop tiling with a tile size of
 * ceil(rows / cores).
 */
class ThreadPool
{
  public:
    /** Create a pool with @p num_threads workers (>= 1). */
    explicit ThreadPool(unsigned num_threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Run @p body(begin, end) over contiguous chunks of [begin, end) on
     * the pool and block until all chunks complete. With one worker the
     * body runs inline on the calling thread.
     */
    void parallelFor(int64_t begin, int64_t end,
                     const std::function<void(int64_t, int64_t)> &body);

    /**
     * Run @p task(worker_index) once on every conceptual worker slot and
     * block for completion.
     */
    void runOnAllWorkers(const std::function<void(unsigned)> &task);

    /**
     * Enqueue @p task to run on a background worker without waiting
     * for it to complete — the fire-and-forget primitive the serving
     * transport's per-connection handlers ride on. Requires a pool
     * with background workers (numThreads() >= 2): a one-worker pool
     * runs parallelFor bodies inline on the caller and has no thread
     * to ever pick a detached task up, so enqueueing there is an
     * error rather than a silent black hole.
     */
    void enqueueDetached(std::function<void()> task) EXCLUDES(mutex_);

  private:
    void workerLoop();
    void enqueue(std::function<void()> task) EXCLUDES(mutex_);

    /** Joined only by the destructor; immutable once constructed. */
    std::vector<std::thread> workers_;
    Mutex mutex_{"ThreadPool.mutex"};
    CondVar wakeWorkers_;
    std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
    bool shuttingDown_ GUARDED_BY(mutex_) = false;
};

} // namespace treebeard

#endif // TREEBEARD_COMMON_THREAD_POOL_H
