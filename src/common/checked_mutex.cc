#include "common/checked_mutex.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"

namespace treebeard {

namespace {

/**
 * The process-wide acquisition-order graph. Nodes are mutex role
 * names; a directed edge A -> B means "some thread acquired B while
 * holding A". A cycle through the edge set is a potential deadlock:
 * two threads taking the participating locks in opposing orders can
 * block each other forever, even if this run interleaved safely.
 *
 * Guarded by a *raw* std::mutex on purpose — the registry must not
 * feed its own acquisitions back into the graph.
 */
struct LockRegistry
{
    std::mutex mutex;
    std::map<std::string, std::set<std::string>> edges;
    /** Edges already reported as cycle-closers (report once each). */
    std::set<std::pair<std::string, std::string>> reportedCycles;
    /** (waited, held) pairs already reported (report once each). */
    std::set<std::pair<std::string, std::string>> reportedWaits;
    std::vector<LockViolation> violations;
    std::atomic<bool> enabled;
    std::atomic<int64_t> violationCount{0};
};

bool
defaultLockChecking()
{
    // Read once, before any worker threads exist (the registry is
    // created on the first checked acquisition).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("TREEBEARD_LOCK_CHECKS");
    if (env != nullptr && env[0] != '\0')
        return env[0] != '0';
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

LockRegistry &
lockRegistry()
{
    // Leaked deliberately: checked mutexes are locked during static
    // destruction (the JIT cache unloading its libraries), so the
    // registry must outlive every other static.
    static auto *registry = [] {
        auto *r = new LockRegistry;
        r->enabled.store(defaultLockChecking(),
                         std::memory_order_relaxed);
        return r;
    }();
    return *registry;
}

/** The checked mutexes the calling thread currently holds, in order. */
thread_local std::vector<const Mutex *> t_held;

/**
 * True when @p to is reachable from @p from over the current edge
 * set; fills @p path with the node chain from -> ... -> to.
 * Caller holds LockRegistry::mutex.
 */
bool
findPath(const LockRegistry &registry, const std::string &from,
         const std::string &to, std::vector<std::string> &path)
{
    std::set<std::string> visited;
    std::vector<std::string> stack{from};
    std::map<std::string, std::string> parent;
    visited.insert(from);
    while (!stack.empty()) {
        std::string node = stack.back();
        stack.pop_back();
        if (node == to) {
            std::vector<std::string> reversed{to};
            while (reversed.back() != from)
                reversed.push_back(parent.at(reversed.back()));
            path.assign(reversed.rbegin(), reversed.rend());
            return true;
        }
        auto it = registry.edges.find(node);
        if (it == registry.edges.end())
            continue;
        for (const std::string &next : it->second) {
            if (visited.insert(next).second) {
                parent.emplace(next, node);
                stack.push_back(next);
            }
        }
    }
    return false;
}

/** Append a violation and log it once. Caller holds registry.mutex. */
void
reportViolation(LockRegistry &registry, const char *code,
                std::string message)
{
    warn("lock validator [", code, "]: ", message);
    registry.violations.push_back(LockViolation{code, std::move(message)});
    registry.violationCount.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

namespace detail {

bool
lockCheckingActive()
{
    return lockRegistry().enabled.load(std::memory_order_relaxed);
}

void
noteAcquired(const Mutex *mutex)
{
    LockRegistry &registry = lockRegistry();
    if (!t_held.empty()) {
        std::lock_guard<std::mutex> guard(registry.mutex);
        std::string acquired = mutex->name();
        for (const Mutex *held : t_held) {
            std::string holder = held->name();
            if (holder == acquired)
                continue;
            bool inserted =
                registry.edges[holder].insert(acquired).second;
            if (!inserted)
                continue;
            // A fresh edge holder -> acquired closes a cycle exactly
            // when the reverse direction was already recorded.
            std::vector<std::string> path;
            if (!findPath(registry, acquired, holder, path))
                continue;
            if (!registry.reportedCycles.emplace(holder, acquired)
                     .second)
                continue;
            std::string chain;
            for (const std::string &node : path)
                chain += "'" + node + "' -> ";
            chain += "'" + acquired + "'";
            reportViolation(
                registry, kErrLockOrderCycle,
                "acquiring '" + acquired + "' while holding '" +
                    holder +
                    "' closes an acquisition-order cycle: " + chain +
                    "; two threads taking these locks in opposing "
                    "orders can deadlock");
        }
    }
    t_held.push_back(mutex);
}

void
noteReleased(const Mutex *mutex)
{
    // Unlock order need not be LIFO; erase the most recent entry.
    // A mutex acquired while checking was disabled is simply absent.
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
        if (*it == mutex) {
            t_held.erase(std::next(it).base());
            return;
        }
    }
}

void
noteWait(const Mutex *mutex)
{
    for (const Mutex *held : t_held) {
        if (held == mutex)
            continue;
        LockRegistry &registry = lockRegistry();
        std::lock_guard<std::mutex> guard(registry.mutex);
        if (!registry.reportedWaits
                 .emplace(mutex->name(), held->name())
                 .second)
            continue;
        reportViolation(
            registry, kErrLockHeldAcrossWait,
            "waiting on a condition variable of '" +
                std::string(mutex->name()) + "' while holding '" +
                held->name() +
                "'; the held lock stays frozen for the whole wait "
                "and deadlocks if the notifier needs it");
    }
}

} // namespace detail

bool
lockCheckingEnabled()
{
    return lockRegistry().enabled.load(std::memory_order_relaxed);
}

void
setLockChecking(bool enabled)
{
    lockRegistry().enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<LockViolation>
lockViolations()
{
    LockRegistry &registry = lockRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    return registry.violations;
}

int64_t
lockViolationCount()
{
    return lockRegistry().violationCount.load(
        std::memory_order_relaxed);
}

void
clearLockStateForTesting()
{
    LockRegistry &registry = lockRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    registry.edges.clear();
    registry.reportedCycles.clear();
    registry.reportedWaits.clear();
    registry.violations.clear();
    registry.violationCount.store(0, std::memory_order_relaxed);
}

} // namespace treebeard
