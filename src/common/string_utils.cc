#include "common/string_utils.h"

#include <cctype>

namespace treebeard {

std::vector<std::string>
splitString(const std::string &text, char separator)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(separator, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trimString(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
joinStrings(const std::vector<std::string> &parts,
            const std::string &separator)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += separator;
        out += parts[i];
    }
    return out;
}

} // namespace treebeard
