/**
 * @file
 * Small string helpers shared across modules (CSV parsing, IR printing,
 * benchmark table formatting).
 */
#ifndef TREEBEARD_COMMON_STRING_UTILS_H
#define TREEBEARD_COMMON_STRING_UTILS_H

#include <string>
#include <vector>

namespace treebeard {

/** Split @p text at every occurrence of @p separator (keeps empties). */
std::vector<std::string> splitString(const std::string &text, char separator);

/** Strip leading and trailing ASCII whitespace. */
std::string trimString(const std::string &text);

/** True when @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** True when @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/** Join @p parts with @p separator between consecutive elements. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &separator);

} // namespace treebeard

#endif // TREEBEARD_COMMON_STRING_UTILS_H
