/**
 * @file
 * Capability-annotated mutex/condition-variable wrappers with a
 * lockdep-lite runtime validator.
 *
 * Two analyses share these types, one static and one dynamic:
 *
 *  - Clang's Thread Safety Analysis. Mutex is a CAPABILITY and
 *    MutexLock a SCOPED_CAPABILITY, so members declared
 *    GUARDED_BY(mutex_) and functions annotated REQUIRES(mutex_)
 *    are *proved* correctly locked at compile time under
 *    -DTREEBEARD_THREAD_SAFETY=ON (clang, -Wthread-safety -Werror).
 *    A raw std::mutex is invisible to that analysis, which is why
 *    the concurrent core locks through these wrappers exclusively.
 *
 *  - A runtime lock-order validator. Every acquisition records an
 *    edge "holding A, acquired B" in a process-wide graph keyed by
 *    the mutex's *name* (its role, e.g. "serve.Server.mutex" — all
 *    instances of a role are one node, so the ordering discipline is
 *    checked across instances). A new edge that closes a cycle is a
 *    potential deadlock and is reported once as a
 *    runtime.lock.order-cycle violation; a condition-variable wait
 *    entered while holding any *other* checked mutex is reported as
 *    runtime.lock.held-across-wait (the held lock would be frozen
 *    for the whole wait — the latch-race family of bugs). Violations
 *    carry stable runtime.lock.* codes and surface through the
 *    DiagnosticEngine via analysis/lock_diagnostics.h.
 *
 * The validator is on by default in debug builds (NDEBUG unset),
 * off in release; TREEBEARD_LOCK_CHECKS=0/1 in the environment or
 * setLockChecking() override the default. When off, the wrappers
 * cost one relaxed atomic load over the raw std primitives.
 */
#ifndef TREEBEARD_COMMON_CHECKED_MUTEX_H
#define TREEBEARD_COMMON_CHECKED_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace treebeard {

class Mutex;

namespace detail {

/** True when the validator is recording (relaxed; hot-path gate). */
bool lockCheckingActive();

/** Record that the calling thread now holds @p mutex. */
void noteAcquired(const Mutex *mutex);

/** Record that the calling thread released @p mutex. */
void noteReleased(const Mutex *mutex);

/**
 * Record that the calling thread is about to wait on a condition
 * variable associated with @p mutex (held-across-wait check).
 */
void noteWait(const Mutex *mutex);

} // namespace detail

/**
 * Stable runtime.lock.* codes carried by LockViolation::code (API:
 * tests assert on them; never rename).
 */
inline constexpr const char *kErrLockOrderCycle =
    "runtime.lock.order-cycle";
inline constexpr const char *kErrLockHeldAcrossWait =
    "runtime.lock.held-across-wait";

/** One validator finding (rendered via analysis/lock_diagnostics.h). */
struct LockViolation
{
    /** kErrLockOrderCycle or kErrLockHeldAcrossWait. */
    std::string code;
    /** Human-readable description including the lock names involved. */
    std::string message;
};

/** Validator toggles and results (all thread-safe). */
bool lockCheckingEnabled();
void setLockChecking(bool enabled);
std::vector<LockViolation> lockViolations();
int64_t lockViolationCount();
/** Drop recorded violations, edges and dedupe state (test isolation). */
void clearLockStateForTesting();

/**
 * A std::mutex with a capability annotation and a role name.
 *
 * The name identifies the mutex's role in the lock-order graph;
 * every instance of a role shares one graph node. Name new mutexes
 * "<subsystem>.<Class>.<member>" and document their position in the
 * acquisition order in docs/CONCURRENCY.md.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    explicit Mutex(const char *name = "anonymous") : name_(name) {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() ACQUIRE()
    {
        mutex_.lock();
        if (detail::lockCheckingActive())
            detail::noteAcquired(this);
    }

    void
    unlock() RELEASE()
    {
        if (detail::lockCheckingActive())
            detail::noteReleased(this);
        mutex_.unlock();
    }

    bool
    tryLock() TRY_ACQUIRE(true)
    {
        if (!mutex_.try_lock())
            return false;
        if (detail::lockCheckingActive())
            detail::noteAcquired(this);
        return true;
    }

    const char *name() const { return name_; }

  private:
    std::mutex mutex_;
    const char *name_;
};

/**
 * RAII lock over a Mutex (the std::unique_lock counterpart). Supports
 * the unlock-work-relock pattern the batcher's flusher uses; the
 * destructor releases only when currently held.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() RELEASE()
    {
        if (held_)
            mutex_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Release early (e.g. before running a coalesced batch). */
    void
    unlock() RELEASE()
    {
        mutex_.unlock();
        held_ = false;
    }

    /** Re-acquire after an early unlock(). */
    void
    lock() ACQUIRE()
    {
        mutex_.lock();
        held_ = true;
    }

    /** The underlying mutex (CondVar needs it to wait). */
    Mutex &mutex() const { return mutex_; }

  private:
    Mutex &mutex_;
    bool held_ = true;
};

/**
 * Condition variable paired with a checked Mutex. Waiting releases
 * and re-acquires through the Mutex wrapper, so the validator's
 * held-set stays exact across the wait, and entering a wait while
 * holding any other checked mutex reports
 * runtime.lock.held-across-wait.
 *
 * The wait members carry no REQUIRES annotation — clang's analysis
 * cannot express "requires the mutex inside this MutexLock" — but
 * they demand a MutexLock by reference, so a caller cannot wait
 * without holding. Callers re-test their predicate in a loop, as
 * with std::condition_variable.
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void
    wait(MutexLock &lock)
    {
        if (detail::lockCheckingActive())
            detail::noteWait(&lock.mutex());
        cv_.wait(lock.mutex());
    }

    /** False when @p deadline passed without a notification. */
    template <typename Clock, typename Duration>
    bool
    waitUntil(MutexLock &lock,
              const std::chrono::time_point<Clock, Duration> &deadline)
    {
        if (detail::lockCheckingActive())
            detail::noteWait(&lock.mutex());
        return cv_.wait_until(lock.mutex(), deadline) ==
               std::cv_status::no_timeout;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    /** _any: waits on the annotated Mutex, not a raw std::mutex. */
    std::condition_variable_any cv_;
};

} // namespace treebeard

#endif // TREEBEARD_COMMON_CHECKED_MUTEX_H
