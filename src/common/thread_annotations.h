/**
 * @file
 * Clang Thread Safety Analysis attribute macros.
 *
 * Wraps the `thread_safety` attribute family so the concurrent core
 * can state its locking discipline in the type system: which mutex
 * guards which member (GUARDED_BY), which functions must — or must
 * not — be entered with a lock held (REQUIRES / EXCLUDES), and which
 * functions acquire or release a capability (ACQUIRE / RELEASE).
 * Configuring with -DTREEBEARD_THREAD_SAFETY=ON under clang turns
 * the annotations into compile errors (`-Wthread-safety -Werror`);
 * under GCC and other compilers every macro expands to nothing, so
 * the annotated headers stay portable.
 *
 * The macros follow the spelling of the canonical clang documentation
 * (and abseil's base/thread_annotations.h) rather than inventing a
 * TB_-prefixed dialect: anyone who has read one annotated codebase
 * can read this one. Apply them through the capability-aware Mutex /
 * MutexLock / CondVar wrappers in common/checked_mutex.h — raw
 * std::mutex is invisible to the analysis.
 */
#ifndef TREEBEARD_COMMON_THREAD_ANNOTATIONS_H
#define TREEBEARD_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define TREEBEARD_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define TREEBEARD_THREAD_ATTRIBUTE(x) // no-op outside clang
#endif

/** Marks a class as a capability (lockable) type, e.g. a mutex. */
#define CAPABILITY(x) TREEBEARD_THREAD_ATTRIBUTE(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define SCOPED_CAPABILITY TREEBEARD_THREAD_ATTRIBUTE(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define GUARDED_BY(x) TREEBEARD_THREAD_ATTRIBUTE(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define PT_GUARDED_BY(x) TREEBEARD_THREAD_ATTRIBUTE(pt_guarded_by(x))

/** Function callable only with the listed capabilities held. */
#define REQUIRES(...) \
    TREEBEARD_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** As REQUIRES, for shared (reader) access. */
#define REQUIRES_SHARED(...) \
    TREEBEARD_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities and returns holding them. */
#define ACQUIRE(...) \
    TREEBEARD_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
    TREEBEARD_THREAD_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define RELEASE(...) \
    TREEBEARD_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
    TREEBEARD_THREAD_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/** Function that acquires the capability only when returning @p ... (bool). */
#define TRY_ACQUIRE(...) \
    TREEBEARD_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be entered with the listed capabilities held. */
#define EXCLUDES(...) TREEBEARD_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Declares that @p x is acquired before this capability. */
#define ACQUIRED_AFTER(...) \
    TREEBEARD_THREAD_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define ACQUIRED_BEFORE(...) \
    TREEBEARD_THREAD_ATTRIBUTE(acquired_before(__VA_ARGS__))

/** Function returning a reference to the capability guarding it. */
#define RETURN_CAPABILITY(x) TREEBEARD_THREAD_ATTRIBUTE(lock_returned(x))

/**
 * Escape hatch for functions the analysis cannot follow (the inside
 * of the Mutex wrapper itself, condition-variable re-acquisition).
 * Every use should carry a comment saying why it is sound.
 */
#define NO_THREAD_SAFETY_ANALYSIS \
    TREEBEARD_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif // TREEBEARD_COMMON_THREAD_ANNOTATIONS_H
