/**
 * @file
 * Bit-manipulation helpers shared by the LUT construction and the
 * vectorized tree-walk kernels.
 */
#ifndef TREEBEARD_COMMON_BITS_H
#define TREEBEARD_COMMON_BITS_H

#include <cstdint>

namespace treebeard {

/** Extract bit @p index (0 = least significant) from @p value. */
inline bool
testBit(uint64_t value, unsigned index)
{
    return (value >> index) & 1u;
}

/** Return @p value with bit @p index set to @p bit. */
inline uint64_t
setBit(uint64_t value, unsigned index, bool bit)
{
    uint64_t mask = uint64_t{1} << index;
    return bit ? (value | mask) : (value & ~mask);
}

/** Number of set bits. */
inline unsigned
popcount(uint64_t value)
{
    return static_cast<unsigned>(__builtin_popcountll(value));
}

/** True when @p value is a power of two (and non-zero). */
inline bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Smallest power of two >= @p value (value must be >= 1). */
inline uint64_t
nextPowerOfTwo(uint64_t value)
{
    uint64_t result = 1;
    while (result < value)
        result <<= 1;
    return result;
}

/** Integer ceiling division for non-negative operands. */
inline int64_t
ceilDiv(int64_t numerator, int64_t denominator)
{
    return (numerator + denominator - 1) / denominator;
}

} // namespace treebeard

#endif // TREEBEARD_COMMON_BITS_H
