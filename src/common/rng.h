/**
 * @file
 * Deterministic random number generation used by the synthetic data and
 * model generators. All randomness in the library flows through Rng so
 * experiments are reproducible from a single seed.
 */
#ifndef TREEBEARD_COMMON_RNG_H
#define TREEBEARD_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace treebeard {

/** A seeded wrapper around a 64-bit Mersenne Twister. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x7eebea8d) : engine_(seed) {}

    /** Uniform double in [low, high). */
    double
    uniform(double low = 0.0, double high = 1.0)
    {
        std::uniform_real_distribution<double> dist(low, high);
        return dist(engine_);
    }

    /** Uniform float in [low, high). */
    float
    uniformFloat(float low = 0.0f, float high = 1.0f)
    {
        std::uniform_real_distribution<float> dist(low, high);
        return dist(engine_);
    }

    /** Uniform integer in [low, high] (inclusive). */
    int64_t
    uniformInt(int64_t low, int64_t high)
    {
        panicIf(low > high, "uniformInt: empty range");
        std::uniform_int_distribution<int64_t> dist(low, high);
        return dist(engine_);
    }

    /** Standard normal sample scaled by @p stddev around @p mean. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Bernoulli trial with success probability @p probability. */
    bool
    bernoulli(double probability)
    {
        std::bernoulli_distribution dist(probability);
        return dist(engine_);
    }

    /**
     * Beta(a, b) sample, used to skew synthetic feature distributions
     * (small a with large b concentrates mass near zero, which induces
     * the leaf-biased traversal profiles of Section III-B2).
     */
    double
    beta(double a, double b)
    {
        std::gamma_distribution<double> ga(a, 1.0);
        std::gamma_distribution<double> gb(b, 1.0);
        double x = ga(engine_);
        double y = gb(engine_);
        double denominator = x + y;
        return denominator > 0 ? x / denominator : 0.5;
    }

    /** Sample an index according to non-negative @p weights. */
    size_t
    weightedIndex(const std::vector<double> &weights)
    {
        panicIf(weights.empty(), "weightedIndex: no weights");
        std::discrete_distribution<size_t> dist(weights.begin(),
                                                weights.end());
        return dist(engine_);
    }

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace treebeard

#endif // TREEBEARD_COMMON_RNG_H
