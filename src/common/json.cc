#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace treebeard {

bool
JsonValue::asBoolean() const
{
    fatalIf(kind_ != Kind::Boolean, "JSON value is not a boolean");
    return boolean_;
}

double
JsonValue::asNumber() const
{
    fatalIf(kind_ != Kind::Number, "JSON value is not a number");
    return number_;
}

int64_t
JsonValue::asInt() const
{
    double value = asNumber();
    double rounded = std::nearbyint(value);
    fatalIf(std::abs(value - rounded) > 1e-9,
            "JSON number ", value, " is not an integer");
    return static_cast<int64_t>(rounded);
}

const std::string &
JsonValue::asString() const
{
    fatalIf(kind_ != Kind::String, "JSON value is not a string");
    return string_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    fatalIf(kind_ != Kind::Array, "JSON value is not an array");
    return array_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    fatalIf(kind_ != Kind::Object, "JSON value is not an object");
    return object_;
}

JsonValue::Array &
JsonValue::mutableArray()
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    fatalIf(kind_ != Kind::Array, "JSON value is not an array");
    return array_;
}

JsonValue::Object &
JsonValue::mutableObject()
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    fatalIf(kind_ != Kind::Object, "JSON value is not an object");
    return object_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const Object &object = asObject();
    auto it = object.find(key);
    fatalIf(it == object.end(), "JSON object has no member '", key, "'");
    return it->second;
}

bool
JsonValue::contains(const std::string &key) const
{
    return kind_ == Kind::Object && object_.count(key) > 0;
}

const JsonValue &
JsonValue::getOr(const std::string &key, const JsonValue &fallback) const
{
    if (!contains(key))
        return fallback;
    return object_.at(key);
}

namespace {

/** Append @p text with JSON string escaping. */
void
appendEscaped(std::string &out, const std::string &text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Format a double with round-trip precision, avoiding trailing noise. */
void
appendNumber(std::string &out, double value)
{
    fatalIf(!std::isfinite(value), "cannot serialize non-finite number");
    double rounded = std::nearbyint(value);
    if (value == rounded && std::abs(value) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(rounded));
        out += buffer;
        return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out += buffer;
}

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Boolean:
        out += boolean_ ? "true" : "false";
        break;
      case Kind::Number:
        appendNumber(out, number_);
        break;
      case Kind::String:
        appendEscaped(out, string_);
        break;
      case Kind::Array: {
        out.push_back('[');
        bool first = true;
        for (const auto &element : array_) {
            if (!first)
                out.push_back(',');
            first = false;
            appendIndent(out, indent, depth + 1);
            element.dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            appendIndent(out, indent, depth);
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &[key, value] : object_) {
            if (!first)
                out.push_back(',');
            first = false;
            appendIndent(out, indent, depth + 1);
            appendEscaped(out, key);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            value.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            appendIndent(out, indent, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

std::string
JsonValue::dumpPretty() const
{
    std::string out;
    dumpTo(out, 2, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over an in-memory buffer. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        fatalIf(position_ != text_.size(),
                "trailing characters after JSON document at offset ",
                position_);
        return value;
    }

  private:
    void
    skipWhitespace()
    {
        while (position_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[position_]))) {
            ++position_;
        }
    }

    char
    peek()
    {
        fatalIf(position_ >= text_.size(), "unexpected end of JSON input");
        return text_[position_];
    }

    char
    advance()
    {
        char c = peek();
        ++position_;
        return c;
    }

    void
    expect(char expected)
    {
        char c = advance();
        fatalIf(c != expected, "expected '", expected, "' but found '", c,
                "' at offset ", position_ - 1);
    }

    void
    expectKeyword(const char *keyword)
    {
        for (const char *p = keyword; *p; ++p)
            expect(*p);
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            expectKeyword("true");
            return JsonValue(true);
          case 'f':
            expectKeyword("false");
            return JsonValue(false);
          case 'n':
            expectKeyword("null");
            return JsonValue();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue::Object members;
        skipWhitespace();
        if (peek() == '}') {
            advance();
            return JsonValue(std::move(members));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            members[key] = parseValue();
            skipWhitespace();
            char c = advance();
            if (c == '}')
                break;
            fatalIf(c != ',', "expected ',' or '}' in JSON object at offset ",
                    position_ - 1);
        }
        return JsonValue(std::move(members));
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue::Array elements;
        skipWhitespace();
        if (peek() == ']') {
            advance();
            return JsonValue(std::move(elements));
        }
        while (true) {
            elements.push_back(parseValue());
            skipWhitespace();
            char c = advance();
            if (c == ']')
                break;
            fatalIf(c != ',', "expected ',' or ']' in JSON array at offset ",
                    position_ - 1);
        }
        return JsonValue(std::move(elements));
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = advance();
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char escape = advance();
            switch (escape) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = advance();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += h - 'A' + 10;
                    else
                        fatal("invalid \\u escape in JSON string");
                }
                // Encode as UTF-8 (basic multilingual plane only).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fatal("invalid escape character '", escape,
                      "' in JSON string");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = position_;
        if (peek() == '-')
            advance();
        auto is_digit = [this] {
            return position_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[position_]));
        };
        fatalIf(!is_digit(), "invalid JSON number at offset ", start);
        while (is_digit())
            ++position_;
        if (position_ < text_.size() && text_[position_] == '.') {
            ++position_;
            fatalIf(!is_digit(), "invalid JSON number at offset ", start);
            while (is_digit())
                ++position_;
        }
        if (position_ < text_.size() &&
            (text_[position_] == 'e' || text_[position_] == 'E')) {
            ++position_;
            if (position_ < text_.size() &&
                (text_[position_] == '+' || text_[position_] == '-')) {
                ++position_;
            }
            fatalIf(!is_digit(), "invalid JSON number at offset ", start);
            while (is_digit())
                ++position_;
        }
        // strtod saturates overflow to +/-inf instead of throwing like
        // std::stod; the model verifier then reports the non-finite
        // value as a diagnostic rather than an uncaught exception.
        std::string token = text_.substr(start, position_ - start);
        double value = std::strtod(token.c_str(), nullptr);
        return JsonValue(value);
    }

    const std::string &text_;
    size_t position_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    JsonParser parser(text);
    return parser.parseDocument();
}

std::string
readFileToString(const std::string &path)
{
    std::ifstream stream(path, std::ios::binary);
    fatalIf(!stream, "cannot open file '", path, "' for reading");
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    return buffer.str();
}

void
writeStringToFile(const std::string &path, const std::string &contents)
{
    std::ofstream stream(path, std::ios::binary | std::ios::trunc);
    fatalIf(!stream, "cannot open file '", path, "' for writing");
    stream << contents;
    fatalIf(!stream, "failed writing file '", path, "'");
}

} // namespace treebeard
